//! Additional trace-module coverage: user events, multi-PE summaries,
//! and interchange-format details.

use converse_trace::{Event, MemorySink, Summary, TextSink, TraceSink};

#[test]
fn user_events_flow_through_all_sinks() {
    let mem = MemorySink::new(1, 16);
    let text = TextSink::new();
    for sink in [&*mem as &dyn TraceSink, &*text as &dyn TraceSink] {
        sink.record(0, 5, Event::User { id: 3, data: 77 });
    }
    assert_eq!(mem.records(0).len(), 1);
    assert!(matches!(
        mem.records(0)[0].event,
        Event::User { id: 3, data: 77 }
    ));
    assert!(text.text().contains("USER id=3 data=77"));
}

#[test]
fn summary_separates_pes() {
    let s = MemorySink::new(3, 64);
    // PE 0: busy half its span; PE 2: fully busy; PE 1: silent.
    s.record(0, 0, Event::BeginProcessing { handler: 1, src: 0 });
    s.record(0, 10, Event::EndProcessing { handler: 1 });
    s.record(0, 20, Event::Enqueue { handler: 1 });
    s.record(2, 100, Event::BeginProcessing { handler: 2, src: 1 });
    s.record(2, 200, Event::EndProcessing { handler: 2 });
    let sum = s.summary();
    assert!((sum.pes[0].utilization - 0.5).abs() < 1e-9);
    assert_eq!(sum.pes[1].handler_runs, 0);
    assert_eq!(sum.pes[1].utilization, 0.0);
    assert!((sum.pes[2].utilization - 1.0).abs() < 1e-9);
    assert_eq!(sum.pes[0].enqueues, 1);
}

#[test]
fn summary_interleaved_pes_from_merged_stream() {
    // all_records interleaves PEs by timestamp; Summary must still pair
    // each PE's begin/end correctly.
    let s = MemorySink::new(2, 64);
    s.record(0, 0, Event::BeginProcessing { handler: 0, src: 0 });
    s.record(1, 5, Event::BeginProcessing { handler: 0, src: 0 });
    s.record(0, 10, Event::EndProcessing { handler: 0 });
    s.record(1, 25, Event::EndProcessing { handler: 0 });
    let sum = Summary::from_records(2, &s.all_records());
    assert_eq!(sum.pes[0].busy_ns, 10);
    assert_eq!(sum.pes[1].busy_ns, 20);
}

#[test]
fn thread_and_object_lifecycle_counted() {
    let s = MemorySink::new(1, 64);
    s.record(0, 1, Event::ThreadCreate { tid: 7 });
    s.record(0, 2, Event::ThreadResume { tid: 7 });
    s.record(0, 3, Event::ThreadSuspend { tid: 7 });
    s.record(0, 4, Event::ObjectCreate { kind: 2 });
    s.record(0, 5, Event::ObjectCreate { kind: 2 });
    let sum = s.summary();
    assert_eq!(sum.pes[0].threads_created, 1);
    assert_eq!(sum.pes[0].objects_created, 2);
}

#[test]
fn text_format_one_line_per_record() {
    let t = TextSink::new();
    t.record(
        0,
        1,
        Event::MsgSent {
            dst: 1,
            bytes: 10,
            handler: 5,
        },
    );
    t.record(1, 2, Event::Enqueue { handler: 5 });
    t.record(0, 3, Event::BeginProcessing { handler: 5, src: 1 });
    t.record(0, 4, Event::EndProcessing { handler: 5 });
    t.record(0, 5, Event::ThreadCreate { tid: 9 });
    t.record(0, 6, Event::ThreadResume { tid: 9 });
    t.record(0, 7, Event::ThreadSuspend { tid: 9 });
    t.record(0, 8, Event::ObjectCreate { kind: 4 });
    let text = t.text();
    assert_eq!(text.lines().count(), 8);
    // Every line starts "pe t_ns KIND".
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        parts.next().unwrap().parse::<usize>().expect("pe");
        parts.next().unwrap().parse::<u64>().expect("t_ns");
        let kind = parts.next().unwrap();
        assert!(kind.chars().all(|c| c.is_ascii_uppercase()), "kind {kind}");
    }
}

#[test]
fn capacity_bound_is_per_pe() {
    let s = MemorySink::new(2, 4);
    for i in 0..10 {
        s.record(0, i, Event::Enqueue { handler: 0 });
    }
    s.record(1, 0, Event::Enqueue { handler: 0 });
    assert_eq!(s.records(0).len(), 4, "PE 0 capped");
    assert_eq!(s.records(1).len(), 1, "PE 1 unaffected");
    assert_eq!(s.dropped(), 6);
}

#[test]
fn total_counters_sum_over_pes() {
    let s = MemorySink::new(3, 16);
    for pe in 0..3 {
        s.record(
            pe,
            1,
            Event::MsgSent {
                dst: 0,
                bytes: 1,
                handler: 0,
            },
        );
        s.record(pe, 2, Event::BeginProcessing { handler: 0, src: 0 });
        s.record(pe, 3, Event::EndProcessing { handler: 0 });
    }
    let sum = s.summary();
    assert_eq!(sum.total_sends(), 3);
    assert_eq!(sum.total_handler_runs(), 3);
}
