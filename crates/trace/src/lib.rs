//! Event tracing (paper §3.3.2).
//!
//! "Converse supports a standard for an event trace format. This consists
//! of two parts: a standard format which must be adhered to by all
//! language implementors, and an extensible self-describing format which
//! may be language-specific. In addition to recording message send,
//! receive and processing events, object or thread creation must also be
//! recorded. … many variants of this module are provided, depending on
//! the sophistication of the tracing desired."
//!
//! This crate provides:
//! * the **standard record set** ([`Event`]) — sends, enqueues,
//!   begin/end processing, thread and object lifecycle — plus the
//!   extensible escape hatch ([`Event::User`]);
//! * three sink variants of increasing sophistication:
//!   [`NullSink`] (zero cost — the "pay only for what you use"
//!   variant), [`MemorySink`] (in-memory ring, queryable), and
//!   [`TextSink`] (line-oriented log for offline tools);
//! * [`Summary`] — per-PE utilization and counts derived from a recorded
//!   trace, the kind of digest a Projections-style tool would display.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One standard trace record. Times are nanoseconds since machine boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A message left this PE (`CmiSyncSend` & co.).
    MsgSent {
        /// Destination PE.
        dst: usize,
        /// Total message bytes.
        bytes: usize,
        /// Handler index the message targets.
        handler: u32,
    },
    /// A message was put on the scheduler's queue (`CsdEnqueue`).
    Enqueue {
        /// Handler index.
        handler: u32,
    },
    /// A handler started running.
    BeginProcessing {
        /// Handler index.
        handler: u32,
        /// Source PE of the message (self for local entries).
        src: usize,
    },
    /// The handler returned.
    EndProcessing {
        /// Handler index.
        handler: u32,
    },
    /// A thread object was created.
    ThreadCreate {
        /// Runtime-assigned thread id.
        tid: u64,
    },
    /// A thread was given control.
    ThreadResume {
        /// Thread id.
        tid: u64,
    },
    /// A thread gave up control.
    ThreadSuspend {
        /// Thread id.
        tid: u64,
    },
    /// A concurrent object (e.g. a chare) was created.
    ObjectCreate {
        /// Language-specific kind tag.
        kind: u32,
    },
    /// Language-specific extensible record.
    User {
        /// Registered user event id.
        id: u32,
        /// Free-form datum.
        data: u64,
    },
    /// An external (CCS) request arrived off the wire at its
    /// destination PE, before scheduling.
    CcsRequestArrive {
        /// Server-assigned connection id.
        conn: u64,
        /// Per-connection request sequence number.
        seq: u64,
        /// Client payload bytes.
        bytes: usize,
    },
    /// An external request was dispatched from the scheduler queue to
    /// its target handler.
    CcsDispatch {
        /// Server-assigned connection id.
        conn: u64,
        /// Per-connection request sequence number.
        seq: u64,
        /// Resolved target handler index.
        handler: u32,
    },
    /// A reply to an external request reached the gateway on its way
    /// back to the connection writer.
    CcsReply {
        /// Server-assigned connection id.
        conn: u64,
        /// Per-connection request sequence number.
        seq: u64,
        /// Reply payload bytes.
        bytes: usize,
    },
    /// The fault-injection plane or the reliability sublayer acted on a
    /// packet of link `src → dst`. Send-side kinds (drop, duplicate,
    /// delay, retransmit) are recorded under the sending PE; the
    /// receive-side kind (dedup-drop) under the destination PE.
    Fault {
        /// What happened to the packet.
        kind: FaultKind,
        /// Sending PE of the affected link.
        src: usize,
        /// Destination PE of the affected link.
        dst: usize,
        /// Per-link sequence number of the affected packet.
        seq: u64,
    },
    /// The scheduler pulled a batch of packets off the wire into its
    /// local intake in one mailbox-swap. Sampled (one record per N
    /// batches), not per-batch — this sits on the hot path.
    SchedBatch {
        /// Packets moved by this batch drain.
        drained: usize,
        /// Spin iterations the most recent idle wait consumed before
        /// mail arrived (== the configured budget when it parked).
        spin_iters: u32,
    },
    /// The thread runtime transferred control between contexts. Sampled
    /// (one record per N switches), not per-switch — on the fiber
    /// backend a switch is ~20 ns and a per-event record would dwarf it.
    ThreadSwitch {
        /// Which backend performed the switch (`"fiber"` or
        /// `"handoff"`).
        backend: &'static str,
        /// True when a suspending thread handed control straight to the
        /// next ready thread without bouncing through the Csd queue
        /// (the fiber backend's direct-handoff fast path).
        direct_handoff: bool,
    },
    /// A frame crossed the socket transport's real wire. Sampled (one
    /// record per N frames) — a per-frame record would rival the frame
    /// itself in cost on the loopback path.
    WireFrame {
        /// Frame discriminator name (`"data"`, `"ack"`, `"stall"`, ...).
        kind: &'static str,
        /// The remote PE rank on the other end of the frame.
        peer: usize,
        /// Payload bytes carried (header excluded).
        bytes: usize,
        /// True for an outbound frame, false for an arrival.
        sent: bool,
    },
    /// An idle PE stole a batch of relocatable staged messages from a
    /// loaded victim. Recorded on the PE that initiated the transfer:
    /// the thief on shared-memory transports, the victim on distributed
    /// transports (where the donation is asynchronous).
    Steal {
        /// The overloaded PE the batch was taken from.
        victim: usize,
        /// The idle PE the batch was moved to.
        thief: usize,
        /// Messages moved.
        batch: usize,
    },
    /// One timed leg of a steal, recorded on the **thief** PE. Two
    /// phases bracket the protocol: `ReqToDonate` is the wait from
    /// firing the steal (the STEAL_REQ frame on distributed
    /// transports, the synchronous splice call in-process) until
    /// donated work arrived; `SpliceToRun` is the wait from donated
    /// work landing in the thief's mailbox until the thief's scheduler
    /// next dispatched a message. [`Summary`] folds these into per-PE
    /// p50/p99 histograms.
    StealLatency {
        /// Which leg of the steal this sample times.
        phase: StealPhase,
        /// Elapsed nanoseconds.
        ns: u64,
    },
    /// A migratable object (chare) was moved between PEs by the
    /// measurement-driven balancer. Recorded on the source PE.
    Migrate {
        /// Collection-local object index.
        obj: u64,
        /// PE the object left.
        from: usize,
        /// PE the object now lives on.
        to: usize,
    },
    /// Snapshot of this PE's message-buffer pool counters (the
    /// CmiAlloc/CmiFree free-list), emitted at PE teardown.
    MsgPool {
        /// Allocations served from the free list.
        hits: u64,
        /// Allocations that went to the system allocator.
        misses: u64,
        /// Freed buffers retained for reuse.
        recycled: u64,
        /// Freed buffers dropped (class full or unpoolable).
        discarded: u64,
    },
}

/// Which leg of a steal an [`Event::StealLatency`] sample times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealPhase {
    /// Steal initiated → donated work arrived at the thief.
    ReqToDonate,
    /// Donated work spliced into the thief's mailbox → the thief's
    /// scheduler dispatched its next message.
    SpliceToRun,
}

/// What the fault plane (or the reliability layer masking it) did to a
/// packet; the discriminant of [`Event::Fault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The packet was dropped on the wire (the sender will retransmit).
    Drop,
    /// The packet was duplicated on the wire.
    Duplicate,
    /// The packet was held back a bounded number of delivery slots.
    Delay,
    /// The sender retransmitted an unacknowledged packet.
    Retransmit,
    /// The receiver discarded a duplicate delivery (dedup).
    DedupDrop,
    /// A newer value on a latest-value-wins channel superseded one or
    /// more older undelivered values (recorded under the PE whose
    /// state was purged: the sender for in-flight slots, the
    /// destination for queued inbox values).
    Supersede,
}

impl FaultKind {
    /// Short lowercase label for text logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::Delay => "delay",
            FaultKind::Retransmit => "retransmit",
            FaultKind::DedupDrop => "dedup",
            FaultKind::Supersede => "supersede",
        }
    }
}

/// A timestamped record as stored by sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// PE that emitted the event.
    pub pe: usize,
    /// Nanoseconds since machine boot.
    pub t_ns: u64,
    /// The event payload.
    pub event: Event,
}

/// Destination for trace records. Implementations must be cheap and
/// thread-safe; they are called from every PE's hot path when tracing is
/// enabled.
pub trait TraceSink: Send + Sync {
    /// Record one event from `pe` at time `t_ns`.
    fn record(&self, pe: usize, t_ns: u64, event: Event);
    /// True if this sink actually stores anything; lets callers skip
    /// building event payloads entirely when tracing is off.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: tracing compiled in, cost ≈ one virtual call that the
/// caller elides by checking [`TraceSink::enabled`].
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _pe: usize, _t_ns: u64, _event: Event) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// In-memory bounded trace, queryable after the run. Keeps at most
/// `capacity` records per PE (oldest dropped), counting drops.
pub struct MemorySink {
    per_pe: Vec<Mutex<Vec<Record>>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl MemorySink {
    /// A sink for `num_pes` processors keeping up to `capacity` records
    /// per PE.
    pub fn new(num_pes: usize, capacity: usize) -> Arc<Self> {
        Arc::new(MemorySink {
            per_pe: (0..num_pes).map(|_| Mutex::new(Vec::new())).collect(),
            capacity,
            dropped: AtomicU64::new(0),
        })
    }

    /// All records of one PE, in emission order.
    pub fn records(&self, pe: usize) -> Vec<Record> {
        self.per_pe[pe].lock().clone()
    }

    /// All records of all PEs, ordered by timestamp.
    pub fn all_records(&self) -> Vec<Record> {
        let mut out: Vec<Record> = Vec::new();
        for m in &self.per_pe {
            out.extend(m.lock().iter().cloned());
        }
        out.sort_by_key(|r| r.t_ns);
        out
    }

    /// Records dropped because a PE exceeded capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Compute the per-PE summary of this trace.
    pub fn summary(&self) -> Summary {
        Summary::from_records(self.per_pe.len(), &self.all_records())
    }
}

impl TraceSink for MemorySink {
    fn record(&self, pe: usize, t_ns: u64, event: Event) {
        let mut v = self.per_pe[pe].lock();
        if v.len() >= self.capacity {
            v.remove(0);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        v.push(Record { pe, t_ns, event });
    }
}

/// Line-oriented text sink: one `pe t_ns EVENT k=v…` line per record,
/// buffered in memory and retrievable or flushable to any writer. This is
/// the "self-describing" interchange variant.
pub struct TextSink {
    buf: Mutex<String>,
}

impl TextSink {
    /// New empty text sink.
    pub fn new() -> Arc<Self> {
        Arc::new(TextSink {
            buf: Mutex::new(String::new()),
        })
    }

    /// The accumulated log text.
    pub fn text(&self) -> String {
        self.buf.lock().clone()
    }

    /// Write the accumulated log to `w` and clear the buffer.
    pub fn flush_to(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut b = self.buf.lock();
        w.write_all(b.as_bytes())?;
        b.clear();
        Ok(())
    }
}

impl TraceSink for TextSink {
    fn record(&self, pe: usize, t_ns: u64, event: Event) {
        let mut b = self.buf.lock();
        let _ = match &event {
            Event::MsgSent {
                dst,
                bytes,
                handler,
            } => {
                writeln!(
                    b,
                    "{pe} {t_ns} SEND dst={dst} bytes={bytes} handler={handler}"
                )
            }
            Event::Enqueue { handler } => writeln!(b, "{pe} {t_ns} ENQ handler={handler}"),
            Event::BeginProcessing { handler, src } => {
                writeln!(b, "{pe} {t_ns} BEGIN handler={handler} src={src}")
            }
            Event::EndProcessing { handler } => writeln!(b, "{pe} {t_ns} END handler={handler}"),
            Event::ThreadCreate { tid } => writeln!(b, "{pe} {t_ns} THCREATE tid={tid}"),
            Event::ThreadResume { tid } => writeln!(b, "{pe} {t_ns} THRESUME tid={tid}"),
            Event::ThreadSuspend { tid } => writeln!(b, "{pe} {t_ns} THSUSPEND tid={tid}"),
            Event::ObjectCreate { kind } => writeln!(b, "{pe} {t_ns} OBJCREATE kind={kind}"),
            Event::User { id, data } => writeln!(b, "{pe} {t_ns} USER id={id} data={data}"),
            Event::CcsRequestArrive { conn, seq, bytes } => {
                writeln!(b, "{pe} {t_ns} CCSREQ conn={conn} seq={seq} bytes={bytes}")
            }
            Event::CcsDispatch { conn, seq, handler } => {
                writeln!(
                    b,
                    "{pe} {t_ns} CCSDISPATCH conn={conn} seq={seq} handler={handler}"
                )
            }
            Event::CcsReply { conn, seq, bytes } => {
                writeln!(
                    b,
                    "{pe} {t_ns} CCSREPLY conn={conn} seq={seq} bytes={bytes}"
                )
            }
            Event::Fault {
                kind,
                src,
                dst,
                seq,
            } => {
                writeln!(
                    b,
                    "{pe} {t_ns} FAULT kind={} src={src} dst={dst} seq={seq}",
                    kind.label()
                )
            }
            Event::SchedBatch {
                drained,
                spin_iters,
            } => {
                writeln!(
                    b,
                    "{pe} {t_ns} SCHEDBATCH drained={drained} spin={spin_iters}"
                )
            }
            Event::ThreadSwitch {
                backend,
                direct_handoff,
            } => {
                writeln!(
                    b,
                    "{pe} {t_ns} THSWITCH backend={backend} direct={direct_handoff}"
                )
            }
            Event::WireFrame {
                kind,
                peer,
                bytes,
                sent,
            } => {
                let dir = if *sent { "out" } else { "in" };
                writeln!(
                    b,
                    "{pe} {t_ns} WIRE kind={kind} peer={peer} bytes={bytes} dir={dir}"
                )
            }
            Event::Steal {
                victim,
                thief,
                batch,
            } => {
                writeln!(
                    b,
                    "{pe} {t_ns} STEAL victim={victim} thief={thief} batch={batch}"
                )
            }
            Event::StealLatency { phase, ns } => {
                let p = match phase {
                    StealPhase::ReqToDonate => "req_donate",
                    StealPhase::SpliceToRun => "splice_run",
                };
                writeln!(b, "{pe} {t_ns} STEALLAT phase={p} ns={ns}")
            }
            Event::Migrate { obj, from, to } => {
                writeln!(b, "{pe} {t_ns} MIGRATE obj={obj} from={from} to={to}")
            }
            Event::MsgPool {
                hits,
                misses,
                recycled,
                discarded,
            } => {
                writeln!(
                    b,
                    "{pe} {t_ns} MSGPOOL hits={hits} misses={misses} recycled={recycled} discarded={discarded}"
                )
            }
        };
    }
}

/// Sort `samples` and report `(count, p50, p99)` — zeros when empty.
fn percentiles(samples: &mut [u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    samples.sort_unstable();
    let at = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    (samples.len() as u64, at(0.50), at(0.99))
}

/// Per-PE digest of a trace: message counts and handler-busy utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// One row per PE.
    pub pes: Vec<PeSummary>,
}

/// One PE's digest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeSummary {
    /// Messages sent.
    pub sends: u64,
    /// Handler executions (BeginProcessing count).
    pub handler_runs: u64,
    /// Scheduler enqueues.
    pub enqueues: u64,
    /// Threads created.
    pub threads_created: u64,
    /// Objects created.
    pub objects_created: u64,
    /// External (CCS) requests that arrived on this PE.
    pub ccs_requests: u64,
    /// CCS replies that passed back through this PE's gateway handler.
    pub ccs_replies: u64,
    /// Packets the fault plane dropped with this PE as sender.
    pub net_dropped: u64,
    /// Packets the fault plane duplicated with this PE as sender.
    pub net_duplicated: u64,
    /// Packets the fault plane delayed with this PE as sender.
    pub net_delayed: u64,
    /// Retransmissions issued by this PE's reliability send side.
    pub net_retransmitted: u64,
    /// Duplicate deliveries this PE's reliability receive side dropped.
    pub net_dedup_dropped: u64,
    /// Values superseded by newer ones on latest-value-wins channels,
    /// recorded under the PE whose state was purged.
    pub net_superseded: u64,
    /// Sampled scheduler batch-drain records observed.
    pub sched_batches: u64,
    /// Packets moved by the sampled batch drains (sum of `drained`).
    pub batch_drained: u64,
    /// Spin iterations reported by the sampled batch drains (sum of
    /// `spin_iters`); divide by `sched_batches` for the mean.
    pub idle_spins: u64,
    /// Sampled thread context-switch records observed.
    pub thread_switches: u64,
    /// Sampled switch records flagged as direct handoffs (suspend went
    /// straight to the next ready thread, no Csd queue bounce).
    pub direct_handoffs: u64,
    /// Steal batches this PE initiated ([`Event::Steal`] records).
    pub steals: u64,
    /// Messages moved by those steal batches.
    pub stolen_msgs: u64,
    /// Steal request→donate latency samples recorded on this PE.
    pub steal_req_donate_samples: u64,
    /// Median request→donate latency (ns); 0 with no samples.
    pub steal_req_donate_p50_ns: u64,
    /// 99th-percentile request→donate latency (ns); 0 with no samples.
    pub steal_req_donate_p99_ns: u64,
    /// Steal splice→first-run latency samples recorded on this PE.
    pub steal_splice_run_samples: u64,
    /// Median splice→first-run latency (ns); 0 with no samples.
    pub steal_splice_run_p50_ns: u64,
    /// 99th-percentile splice→first-run latency (ns); 0 with no samples.
    pub steal_splice_run_p99_ns: u64,
    /// Objects migrated off this PE ([`Event::Migrate`] records).
    pub migrations: u64,
    /// Buffer-pool hits (from the last [`Event::MsgPool`] snapshot).
    pub pool_hits: u64,
    /// Buffer-pool misses (from the last [`Event::MsgPool`] snapshot).
    pub pool_misses: u64,
    /// Nanoseconds spent inside handlers.
    pub busy_ns: u64,
    /// Fraction of the observed span spent inside handlers (0..=1);
    /// zero when the span is empty.
    pub utilization: f64,
}

impl Summary {
    /// Derive a summary from a flat record list (as produced by
    /// [`MemorySink::all_records`]).
    pub fn from_records(num_pes: usize, records: &[Record]) -> Summary {
        let mut pes = vec![PeSummary::default(); num_pes];
        let mut open: Vec<Option<u64>> = vec![None; num_pes];
        let mut first: Vec<Option<u64>> = vec![None; num_pes];
        let mut last: Vec<u64> = vec![0; num_pes];
        let mut req_donate: Vec<Vec<u64>> = vec![Vec::new(); num_pes];
        let mut splice_run: Vec<Vec<u64>> = vec![Vec::new(); num_pes];
        for r in records {
            let s = &mut pes[r.pe];
            first[r.pe].get_or_insert(r.t_ns);
            last[r.pe] = last[r.pe].max(r.t_ns);
            match &r.event {
                Event::MsgSent { .. } => s.sends += 1,
                Event::Enqueue { .. } => s.enqueues += 1,
                Event::BeginProcessing { .. } => {
                    s.handler_runs += 1;
                    open[r.pe] = Some(r.t_ns);
                }
                Event::EndProcessing { .. } => {
                    if let Some(t0) = open[r.pe].take() {
                        s.busy_ns += r.t_ns.saturating_sub(t0);
                    }
                }
                Event::ThreadCreate { .. } => s.threads_created += 1,
                Event::ObjectCreate { .. } => s.objects_created += 1,
                Event::CcsRequestArrive { .. } => s.ccs_requests += 1,
                Event::CcsReply { .. } => s.ccs_replies += 1,
                Event::Fault { kind, .. } => match kind {
                    FaultKind::Drop => s.net_dropped += 1,
                    FaultKind::Duplicate => s.net_duplicated += 1,
                    FaultKind::Delay => s.net_delayed += 1,
                    FaultKind::Retransmit => s.net_retransmitted += 1,
                    FaultKind::DedupDrop => s.net_dedup_dropped += 1,
                    FaultKind::Supersede => s.net_superseded += 1,
                },
                Event::SchedBatch {
                    drained,
                    spin_iters,
                } => {
                    s.sched_batches += 1;
                    s.batch_drained += *drained as u64;
                    s.idle_spins += *spin_iters as u64;
                }
                Event::ThreadSwitch { direct_handoff, .. } => {
                    s.thread_switches += 1;
                    if *direct_handoff {
                        s.direct_handoffs += 1;
                    }
                }
                Event::Steal { batch, .. } => {
                    s.steals += 1;
                    s.stolen_msgs += *batch as u64;
                }
                Event::StealLatency { phase, ns } => match phase {
                    StealPhase::ReqToDonate => req_donate[r.pe].push(*ns),
                    StealPhase::SpliceToRun => splice_run[r.pe].push(*ns),
                },
                Event::Migrate { .. } => s.migrations += 1,
                Event::MsgPool { hits, misses, .. } => {
                    // Snapshots are cumulative; keep the latest.
                    s.pool_hits = *hits;
                    s.pool_misses = *misses;
                }
                _ => {}
            }
        }
        for pe in 0..num_pes {
            if let Some(f) = first[pe] {
                let span = last[pe].saturating_sub(f);
                if span > 0 {
                    pes[pe].utilization = pes[pe].busy_ns as f64 / span as f64;
                }
            }
            let (c, p50, p99) = percentiles(&mut req_donate[pe]);
            pes[pe].steal_req_donate_samples = c;
            pes[pe].steal_req_donate_p50_ns = p50;
            pes[pe].steal_req_donate_p99_ns = p99;
            let (c, p50, p99) = percentiles(&mut splice_run[pe]);
            pes[pe].steal_splice_run_samples = c;
            pes[pe].steal_splice_run_p50_ns = p50;
            pes[pe].steal_splice_run_p99_ns = p99;
        }
        Summary { pes }
    }

    /// Total messages sent across PEs.
    pub fn total_sends(&self) -> u64 {
        self.pes.iter().map(|p| p.sends).sum()
    }

    /// Total handler executions across PEs.
    pub fn total_handler_runs(&self) -> u64 {
        self.pes.iter().map(|p| p.handler_runs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_reports_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.record(0, 0, Event::Enqueue { handler: 1 }); // must not panic
    }

    #[test]
    fn memory_sink_stores_in_order() {
        let s = MemorySink::new(2, 16);
        s.record(
            0,
            10,
            Event::MsgSent {
                dst: 1,
                bytes: 8,
                handler: 3,
            },
        );
        s.record(1, 20, Event::BeginProcessing { handler: 3, src: 0 });
        s.record(1, 30, Event::EndProcessing { handler: 3 });
        assert_eq!(s.records(0).len(), 1);
        assert_eq!(s.records(1).len(), 2);
        let all = s.all_records();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn memory_sink_bounds_capacity() {
        let s = MemorySink::new(1, 3);
        for i in 0..10 {
            s.record(0, i, Event::Enqueue { handler: 0 });
        }
        assert_eq!(s.records(0).len(), 3);
        assert_eq!(s.dropped(), 7);
        // Oldest dropped: remaining timestamps are the last three.
        assert_eq!(s.records(0)[0].t_ns, 7);
    }

    #[test]
    fn summary_counts_and_utilization() {
        let s = MemorySink::new(1, 64);
        s.record(0, 0, Event::BeginProcessing { handler: 1, src: 0 });
        s.record(0, 50, Event::EndProcessing { handler: 1 });
        s.record(
            0,
            60,
            Event::MsgSent {
                dst: 0,
                bytes: 1,
                handler: 1,
            },
        );
        s.record(0, 80, Event::BeginProcessing { handler: 1, src: 0 });
        s.record(0, 100, Event::EndProcessing { handler: 1 });
        let sum = s.summary();
        let p = &sum.pes[0];
        assert_eq!(p.handler_runs, 2);
        assert_eq!(p.sends, 1);
        assert_eq!(p.busy_ns, 70);
        assert!((p.utilization - 0.7).abs() < 1e-9);
        assert_eq!(sum.total_handler_runs(), 2);
    }

    #[test]
    fn text_sink_formats_lines() {
        let s = TextSink::new();
        s.record(2, 99, Event::ThreadCreate { tid: 5 });
        s.record(2, 100, Event::User { id: 1, data: 42 });
        let text = s.text();
        assert!(text.contains("2 99 THCREATE tid=5"));
        assert!(text.contains("2 100 USER id=1 data=42"));
    }

    #[test]
    fn text_sink_flush_clears() {
        let s = TextSink::new();
        s.record(0, 1, Event::Enqueue { handler: 7 });
        let mut out = Vec::new();
        s.flush_to(&mut out).unwrap();
        assert!(!out.is_empty());
        assert!(s.text().is_empty());
    }

    #[test]
    fn thread_switch_formats_and_summarizes() {
        let s = TextSink::new();
        s.record(
            1,
            8,
            Event::ThreadSwitch {
                backend: "fiber",
                direct_handoff: true,
            },
        );
        assert!(s.text().contains("1 8 THSWITCH backend=fiber direct=true"));

        let recs = vec![
            Record {
                pe: 0,
                t_ns: 1,
                event: Event::ThreadSwitch {
                    backend: "fiber",
                    direct_handoff: true,
                },
            },
            Record {
                pe: 0,
                t_ns: 2,
                event: Event::ThreadSwitch {
                    backend: "fiber",
                    direct_handoff: false,
                },
            },
        ];
        let sum = Summary::from_records(1, &recs);
        assert_eq!(sum.pes[0].thread_switches, 2);
        assert_eq!(sum.pes[0].direct_handoffs, 1);
    }

    #[test]
    fn summary_handles_unbalanced_begin() {
        // An unmatched Begin contributes no busy time and must not panic.
        let recs = vec![Record {
            pe: 0,
            t_ns: 5,
            event: Event::BeginProcessing { handler: 0, src: 0 },
        }];
        let sum = Summary::from_records(1, &recs);
        assert_eq!(sum.pes[0].busy_ns, 0);
    }

    #[test]
    fn msg_pool_snapshot_formats_and_summarizes() {
        let s = TextSink::new();
        s.record(
            1,
            7,
            Event::MsgPool {
                hits: 10,
                misses: 2,
                recycled: 9,
                discarded: 1,
            },
        );
        assert!(s
            .text()
            .contains("1 7 MSGPOOL hits=10 misses=2 recycled=9 discarded=1"));

        let recs = vec![
            Record {
                pe: 0,
                t_ns: 1,
                event: Event::MsgPool {
                    hits: 3,
                    misses: 4,
                    recycled: 0,
                    discarded: 0,
                },
            },
            // Later snapshot supersedes (counters are cumulative).
            Record {
                pe: 0,
                t_ns: 2,
                event: Event::MsgPool {
                    hits: 8,
                    misses: 5,
                    recycled: 2,
                    discarded: 0,
                },
            },
        ];
        let sum = Summary::from_records(1, &recs);
        assert_eq!(sum.pes[0].pool_hits, 8);
        assert_eq!(sum.pes[0].pool_misses, 5);
    }

    #[test]
    fn sched_batch_formats_and_summarizes() {
        let s = TextSink::new();
        s.record(
            3,
            21,
            Event::SchedBatch {
                drained: 17,
                spin_iters: 40,
            },
        );
        assert!(s.text().contains("3 21 SCHEDBATCH drained=17 spin=40"));

        let mk = |drained, spin_iters| Record {
            pe: 0,
            t_ns: 1,
            event: Event::SchedBatch {
                drained,
                spin_iters,
            },
        };
        let sum = Summary::from_records(1, &[mk(4, 160), mk(12, 0)]);
        assert_eq!(sum.pes[0].sched_batches, 2);
        assert_eq!(sum.pes[0].batch_drained, 16);
        assert_eq!(sum.pes[0].idle_spins, 160);
    }

    #[test]
    fn steal_and_migrate_events_format_and_summarize() {
        let s = TextSink::new();
        s.record(
            2,
            9,
            Event::Steal {
                victim: 0,
                thief: 2,
                batch: 5,
            },
        );
        s.record(
            0,
            11,
            Event::Migrate {
                obj: 3,
                from: 0,
                to: 1,
            },
        );
        let text = s.text();
        assert!(text.contains("2 9 STEAL victim=0 thief=2 batch=5"));
        assert!(text.contains("0 11 MIGRATE obj=3 from=0 to=1"));

        let recs = vec![
            Record {
                pe: 2,
                t_ns: 1,
                event: Event::Steal {
                    victim: 0,
                    thief: 2,
                    batch: 5,
                },
            },
            Record {
                pe: 2,
                t_ns: 2,
                event: Event::Steal {
                    victim: 1,
                    thief: 2,
                    batch: 3,
                },
            },
            Record {
                pe: 0,
                t_ns: 3,
                event: Event::Migrate {
                    obj: 3,
                    from: 0,
                    to: 1,
                },
            },
        ];
        let sum = Summary::from_records(3, &recs);
        assert_eq!(sum.pes[2].steals, 2);
        assert_eq!(sum.pes[2].stolen_msgs, 8);
        assert_eq!(sum.pes[0].migrations, 1);
        assert_eq!(sum.pes[1].steals, 0);
    }

    #[test]
    fn fault_events_format_and_summarize() {
        let s = TextSink::new();
        s.record(
            0,
            11,
            Event::Fault {
                kind: FaultKind::Drop,
                src: 0,
                dst: 3,
                seq: 42,
            },
        );
        assert!(s.text().contains("0 11 FAULT kind=drop src=0 dst=3 seq=42"));

        let mk = |pe, kind| Record {
            pe,
            t_ns: 1,
            event: Event::Fault {
                kind,
                src: pe,
                dst: 1,
                seq: 0,
            },
        };
        let recs = vec![
            mk(0, FaultKind::Drop),
            mk(0, FaultKind::Retransmit),
            mk(0, FaultKind::Retransmit),
            mk(0, FaultKind::Duplicate),
            mk(0, FaultKind::Delay),
            mk(1, FaultKind::DedupDrop),
            mk(1, FaultKind::Supersede),
        ];
        let sum = Summary::from_records(2, &recs);
        assert_eq!(sum.pes[0].net_dropped, 1);
        assert_eq!(sum.pes[0].net_retransmitted, 2);
        assert_eq!(sum.pes[0].net_duplicated, 1);
        assert_eq!(sum.pes[0].net_delayed, 1);
        assert_eq!(sum.pes[1].net_dedup_dropped, 1);
        assert_eq!(sum.pes[1].net_superseded, 1);
    }

    #[test]
    fn record_clone_eq() {
        let r = Record {
            pe: 1,
            t_ns: 123,
            event: Event::MsgSent {
                dst: 0,
                bytes: 9,
                handler: 2,
            },
        };
        assert_eq!(r.clone(), r);
    }
}
