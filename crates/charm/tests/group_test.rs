//! Chare-group (branch-office) tests: per-PE branches, broadcast and
//! targeted invocation, early-send buffering, quiescence integration.

use converse_charm::{Charm, GroupChare, GroupId};
use converse_core::{csd_scheduler, csd_scheduler_until_idle, run, Message, Pe};
use converse_ldb::LdbPolicy;
use converse_msg::Priority;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// PE-local invocation counter (type-keyed local storage), so parallel
/// tests never share state.
struct GroupHits(AtomicU64);

/// A branch that counts invocations and can report its PE id.
struct Counter;

fn local_hits(pe: &Pe) -> Arc<GroupHits> {
    pe.local(|| GroupHits(AtomicU64::new(0)))
}

impl GroupChare for Counter {
    fn new(_pe: &Pe, _gid: GroupId, _payload: &[u8]) -> Self {
        Counter
    }
    fn entry(&mut self, pe: &Pe, _gid: GroupId, ep: u32, payload: &[u8]) {
        match ep {
            0 => {
                local_hits(pe).0.fetch_add(1, Ordering::SeqCst);
            }
            1 => {
                // Reply with my PE id to the handler in the payload.
                let h =
                    converse_core::HandlerId(u32::from_le_bytes(payload[..4].try_into().unwrap()));
                pe.sync_send_and_free(0, Message::new(h, &(pe.my_pe() as u64).to_le_bytes()));
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn create_constructs_branch_on_every_pe() {
    let hits = Arc::new(AtomicU64::new(0));
    let h2 = hits.clone();
    run(4, move |pe| {
        let hits = h2.clone();
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_group::<Counter>();
        pe.barrier();
        if pe.my_pe() == 0 {
            let gid = charm.create_group(pe, kind, b"");
            charm.broadcast_group(pe, gid, 0, b"", Priority::None);
        }
        pe.barrier();
        csd_scheduler_until_idle(pe);
        pe.barrier();
        assert_eq!(charm.local_group_branches(), 1, "one branch per PE");
        hits.fetch_add(local_hits(pe).0.load(Ordering::SeqCst), Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 4, "broadcast hit every branch");
}

#[test]
fn send_group_targets_one_pe() {
    run(3, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_group::<Counter>();
        let got = pe.local(|| parking_lot::Mutex::new(Vec::<u64>::new()));
        let g2 = got.clone();
        let reply = pe.register_handler(move |_pe, msg| {
            g2.lock()
                .push(u64::from_le_bytes(msg.payload().try_into().unwrap()));
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let gid = charm.create_group(pe, kind, b"");
            for target in [2usize, 1, 2] {
                charm.send_group(pe, gid, target, 1, &reply.0.to_le_bytes(), Priority::None);
            }
            converse_core::schedule_until(pe, || got.lock().len() == 3);
            let mut replies = got.lock().clone();
            replies.sort_unstable();
            assert_eq!(replies, vec![1, 2, 2]);
            charm.exit_all(pe);
            csd_scheduler(pe, -1);
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
}

#[test]
fn third_party_send_before_create_is_buffered() {
    // PE 1 learns a group id out-of-band and sends to PE 2's branch
    // possibly before PE 0's create broadcast reaches PE 2. The early
    // invocation must be buffered and replayed, not lost.
    let hits = Arc::new(AtomicU64::new(0));
    let h2 = hits.clone();
    run(3, move |pe| {
        let hits = h2.clone();
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_group::<Counter>();
        let gid_slot = pe.local(|| parking_lot::Mutex::new(None::<GroupId>));
        let s2 = gid_slot.clone();
        let announce = pe.register_handler(move |pe, msg| {
            *s2.lock() = Some(GroupId(u64::from_le_bytes(
                msg.payload().try_into().unwrap(),
            )));
            Charm::get(pe).quiescence().msg_processed(1);
        });
        let done = pe.register_handler(|pe, _| Charm::get(pe).exit_all(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            let gid = charm.create_group(pe, kind, b"");
            // Tell PE 1 the id through a separate channel (QD-counted so
            // detection waits for the whole causal chain).
            charm.quiescence().msg_created(1);
            pe.sync_send_and_free(1, Message::new(announce, &gid.0.to_le_bytes()));
            charm.quiescence().start(pe, Message::new(done, b""));
            csd_scheduler(pe, -1);
        } else if pe.my_pe() == 1 {
            converse_core::schedule_until(pe, || gid_slot.lock().is_some());
            let gid = gid_slot.lock().unwrap();
            // This send can race PE 0's create broadcast to PE 2.
            charm.send_group(pe, gid, 2, 0, b"", Priority::None);
            csd_scheduler(pe, -1);
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
        hits.fetch_add(local_hits(pe).0.load(Ordering::SeqCst), Ordering::SeqCst);
    });
    assert_eq!(
        hits.load(Ordering::SeqCst),
        1,
        "early send executed exactly once"
    );
}

#[test]
fn quiescence_covers_group_traffic() {
    let hits = Arc::new(AtomicU64::new(0));
    let h2 = hits.clone();
    run(2, move |pe| {
        let hits = h2.clone();
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_group::<Counter>();
        let done = pe.register_handler(|pe, _| converse_core::csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            let gid = charm.create_group(pe, kind, b"");
            for _ in 0..5 {
                charm.broadcast_group(pe, gid, 0, b"", Priority::None);
            }
            charm.quiescence().start(pe, Message::new(done, b""));
            csd_scheduler(pe, -1);
            charm.exit_all(pe);
            csd_scheduler(pe, -1);
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
        hits.fetch_add(local_hits(pe).0.load(Ordering::SeqCst), Ordering::SeqCst);
    });
    assert_eq!(
        hits.load(Ordering::SeqCst),
        10,
        "quiescence waited for all 5×2 invocations"
    );
}

// NOTE: the quiescence exit on PE0 returns once, then exit_all unblocks
// the peers; the trailing scheduler call drains the exit message PE0
// broadcast to itself.
