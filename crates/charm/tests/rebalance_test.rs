//! Quasi-dynamic load balancing: phase-boundary redistribution of live
//! migratable chares, with message forwarding keeping traffic correct.

use converse_charm::{Chare, ChareId, Charm, MigratableChare};
use converse_core::{csd_scheduler, csd_scheduler_until_idle, run, Message, Pe};
use converse_ldb::LdbPolicy;
use converse_msg::Priority;

/// A trivially migratable stateful chare.
struct Cell {
    value: i64,
}

impl Chare for Cell {
    fn new(_pe: &Pe, _id: ChareId, payload: &[u8]) -> Self {
        Cell {
            value: i64::from_le_bytes(payload.try_into().unwrap()),
        }
    }
    fn entry(&mut self, pe: &Pe, _id: ChareId, ep: u32, payload: &[u8]) {
        match ep {
            0 => self.value += i64::from_le_bytes(payload.try_into().unwrap()),
            1 => {
                let h =
                    converse_core::HandlerId(u32::from_le_bytes(payload[..4].try_into().unwrap()));
                pe.sync_send_and_free(0, Message::new(h, &self.value.to_le_bytes()));
            }
            _ => unreachable!(),
        }
    }
}

impl MigratableChare for Cell {
    fn pack(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }
    fn unpack(_pe: &Pe, _id: ChareId, data: &[u8]) -> Self {
        Cell {
            value: i64::from_le_bytes(data.try_into().unwrap()),
        }
    }
}

#[test]
fn rebalance_evens_out_a_skewed_population() {
    run(4, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_migratable::<Cell>();
        pe.barrier();
        // All 12 cells are born on PE 0 (Direct policy).
        if pe.my_pe() == 0 {
            for v in 0..12i64 {
                charm.create(pe, kind, &v.to_le_bytes(), Priority::None);
            }
        }
        csd_scheduler_until_idle(pe);
        pe.barrier();
        let before = charm.local_migratable();
        if pe.my_pe() == 0 {
            assert_eq!(before, 12);
        } else {
            assert_eq!(before, 0);
        }
        // Phase boundary: everyone rebalances.
        let report = charm.rebalance_sync(pe);
        assert_eq!(charm.local_migratable(), 3, "PE {} balanced", pe.my_pe());
        if pe.my_pe() == 0 {
            assert_eq!(report.moved_out.len(), 9);
            assert_eq!(report.expected_in, 0);
        } else {
            assert_eq!(report.expected_in, 3);
            assert!(report.moved_out.is_empty());
        }
        pe.barrier();
    });
}

#[test]
fn state_and_reachability_survive_rebalancing() {
    run(3, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_migratable::<Cell>();
        let result = pe.local(|| parking_lot::Mutex::new(Vec::<i64>::new()));
        let r2 = result.clone();
        let report = pe.register_handler(move |_pe, msg| {
            r2.lock()
                .push(i64::from_le_bytes(msg.payload().try_into().unwrap()));
        });
        pe.barrier();
        // 6 cells on PE 0, values 100..105; bump each by 1 pre-balance.
        let ids: Vec<ChareId> = if pe.my_pe() == 0 {
            for v in 100..106i64 {
                charm.create(pe, kind, &v.to_le_bytes(), Priority::None);
            }
            csd_scheduler_until_idle(pe);
            (1..=6).map(|slot| ChareId { pe: 0, slot }).collect()
        } else {
            Vec::new()
        };
        if pe.my_pe() == 0 {
            for id in &ids {
                charm.send(pe, *id, 0, &1i64.to_le_bytes(), Priority::None);
            }
            csd_scheduler_until_idle(pe);
        }
        pe.barrier();
        charm.rebalance_sync(pe);
        // Post-balance: message the ORIGINAL ids; stubs must forward.
        if pe.my_pe() == 0 {
            for id in &ids {
                charm.send(pe, *id, 1, &report.0.to_le_bytes(), Priority::None);
            }
            converse_core::schedule_until(pe, || result.lock().len() == 6);
            let mut got = result.lock().clone();
            got.sort_unstable();
            assert_eq!(got, vec![101, 102, 103, 104, 105, 106]);
            charm.exit_all(pe);
            csd_scheduler(pe, -1);
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
}

#[test]
fn rebalance_on_balanced_machine_is_noop() {
    run(2, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_migratable::<Cell>();
        pe.barrier();
        // Each PE creates two of its own.
        for v in 0..2i64 {
            charm.create(pe, kind, &v.to_le_bytes(), Priority::None);
        }
        csd_scheduler_until_idle(pe);
        pe.barrier();
        let report = charm.rebalance_sync(pe);
        assert!(report.moved_out.is_empty());
        assert_eq!(report.expected_in, 0);
        assert_eq!(charm.local_migratable(), 2);
        pe.barrier();
    });
}
