//! Readonly-global tests: publish-once broadcast semantics.

use converse_charm::Charm;
use converse_core::{csd_scheduler, run, Message};
use converse_ldb::LdbPolicy;

#[test]
fn published_readonly_visible_everywhere() {
    run(4, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let done = pe.register_handler(|pe, _| converse_core::csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            charm.publish_readonly(pe, 1, b"configuration blob");
            charm.publish_readonly(pe, 2, &42u64.to_le_bytes());
        }
        // Every PE (publisher included) waits for both keys.
        assert_eq!(charm.readonly_wait(pe, 1), b"configuration blob");
        assert_eq!(charm.readonly_wait(pe, 2), 42u64.to_le_bytes());
        assert_eq!(
            charm.readonly(1).as_deref(),
            Some(&b"configuration blob"[..])
        );
        assert!(charm.readonly(99).is_none());
        pe.barrier();
        let _ = done;
    });
}

#[test]
fn readonly_counts_toward_quiescence() {
    run(2, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let done = pe.register_handler(|pe, _| converse_core::csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            charm.publish_readonly(pe, 7, b"x");
            charm.quiescence().start(pe, Message::new(done, b""));
            csd_scheduler(pe, -1);
            // Quiescence fired only after both PEs absorbed the readonly.
            assert!(charm.readonly(7).is_some());
            charm.exit_all(pe);
            csd_scheduler(pe, -1);
        } else {
            csd_scheduler(pe, -1);
            assert!(charm.readonly(7).is_some());
        }
        pe.barrier();
    });
}
