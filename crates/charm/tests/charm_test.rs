//! Message-driven object runtime: chare creation via seeds, async entry
//! methods, prioritized invocation, and quiescence-driven termination.

use converse_charm::{Chare, ChareId, Charm};
use converse_core::{csd_scheduler, Message, Pe};
use converse_ldb::LdbPolicy;
use converse_msg::pack::{Packer, Unpacker};
use converse_msg::Priority;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A chare that accumulates values and reports its total when asked.
struct Accumulator {
    total: i64,
    report_to: usize,
    report_h: u32,
}

const EP_ADD: u32 = 0;
const EP_REPORT: u32 = 1;

impl Chare for Accumulator {
    fn new(pe: &Pe, self_id: ChareId, payload: &[u8]) -> Self {
        let mut u = Unpacker::new(payload);
        let report_to = u.usize().unwrap();
        let report_h = u.u32().unwrap();
        let announce_h = u.u32().unwrap();
        // Mail our identity to the creator so it can invoke us.
        pe.sync_send_and_free(
            report_to,
            Message::new(converse_core::HandlerId(announce_h), &self_id.encode()),
        );
        Accumulator {
            total: 0,
            report_to,
            report_h,
        }
    }

    fn entry(&mut self, pe: &Pe, _self_id: ChareId, ep: u32, payload: &[u8]) {
        match ep {
            EP_ADD => {
                let v = i64::from_le_bytes(payload.try_into().unwrap());
                self.total += v;
            }
            EP_REPORT => {
                pe.sync_send_and_free(
                    self.report_to,
                    Message::new(
                        converse_core::HandlerId(self.report_h),
                        &self.total.to_le_bytes(),
                    ),
                );
            }
            _ => panic!("unknown entry {ep}"),
        }
    }
}

#[test]
fn create_invoke_and_report_roundtrip() {
    converse_core::run(4, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Random { seed: 11 });
        let kind = charm.register::<Accumulator>();
        let id_slot = pe.local(|| parking_lot::Mutex::new(None::<ChareId>));
        let result = pe.local(|| parking_lot::Mutex::new(None::<i64>));
        let id2 = id_slot.clone();
        let announce = pe.register_handler(move |_pe, msg| {
            *id2.lock() = ChareId::decode(msg.payload());
        });
        let r2 = result.clone();
        let report = pe.register_handler(move |pe, msg| {
            *r2.lock() = Some(i64::from_le_bytes(msg.payload().try_into().unwrap()));
            converse_core::csd_exit_scheduler(pe);
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let payload = Packer::new()
                .usize(0)
                .u32(report.0)
                .u32(announce.0)
                .finish();
            charm.create(pe, kind, &payload, Priority::None);
            // Pump until the chare announces itself.
            converse_core::schedule_until(pe, || id_slot.lock().is_some());
            let id = id_slot.lock().unwrap();
            for v in [3i64, 4, 5] {
                charm.send(pe, id, EP_ADD, &v.to_le_bytes(), Priority::None);
            }
            charm.send(pe, id, EP_REPORT, b"", Priority::None);
            converse_core::schedule_until(pe, || result.lock().is_some());
            assert_eq!(result.lock().unwrap(), 12);
            charm.exit_all(pe);
            csd_scheduler(pe, -1);
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
}

/// Fibonacci with chares: the classic Charm demo. fib(n) spawns fib(n-1)
/// and fib(n-2) as new chares and sums their responses.
struct Fib {
    #[allow(dead_code)]
    n: u64,
    pending: u8,
    acc: u64,
    parent: Option<ChareId>,
    root_report: Option<u32>,
    #[allow(dead_code)]
    kind: u32,
}

const EP_RESULT: u32 = 0;

impl Chare for Fib {
    fn new(pe: &Pe, self_id: ChareId, payload: &[u8]) -> Self {
        let mut u = Unpacker::new(payload);
        let n = u.u64().unwrap();
        let kind = u.u32().unwrap();
        let has_parent = u.u8().unwrap() == 1;
        let (parent, root_report) = if has_parent {
            (ChareId::decode(u.raw(16).unwrap()), None)
        } else {
            (None, Some(u.u32().unwrap()))
        };
        let mut me = Fib {
            n,
            pending: 0,
            acc: 0,
            parent,
            root_report,
            kind,
        };
        if n < 2 {
            me.finish(pe, n, self_id);
        } else {
            let charm = Charm::get(pe);
            for k in [n - 1, n - 2] {
                let child_payload = Packer::new()
                    .u64(k)
                    .u32(kind)
                    .u8(1)
                    .raw(&self_id.encode())
                    .finish();
                charm.create(
                    pe,
                    converse_charm::ChareKind(kind),
                    &child_payload,
                    Priority::None,
                );
                me.pending += 1;
            }
        }
        me
    }

    fn entry(&mut self, pe: &Pe, self_id: ChareId, ep: u32, payload: &[u8]) {
        assert_eq!(ep, EP_RESULT);
        self.acc += u64::from_le_bytes(payload.try_into().unwrap());
        self.pending -= 1;
        if self.pending == 0 {
            let total = self.acc;
            self.finish(pe, total, self_id);
        }
    }
}

impl Fib {
    fn finish(&mut self, pe: &Pe, value: u64, _self_id: ChareId) {
        let charm = Charm::get(pe);
        match (self.parent, self.root_report) {
            (Some(p), _) => charm.send(pe, p, EP_RESULT, &value.to_le_bytes(), Priority::None),
            (None, Some(h)) => pe.sync_send_and_free(
                0,
                Message::new(converse_core::HandlerId(h), &value.to_le_bytes()),
            ),
            _ => unreachable!(),
        }
    }
}

#[test]
fn fibonacci_tree_of_chares_across_pes() {
    converse_core::run(4, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Random { seed: 5 });
        let kind = charm.register::<Fib>();
        let result = pe.local(|| parking_lot::Mutex::new(None::<u64>));
        let r2 = result.clone();
        let report = pe.register_handler(move |pe, msg| {
            *r2.lock() = Some(u64::from_le_bytes(msg.payload().try_into().unwrap()));
            Charm::get(pe).exit_all(pe);
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let payload = Packer::new()
                .u64(10)
                .u32(kind.0)
                .u8(0)
                .u32(report.0)
                .finish();
            charm.create(pe, kind, &payload, Priority::None);
        }
        csd_scheduler(pe, -1);
        pe.barrier();
        if pe.my_pe() == 0 {
            assert_eq!(result.lock().unwrap(), 55, "fib(10)");
        }
        // The tree was spread over the machine, not just PE 0.
        let created = charm.chares_created.load(Ordering::Relaxed);
        pe.cmi_printf(format!("PE {} created {} chares", pe.my_pe(), created));
    });
}

#[test]
fn priorities_order_entry_execution() {
    // One chare, three invocations with priorities: execution follows
    // priority order because invocations pass through the Csd queue.
    converse_core::run(1, |pe| {
        struct Recorder {
            log: Arc<parking_lot::Mutex<Vec<i32>>>,
        }
        static LOG: std::sync::OnceLock<Arc<parking_lot::Mutex<Vec<i32>>>> =
            std::sync::OnceLock::new();
        impl Chare for Recorder {
            fn new(_pe: &Pe, _id: ChareId, _payload: &[u8]) -> Self {
                Recorder {
                    log: LOG.get().unwrap().clone(),
                }
            }
            fn entry(&mut self, _pe: &Pe, _id: ChareId, _ep: u32, payload: &[u8]) {
                self.log
                    .lock()
                    .push(i32::from_le_bytes(payload.try_into().unwrap()));
            }
        }
        let log = LOG
            .get_or_init(|| Arc::new(parking_lot::Mutex::new(Vec::new())))
            .clone();
        log.lock().clear();
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register::<Recorder>();
        charm.create(pe, kind, b"", Priority::None);
        csd_scheduler(pe, 1); // construct it (slot 1 on this PE)
        let id = ChareId { pe: 0, slot: 1 };
        for v in [4i32, -9, 0] {
            charm.send(pe, id, 0, &v.to_le_bytes(), Priority::Int(v));
        }
        // Each send needs two scheduler steps: first-handler (retarget +
        // enqueue) then execution; deliver everything.
        converse_core::csd_scheduler_until_idle(pe);
        assert_eq!(*log.lock(), vec![-9, 0, 4]);
    });
}

#[test]
fn destroy_frees_slot() {
    converse_core::run(1, |pe| {
        struct Noop;
        impl Chare for Noop {
            fn new(_pe: &Pe, _id: ChareId, _p: &[u8]) -> Self {
                Noop
            }
            fn entry(&mut self, _pe: &Pe, _id: ChareId, _ep: u32, _p: &[u8]) {}
        }
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register::<Noop>();
        charm.create(pe, kind, b"", Priority::None);
        csd_scheduler(pe, 1);
        assert_eq!(charm.local_chares(), 1);
        let id = ChareId { pe: 0, slot: 1 };
        assert!(charm.destroy(pe, id));
        assert!(!charm.destroy(pe, id));
        assert_eq!(charm.local_chares(), 0);
    });
}

#[test]
fn quiescence_fires_after_fib_completes() {
    let fired = Arc::new(AtomicU64::new(0));
    let f2 = fired.clone();
    converse_core::run(2, move |pe| {
        let charm = Charm::install(pe, LdbPolicy::Random { seed: 3 });
        let kind = charm.register::<Fib>();
        let result = pe.local(|| parking_lot::Mutex::new(None::<u64>));
        let r2 = result.clone();
        let report = pe.register_handler(move |_pe, msg| {
            *r2.lock() = Some(u64::from_le_bytes(msg.payload().try_into().unwrap()));
        });
        let f3 = f2.clone();
        let quiet = pe.register_handler(move |pe, _| {
            f3.fetch_add(1, Ordering::SeqCst);
            Charm::get(pe).exit_all(pe);
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let payload = Packer::new()
                .u64(8)
                .u32(kind.0)
                .u8(0)
                .u32(report.0)
                .finish();
            charm.create(pe, kind, &payload, Priority::None);
            charm.quiescence().start(pe, Message::new(quiet, b""));
        }
        csd_scheduler(pe, -1);
        pe.barrier();
        if pe.my_pe() == 0 {
            // Quiescence implies the result had already been reported.
            assert_eq!(result.lock().unwrap(), 21, "fib(8)");
        }
    });
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}
