//! Chare migration (the paper's §3.3.1 footnote, implemented): pack the
//! object, ship it, hold in-flight invocations, forward forever after.

use converse_charm::{Chare, ChareId, Charm, MigratableChare};
use converse_core::{csd_scheduler, run, Message, Pe};
use converse_ldb::LdbPolicy;
use converse_msg::Priority;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A counter chare that remembers its total and which PEs it executed
/// on; migratable by serializing the total.
struct Roamer {
    total: i64,
    report_to: u32,
}

struct PeTrail(parking_lot::Mutex<Vec<usize>>);

impl Chare for Roamer {
    fn new(_pe: &Pe, _id: ChareId, payload: &[u8]) -> Self {
        Roamer {
            total: 0,
            report_to: u32::from_le_bytes(payload[..4].try_into().unwrap()),
        }
    }
    fn entry(&mut self, pe: &Pe, _id: ChareId, ep: u32, payload: &[u8]) {
        match ep {
            0 => {
                self.total += i64::from_le_bytes(payload.try_into().unwrap());
                pe.local(|| PeTrail(parking_lot::Mutex::new(Vec::new())))
                    .0
                    .lock()
                    .push(pe.my_pe());
            }
            1 => {
                pe.sync_send_and_free(
                    0,
                    Message::new(
                        converse_core::HandlerId(self.report_to),
                        &self.total.to_le_bytes(),
                    ),
                );
            }
            _ => unreachable!(),
        }
    }
}

impl MigratableChare for Roamer {
    fn pack(&self) -> Vec<u8> {
        let mut out = self.total.to_le_bytes().to_vec();
        out.extend_from_slice(&self.report_to.to_le_bytes());
        out
    }
    fn unpack(_pe: &Pe, _new_id: ChareId, data: &[u8]) -> Self {
        Roamer {
            total: i64::from_le_bytes(data[..8].try_into().unwrap()),
            report_to: u32::from_le_bytes(data[8..12].try_into().unwrap()),
        }
    }
}

#[test]
fn state_survives_migration_and_messages_forward() {
    let seen_on: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
    let s2 = seen_on.clone();
    run(3, move |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_migratable::<Roamer>();
        let result = pe.local(|| parking_lot::Mutex::new(None::<i64>));
        let r2 = result.clone();
        let report = pe.register_handler(move |pe, msg| {
            *r2.lock() = Some(i64::from_le_bytes(msg.payload().try_into().unwrap()));
            Charm::get(pe).exit_all(pe);
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            charm.create(pe, kind, &report.0.to_le_bytes(), Priority::None);
            // Construct locally (Direct policy). A peer's barrier
            // traffic can race into the mailbox, so wait for the object
            // itself rather than counting scheduler steps.
            converse_core::schedule_until(pe, || charm.local_chares() == 1);
            let id = ChareId { pe: 0, slot: 1 };
            charm.send(pe, id, 0, &10i64.to_le_bytes(), Priority::None);
            converse_core::csd_scheduler_until_idle(pe);

            // Move it to PE 2, then keep sending to the OLD id: the
            // messages must forward and accumulate on the new home.
            assert!(charm.migrate(pe, id, 2));
            for v in [20i64, 30] {
                charm.send(pe, id, 0, &v.to_le_bytes(), Priority::None);
            }
            charm.send(pe, id, 1, b"", Priority::None); // report
            csd_scheduler(pe, -1);
            assert_eq!(result.lock().unwrap(), 60, "10 local + 20 + 30 forwarded");
            // The old slot is now a forwarding stub, not a live chare.
            assert_eq!(charm.local_chares(), 0);
            let home = charm.current_home(pe, id);
            assert_eq!(home.pe, 2, "forwarding entry points at the new home");
        } else {
            csd_scheduler(pe, -1);
            if pe.my_pe() == 2 {
                assert_eq!(charm.local_chares(), 1, "the roamer lives here now");
            }
        }
        if let Some(trail) = pe.try_local::<PeTrail>() {
            s2[pe.my_pe()].store(trail.0.lock().len() as u64, Ordering::SeqCst);
        }
        pe.barrier();
    });
    assert_eq!(
        seen_on[0].load(Ordering::SeqCst),
        1,
        "one entry ran on PE 0"
    );
    assert_eq!(
        seen_on[2].load(Ordering::SeqCst),
        2,
        "two entries ran on PE 2"
    );
}

#[test]
fn migrate_nonmigratable_kind_is_refused() {
    struct Plain;
    impl Chare for Plain {
        fn new(_pe: &Pe, _id: ChareId, _p: &[u8]) -> Self {
            Plain
        }
        fn entry(&mut self, _pe: &Pe, _id: ChareId, _ep: u32, _p: &[u8]) {}
    }
    run(2, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register::<Plain>();
        pe.barrier();
        if pe.my_pe() == 0 {
            charm.create(pe, kind, b"", Priority::None);
            converse_core::schedule_until(pe, || charm.local_chares() == 1);
            let id = ChareId { pe: 0, slot: 1 };
            assert!(!charm.migrate(pe, id, 1), "plain kinds cannot migrate");
            assert_eq!(charm.local_chares(), 1, "object untouched after refusal");
        }
        pe.barrier();
    });
}

#[test]
fn migrate_remote_or_missing_is_refused() {
    run(2, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let _ = charm.register_migratable::<Roamer>();
        pe.barrier();
        if pe.my_pe() == 0 {
            // Remote id.
            assert!(!charm.migrate(pe, ChareId { pe: 1, slot: 1 }, 0));
            // Missing slot.
            assert!(!charm.migrate(pe, ChareId { pe: 0, slot: 99 }, 1));
            // Self-migration no-op "succeeds".
            assert!(charm.migrate(pe, ChareId { pe: 0, slot: 99 }, 0));
        }
        pe.barrier();
    });
}

#[test]
fn chained_migration_forwards_through_hops() {
    // 0 → 1 → 2: a sender still using the original id must reach the
    // object through two forwarding stubs.
    run(3, |pe| {
        let charm = Charm::install(pe, LdbPolicy::Direct);
        let kind = charm.register_migratable::<Roamer>();
        let result = pe.local(|| parking_lot::Mutex::new(None::<i64>));
        let r2 = result.clone();
        let report = pe.register_handler(move |pe, msg| {
            *r2.lock() = Some(i64::from_le_bytes(msg.payload().try_into().unwrap()));
            Charm::get(pe).exit_all(pe);
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            charm.create(pe, kind, &report.0.to_le_bytes(), Priority::None);
            converse_core::schedule_until(pe, || charm.local_chares() == 1);
            let id = ChareId { pe: 0, slot: 1 };
            charm.send(pe, id, 0, &1i64.to_le_bytes(), Priority::None);
            converse_core::csd_scheduler_until_idle(pe);
            // First hop: 0 → 1.
            assert!(charm.migrate(pe, id, 1));
            // Let the ack settle so the stub exists, then message the
            // old id; it forwards to PE 1.
            converse_core::schedule_until(pe, || charm.current_home(pe, id).pe == 1);
            let id_on_1 = charm.current_home(pe, id);
            charm.send(pe, id, 0, &2i64.to_le_bytes(), Priority::None);
            // Second hop: ask PE 1 to migrate it to PE 2 by migrating
            // from here is impossible (not local) — instead PE 1 does it
            // below; signal via a readonly.
            charm.publish_readonly(pe, 1, &id_on_1.encode());
            // Wait until the chain resolves to PE 2, then send + report.
            converse_core::schedule_until(pe, || {
                // Probe: ask PE1-side home... we can't see PE1's tables;
                // poll a readonly PE1 publishes after its migrate.
                charm.readonly(2).is_some()
            });
            charm.send(pe, id, 0, &4i64.to_le_bytes(), Priority::None);
            charm.send(pe, id, 1, b"", Priority::None);
            csd_scheduler(pe, -1);
            assert_eq!(result.lock().unwrap(), 7, "1 + 2 + 4 through two hops");
        } else if pe.my_pe() == 1 {
            let raw = charm.readonly_wait(pe, 1);
            let id_here = ChareId::decode(&raw).unwrap();
            // The object may still be in flight toward us; wait until it
            // is live locally, then push it to PE 2.
            converse_core::schedule_until(pe, || charm.local_chares() == 1);
            assert!(charm.migrate(pe, id_here, 2));
            converse_core::schedule_until(pe, || charm.current_home(pe, id_here).pe == 2);
            charm.publish_readonly(pe, 2, b"moved");
            csd_scheduler(pe, -1);
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
}
