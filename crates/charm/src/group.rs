//! **Chare groups** (branch-office chares): one representative object on
//! every PE, addressed collectively or per-PE.
//!
//! Charm's group construct is the natural expression of per-processor
//! services (load monitors, caches, reduction clients) in the
//! message-driven world. A group is created by broadcasting its
//! constructor; because every PE derives the same [`GroupId`] from the
//! creator's (PE, sequence) pair, the id is valid machine-wide
//! immediately — creation is asynchronous and fire-and-forget like chare
//! creation, but the handle is known to the creator up front.
//!
//! Invocations go through the scheduler queue with their priority, the
//! same two-handler idiom the point-to-point chare path uses.

use crate::Charm;
use converse_core::csd;
use converse_machine::{HandlerId, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use converse_msg::Priority;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index of a registered group-chare type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupKind(pub u32);

/// Machine-wide identity of a group: derived from (creator PE, creator
/// sequence), so the creator knows it synchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub u64);

impl GroupId {
    fn new(creator: usize, seq: u64) -> GroupId {
        GroupId(((creator as u64) << 40) | seq)
    }
}

/// A per-PE group representative ("branch").
pub trait GroupChare: Send + 'static {
    /// Construct this PE's branch. Runs once on every PE.
    fn new(pe: &Pe, gid: GroupId, payload: &[u8]) -> Self
    where
        Self: Sized;

    /// An asynchronous invocation delivered to this branch.
    fn entry(&mut self, pe: &Pe, gid: GroupId, ep: u32, payload: &[u8]);
}

type GroupCtor = Arc<dyn Fn(&Pe, GroupId, &[u8]) -> Box<dyn GroupChare> + Send + Sync>;

/// Per-PE group runtime state (owned by [`Charm`]).
pub struct GroupState {
    create_h: HandlerId,
    invoke_h: HandlerId,
    exec_h: HandlerId,
    ctors: Mutex<Vec<GroupCtor>>,
    branches: Mutex<HashMap<u64, Option<Box<dyn GroupChare>>>>,
    /// Invocations that raced ahead of their group's create broadcast
    /// (possible for third-party senders); replayed at construction.
    early: Mutex<HashMap<u64, Vec<Message>>>,
    next_seq: AtomicU64,
}

impl GroupState {
    /// Register the group handlers (called from `Charm::install`, fixed
    /// order).
    pub(crate) fn install_handlers(pe: &Pe) -> GroupState {
        let create_h = pe.register_handler(|pe, msg| {
            let charm = Charm::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let gid = GroupId(u.u64().expect("group create: gid"));
            let kind = u.u32().expect("group create: kind");
            let payload = u.bytes().expect("group create: payload");
            charm.groups.construct(pe, gid, GroupKind(kind), payload);
        });
        let exec_h = pe.register_handler(|pe, msg| {
            let charm = Charm::get(pe);
            charm.groups.execute(pe, &msg);
        });
        let invoke_h = pe.register_handler(|pe, mut msg| {
            let charm = Charm::get(pe);
            msg.set_handler(charm.groups.exec_h);
            csd::csd_enqueue_prio(pe, msg);
        });
        GroupState {
            create_h,
            invoke_h,
            exec_h,
            ctors: Mutex::new(Vec::new()),
            branches: Mutex::new(HashMap::new()),
            early: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(1),
        }
    }

    fn construct(&self, pe: &Pe, gid: GroupId, kind: GroupKind, payload: &[u8]) {
        let ctor = self
            .ctors
            .lock()
            .get(kind.0 as usize)
            .cloned()
            .unwrap_or_else(|| panic!("PE {}: unregistered group kind {kind:?}", pe.my_pe()));
        pe.trace_event(converse_trace::Event::ObjectCreate {
            kind: kind.0 | 0x8000_0000,
        });
        let branch = ctor(pe, gid, payload);
        let prev = self.branches.lock().insert(gid.0, Some(branch));
        assert!(
            prev.is_none(),
            "PE {}: group {gid:?} created twice",
            pe.my_pe()
        );
        Charm::get(pe).quiescence().msg_processed(1);
        // Replay any invocations that arrived before the create.
        let early = self.early.lock().remove(&gid.0);
        if let Some(msgs) = early {
            for m in msgs {
                csd::csd_enqueue_prio(pe, m);
            }
        }
    }

    fn execute(&self, pe: &Pe, msg: &Message) {
        let mut u = Unpacker::new(msg.payload());
        let gid = u.u64().expect("group exec: gid");
        let ep = u.u32().expect("group exec: ep");
        let payload = u.bytes().expect("group exec: payload");
        let mut branch = {
            let mut t = self.branches.lock();
            match t.get_mut(&gid) {
                Some(b) => b
                    .take()
                    .unwrap_or_else(|| panic!("PE {}: reentrant group entry on {gid}", pe.my_pe())),
                None => {
                    // A third-party send raced ahead of the create
                    // broadcast: hold it until the branch exists.
                    self.early.lock().entry(gid).or_default().push(msg.clone());
                    return;
                }
            }
        };
        branch.entry(pe, GroupId(gid), ep, payload);
        if let Some(b) = self.branches.lock().get_mut(&gid) {
            *b = Some(branch);
        }
        Charm::get(pe).quiescence().msg_processed(1);
    }

    /// Number of live branches on this PE.
    pub fn local_branches(&self) -> usize {
        self.branches.lock().len()
    }
}

impl Charm {
    /// Register group-chare type `T` (same order on every PE!).
    pub fn register_group<T: GroupChare>(&self) -> GroupKind {
        let mut c = self.groups.ctors.lock();
        c.push(Arc::new(|pe, gid, payload| {
            Box::new(T::new(pe, gid, payload)) as Box<dyn GroupChare>
        }));
        GroupKind((c.len() - 1) as u32)
    }

    /// Create a group: every PE (including this one) constructs a branch
    /// asynchronously. The returned id is usable immediately for sends —
    /// per-(src,dst) FIFO delivery guarantees the create precedes them
    /// at every PE.
    pub fn create_group(&self, pe: &Pe, kind: GroupKind, payload: &[u8]) -> GroupId {
        let seq = self.groups.next_seq.fetch_add(1, Ordering::Relaxed);
        let gid = GroupId::new(pe.my_pe(), seq);
        self.quiescence().msg_created(pe.num_pes() as u64);
        let body = Packer::new().u64(gid.0).u32(kind.0).bytes(payload).finish();
        pe.sync_broadcast_all(&Message::new(self.groups.create_h, &body));
        gid
    }

    /// Invoke entry `ep` on the branch of `gid` living on `target_pe`.
    pub fn send_group(
        &self,
        pe: &Pe,
        gid: GroupId,
        target_pe: usize,
        ep: u32,
        payload: &[u8],
        prio: Priority,
    ) {
        self.quiescence().msg_created(1);
        let body = Packer::new().u64(gid.0).u32(ep).bytes(payload).finish();
        let msg = Message::with_priority(self.groups.invoke_h, &prio, &body);
        pe.sync_send_and_free(target_pe, msg);
    }

    /// Invoke entry `ep` on **every** branch of `gid` (self included).
    pub fn broadcast_group(&self, pe: &Pe, gid: GroupId, ep: u32, payload: &[u8], prio: Priority) {
        self.quiescence().msg_created(pe.num_pes() as u64);
        let body = Packer::new().u64(gid.0).u32(ep).bytes(payload).finish();
        let msg = Message::with_priority(self.groups.invoke_h, &prio, &body);
        pe.sync_broadcast_all(&msg);
    }

    /// Number of live group branches on this PE.
    pub fn local_group_branches(&self) -> usize {
        self.groups.local_branches()
    }
}
