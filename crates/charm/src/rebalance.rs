//! **Quasi-dynamic load balancing** (paper §3.3.1, footnote 2): "after
//! a phase or period of computation has completed, the load and
//! communication patterns in that phase are analyzed, and a new global
//! distribution of entities to processors is derived. After moving the
//! entities to their new destinations …, the computation proceeds to
//! the next stage." The paper scopes this out ("can be implemented on
//! top of Converse as Converse libraries"); this module is that library.
//!
//! [`Charm::rebalance`] is a loosely synchronous phase-boundary call:
//! every PE reports its migratable-object count, every PE derives the
//! same greedy redistribution plan from the identical global view, and
//! each overloaded PE migrates its excess objects to the planned
//! underloaded targets. Message forwarding (the migration machinery)
//! keeps in-flight traffic correct throughout.

use crate::{ChareId, Charm, Slot};
use converse_machine::Pe;

/// What a rebalance pass did on this PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Migratable objects here before the pass.
    pub before: usize,
    /// Objects this PE sent away, with destinations.
    pub moved_out: Vec<(ChareId, usize)>,
    /// Objects the plan routes to this PE (they arrive asynchronously).
    pub expected_in: usize,
}

/// The deterministic greedy plan: source PEs above the ceiling hand
/// excess to destination PEs below the floor, in PE order. Pure so it
/// can be property-tested; every PE computes it identically.
pub fn plan_moves(counts: &[usize]) -> Vec<(usize, usize, usize)> {
    // (from, to, how_many)
    let n = counts.len();
    let total: usize = counts.iter().sum();
    let base = total / n;
    let extra = total % n;
    // Target for PE i: base (+1 for the first `extra` PEs) — matches the
    // block convention used elsewhere.
    let target = |i: usize| base + usize::from(i < extra);
    let mut surplus: Vec<(usize, usize)> = Vec::new();
    let mut deficit: Vec<(usize, usize)> = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        let t = target(i);
        match c.cmp(&t) {
            std::cmp::Ordering::Greater => surplus.push((i, c - t)),
            std::cmp::Ordering::Less => deficit.push((i, t - c)),
            std::cmp::Ordering::Equal => {}
        }
    }
    let mut moves = Vec::new();
    let mut di = 0;
    for (from, mut s) in surplus {
        while s > 0 && di < deficit.len() {
            let (to, d) = deficit[di];
            let k = s.min(d);
            moves.push((from, to, k));
            s -= k;
            if d == k {
                di += 1;
            } else {
                deficit[di] = (to, d - k);
            }
        }
    }
    moves
}

/// The measurement-driven plan: donors are PEs whose live *backlog*
/// (mailbox depth + run-queue depth) sits above the machine mean; each
/// sheds migratable objects in proportion to its overload share, and
/// receivers below the mean absorb them in proportion to their
/// headroom. Pure and deterministic — every PE derives the same moves
/// from the same `(counts, backlogs)` view. Unlike [`plan_moves`],
/// which equalizes object *counts*, this equalizes observed *load*:
/// a PE whose few objects are expensive still donates.
pub fn plan_moves_measured(counts: &[usize], backlogs: &[u64]) -> Vec<(usize, usize, usize)> {
    let n = counts.len().min(backlogs.len());
    if n < 2 {
        return Vec::new();
    }
    let total: u64 = backlogs[..n].iter().sum();
    let mean = total / n as u64;
    let mut surplus: Vec<(usize, usize)> = Vec::new(); // (pe, objects to shed)
    let mut under: Vec<(usize, u64)> = Vec::new(); // (pe, load headroom)
    for i in 0..n {
        let b = backlogs[i];
        if b > mean && counts[i] > 0 {
            let give = ((counts[i] as u64).saturating_mul(b - mean) / b) as usize;
            if give > 0 {
                surplus.push((i, give));
            }
        } else if b < mean {
            under.push((i, mean - b));
        }
    }
    let total_give: usize = surplus.iter().map(|(_, g)| *g).sum();
    let total_under: u64 = under.iter().map(|(_, u)| *u).sum();
    if total_give == 0 || total_under == 0 {
        return Vec::new();
    }
    // Receiver quotas proportional to headroom; the rounding leftover
    // lands one object at a time in PE order.
    let mut deficit: Vec<(usize, usize)> = under
        .iter()
        .map(|(p, u)| (*p, (total_give as u64 * u / total_under) as usize))
        .collect();
    let mut leftover = total_give - deficit.iter().map(|(_, d)| *d).sum::<usize>();
    for d in deficit.iter_mut() {
        if leftover == 0 {
            break;
        }
        d.1 += 1;
        leftover -= 1;
    }
    // Same greedy matching as `plan_moves`, in PE order.
    let mut moves = Vec::new();
    let mut di = 0;
    for (from, mut s) in surplus {
        while s > 0 && di < deficit.len() {
            let (to, d) = deficit[di];
            if d == 0 {
                di += 1;
                continue;
            }
            let k = s.min(d);
            moves.push((from, to, k));
            s -= k;
            if d == k {
                di += 1;
            } else {
                deficit[di] = (to, d - k);
            }
        }
    }
    moves
}

impl Charm {
    /// Count the live migratable objects on this PE.
    pub fn local_migratable(&self) -> usize {
        let migrators = self.migrators.lock();
        self.objects
            .lock()
            .values()
            .filter(|s| matches!(s, Slot::Live { kind, .. } if migrators.contains_key(kind)))
            .count()
    }

    /// Loosely synchronous rebalancing pass: **every PE must call this
    /// at the same phase boundary.** Exchanges load counts, derives the
    /// shared greedy plan, and issues the migrations this PE owes.
    /// Returns what happened locally; incoming objects land
    /// asynchronously (pump the scheduler or use the follow-up barrier
    /// of your phase structure before relying on the new distribution).
    pub fn rebalance(&self, pe: &Pe) -> RebalanceReport {
        // 1. Global load picture via a concat allgather.
        let mut contrib = Vec::with_capacity(16);
        contrib.extend_from_slice(&(pe.my_pe() as u64).to_le_bytes());
        contrib.extend_from_slice(&(self.local_migratable() as u64).to_le_bytes());
        let all = pe.allreduce_bytes(contrib, self.concat_combiner);
        let mut counts = vec![0usize; pe.num_pes()];
        for chunk in all.chunks(16) {
            let idx = u64::from_le_bytes(chunk[..8].try_into().expect("idx")) as usize;
            counts[idx] = u64::from_le_bytes(chunk[8..16].try_into().expect("count")) as usize;
        }
        let before = counts[pe.my_pe()];

        // 2. The shared plan.
        let moves = plan_moves(&counts);
        let expected_in = moves
            .iter()
            .filter(|(_, to, _)| *to == pe.my_pe())
            .map(|(_, _, k)| k)
            .sum();

        // 3. Execute this PE's outgoing moves: pick the highest-slot
        //    migratable objects (deterministic, stable under concurrent
        //    arrivals which get fresh higher slots).
        let mut moved_out = Vec::new();
        for (from, to, k) in moves {
            if from != pe.my_pe() {
                continue;
            }
            let victims: Vec<u64> = {
                let migrators = self.migrators.lock();
                let t = self.objects.lock();
                let mut slots: Vec<u64> = t
                    .iter()
                    .filter(|(_, s)| {
                        matches!(s, Slot::Live { kind, .. } if migrators.contains_key(kind))
                    })
                    .map(|(slot, _)| *slot)
                    .collect();
                slots.sort_unstable_by(|a, b| b.cmp(a));
                slots.truncate(k);
                slots
            };
            assert_eq!(victims.len(), k, "plan derived from our own reported count");
            for slot in victims {
                let id = ChareId {
                    pe: pe.my_pe(),
                    slot,
                };
                let ok = self.migrate(pe, id, to);
                assert!(ok, "victim was live and migratable");
                moved_out.push((id, to));
            }
        }
        RebalanceReport {
            before,
            moved_out,
            expected_in,
        }
    }

    /// [`Charm::rebalance`] followed by a wait until this PE's live
    /// migratable population matches the plan — the full quasi-dynamic
    /// phase boundary. Collective.
    pub fn rebalance_sync(&self, pe: &Pe) -> RebalanceReport {
        let report = self.rebalance(pe);
        let want = report.before - report.moved_out.len() + report.expected_in;
        converse_core::schedule_until(pe, || self.local_migratable() == want);
        pe.barrier();
        report
    }

    /// Measurement-based rebalancing pass (`LdbPolicy::Measured`'s
    /// phase-boundary sibling): like [`Charm::rebalance`] but the plan
    /// is driven by each PE's live backlog — mailbox depth plus
    /// run-queue depth — rather than by object counts alone, via
    /// [`plan_moves_measured`]. Loosely synchronous; every PE must call
    /// it at the same phase boundary.
    pub fn rebalance_measured(&self, pe: &Pe) -> RebalanceReport {
        // 1. Global (count, backlog) picture via a concat allgather.
        let backlog = (pe.queue_len() + pe.inbound_pending()) as u64;
        let mut contrib = Vec::with_capacity(24);
        contrib.extend_from_slice(&(pe.my_pe() as u64).to_le_bytes());
        contrib.extend_from_slice(&(self.local_migratable() as u64).to_le_bytes());
        contrib.extend_from_slice(&backlog.to_le_bytes());
        let all = pe.allreduce_bytes(contrib, self.concat_combiner);
        let mut counts = vec![0usize; pe.num_pes()];
        let mut backlogs = vec![0u64; pe.num_pes()];
        for chunk in all.chunks(24) {
            let idx = u64::from_le_bytes(chunk[..8].try_into().expect("idx")) as usize;
            counts[idx] = u64::from_le_bytes(chunk[8..16].try_into().expect("count")) as usize;
            backlogs[idx] = u64::from_le_bytes(chunk[16..24].try_into().expect("backlog"));
        }
        let before = counts[pe.my_pe()];

        // 2. The shared measurement-driven plan.
        let moves = plan_moves_measured(&counts, &backlogs);
        let expected_in = moves
            .iter()
            .filter(|(_, to, _)| *to == pe.my_pe())
            .map(|(_, _, k)| k)
            .sum();

        // 3. Execute this PE's outgoing moves exactly as `rebalance`
        //    does: highest-slot migratable victims first.
        let mut moved_out = Vec::new();
        for (from, to, k) in moves {
            if from != pe.my_pe() {
                continue;
            }
            let victims: Vec<u64> = {
                let migrators = self.migrators.lock();
                let t = self.objects.lock();
                let mut slots: Vec<u64> = t
                    .iter()
                    .filter(|(_, s)| {
                        matches!(s, Slot::Live { kind, .. } if migrators.contains_key(kind))
                    })
                    .map(|(slot, _)| *slot)
                    .collect();
                slots.sort_unstable_by(|a, b| b.cmp(a));
                slots.truncate(k);
                slots
            };
            assert_eq!(victims.len(), k, "plan sheds at most our reported count");
            for slot in victims {
                let id = ChareId {
                    pe: pe.my_pe(),
                    slot,
                };
                let ok = self.migrate(pe, id, to);
                assert!(ok, "victim was live and migratable");
                moved_out.push((id, to));
            }
        }
        RebalanceReport {
            before,
            moved_out,
            expected_in,
        }
    }

    /// [`Charm::rebalance_measured`] followed by a wait until this PE's
    /// live migratable population matches the plan. Collective.
    pub fn rebalance_sync_measured(&self, pe: &Pe) -> RebalanceReport {
        let report = self.rebalance_measured(pe);
        let want = report.before - report.moved_out.len() + report.expected_in;
        converse_core::schedule_until(pe, || self.local_migratable() == want);
        pe.barrier();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::{plan_moves, plan_moves_measured};

    fn apply(counts: &[usize], moves: &[(usize, usize, usize)]) -> Vec<usize> {
        let mut out = counts.to_vec();
        for (from, to, k) in moves {
            assert!(out[*from] >= *k, "move exceeds supply");
            out[*from] -= k;
            out[*to] += k;
        }
        out
    }

    #[test]
    fn balances_simple_imbalance() {
        let counts = [10, 0, 0, 2];
        let after = apply(&counts, &plan_moves(&counts));
        assert_eq!(after, vec![3, 3, 3, 3]);
    }

    #[test]
    fn uneven_totals_use_block_targets() {
        let counts = [7, 0, 0];
        let after = apply(&counts, &plan_moves(&counts));
        assert_eq!(after, vec![3, 2, 2]);
    }

    #[test]
    fn balanced_input_is_a_noop() {
        assert!(plan_moves(&[2, 2, 2]).is_empty());
        assert!(plan_moves(&[0, 0]).is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let counts = [5, 1, 9, 0, 3];
        assert_eq!(plan_moves(&counts), plan_moves(&counts));
    }

    #[test]
    fn measured_plan_moves_off_the_hot_pe() {
        // PE0 holds 8 objects and nearly all the backlog; the others are
        // idle. The plan sheds from PE0 only, proportional to overload.
        let counts = [8, 2, 2, 2];
        let backlogs = [80, 0, 0, 0];
        let moves = plan_moves_measured(&counts, &backlogs);
        assert!(!moves.is_empty());
        let shed: usize = moves
            .iter()
            .filter(|(from, _, _)| *from == 0)
            .map(|(_, _, k)| k)
            .sum();
        assert_eq!(shed, moves.iter().map(|(_, _, k)| k).sum::<usize>());
        // mean = 20, give = 8 * 60 / 80 = 6.
        assert_eq!(shed, 6);
        // Conservation + supply: applying the plan never overdraws.
        let after = apply(&counts, &moves);
        assert_eq!(after.iter().sum::<usize>(), counts.iter().sum::<usize>());
        assert_eq!(after[0], 2);
    }

    #[test]
    fn measured_plan_is_a_noop_when_load_is_flat() {
        assert!(plan_moves_measured(&[3, 3, 3], &[10, 10, 10]).is_empty());
        // Overloaded PE with nothing migratable cannot donate.
        assert!(plan_moves_measured(&[0, 4], &[100, 0]).is_empty());
        // Degenerate sizes.
        assert!(plan_moves_measured(&[5], &[9]).is_empty());
        assert!(plan_moves_measured(&[], &[]).is_empty());
    }

    #[test]
    fn measured_plan_splits_among_receivers_by_headroom() {
        // PE0 overloaded; PE1 has more headroom than PE2, so it should
        // receive at least as much.
        let counts = [10, 0, 0];
        let backlogs = [90, 0, 30];
        let moves = plan_moves_measured(&counts, &backlogs);
        let to1: usize = moves.iter().filter(|(_, t, _)| *t == 1).map(|m| m.2).sum();
        let to2: usize = moves.iter().filter(|(_, t, _)| *t == 2).map(|m| m.2).sum();
        assert!(to1 >= to2, "{moves:?}");
        assert!(to1 + to2 > 0);
        let after = apply(&counts, &moves);
        assert_eq!(after.iter().sum::<usize>(), 10);
    }

    #[test]
    fn measured_plan_is_deterministic() {
        let counts = [5, 1, 9, 0, 3];
        let backlogs = [40, 2, 77, 0, 11];
        assert_eq!(
            plan_moves_measured(&counts, &backlogs),
            plan_moves_measured(&counts, &backlogs)
        );
    }

    #[test]
    fn any_distribution_ends_balanced() {
        for counts in [vec![1, 2, 3, 4], vec![100, 0], vec![0, 0, 50], vec![9]] {
            let n = counts.len();
            let total: usize = counts.iter().sum();
            let after = apply(&counts, &plan_moves(&counts));
            for (i, c) in after.iter().enumerate() {
                let base = total / n + usize::from(i < total % n);
                assert_eq!(*c, base, "{counts:?} → {after:?}");
            }
        }
    }
}
