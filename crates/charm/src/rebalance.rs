//! **Quasi-dynamic load balancing** (paper §3.3.1, footnote 2): "after
//! a phase or period of computation has completed, the load and
//! communication patterns in that phase are analyzed, and a new global
//! distribution of entities to processors is derived. After moving the
//! entities to their new destinations …, the computation proceeds to
//! the next stage." The paper scopes this out ("can be implemented on
//! top of Converse as Converse libraries"); this module is that library.
//!
//! [`Charm::rebalance`] is a loosely synchronous phase-boundary call:
//! every PE reports its migratable-object count, every PE derives the
//! same greedy redistribution plan from the identical global view, and
//! each overloaded PE migrates its excess objects to the planned
//! underloaded targets. Message forwarding (the migration machinery)
//! keeps in-flight traffic correct throughout.

use crate::{ChareId, Charm, Slot};
use converse_machine::Pe;

/// What a rebalance pass did on this PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Migratable objects here before the pass.
    pub before: usize,
    /// Objects this PE sent away, with destinations.
    pub moved_out: Vec<(ChareId, usize)>,
    /// Objects the plan routes to this PE (they arrive asynchronously).
    pub expected_in: usize,
}

/// The deterministic greedy plan: source PEs above the ceiling hand
/// excess to destination PEs below the floor, in PE order. Pure so it
/// can be property-tested; every PE computes it identically.
pub fn plan_moves(counts: &[usize]) -> Vec<(usize, usize, usize)> {
    // (from, to, how_many)
    let n = counts.len();
    let total: usize = counts.iter().sum();
    let base = total / n;
    let extra = total % n;
    // Target for PE i: base (+1 for the first `extra` PEs) — matches the
    // block convention used elsewhere.
    let target = |i: usize| base + usize::from(i < extra);
    let mut surplus: Vec<(usize, usize)> = Vec::new();
    let mut deficit: Vec<(usize, usize)> = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        let t = target(i);
        match c.cmp(&t) {
            std::cmp::Ordering::Greater => surplus.push((i, c - t)),
            std::cmp::Ordering::Less => deficit.push((i, t - c)),
            std::cmp::Ordering::Equal => {}
        }
    }
    let mut moves = Vec::new();
    let mut di = 0;
    for (from, mut s) in surplus {
        while s > 0 && di < deficit.len() {
            let (to, d) = deficit[di];
            let k = s.min(d);
            moves.push((from, to, k));
            s -= k;
            if d == k {
                di += 1;
            } else {
                deficit[di] = (to, d - k);
            }
        }
    }
    moves
}

impl Charm {
    /// Count the live migratable objects on this PE.
    pub fn local_migratable(&self) -> usize {
        let migrators = self.migrators.lock();
        self.objects
            .lock()
            .values()
            .filter(|s| matches!(s, Slot::Live { kind, .. } if migrators.contains_key(kind)))
            .count()
    }

    /// Loosely synchronous rebalancing pass: **every PE must call this
    /// at the same phase boundary.** Exchanges load counts, derives the
    /// shared greedy plan, and issues the migrations this PE owes.
    /// Returns what happened locally; incoming objects land
    /// asynchronously (pump the scheduler or use the follow-up barrier
    /// of your phase structure before relying on the new distribution).
    pub fn rebalance(&self, pe: &Pe) -> RebalanceReport {
        // 1. Global load picture via a concat allgather.
        let mut contrib = Vec::with_capacity(16);
        contrib.extend_from_slice(&(pe.my_pe() as u64).to_le_bytes());
        contrib.extend_from_slice(&(self.local_migratable() as u64).to_le_bytes());
        let all = pe.allreduce_bytes(contrib, self.concat_combiner);
        let mut counts = vec![0usize; pe.num_pes()];
        for chunk in all.chunks(16) {
            let idx = u64::from_le_bytes(chunk[..8].try_into().expect("idx")) as usize;
            counts[idx] = u64::from_le_bytes(chunk[8..16].try_into().expect("count")) as usize;
        }
        let before = counts[pe.my_pe()];

        // 2. The shared plan.
        let moves = plan_moves(&counts);
        let expected_in = moves
            .iter()
            .filter(|(_, to, _)| *to == pe.my_pe())
            .map(|(_, _, k)| k)
            .sum();

        // 3. Execute this PE's outgoing moves: pick the highest-slot
        //    migratable objects (deterministic, stable under concurrent
        //    arrivals which get fresh higher slots).
        let mut moved_out = Vec::new();
        for (from, to, k) in moves {
            if from != pe.my_pe() {
                continue;
            }
            let victims: Vec<u64> = {
                let migrators = self.migrators.lock();
                let t = self.objects.lock();
                let mut slots: Vec<u64> = t
                    .iter()
                    .filter(|(_, s)| {
                        matches!(s, Slot::Live { kind, .. } if migrators.contains_key(kind))
                    })
                    .map(|(slot, _)| *slot)
                    .collect();
                slots.sort_unstable_by(|a, b| b.cmp(a));
                slots.truncate(k);
                slots
            };
            assert_eq!(victims.len(), k, "plan derived from our own reported count");
            for slot in victims {
                let id = ChareId {
                    pe: pe.my_pe(),
                    slot,
                };
                let ok = self.migrate(pe, id, to);
                assert!(ok, "victim was live and migratable");
                moved_out.push((id, to));
            }
        }
        RebalanceReport {
            before,
            moved_out,
            expected_in,
        }
    }

    /// [`Charm::rebalance`] followed by a wait until this PE's live
    /// migratable population matches the plan — the full quasi-dynamic
    /// phase boundary. Collective.
    pub fn rebalance_sync(&self, pe: &Pe) -> RebalanceReport {
        let report = self.rebalance(pe);
        let want = report.before - report.moved_out.len() + report.expected_in;
        converse_core::schedule_until(pe, || self.local_migratable() == want);
        pe.barrier();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::plan_moves;

    fn apply(counts: &[usize], moves: &[(usize, usize, usize)]) -> Vec<usize> {
        let mut out = counts.to_vec();
        for (from, to, k) in moves {
            assert!(out[*from] >= *k, "move exceeds supply");
            out[*from] -= k;
            out[*to] += k;
        }
        out
    }

    #[test]
    fn balances_simple_imbalance() {
        let counts = [10, 0, 0, 2];
        let after = apply(&counts, &plan_moves(&counts));
        assert_eq!(after, vec![3, 3, 3, 3]);
    }

    #[test]
    fn uneven_totals_use_block_targets() {
        let counts = [7, 0, 0];
        let after = apply(&counts, &plan_moves(&counts));
        assert_eq!(after, vec![3, 2, 2]);
    }

    #[test]
    fn balanced_input_is_a_noop() {
        assert!(plan_moves(&[2, 2, 2]).is_empty());
        assert!(plan_moves(&[0, 0]).is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let counts = [5, 1, 9, 0, 3];
        assert_eq!(plan_moves(&counts), plan_moves(&counts));
    }

    #[test]
    fn any_distribution_ends_balanced() {
        for counts in [vec![1, 2, 3, 4], vec![100, 0], vec![0, 0, 50], vec![9]] {
            let n = counts.len();
            let total: usize = counts.iter().sum();
            let after = apply(&counts, &plan_moves(&counts));
            for (i, c) in after.iter().enumerate() {
                let base = total / n + usize::from(i < total % n);
                assert_eq!(*c, base, "{counts:?} → {after:?}");
            }
        }
    }
}
