//! A miniature **Charm-style message-driven object runtime** on Converse.
//!
//! The paper's second concurrency category (§2.1): "Concurrent
//! object-oriented languages such as Charm allow concurrency within a
//! process. Such languages permit asynchronous method invocations — the
//! caller is not made to wait … There may be many objects active on a
//! processor, any of which can be scheduled depending on the arrival of
//! a message corresponding to a method invocation."
//!
//! This crate is the "language runtime" layer the paper sketches in
//! §3.3, exercising the Converse facilities exactly as Charm does:
//!
//! * **Chare creation is a seed** (§3.3.1): [`Charm::create`] wraps the
//!   constructor message in a generalized message and deposits it with
//!   the pluggable load balancer; the chare is instantiated wherever the
//!   seed takes root.
//! * **Method invocation messages go through the scheduler** with their
//!   priority: the receive handler re-targets the message at a second
//!   handler and enqueues it — the paper's own idiom for avoiding
//!   infinite regress (§3.3: "the handler stored in the message may be
//!   changed to point to a second handler defined by the language
//!   runtime").
//! * **Quiescence** is counted automatically for creations and
//!   invocations, so applications can use
//!   [`converse_core::Quiescence::start`] to learn when the object
//!   computation has drained.

pub mod group;
pub mod rebalance;

use converse_core::{csd, Quiescence};
use converse_ldb::{Ldb, LdbPolicy};
use converse_machine::{HandlerId, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use converse_msg::Priority;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use group::{GroupChare, GroupId, GroupKind};
pub use rebalance::RebalanceReport;

/// Index of a registered chare type (constructor) — identical on every
/// PE when registration order is identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChareKind(pub u32);

/// Machine-wide identity of a chare instance. Obtained inside the
/// chare's constructor; typically mailed to interested parties, since
/// creation itself is fire-and-forget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChareId {
    /// Home PE (chares do not migrate in this runtime).
    pub pe: usize,
    /// Slot in the home PE's object table.
    pub slot: u64,
}

impl ChareId {
    /// Serialize for embedding in payloads.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&(self.pe as u64).to_le_bytes());
        out[8..].copy_from_slice(&self.slot.to_le_bytes());
        out
    }

    /// Inverse of [`ChareId::encode`].
    pub fn decode(bytes: &[u8]) -> Option<ChareId> {
        if bytes.len() < 16 {
            return None;
        }
        Some(ChareId {
            pe: u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize,
            slot: u64::from_le_bytes(bytes[8..16].try_into().ok()?),
        })
    }
}

/// A message-driven object. Implementations are registered per type
/// with [`Charm::register`]; instances are created with
/// [`Charm::create`] and receive asynchronous invocations through
/// [`Chare::entry`].
pub trait Chare: Send + std::any::Any + 'static {
    /// Construct the object where its seed took root. `self_id` is the
    /// fresh identity; constructors commonly mail it to a parent encoded
    /// in `payload`.
    fn new(pe: &Pe, self_id: ChareId, payload: &[u8]) -> Self
    where
        Self: Sized;

    /// An asynchronous method invocation: `ep` selects the method,
    /// `payload` carries its marshalled arguments.
    fn entry(&mut self, pe: &Pe, self_id: ChareId, ep: u32, payload: &[u8]);
}

type Ctor = Arc<dyn Fn(&Pe, ChareId, &[u8]) -> Box<dyn Chare> + Send + Sync>;
type MigCtor = Arc<dyn Fn(&Pe, ChareId, &[u8]) -> Box<dyn Chare> + Send + Sync>;
type Packer2 = Arc<dyn Fn(&dyn Chare) -> Vec<u8> + Send + Sync>;

/// A chare whose state can be serialized and reconstructed on another
/// PE — the contract for [`Charm::migrate`]. The paper leaves migration
/// as future work ("dynamic object migration … can be implemented on
/// top of Converse as Converse libraries", §3.3.1 footnote); this
/// runtime implements it with the forwarding queues that footnote
/// describes.
pub trait MigratableChare: Chare {
    /// Serialize the object's state.
    fn pack(&self) -> Vec<u8>;
    /// Reconstruct from [`MigratableChare::pack`] output on the new PE.
    /// `new_id` is the object's identity at its new home.
    fn unpack(pe: &Pe, new_id: ChareId, data: &[u8]) -> Self
    where
        Self: Sized;
}

/// Lifecycle state of an object-table slot.
pub(crate) enum Slot {
    /// A live object (taken out while an entry method runs).
    Live {
        kind: u32,
        obj: Option<Box<dyn Chare>>,
    },
    /// Mid-migration: invocations are held until the new address is
    /// known — the "queues for forwarding messages to migrated objects".
    Migrating { held: Vec<Message> },
    /// Migrated away: invocations are forwarded to the new identity.
    Forwarded { to: ChareId },
}

/// Per-PE Charm runtime.
pub struct Charm {
    create_h: HandlerId,
    exec_h: HandlerId,
    invoke_h: HandlerId,
    exit_h: HandlerId,
    ctors: Mutex<Vec<Ctor>>,
    /// Per-kind (unpacker, packer) for migratable kinds.
    pub(crate) migrators: Mutex<HashMap<u32, (MigCtor, Packer2)>>,
    pub(crate) objects: Mutex<HashMap<u64, Slot>>,
    /// Byte-concatenation combiner for allgather-style exchanges
    /// (rebalancing load reports).
    pub(crate) concat_combiner: converse_machine::coll::CombinerId,
    migrate_install_h: HandlerId,
    migrate_ack_h: HandlerId,
    next_slot: AtomicU64,
    qd: Arc<Quiescence>,
    pub(crate) groups: group::GroupState,
    readonly_h: HandlerId,
    readonlies: Mutex<HashMap<u32, Vec<u8>>>,
    /// Chares constructed on this PE.
    pub chares_created: AtomicU64,
    /// Entry-method invocations executed on this PE.
    pub entries_run: AtomicU64,
}

struct CharmSlot(Arc<Charm>);

impl Charm {
    /// Install the Charm runtime on this PE with the given seed
    /// load-balancing policy. Installs [`Quiescence`] and [`Ldb`] first
    /// (in that order), so calling this as the first registration on
    /// every PE yields identical handler tables. Idempotent per PE.
    pub fn install(pe: &Pe, policy: LdbPolicy) -> Arc<Charm> {
        if let Some(s) = pe.try_local::<CharmSlot>() {
            return s.0.clone();
        }
        let qd = Quiescence::install(pe);
        Ldb::install(pe, policy);

        // First handler for a creation seed: runs where the seed took
        // root (the load balancer enqueued it on the scheduler there).
        let create_h = pe.register_handler(|pe, msg| {
            let charm = Charm::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let kind = u.u32().expect("charm create: kind");
            let payload = u.bytes().expect("charm create: payload");
            charm.construct(pe, ChareKind(kind), payload);
        });
        // Second handler for an invocation (already through the queue).
        let exec_h = pe.register_handler(|pe, msg| {
            let charm = Charm::get(pe);
            charm.execute(pe, &msg);
        });
        // First handler for an invocation arriving from the wire: swap
        // in the second handler and enqueue by priority — the §3.3 idiom.
        let invoke_h = pe.register_handler(|pe, mut msg| {
            let charm = Charm::get(pe);
            msg.set_handler(charm.exec_h);
            csd::csd_enqueue_prio(pe, msg);
        });
        let exit_h = pe.register_handler(|pe, _| csd::csd_exit_scheduler(pe));
        let group_state = group::GroupState::install_handlers(pe);
        // Readonly globals: published once (broadcast), read anywhere —
        // Charm's "readonly" variables.
        let readonly_h = pe.register_handler(|pe, msg| {
            let charm = Charm::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let key = u.u32().expect("readonly: key");
            let data = u.bytes().expect("readonly: data").to_vec();
            let prev = charm.readonlies.lock().insert(key, data);
            assert!(
                prev.is_none(),
                "PE {}: readonly {key} published twice",
                pe.my_pe()
            );
            charm.qd.msg_processed(1);
        });

        // Migration protocol: install on the new home, ack to the old.
        let migrate_install_h = pe.register_handler(|pe, msg| {
            let charm = Charm::get(pe);
            charm.migrate_install(pe, &msg);
        });
        let migrate_ack_h = pe.register_handler(|pe, msg| {
            let charm = Charm::get(pe);
            charm.migrate_ack(pe, &msg);
        });
        let concat_combiner = pe.register_combiner(|a, b| {
            let mut out = Vec::with_capacity(a.len() + b.len());
            out.extend_from_slice(a);
            out.extend_from_slice(b);
            out
        });

        let charm = Arc::new(Charm {
            create_h,
            exec_h,
            invoke_h,
            exit_h,
            ctors: Mutex::new(Vec::new()),
            migrators: Mutex::new(HashMap::new()),
            objects: Mutex::new(HashMap::new()),
            concat_combiner,
            migrate_install_h,
            migrate_ack_h,
            next_slot: AtomicU64::new(1),
            qd,
            groups: group_state,
            readonly_h,
            readonlies: Mutex::new(HashMap::new()),
            chares_created: AtomicU64::new(0),
            entries_run: AtomicU64::new(0),
        });
        pe.local(|| CharmSlot(charm.clone()));
        charm
    }

    /// The runtime previously installed on this PE.
    pub fn get(pe: &Pe) -> Arc<Charm> {
        pe.try_local::<CharmSlot>()
            .unwrap_or_else(|| panic!("PE {}: Charm::install was not called", pe.my_pe()))
            .0
            .clone()
    }

    /// The quiescence detector this runtime feeds.
    pub fn quiescence(&self) -> Arc<Quiescence> {
        self.qd.clone()
    }

    /// Register chare type `T` (same order on every PE!).
    pub fn register<T: Chare>(&self) -> ChareKind {
        let mut c = self.ctors.lock();
        c.push(Arc::new(|pe, id, payload| {
            Box::new(T::new(pe, id, payload)) as Box<dyn Chare>
        }));
        ChareKind((c.len() - 1) as u32)
    }

    /// Register a *migratable* chare type: like [`Charm::register`] but
    /// the kind can later move between PEs with [`Charm::migrate`].
    pub fn register_migratable<T: MigratableChare>(&self) -> ChareKind {
        let kind = self.register::<T>();
        let unpack: MigCtor =
            Arc::new(|pe, id, data| Box::new(T::unpack(pe, id, data)) as Box<dyn Chare>);
        let pack: Packer2 = Arc::new(|obj| {
            // The packer is only invoked on objects stored under this
            // kind's table entries, so the downcast always succeeds.
            (obj as &dyn std::any::Any)
                .downcast_ref::<T>()
                .expect("kind table guarantees the concrete type")
                .pack()
        });
        self.migrators.lock().insert(kind.0, (unpack, pack));
        kind
    }

    /// Asynchronously create a chare of `kind` somewhere in the machine
    /// (fire-and-forget; §3.3.1 seed). The constructor payload is
    /// `payload`; `prio` orders the creation against other scheduler
    /// work.
    pub fn create(&self, pe: &Pe, kind: ChareKind, payload: &[u8], prio: Priority) {
        self.qd.msg_created(1);
        let body = Packer::new().u32(kind.0).bytes(payload).finish();
        let seed = Message::with_priority(self.create_h, &prio, &body);
        Ldb::get(pe).deposit(pe, seed);
    }

    /// Asynchronously invoke entry method `ep` of chare `id` with
    /// `payload` — the caller does not wait (§2.1).
    pub fn send(&self, pe: &Pe, id: ChareId, ep: u32, payload: &[u8], prio: Priority) {
        self.qd.msg_created(1);
        let body = Packer::new().u64(id.slot).u32(ep).bytes(payload).finish();
        let msg = Message::with_priority(self.invoke_h, &prio, &body);
        pe.sync_send_and_free(id.pe, msg);
    }

    /// Publish a readonly global: broadcast `data` under `key` to every
    /// PE (self included). Readonlies are write-once; publishing the
    /// same key twice is an error. The idiomatic place is program
    /// start-up, before the computation proper — exactly how Charm uses
    /// readonly variables.
    pub fn publish_readonly(&self, pe: &Pe, key: u32, data: &[u8]) {
        self.qd.msg_created(pe.num_pes() as u64);
        let body = Packer::new().u32(key).bytes(data).finish();
        pe.sync_broadcast_all(&Message::new(self.readonly_h, &body));
    }

    /// Read this PE's copy of a readonly global, if it has arrived.
    pub fn readonly(&self, key: u32) -> Option<Vec<u8>> {
        self.readonlies.lock().get(&key).cloned()
    }

    /// Read a readonly global, pumping the scheduler until it arrives.
    pub fn readonly_wait(&self, pe: &Pe, key: u32) -> Vec<u8> {
        converse_core::schedule_until(pe, || self.readonlies.lock().contains_key(&key));
        self.readonlies
            .lock()
            .get(&key)
            .cloned()
            .expect("present by schedule_until")
    }

    /// Stop the scheduler on every PE (the `CkExit` analogue): broadcast
    /// an exit message, including to the caller's own scheduler.
    pub fn exit_all(&self, pe: &Pe) {
        pe.sync_broadcast_all(&Message::new(self.exit_h, b""));
    }

    /// Number of live chares on this PE (forwarding stubs excluded).
    pub fn local_chares(&self) -> usize {
        self.objects
            .lock()
            .values()
            .filter(|s| matches!(s, Slot::Live { .. }))
            .count()
    }

    /// Destroy a local chare, freeing its slot. Returns false if `id` is
    /// remote, already gone, or a forwarding stub.
    pub fn destroy(&self, pe: &Pe, id: ChareId) -> bool {
        if id.pe != pe.my_pe() {
            return false;
        }
        let mut t = self.objects.lock();
        match t.get(&id.slot) {
            Some(Slot::Live { .. }) => {
                t.remove(&id.slot);
                true
            }
            _ => false,
        }
    }

    /// Move a **local, migratable** chare to `dst`. Asynchronous: the
    /// object is packed and shipped immediately; invocations that arrive
    /// while it is in flight are held and forwarded once the new home
    /// acknowledges, and the old slot forwards forever after. Returns
    /// false if `id` is not a local live migratable object.
    pub fn migrate(&self, pe: &Pe, id: ChareId, dst: usize) -> bool {
        if id.pe != pe.my_pe() {
            return false; // only the home PE may initiate a migration
        }
        if dst == pe.my_pe() {
            return true; // self-migration is a no-op
        }
        let (kind, obj) = {
            let mut t = self.objects.lock();
            match t.get_mut(&id.slot) {
                Some(Slot::Live { kind, obj }) => {
                    let kind = *kind;
                    match obj.take() {
                        Some(o) => {
                            let k = kind;
                            t.insert(id.slot, Slot::Migrating { held: Vec::new() });
                            (k, o)
                        }
                        None => panic!(
                            "PE {}: migrate from within the chare's own entry method",
                            pe.my_pe()
                        ),
                    }
                }
                _ => return false,
            }
        };
        let packer = match self.migrators.lock().get(&kind) {
            Some((_, p)) => p.clone(),
            None => {
                // Not migratable: put it back untouched.
                self.objects.lock().insert(
                    id.slot,
                    Slot::Live {
                        kind,
                        obj: Some(obj),
                    },
                );
                return false;
            }
        };
        let data = packer(obj.as_ref());
        drop(obj);
        self.qd.msg_created(1);
        let body = Packer::new()
            .u32(kind)
            .usize(id.pe)
            .u64(id.slot)
            .bytes(&data)
            .finish();
        pe.sync_send_and_free(dst, Message::new(self.migrate_install_h, &body));
        pe.trace_event(converse_trace::Event::Migrate {
            obj: id.slot,
            from: id.pe,
            to: dst,
        });
        true
    }

    /// Where invocations of `id` currently land from this PE's point of
    /// view: follows a local forwarding entry one hop.
    pub fn current_home(&self, pe: &Pe, id: ChareId) -> ChareId {
        if id.pe == pe.my_pe() {
            if let Some(Slot::Forwarded { to }) = self.objects.lock().get(&id.slot) {
                return *to;
            }
        }
        id
    }

    fn migrate_install(&self, pe: &Pe, msg: &Message) {
        let mut u = Unpacker::new(msg.payload());
        let kind = u.u32().expect("migrate install: kind");
        let origin_pe = u.usize().expect("migrate install: origin pe");
        let origin_slot = u.u64().expect("migrate install: origin slot");
        let data = u.bytes().expect("migrate install: data");
        let unpack = self
            .migrators
            .lock()
            .get(&kind)
            .map(|(u, _)| u.clone())
            .unwrap_or_else(|| panic!("PE {}: kind {kind} not migratable here", pe.my_pe()));
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        let new_id = ChareId {
            pe: pe.my_pe(),
            slot,
        };
        pe.trace_event(converse_trace::Event::ObjectCreate { kind });
        let obj = unpack(pe, new_id, data);
        self.objects.lock().insert(
            slot,
            Slot::Live {
                kind,
                obj: Some(obj),
            },
        );
        self.qd.msg_processed(1);
        // Tell the origin where the object lives now.
        self.qd.msg_created(1);
        let body = Packer::new()
            .u64(origin_slot)
            .raw(&new_id.encode())
            .finish();
        pe.sync_send_and_free(origin_pe, Message::new(self.migrate_ack_h, &body));
    }

    fn migrate_ack(&self, pe: &Pe, msg: &Message) {
        let mut u = Unpacker::new(msg.payload());
        let origin_slot = u.u64().expect("migrate ack: slot");
        let new_id = ChareId::decode(u.raw(16).expect("migrate ack: id")).expect("id decodes");
        let held = {
            let mut t = self.objects.lock();
            match t.insert(origin_slot, Slot::Forwarded { to: new_id }) {
                Some(Slot::Migrating { held }) => held,
                other => panic!(
                    "PE {}: migrate ack for slot {origin_slot} in unexpected state {}",
                    pe.my_pe(),
                    match other {
                        None => "absent",
                        Some(Slot::Live { .. }) => "live",
                        Some(Slot::Forwarded { .. }) => "already forwarded",
                        Some(Slot::Migrating { .. }) => unreachable!(),
                    }
                ),
            }
        };
        self.qd.msg_processed(1);
        for m in held {
            self.forward(pe, new_id, &m);
        }
    }

    /// Re-aim a buffered/arriving exec message at the migrated object.
    fn forward(&self, pe: &Pe, to: ChareId, msg: &Message) {
        let mut u = Unpacker::new(msg.payload());
        let _old_slot = u.u64().expect("forward: slot");
        let ep = u.u32().expect("forward: ep");
        let payload = u.bytes().expect("forward: payload");
        // The held message's QD debt transfers to the forwarded copy.
        self.qd.msg_processed(1);
        self.send(pe, to, ep, payload, msg.priority());
    }

    fn construct(&self, pe: &Pe, kind: ChareKind, payload: &[u8]) {
        let ctor = self
            .ctors
            .lock()
            .get(kind.0 as usize)
            .cloned()
            .unwrap_or_else(|| panic!("PE {}: unregistered chare kind {kind:?}", pe.my_pe()));
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        let id = ChareId {
            pe: pe.my_pe(),
            slot,
        };
        pe.trace_event(converse_trace::Event::ObjectCreate { kind: kind.0 });
        let obj = ctor(pe, id, payload);
        self.objects.lock().insert(
            slot,
            Slot::Live {
                kind: kind.0,
                obj: Some(obj),
            },
        );
        self.chares_created.fetch_add(1, Ordering::Relaxed);
        self.qd.msg_processed(1);
    }

    fn execute(&self, pe: &Pe, msg: &Message) {
        let mut u = Unpacker::new(msg.payload());
        let slot = u.u64().expect("charm exec: slot");
        let ep = u.u32().expect("charm exec: ep");
        let payload = u.bytes().expect("charm exec: payload");
        // Take the object out for the duration of the entry method: the
        // method may create chares or send messages (even to itself)
        // without holding the table lock.
        let mut obj = {
            let mut t = self.objects.lock();
            match t.get_mut(&slot) {
                Some(Slot::Live { obj, .. }) => obj.take().unwrap_or_else(|| {
                    panic!("PE {}: reentrant entry on chare {slot}", pe.my_pe())
                }),
                Some(Slot::Migrating { held }) => {
                    // In flight: hold until the new address is known.
                    held.push(msg.clone());
                    return;
                }
                Some(Slot::Forwarded { to }) => {
                    let to = *to;
                    drop(t);
                    self.forward(pe, to, msg);
                    return;
                }
                None => panic!(
                    "PE {}: invocation for dead or foreign chare slot {slot}",
                    pe.my_pe()
                ),
            }
        };
        let id = ChareId {
            pe: pe.my_pe(),
            slot,
        };
        obj.entry(pe, id, ep, payload);
        self.entries_run.fetch_add(1, Ordering::Relaxed);
        // Put it back unless the entry destroyed it.
        if let Some(Slot::Live { obj: o, .. }) = self.objects.lock().get_mut(&slot) {
            *o = Some(obj);
        }
        self.qd.msg_processed(1);
    }
}
