//! Property tests for the simulated interconnect and the wire models.

use converse_net::{DeliveryMode, FaultPlan, Interconnect, LinkFaults, NetModel};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    Send { src: usize, dst: usize, len: usize },
    Recv { pe: usize },
    BroadcastExcl { src: usize },
    BroadcastAll { src: usize },
}

fn arb_op(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..n, 0..n, 0usize..64).prop_map(|(src, dst, len)| Op::Send { src, dst, len }),
        4 => (0..n).prop_map(|pe| Op::Recv { pe }),
        1 => (0..n).prop_map(|src| Op::BroadcastExcl { src }),
        1 => (0..n).prop_map(|src| Op::BroadcastAll { src }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation: every byte sent is received exactly once, no matter
    /// the interleaving; per-(src,dst) FIFO order holds in Fifo mode.
    #[test]
    fn conservation_and_pair_fifo(ops in proptest::collection::vec(arb_op(4), 0..200)) {
        let n = 4;
        let net = Interconnect::new(n);
        // Model: per (src,dst) queue of payload stamps.
        let mut model: HashMap<(usize, usize), Vec<Vec<u8>>> = HashMap::new();
        let mut stamp = 0u64;
        for op in ops {
            match op {
                Op::Send { src, dst, len } => {
                    stamp += 1;
                    let mut bytes = stamp.to_le_bytes().to_vec();
                    bytes.extend(std::iter::repeat_n(0u8, len));
                    net.send(src, dst, bytes.clone());
                    model.entry((src, dst)).or_default().push(bytes);
                }
                Op::BroadcastExcl { src } => {
                    stamp += 1;
                    let bytes = stamp.to_le_bytes().to_vec();
                    net.broadcast_excl(src, bytes.clone());
                    for dst in 0..n {
                        if dst != src {
                            model.entry((src, dst)).or_default().push(bytes.clone());
                        }
                    }
                }
                Op::BroadcastAll { src } => {
                    stamp += 1;
                    let bytes = stamp.to_le_bytes().to_vec();
                    net.broadcast_all(src, bytes.clone());
                    for dst in 0..n {
                        model.entry((src, dst)).or_default().push(bytes.clone());
                    }
                }
                Op::Recv { pe } => {
                    match net.try_recv(pe) {
                        Some(p) => {
                            // Must be the FIFO head of its (src, pe) lane.
                            let lane = model.get_mut(&(p.src, pe)).expect("lane exists");
                            prop_assert!(!lane.is_empty());
                            let expect = lane.remove(0);
                            prop_assert_eq!(p.bytes(), &expect[..]);
                        }
                        None => {
                            // Model must agree nothing is pending for pe.
                            let pending: usize =
                                model.iter().filter(|((_, d), _)| *d == pe).map(|(_, v)| v.len()).sum();
                            prop_assert_eq!(pending, 0);
                        }
                    }
                }
            }
        }
        // Drain everything left and check totals per PE.
        for pe in 0..n {
            let mut remaining: usize =
                model.iter().filter(|((_, d), _)| *d == pe).map(|(_, v)| v.len()).sum();
            prop_assert_eq!(net.pending(pe), remaining);
            while let Some(p) = net.try_recv(pe) {
                let lane = model.get_mut(&(p.src, pe)).expect("lane");
                let expect = lane.remove(0);
                prop_assert_eq!(p.bytes(), &expect[..]);
                remaining -= 1;
            }
            prop_assert_eq!(remaining, 0);
        }
    }

    /// Reorder mode delivers the same multiset, whatever the seed.
    #[test]
    fn reorder_preserves_multiset(seed in any::<u64>(), window in 1usize..16, count in 0usize..120) {
        let net = Interconnect::with_mode(2, DeliveryMode::Reorder { seed, window });
        for i in 0..count {
            net.send(0, 1, (i as u64).to_le_bytes().to_vec());
        }
        let mut got: Vec<u64> = Vec::new();
        while let Some(p) = net.try_recv(1) {
            got.push(u64::from_le_bytes(p.bytes().try_into().unwrap()));
        }
        got.sort_unstable();
        prop_assert_eq!(got, (0..count as u64).collect::<Vec<_>>());
    }

    /// Traffic counters agree with actual activity.
    #[test]
    fn traffic_counters_accurate(sends in proptest::collection::vec((0usize..3, 0usize..3, 0usize..32), 0..60)) {
        let net = Interconnect::new(3);
        let mut sent_msgs = [0u64; 3];
        let mut sent_bytes = [0u64; 3];
        for (src, dst, len) in &sends {
            net.send(*src, *dst, vec![0u8; *len]);
            sent_msgs[*src] += 1;
            sent_bytes[*src] += *len as u64;
        }
        for pe in 0..3 {
            let t = net.traffic(pe);
            prop_assert_eq!(t.msgs_sent, sent_msgs[pe]);
            prop_assert_eq!(t.bytes_sent, sent_bytes[pe]);
        }
    }

    /// Aliasing safety of shared blocks: broadcasts under adversarial
    /// reordering still deliver bit-identical payloads to every PE, even
    /// with unicast noise interleaved and with the sender's own handle
    /// kept alive — sharing one allocation must never let one receiver's
    /// traffic corrupt another's view.
    #[test]
    fn reorder_broadcast_delivers_identical_shared_payloads(
        seed in any::<u64>(),
        window in 1usize..16,
        rounds in 1usize..12,
        noise in 0usize..8,
    ) {
        let n = 5;
        let net = Interconnect::with_mode(n, DeliveryMode::Reorder { seed, window });
        let mut kept: Vec<converse_msg::MsgBlock> = Vec::new();
        for r in 0..rounds {
            // Distinctive payload per round; tail encodes the round.
            let mut payload = vec![r as u8; 64];
            payload[..8].copy_from_slice(&(r as u64).to_le_bytes());
            let block = converse_msg::MsgBlock::copy_from(&payload);
            for k in 0..noise {
                net.send(r % n, (r + k) % n, vec![0xEE; 16]);
            }
            net.broadcast_all(r % n, block.share());
            kept.push(block);
        }
        // Every PE sees every round's broadcast, bit-identical, aliasing
        // the sender's retained block.
        for pe in 0..n {
            let mut seen = vec![false; rounds];
            while let Some(p) = net.try_recv(pe) {
                if p.bytes().len() == 16 {
                    prop_assert!(p.bytes().iter().all(|&b| b == 0xEE));
                    continue;
                }
                let r = u64::from_le_bytes(p.bytes()[..8].try_into().unwrap()) as usize;
                prop_assert_eq!(p.bytes(), kept[r].as_slice());
                prop_assert_eq!(p.block.as_ptr(), kept[r].as_ptr());
                prop_assert!(!seen[r], "duplicate broadcast delivery");
                seen[r] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "PE {} missed a broadcast", pe);
        }
    }

    /// Wire models are monotone in message size and have positive,
    /// finite times for all sizes — for any size pair, not just the
    /// sampled grid.
    #[test]
    fn models_monotone(a in 0usize..100_000, b in 0usize..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for m in NetModel::all_figures() {
            let tl = m.one_way_us(lo);
            let th = m.one_way_us(hi);
            prop_assert!(tl.is_finite() && tl > 0.0);
            prop_assert!(th >= tl, "{}: t({lo})={tl} > t({hi})={th}", m.name);
        }
    }
}

proptest! {
    // Fewer cases than the in-memory tests above: every case exercises
    // real retransmission timing, so each runs for wall-clock time.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee, as a property: for **any** seed, any
    /// drop rate < 1, any dup/delay mix and any message set, the
    /// reliability sublayer delivers every payload **exactly once and
    /// in per-link order**. On failure proptest prints the shrunk
    /// inputs — including `seed`, which replays the exact adversarial
    /// schedule (see docs/API.md).
    #[test]
    fn reliability_masks_any_fault_plan(
        seed in any::<u64>(),
        drop_pct in 0u32..85,
        dup_pct in 0u32..50,
        delay_pct in 0u32..50,
        slots in 0usize..4,
        fwd in 0usize..40,
        rev in 0usize..40,
    ) {
        let plan = FaultPlan::new(seed)
            .faults(LinkFaults {
                drop: drop_pct as f64 / 100.0,
                dup: dup_pct as f64 / 100.0,
                delay: delay_pct as f64 / 100.0,
                max_delay_slots: slots,
            })
            .retransmit(Duration::from_micros(400), Duration::from_millis(4))
            .tick(Duration::from_micros(150));
        let net = Interconnect::with_config(2, DeliveryMode::Fifo, Some(plan), None);
        for i in 0..fwd {
            net.send(0, 1, (i as u64).to_le_bytes().to_vec());
        }
        for i in 0..rev {
            net.send(1, 0, (i as u64).to_le_bytes().to_vec());
        }
        for (pe, count) in [(1usize, fwd), (0usize, rev)] {
            for want in 0..count as u64 {
                let p = net
                    .recv_timeout(pe, Duration::from_secs(10))
                    .expect("reliability layer lost a message");
                prop_assert_eq!(p.src, 1 - pe);
                prop_assert_eq!(
                    u64::from_le_bytes(p.bytes().try_into().unwrap()),
                    want,
                    "out-of-order or duplicated delivery on link {} → {}",
                    1 - pe, pe
                );
            }
            // Exactly once is structural: the receive watermark admits
            // each sequence number into the mailbox at most once, so
            // with the full set drained nothing more may ever surface.
            prop_assert!(net.try_recv(pe).is_none(), "extra delivery on PE {}", pe);
        }
        net.close();
    }

    /// Batched drain under the adversarial wire: for the CI seed set
    /// {1, 7, 1996} (the same matrix the chaos job runs) and any
    /// drop/dup/delay mix, pulling mail through `drain_into_bounded`
    /// with an arbitrary batch bound yields every payload **exactly
    /// once, in per-link FIFO order** — the two-list mailbox swap must
    /// not let the reliability sublayer's guarantees slip, whatever
    /// boundary a batch happens to cut.
    #[test]
    fn batched_drain_exactly_once_fifo_under_faults(
        seed in prop_oneof![Just(1u64), Just(7u64), Just(1996u64)],
        drop_pct in 0u32..70,
        dup_pct in 0u32..40,
        delay_pct in 0u32..40,
        slots in 0usize..4,
        count in 1usize..50,
        bound in 1usize..17,
    ) {
        let plan = FaultPlan::new(seed)
            .faults(LinkFaults {
                drop: drop_pct as f64 / 100.0,
                dup: dup_pct as f64 / 100.0,
                delay: delay_pct as f64 / 100.0,
                max_delay_slots: slots,
            })
            .retransmit(Duration::from_micros(400), Duration::from_millis(4))
            .tick(Duration::from_micros(150));
        // Two senders fan into PE 2, so batches interleave two links.
        let net = Interconnect::with_config(3, DeliveryMode::Fifo, Some(plan), None);
        for i in 0..count {
            net.send(0, 2, (i as u64).to_le_bytes().to_vec());
            net.send(1, 2, (i as u64).to_le_bytes().to_vec());
        }
        let total = 2 * count;
        let mut got: Vec<converse_net::Packet> = Vec::with_capacity(total);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while got.len() < total {
            prop_assert!(
                std::time::Instant::now() < deadline,
                "batched drain lost a message: {}/{}", got.len(), total
            );
            if net.drain_into_bounded(2, &mut got, bound) == 0 {
                net.wait_nonempty(2, Duration::from_millis(2));
            }
        }
        for src in [0usize, 1] {
            let lane: Vec<u64> = got
                .iter()
                .filter(|p| p.src == src)
                .map(|p| u64::from_le_bytes(p.bytes().try_into().unwrap()))
                .collect();
            prop_assert_eq!(
                lane,
                (0..count as u64).collect::<Vec<_>>(),
                "link {} → 2 not exactly-once FIFO through batched drain",
                src
            );
        }
        // Exactly once: give straggler duplicates a pump cycle, then
        // nothing further may surface.
        std::thread::sleep(Duration::from_millis(10));
        prop_assert_eq!(net.drain_into(2, &mut got), 0, "extra delivery after full drain");
        net.close();
    }
}
