//! The CMI transport abstraction.
//!
//! The paper's portability claim rests on the machine interface being a
//! narrow waist: everything above it (scheduler, threads, languages)
//! talks to the wire through one small surface, so swapping the wire
//! never touches the layers above. [`CmiTransport`] is that surface in
//! this runtime. Two implementations exist:
//!
//! * [`crate::Interconnect`] — the in-process machine (threads sharing
//!   one address space, mailboxes in memory, the fast/test path).
//! * `converse_wire::WireEndpoint` — one PE per OS process, frames over
//!   real sockets (TCP loopback or Unix-domain), the production-shape
//!   path.
//!
//! The trait is object-safe on purpose: a `Pe` holds an
//! `Arc<dyn CmiTransport>` and never knows which wire it is on. Methods
//! that are inherently *shared-memory observations* — another PE's load
//! snapshot, a remote stall probe — are allowed to degrade on
//! distributed transports (documented per method): callers get a
//! conservative answer, never a wrong protocol.

use crate::{Channel, FaultStats, Packet, PeLoad, PeTraffic};
use converse_msg::MsgBlock;
use std::collections::VecDeque;
use std::time::Duration;

/// The machine-interface transport contract: what one PE needs from the
/// wire. Implemented by the in-process [`crate::Interconnect`] and by
/// the multi-process socket endpoint in `converse-wire`.
///
/// All methods take explicit PE indices because the in-process transport
/// serves every PE from one object; a distributed endpoint serves
/// exactly one local PE and either degrades (read-only probes of remote
/// PEs) or routes through the wire (remote `stall_for`).
pub trait CmiTransport: Send + Sync {
    /// Number of processors in the machine (`CmiNumPe`).
    fn num_pes(&self) -> usize;

    /// Time since the machine booted — the base for `CmiTimer`. On a
    /// distributed transport each process measures from its own boot;
    /// the startup barrier keeps the skew to connection-setup time.
    fn uptime(&self) -> Duration;

    /// Deliver `block` from `src` into `dst`'s mailbox on the default
    /// (exactly-once) channel. Never blocks.
    fn send_block(&self, src: usize, dst: usize, block: MsgBlock);

    /// Deliver `block` from `src` into `dst`'s mailbox on an explicit
    /// delivery channel; the channel's [`Channel::delivery`] guarantee
    /// governs loss, duplication, and supersession. Both transports
    /// honor the same per-channel semantics (the conformance suite
    /// keeps them from drifting). Never blocks.
    fn send_block_on(&self, src: usize, dst: usize, block: MsgBlock, channel: Channel);

    /// Deliver a block into `dst`'s mailbox from *outside* the machine
    /// (external front-ends such as CCS). Counted as injected traffic,
    /// not as a send.
    fn inject_block(&self, dst: usize, block: MsgBlock);

    /// Broadcast to every PE except `src` (`CmiSyncBroadcast` shape).
    /// The **allocation contract is per-transport**: in-process this is
    /// one allocation plus P−1 refcount bumps (all packets alias one
    /// buffer); across processes each remote destination necessarily
    /// receives its own copy off the wire. Assert against
    /// [`CmiTransport::broadcast_zero_copy`], never a hard-coded count.
    fn broadcast_excl_block(&self, src: usize, block: MsgBlock);

    /// Broadcast to every PE including `src`; same contract note as
    /// [`CmiTransport::broadcast_excl_block`].
    fn broadcast_all_block(&self, src: usize, block: MsgBlock);

    /// True when a P-way broadcast on this transport shares one
    /// allocation (refcount bumps only). False when destinations in
    /// other address spaces receive copies.
    fn broadcast_zero_copy(&self) -> bool;

    /// Non-blocking receive of the next packet for `pe` in delivery
    /// order; `None` when nothing is queued or `pe` is stalled.
    fn try_recv(&self, pe: usize) -> Option<Packet>;

    /// Batched receive: move up to `max` queued packets for `pe` into
    /// `out` (preserving delivery order), returning how many moved.
    fn drain_bounded(&self, pe: usize, out: &mut VecDeque<Packet>, max: usize) -> usize;

    /// Blocking receive with timeout; `None` on timeout or once the
    /// machine has closed and the mailbox drained.
    fn recv_timeout(&self, pe: usize, timeout: Duration) -> Option<Packet>;

    /// Park until `pe`'s mailbox is non-empty, the machine closes, or
    /// the timeout expires.
    fn wait_nonempty(&self, pe: usize, timeout: Duration);

    /// Spin-then-park idle wait; returns spin iterations consumed
    /// (== `spin` when the call parked).
    fn wait_nonempty_spin(&self, pe: usize, timeout: Duration, spin: u32) -> u32;

    /// Queued (undelivered) packet count for `pe`. Distributed
    /// transports answer only for their local PE (0 for remote ranks).
    fn pending(&self, pe: usize) -> usize;

    /// True while `pe` sits inside a stall window. Distributed
    /// transports can only observe their local PE; remote ranks read as
    /// not stalled.
    fn stalled(&self, pe: usize) -> bool;

    /// Arm a stall window for `pe` covering the next `dur`. On a
    /// distributed transport a remote target is routed over the wire
    /// (best-effort, asynchronous arming).
    fn stall_for(&self, pe: usize, dur: Duration);

    /// Mark the machine closed and wake all blocked receivers.
    fn close(&self);

    /// True once [`CmiTransport::close`] has run.
    fn is_closed(&self) -> bool;

    /// Traffic counters for `pe`. Distributed transports answer only
    /// for their local PE (zeros for remote ranks); the run harness
    /// aggregates authoritative per-rank counters at teardown.
    fn traffic(&self, pe: usize) -> PeTraffic;

    /// Aggregate fault-plane and reliability counters (local process's
    /// view on a distributed transport).
    fn fault_stats(&self) -> FaultStats;

    /// Short name for diagnostics and traces: `"inproc"`, `"socket"`
    /// or `"shmring"`.
    fn transport_name(&self) -> &'static str;

    /// Publish `pe`'s own scheduler load sample (run-queue depth, EMA
    /// busy fraction in per-mille) for other PEs — and the CCS monitor —
    /// to read back through [`CmiTransport::load_of`]. No-op on
    /// transports without a shared load board.
    fn publish_load(&self, pe: usize, run_queue: usize, occupancy_pm: u32) {
        let _ = (pe, run_queue, occupancy_pm);
    }

    /// Depth of `pe`'s staged (receiver-private, stealable) list.
    /// Distributed transports answer only for their local PE.
    fn staged_pending(&self, pe: usize) -> usize {
        let _ = pe;
        0
    }

    /// Last load sample `pe` published via
    /// [`CmiTransport::publish_load`]: `(run_queue, occupancy_pm)`.
    /// `(0, 0)` until first publish, or for ranks this transport cannot
    /// observe.
    fn published_load(&self, pe: usize) -> (usize, u32) {
        let _ = pe;
        (0, 0)
    }

    /// True when [`CmiTransport::load_of`] of a *remote* PE reflects its
    /// real state. Shared-memory transports see everything; distributed
    /// transports degrade remote reads to zeros, so balancers there must
    /// fall back to gossiped samples.
    fn remote_load_visible(&self) -> bool {
        false
    }

    /// Move up to `max` stealable packets from `victim`'s staged list
    /// into `thief`'s mailbox, returning how many moved *synchronously*.
    /// Shared-memory transports steal in place; distributed transports
    /// send an asynchronous steal request over the wire and return 0 —
    /// donated packets arrive later as ordinary deliveries.
    fn steal_from(&self, victim: usize, thief: usize, max: usize) -> usize {
        let _ = (victim, thief, max);
        0
    }

    /// Take-and-clear `pe`'s steal splice mark: the uptime nanosecond
    /// at which the oldest not-yet-measured donated batch entered
    /// `pe`'s mailbox, or 0 when none is pending. The scheduler reads
    /// this to time splice→first-run steal latency; transports that
    /// never splice keep the default 0.
    fn take_steal_mark(&self, pe: usize) -> u64 {
        let _ = pe;
        0
    }

    /// Live load view of one PE. Distributed transports degrade for
    /// remote ranks: counters and depth read zero, stalled reads false.
    fn load_of(&self, pe: usize) -> PeLoad {
        let (run_queue, occupancy_pm) = self.published_load(pe);
        PeLoad {
            pe,
            traffic: self.traffic(pe),
            queued: self.pending(pe),
            staged: self.staged_pending(pe),
            run_queue,
            occupancy_pm,
            stalled: self.stalled(pe),
        }
    }

    /// Snapshot of every PE's load, in PE order (same degrade note as
    /// [`CmiTransport::load_of`]).
    fn load_snapshot(&self) -> Vec<PeLoad> {
        (0..self.num_pes()).map(|pe| self.load_of(pe)).collect()
    }

    /// Aggregate traffic over all PEs this transport can observe.
    fn total_traffic(&self) -> PeTraffic {
        let mut out = PeTraffic::default();
        for pe in 0..self.num_pes() {
            let t = self.traffic(pe);
            out.msgs_sent += t.msgs_sent;
            out.bytes_sent += t.bytes_sent;
            out.msgs_recv += t.msgs_recv;
            out.msgs_injected += t.msgs_injected;
            out.bytes_injected += t.bytes_injected;
        }
        out
    }
}

impl CmiTransport for crate::Interconnect {
    #[inline]
    fn num_pes(&self) -> usize {
        Self::num_pes(self)
    }

    #[inline]
    fn uptime(&self) -> Duration {
        Self::uptime(self)
    }

    #[inline]
    fn send_block(&self, src: usize, dst: usize, block: MsgBlock) {
        self.send(src, dst, block);
    }

    #[inline]
    fn send_block_on(&self, src: usize, dst: usize, block: MsgBlock, channel: Channel) {
        self.send_on(src, dst, block, channel);
    }

    #[inline]
    fn inject_block(&self, dst: usize, block: MsgBlock) {
        self.inject(dst, block);
    }

    #[inline]
    fn broadcast_excl_block(&self, src: usize, block: MsgBlock) {
        self.broadcast_excl(src, block);
    }

    #[inline]
    fn broadcast_all_block(&self, src: usize, block: MsgBlock) {
        self.broadcast_all(src, block);
    }

    fn broadcast_zero_copy(&self) -> bool {
        true
    }

    #[inline]
    fn try_recv(&self, pe: usize) -> Option<Packet> {
        Self::try_recv(self, pe)
    }

    #[inline]
    fn drain_bounded(&self, pe: usize, out: &mut VecDeque<Packet>, max: usize) -> usize {
        self.drain_into_bounded(pe, out, max)
    }

    #[inline]
    fn recv_timeout(&self, pe: usize, timeout: Duration) -> Option<Packet> {
        Self::recv_timeout(self, pe, timeout)
    }

    #[inline]
    fn wait_nonempty(&self, pe: usize, timeout: Duration) {
        Self::wait_nonempty(self, pe, timeout)
    }

    #[inline]
    fn wait_nonempty_spin(&self, pe: usize, timeout: Duration, spin: u32) -> u32 {
        Self::wait_nonempty_spin(self, pe, timeout, spin)
    }

    #[inline]
    fn pending(&self, pe: usize) -> usize {
        Self::pending(self, pe)
    }

    #[inline]
    fn stalled(&self, pe: usize) -> bool {
        Self::stalled(self, pe)
    }

    #[inline]
    fn stall_for(&self, pe: usize, dur: Duration) {
        Self::stall_for(self, pe, dur)
    }

    #[inline]
    fn close(&self) {
        Self::close(self)
    }

    #[inline]
    fn is_closed(&self) -> bool {
        Self::is_closed(self)
    }

    #[inline]
    fn traffic(&self, pe: usize) -> PeTraffic {
        Self::traffic(self, pe)
    }

    #[inline]
    fn fault_stats(&self) -> FaultStats {
        Self::fault_stats(self)
    }

    fn transport_name(&self) -> &'static str {
        "inproc"
    }

    #[inline]
    fn publish_load(&self, pe: usize, run_queue: usize, occupancy_pm: u32) {
        Self::publish_load(self, pe, run_queue, occupancy_pm)
    }

    #[inline]
    fn staged_pending(&self, pe: usize) -> usize {
        self.staged_of(pe)
    }

    #[inline]
    fn published_load(&self, pe: usize) -> (usize, u32) {
        let l = Self::load_of(self, pe);
        (l.run_queue, l.occupancy_pm)
    }

    fn remote_load_visible(&self) -> bool {
        true
    }

    #[inline]
    fn steal_from(&self, victim: usize, thief: usize, max: usize) -> usize {
        Self::steal_from(self, victim, thief, max)
    }

    #[inline]
    fn take_steal_mark(&self, pe: usize) -> u64 {
        Self::take_steal_mark(self, pe)
    }

    fn load_of(&self, pe: usize) -> PeLoad {
        Self::load_of(self, pe)
    }

    fn load_snapshot(&self) -> Vec<PeLoad> {
        Self::load_snapshot(self)
    }

    fn total_traffic(&self) -> PeTraffic {
        Self::total_traffic(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interconnect;
    use std::sync::Arc;

    #[test]
    fn interconnect_serves_the_trait_surface() {
        let net = Interconnect::new(2);
        let t: Arc<dyn CmiTransport> = net;
        assert_eq!(t.num_pes(), 2);
        assert_eq!(t.transport_name(), "inproc");
        assert!(t.broadcast_zero_copy());
        t.send_block(0, 1, MsgBlock::copy_from(b"via trait"));
        let p = t.try_recv(1).expect("delivered");
        assert_eq!(p.src, 0);
        assert_eq!(p.bytes(), b"via trait");
        assert_eq!(p.channel, Channel::DEFAULT);
        let qos = Channel::new(3, crate::Delivery::AtMostOnce);
        t.send_block_on(0, 1, MsgBlock::copy_from(b"qos"), qos);
        let p = t.try_recv(1).expect("qos channel delivered");
        assert_eq!(p.channel, qos);
        t.broadcast_all_block(0, MsgBlock::copy_from(b"b"));
        let mut out = VecDeque::new();
        assert_eq!(t.drain_bounded(0, &mut out, 8), 1);
        assert_eq!(t.drain_bounded(1, &mut out, 8), 1);
        assert_eq!(t.load_snapshot().len(), 2);
        assert_eq!(t.total_traffic().msgs_sent, 4);
        t.close();
        assert!(t.is_closed());
    }
}
