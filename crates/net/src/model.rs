//! Analytic wire-time models for the paper's five evaluation machines.
//!
//! The figures in §5.1 plot one-way message time against message size on
//! real 1995 hardware. We cannot measure those wires, so each machine is
//! modeled as
//!
//! ```text
//! t(n) = α                          per-message start-up latency
//!      + β · max(0, n - included)   per-byte wire cost beyond the bytes
//!                                   already covered by α
//!      + γ · (⌈n / P⌉ - 1)          extra cost per additional packet
//!      + c · n   if n > threshold   packetization copy (T3D, §5.1: "the
//!                                   jump at 16K bytes is due to copying
//!                                   during packetization")
//! ```
//!
//! Constants are calibrated to the numbers the paper states (FM delivers
//! ≤128-byte messages in 25 µs; the T3D jump sits at 16 KB) and to
//! published characteristics of the era's interconnects elsewhere. The
//! benchmark harness adds *measured* Converse software time on top, so
//! the Converse-vs-native deltas in the reproduced figures are real
//! measurements; only these wire constants are modeled. See
//! EXPERIMENTS.md for the calibration table.

/// Analytic one-way wire-time model for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct NetModel {
    /// Human-readable machine name as used in the paper's figures.
    pub name: &'static str,
    /// Per-message start-up latency α, microseconds.
    pub alpha_us: f64,
    /// Per-byte cost β, microseconds per byte.
    pub beta_us_per_byte: f64,
    /// Bytes whose transfer cost is already included in α (small-message
    /// fast path; 128 for FM per the paper).
    pub included_bytes: usize,
    /// Wire packet size P in bytes.
    pub packet_bytes: usize,
    /// Extra cost γ per packet beyond the first, microseconds.
    pub per_packet_us: f64,
    /// Message size above which the machine layer must copy the message
    /// during packetization (None = never).
    pub copy_threshold: Option<usize>,
    /// Copy cost c applied to every byte when over the threshold,
    /// microseconds per byte.
    pub copy_us_per_byte: f64,
}

impl NetModel {
    /// Modeled one-way wire time for an `n`-byte message, microseconds.
    pub fn one_way_us(&self, n: usize) -> f64 {
        let billed = n.saturating_sub(self.included_bytes) as f64;
        let packets = n.div_ceil(self.packet_bytes).max(1) as f64;
        let mut t =
            self.alpha_us + self.beta_us_per_byte * billed + self.per_packet_us * (packets - 1.0);
        if let Some(thresh) = self.copy_threshold {
            if n > thresh {
                t += self.copy_us_per_byte * n as f64;
            }
        }
        t
    }

    /// Modeled round-trip wire time (two one-way trips), microseconds.
    pub fn round_trip_us(&self, n: usize) -> f64 {
        2.0 * self.one_way_us(n)
    }

    /// Asymptotic bandwidth implied by β, in MB/s.
    pub fn bandwidth_mb_s(&self) -> f64 {
        1.0 / self.beta_us_per_byte
    }

    /// Figure 4: network of HP workstations connected by an ATM switch.
    /// ATM OC-3 (155 Mbit/s) through a mid-90s host stack: high start-up
    /// latency, ~13 MB/s effective.
    pub fn atm_hp() -> Self {
        NetModel {
            name: "ATM-connected HPs",
            alpha_us: 300.0,
            beta_us_per_byte: 0.075,
            included_bytes: 0,
            packet_bytes: 9180, // ATM AAL5 default MTU
            per_packet_us: 30.0,
            copy_threshold: None,
            copy_us_per_byte: 0.0,
        }
    }

    /// Figure 5: Cray T3D with the FM package. Very low start-up cost
    /// ("very close to the best possible on the Cray hardware for short
    /// messages") and a packetization copy above 16 KB producing the jump
    /// the paper calls out.
    pub fn t3d() -> Self {
        NetModel {
            name: "Cray T3D",
            alpha_us: 3.0,
            beta_us_per_byte: 0.0083, // ~120 MB/s
            included_bytes: 8,
            packet_bytes: 16 * 1024,
            per_packet_us: 4.0,
            copy_threshold: Some(16 * 1024),
            copy_us_per_byte: 0.0083, // one extra copy pass
        }
    }

    /// Figure 6: Sun workstations on Myrinet with the FM package. The
    /// paper: "the FM library using Myrinet switches delivers messages up
    /// to 128 bytes in 25 µs, whereas Converse messages need about 31 µs".
    /// α covers the first 128 bytes.
    pub fn myrinet_fm() -> Self {
        NetModel {
            name: "Myrinet Suns (FM)",
            alpha_us: 25.0,
            beta_us_per_byte: 0.055, // ~18 MB/s
            included_bytes: 128,
            packet_bytes: 4096,
            per_packet_us: 6.0,
            copy_threshold: None,
            copy_us_per_byte: 0.0,
        }
    }

    /// Figure 7: IBM SP-1 (MPL-era adapter): moderate latency, ~9 MB/s.
    pub fn sp1() -> Self {
        NetModel {
            name: "IBM SP-1",
            alpha_us: 55.0,
            beta_us_per_byte: 0.11,
            included_bytes: 0,
            packet_bytes: 4096,
            per_packet_us: 8.0,
            copy_threshold: None,
            copy_us_per_byte: 0.0,
        }
    }

    /// Figure 8: Intel Paragon running SUNMOS: low latency and the
    /// highest bandwidth of the set.
    pub fn paragon() -> Self {
        NetModel {
            name: "Intel Paragon (SUNMOS)",
            alpha_us: 25.0,
            beta_us_per_byte: 0.00625, // ~160 MB/s
            included_bytes: 0,
            packet_bytes: 8192,
            per_packet_us: 2.0,
            copy_threshold: None,
            copy_us_per_byte: 0.0,
        }
    }

    /// IBM SP-2 (listed among the paper's §5 implementation targets):
    /// the SP-1's successor — similar start-up latency class, ~4× the
    /// bandwidth. Not one of the plotted figures; provided for the
    /// "ported to all the machines" inventory.
    pub fn sp2() -> Self {
        NetModel {
            name: "IBM SP-2",
            alpha_us: 45.0,
            beta_us_per_byte: 0.029, // ~35 MB/s
            included_bytes: 0,
            packet_bytes: 4096,
            per_packet_us: 5.0,
            copy_threshold: None,
            copy_us_per_byte: 0.0,
        }
    }

    /// All five figure machines in paper order (Figs 4–8).
    pub fn all_figures() -> Vec<NetModel> {
        vec![
            Self::atm_hp(),
            Self::t3d(),
            Self::myrinet_fm(),
            Self::sp1(),
            Self::paragon(),
        ]
    }

    /// Every modeled machine, the figure set plus the SP-2.
    pub fn all_machines() -> Vec<NetModel> {
        let mut v = Self::all_figures();
        v.push(Self::sp2());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_size() {
        for m in NetModel::all_figures() {
            let mut prev = 0.0;
            for n in [0usize, 1, 16, 128, 129, 1024, 16384, 16385, 65536] {
                let t = m.one_way_us(n);
                assert!(t >= prev, "{}: t({}) = {} < {}", m.name, n, t, prev);
                prev = t;
            }
        }
    }

    #[test]
    fn fm_small_message_is_25us() {
        let m = NetModel::myrinet_fm();
        assert_eq!(m.one_way_us(0), 25.0);
        assert_eq!(m.one_way_us(128), 25.0);
        assert!(m.one_way_us(129) > 25.0);
    }

    #[test]
    fn t3d_jump_at_16k() {
        let m = NetModel::t3d();
        let below = m.one_way_us(16 * 1024);
        let above = m.one_way_us(16 * 1024 + 1);
        // The copy term bills the whole message, so the step is large
        // compared to the one extra byte's β cost.
        assert!(above - below > 100.0, "jump was only {} µs", above - below);
    }

    #[test]
    fn t3d_shortest_latency() {
        let t3d = NetModel::t3d().one_way_us(8);
        for m in NetModel::all_figures() {
            if m.name != "Cray T3D" {
                assert!(m.one_way_us(8) > t3d, "{} beat the T3D", m.name);
            }
        }
    }

    #[test]
    fn round_trip_is_twice_one_way() {
        let m = NetModel::sp1();
        assert_eq!(m.round_trip_us(1000), 2.0 * m.one_way_us(1000));
    }

    #[test]
    fn packet_cost_kicks_in() {
        let m = NetModel::sp1();
        let one_packet = m.one_way_us(4096);
        let two_packets = m.one_way_us(4097);
        assert!(two_packets - one_packet >= m.per_packet_us);
    }

    #[test]
    fn sp2_sits_between_sp1_and_paragon() {
        let sp1 = NetModel::sp1();
        let sp2 = NetModel::sp2();
        let paragon = NetModel::paragon();
        assert!(sp2.bandwidth_mb_s() > sp1.bandwidth_mb_s());
        assert!(sp2.bandwidth_mb_s() < paragon.bandwidth_mb_s());
        assert!(sp2.one_way_us(1024) < sp1.one_way_us(1024));
        assert_eq!(NetModel::all_machines().len(), 6);
    }

    #[test]
    fn bandwidths_are_sane() {
        // Paragon fastest, SP-1 slowest of the modeled set.
        let bw: Vec<(f64, &str)> = NetModel::all_figures()
            .iter()
            .map(|m| (m.bandwidth_mb_s(), m.name))
            .collect();
        let paragon = bw.iter().find(|b| b.1.contains("Paragon")).unwrap().0;
        let sp1 = bw.iter().find(|b| b.1.contains("SP-1")).unwrap().0;
        for (b, _) in &bw {
            assert!(*b >= sp1 && *b <= paragon);
        }
    }
}
