//! Per-channel delivery guarantees — the QoS policy layer.
//!
//! PR 3 hardwired one contract: every link is exactly-once in-order.
//! That is the right *default* but the wrong (and expensive) universal
//! answer — streaming fan-out to many subscribers neither needs nor
//! wants to pay for acks and retransmission. This module makes the
//! guarantee a per-**channel** policy choice carried on every packet
//! and wire frame, so the reliability sublayer becomes parametric:
//!
//! * [`Delivery::ExactlyOnce`] — seq/ack/retransmit/dedup, in-order.
//!   Identical to the pre-QoS behavior; [`Channel::DEFAULT`] uses it,
//!   so existing code is untouched.
//! * [`Delivery::AtMostOnce`] — one wire attempt, no acks, no
//!   retransmission, no reassembly buffering. A dropped packet is
//!   lost; a duplicated or stale packet is discarded by a monotonic
//!   sequence floor, so nothing is ever delivered twice.
//! * [`Delivery::LatestValueWins`] — a newer value on the same channel
//!   supersedes an older one still queued, staged, or awaiting
//!   retransmission. The sender keeps at most one packet in flight per
//!   channel; the receiver applies the same monotonic floor. The last
//!   value sent is retransmitted until acknowledged, so the stream
//!   converges on the final value even over a lossy wire.
//!
//! The guarantee tag travels *in* the packet (and in the 22-byte wire
//! frame header), so receivers need no channel registry: policy is
//! self-describing on the wire, and both transports (`Interconnect`
//! and `converse-wire`) apply it identically.

/// Delivery guarantee of one channel. Encoded as one byte on the wire
/// (see [`Delivery::as_u8`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Delivery {
    /// Exactly-once, per-channel in-order: sequence numbers, selective
    /// acks, retransmission with capped backoff, receiver dedup and
    /// reassembly. The default, and the only pre-QoS behavior.
    #[default]
    ExactlyOnce,
    /// Best-effort: one wire attempt, no acks, no retransmit, no
    /// reassembly state. Never delivers a message twice (stale/dup
    /// copies are dropped by a monotonic floor); may deliver nothing.
    AtMostOnce,
    /// A newer value supersedes an older undelivered one on the same
    /// channel — in the sender's retransmit slot, in fault-plane
    /// limbo, and in the destination's not-yet-staged inbox. The final
    /// value sent is reliable (retransmitted until acked).
    LatestValueWins,
}

impl Delivery {
    /// Wire encoding (the `guarantee` byte of a frame header).
    #[inline]
    pub fn as_u8(self) -> u8 {
        match self {
            Delivery::ExactlyOnce => 0,
            Delivery::AtMostOnce => 1,
            Delivery::LatestValueWins => 2,
        }
    }

    /// Decode a wire byte; unknown values fall back to the safe
    /// default (`ExactlyOnce` keeps every legacy behavior).
    #[inline]
    pub fn from_u8(v: u8) -> Delivery {
        match v {
            1 => Delivery::AtMostOnce,
            2 => Delivery::LatestValueWins,
            _ => Delivery::ExactlyOnce,
        }
    }

    /// Human label used in stats tables and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            Delivery::ExactlyOnce => "exactly-once",
            Delivery::AtMostOnce => "at-most-once",
            Delivery::LatestValueWins => "latest-value-wins",
        }
    }

    /// Parse a CLI/user spelling (`exactly-once`, `at-most-once`,
    /// `latest`, plus short aliases).
    pub fn parse(s: &str) -> Option<Delivery> {
        match s {
            "exactly-once" | "exact" | "eo" => Some(Delivery::ExactlyOnce),
            "at-most-once" | "best-effort" | "amo" => Some(Delivery::AtMostOnce),
            "latest" | "latest-value-wins" | "lvw" => Some(Delivery::LatestValueWins),
            _ => None,
        }
    }
}

/// A delivery channel: a numeric id plus the guarantee every message
/// sent on it gets. Channel 0 is [`Channel::DEFAULT`] (exactly-once);
/// configured channels take ids from 1 upward; pub-sub topics hash
/// into the high-bit id space so they never collide with configured
/// channels.
///
/// Sequence numbering is per `(link, channel)`: each channel of a link
/// is an independent sequenced stream starting at seq 1 (seq 0 is the
/// reserved "unsequenced fast path" marker used when no `FaultPlan` is
/// installed — see `Packet::seq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Channel id, carried on every packet and wire frame.
    pub id: u32,
    /// The guarantee applied to traffic on this channel.
    pub delivery: Delivery,
}

impl Channel {
    /// Channel 0: exactly-once, the pre-QoS contract. Every legacy
    /// send path uses it.
    pub const DEFAULT: Channel = Channel {
        id: 0,
        delivery: Delivery::ExactlyOnce,
    };

    /// Build a channel handle.
    #[inline]
    pub const fn new(id: u32, delivery: Delivery) -> Channel {
        Channel { id, delivery }
    }
}

impl Default for Channel {
    fn default() -> Self {
        Channel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_wire_round_trip() {
        for d in [
            Delivery::ExactlyOnce,
            Delivery::AtMostOnce,
            Delivery::LatestValueWins,
        ] {
            assert_eq!(Delivery::from_u8(d.as_u8()), d);
        }
        // Unknown bytes decode to the safe default.
        assert_eq!(Delivery::from_u8(0xFF), Delivery::ExactlyOnce);
    }

    #[test]
    fn delivery_parse_spellings() {
        assert_eq!(Delivery::parse("exactly-once"), Some(Delivery::ExactlyOnce));
        assert_eq!(Delivery::parse("at-most-once"), Some(Delivery::AtMostOnce));
        assert_eq!(Delivery::parse("latest"), Some(Delivery::LatestValueWins));
        assert_eq!(Delivery::parse("lvw"), Some(Delivery::LatestValueWins));
        assert_eq!(Delivery::parse("bogus"), None);
    }

    #[test]
    fn default_channel_is_exactly_once_id_zero() {
        assert_eq!(Channel::DEFAULT.id, 0);
        assert_eq!(Channel::DEFAULT.delivery, Delivery::ExactlyOnce);
        assert_eq!(Channel::default(), Channel::DEFAULT);
    }
}
