//! The simulated parallel machine under Converse.
//!
//! The paper evaluates Converse on five physical machines (networks of
//! ATM-connected HPs, Cray T3D, Myrinet-connected Suns with the FM
//! package, IBM SP-1, Intel Paragon running SUNMOS). None of those exist
//! here, so this crate provides the substitute substrate:
//!
//! * [`Interconnect`] — an in-process machine with one mailbox per
//!   logical processor (PE). Sends are byte-block deliveries into the
//!   destination mailbox; receivers poll or block. Per-(source,
//!   destination) FIFO order holds by default, but the MMI deliberately
//!   does **not** promise ordering (paper §3.1.3 criticizes MPI for
//!   paying for it), so an optional seeded [`DeliveryMode::Reorder`] mode
//!   scrambles arrival order to let tests verify nothing above depends
//!   on it.
//! * [`FaultPlan`] — a deterministic adversarial wire: seeded per-link
//!   drop/duplication/delay plus scripted PE stall and crash windows.
//!   When a plan is installed, a **reliability sublayer** masks it:
//!   every packet carries a per-link sequence number, the receive side
//!   deduplicates and reorders back into sequence, and a background pump
//!   retransmits unacknowledged packets with capped exponential backoff
//!   — so the machine layer above keeps its exactly-once in-order
//!   contract even over a lossy net. Every fault decision is a pure
//!   function of `(seed, link, seq, attempt)`, so one seed replays one
//!   adversarial schedule regardless of thread interleaving.
//! * [`NetModel`] — an analytic wire-time model: `α` per-message latency,
//!   `β` per-byte cost, per-packet cost, and an optional packetization
//!   copy threshold (the T3D's 16 KB copy jump, §5.1). Benchmarks combine
//!   the *measured* software path time on the real Rust code with this
//!   model's wire time, reproducing the figures' shape.

pub mod fault;
pub mod model;
pub mod qos;
pub mod transport;

pub use fault::{FaultPlan, FaultStats, LinkFaults, StallWindow};
pub use model::NetModel;
pub use qos::{Channel, Delivery};
pub use transport::CmiTransport;

use converse_msg::MsgBlock;
use converse_trace::{Event, FaultKind, TraceSink};
use fault::{link_draw, unit, SALT_DELAY, SALT_DELAY_SLOTS, SALT_DROP, SALT_DUP, SALT_REORDER};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// How long a stalled PE naps between checks of its stall window, and
/// the wait-slice receivers use while any stall window is armed.
const STALL_SLICE: Duration = Duration::from_millis(2);

/// A message block in flight, tagged with its source PE.
///
/// The block is the *same* refcounted buffer the sender built — a send
/// moves (or shares) it, never copies it. Broadcast packets on
/// different PEs alias one backing allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sending PE.
    pub src: usize,
    /// The delivery channel this packet travelled on, including its
    /// guarantee tag. Legacy sends use [`Channel::DEFAULT`]
    /// (channel 0, exactly-once).
    pub channel: Channel,
    /// Per-(link, channel) sequence number stamped by the QoS layer.
    ///
    /// **Convention (both transports):** sequenced streams number from
    /// `1`; `seq == 0` marks the *unsequenced fast path* — no
    /// [`FaultPlan`] installed and the channel needs no supersede
    /// bookkeeping, so the reliable wire carries the packet with no
    /// sublayer state at all. `LatestValueWins` channels are always
    /// sequenced (the supersede scan keys on `seq`), even on a clean
    /// wire.
    pub seq: u64,
    /// The generalized-message block.
    pub block: MsgBlock,
}

impl Packet {
    /// The wire bytes (the block's contents).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.block.as_slice()
    }
}

/// Delivery-order policy of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Per-(src,dst) FIFO, like most real interconnects.
    #[default]
    Fifo,
    /// Adversarial: each arriving packet is inserted at a seeded-random
    /// position among the last `window` queued packets. Every packet
    /// remains immediately receivable (no liveness loss), but FIFO order
    /// is broken. Used by tests of order-independence.
    Reorder {
        /// RNG seed (deterministic scrambling for reproducible tests).
        seed: u64,
        /// How far back an arrival may be inserted.
        window: usize,
    },
}

/// A per-PE mailbox built as **two lists** so the delivery hot path is
/// low-contention:
///
/// * `inbox` — senders append here under a short lock. This is the only
///   lock the send path ever touches, and it is held just long enough
///   for one push.
/// * `staged` — the receiver's private list. When it runs dry, the
///   receiver swaps the *entire* inbox into it under one short inbox
///   lock acquisition and then drains it without any further sender
///   contention: one lock op amortized over N messages instead of N+1.
///
/// Only the receiving PE touches `staged`, so its mutex is uncontended
/// by construction. Queue depth is published through two length
/// mirrors, `inbox_len` and `staged_len`, each written with a plain
/// store while its list's lock is held — **never** a read-modify-write.
/// Depth reads (`pending`, load snapshots, the idle spin loop) are two
/// plain atomic loads, and the message hot path carries no atomic RMW
/// at all beyond the mutexes themselves.
/// Layout is pinned (`repr(C, align(64))`) so the per-message hot path
/// — `inbox_len`, `staged_len`, the `inbox` mutex word + its inline
/// `VecDeque` header, and the condvar — all sit on the mailbox's first
/// cache line (8+8+40+8 = 64 bytes), matching the one-line footprint of
/// a single-mutex mailbox; `staged` lives on the second line, touched
/// only when a drain actually stages. The alignment also keeps
/// neighbouring PEs' mailboxes from false-sharing a line.
#[repr(C, align(64))]
struct Mailbox {
    /// Length of `inbox`; written only under the `inbox` lock.
    inbox_len: AtomicUsize,
    /// Length of `staged`; written only by the receiver (under the
    /// `staged` lock), read lock-free by the receiver's fast paths.
    staged_len: AtomicUsize,
    inbox: Mutex<VecDeque<Packet>>,
    /// Paired with the `inbox` mutex: senders signal arrivals here.
    cv: Condvar,
    staged: Mutex<VecDeque<Packet>>,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            inbox_len: AtomicUsize::new(0),
            staged_len: AtomicUsize::new(0),
            inbox: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            staged: Mutex::new(VecDeque::new()),
        }
    }

    /// Undelivered packets (`inbox` + `staged`): two plain loads.
    #[inline]
    fn depth(&self) -> usize {
        self.inbox_len.load(Ordering::Acquire) + self.staged_len.load(Ordering::Acquire)
    }
}

/// Per-PE traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PeTraffic {
    /// Messages sent by this PE.
    pub msgs_sent: u64,
    /// Payload bytes sent by this PE.
    pub bytes_sent: u64,
    /// Messages received (popped) by this PE.
    pub msgs_recv: u64,
    /// External messages injected *into* this PE (CCS and other
    /// front-ends). Accounted separately from `msgs_sent` so external
    /// request volume never skews a PE's send-side load.
    pub msgs_injected: u64,
    /// Bytes injected into this PE from outside the machine.
    pub bytes_injected: u64,
}

/// Point-in-time load view of one PE: cumulative traffic plus the
/// instantaneous mailbox depth and the load sample the PE itself
/// publishes ([`Interconnect::publish_load`]). Returned by
/// [`Interconnect::load_of`] and [`Interconnect::load_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeLoad {
    /// The PE this snapshot describes.
    pub pe: usize,
    /// Cumulative send/receive counters.
    pub traffic: PeTraffic,
    /// Packets delivered but not yet retrieved (whole mailbox depth:
    /// inbox + staged).
    pub queued: usize,
    /// The staged (receiver-private) share of `queued` — the portion an
    /// idle PE is allowed to steal from (see
    /// [`Interconnect::steal_from`]).
    pub staged: usize,
    /// Scheduler run-queue depth as last published by the PE itself
    /// ([`Interconnect::publish_load`]); zero until first publish.
    pub run_queue: usize,
    /// Exponential-moving-average busy fraction in per-mille (0..=1000)
    /// as last published by the PE; zero until first publish.
    pub occupancy_pm: u32,
    /// True while the PE is inside a [`StallWindow`] (scripted by the
    /// fault plan or armed at runtime): it is not retrieving messages,
    /// so routing new work to it only deepens its queue.
    pub stalled: bool,
}

impl PeLoad {
    /// Undispatched work visible for this PE: mailbox depth plus the
    /// published scheduler run-queue depth. The victim-selection and
    /// routing metric — cumulative traffic says who *was* busy, backlog
    /// says who is behind *now*.
    #[inline]
    pub fn backlog(&self) -> usize {
        self.queued + self.run_queue
    }
}

/// Per-PE load sample published by the PE's own scheduler loop
/// ([`Interconnect::publish_load`]). Single-writer (the owning PE),
/// read lock-free by everyone else.
#[derive(Default)]
struct LoadCell {
    run_queue: AtomicUsize,
    occupancy_pm: AtomicU32,
}

#[derive(Default)]
struct TrafficCell {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    msgs_injected: AtomicU64,
    bytes_injected: AtomicU64,
}

/// Advance a single-writer stat counter without a lock-prefixed RMW.
///
/// `msgs_sent`/`bytes_sent` are only ever advanced by PE `src`'s own
/// thread (sends originate on the sending PE) and `msgs_recv` only by
/// the receiving PE's thread, so a plain load/store pair suffices on
/// the message hot path; readers are monitoring snapshots that tolerate
/// staleness. `msgs_injected`/`bytes_injected` keep `fetch_add` — they
/// are fed by external front-end threads with no single-writer
/// discipline.
#[inline]
fn bump(counter: &AtomicU64, by: u64) {
    counter.store(counter.load(Ordering::Relaxed) + by, Ordering::Relaxed);
}

/// Aggregate fault-plane counters, atomically updated.
#[derive(Default)]
struct FaultCell {
    transmissions: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    retransmitted: AtomicU64,
    dedup_dropped: AtomicU64,
    superseded: AtomicU64,
}

/// A transmitted-but-unacknowledged packet held for retransmission.
struct InFlight {
    block: MsgBlock,
    attempt: u32,
    due: Instant,
}

/// A fault-delayed copy waiting in limbo for its release slot.
struct Limbo {
    seq: u64,
    block: MsgBlock,
    due: Instant,
}

/// Sublayer state of one *channel* of a directed link. Every channel
/// of a link is an independent sequenced stream (numbering from 1; see
/// [`Packet::seq`]); what the state is used for depends on the
/// channel's [`Delivery`] policy:
///
/// * `ExactlyOnce` — the full PR-3 pipeline: `unacked` retransmit
///   buffer, `ooo` reassembly window, `expected` in-order cursor.
/// * `AtMostOnce` — `next_seq`/`expected` only (monotonic dedup
///   floor); `unacked` stays empty, nothing is ever retransmitted.
/// * `LatestValueWins` — at most one entry ever sits in `unacked`
///   (a newer value supersedes the older one); `expected` is the
///   monotonic floor.
struct ChanState {
    /// The channel this state serves (the id keys the map; the
    /// delivery policy is needed again at pump time).
    channel: Channel,
    /// Sender side: next sequence number to stamp.
    next_seq: u64,
    /// Sender side: transmitted, not yet acknowledged, keyed by seq.
    unacked: BTreeMap<u64, InFlight>,
    /// Fault plane: delayed copies awaiting release.
    limbo: Vec<Limbo>,
    /// Receiver side: next sequence number to hand to the mailbox
    /// (exactly-once), or the monotonic delivery floor (at-most-once /
    /// latest-value-wins).
    expected: u64,
    /// Receiver side: arrived out of order, awaiting `expected`
    /// (exactly-once only).
    ooo: BTreeMap<u64, MsgBlock>,
}

impl ChanState {
    fn new(channel: Channel) -> Self {
        ChanState {
            channel,
            // Sequenced streams number from 1; 0 is the reserved
            // unsequenced-fast-path marker.
            next_seq: 1,
            unacked: BTreeMap::new(),
            limbo: Vec::new(),
            expected: 1,
            ooo: BTreeMap::new(),
        }
    }
}

/// Reliability state of one directed link, split per channel. Both
/// endpoints live in the same process, so the sender's retransmit
/// buffer and the receiver's reassembly window share one mutex;
/// acknowledgment is a direct state update (advancing `expected`
/// releases everything below it), not a wire message.
///
/// Channel 0 (the default) is inline so the legacy hot path never
/// touches the map; other channels materialize lazily on first use.
///
/// Lock order: a link mutex may be held while taking a mailbox mutex,
/// never the reverse.
struct LinkState {
    /// Channel 0 — [`Channel::DEFAULT`], always present.
    chan0: ChanState,
    /// Lazily-created non-default channels, keyed by channel id.
    extra: HashMap<u32, ChanState>,
    /// Receiver side: count of mailbox deliveries on this link (all
    /// channels) — the deterministic per-link key for reorder-mode
    /// position draws.
    arrivals: u64,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState {
            chan0: ChanState::new(Channel::DEFAULT),
            extra: HashMap::new(),
            arrivals: 0,
        }
    }
}

impl LinkState {
    /// The sublayer state for `channel`, created on first use.
    #[inline]
    fn chan(&mut self, channel: Channel) -> &mut ChanState {
        if channel.id == 0 {
            &mut self.chan0
        } else {
            self.extra
                .entry(channel.id)
                .or_insert_with(|| ChanState::new(channel))
        }
    }
}

/// The simulated machine: `n` processors connected all-to-all.
///
/// Cloneable via `Arc`; every PE thread holds the same instance.
pub struct Interconnect {
    boxes: Vec<Mailbox>,
    traffic: Vec<TrafficCell>,
    /// Self-published scheduler load samples, one per PE.
    loads: Vec<LoadCell>,
    mode: DeliveryMode,
    /// Installed adversarial schedule, if any. `None` = reliable wire,
    /// zero-overhead fast path.
    plan: Option<FaultPlan>,
    /// Per-directed-link reliability state, indexed `src * n + dst`.
    /// Only touched when a plan is installed or reorder mode needs its
    /// per-link arrival counter.
    links: Vec<Mutex<LinkState>>,
    fstats: FaultCell,
    trace: Option<Arc<dyn TraceSink>>,
    /// Stall windows: scripted ones from the plan plus any armed at
    /// runtime via [`Interconnect::stall_for`].
    stalls: Mutex<Vec<StallWindow>>,
    /// Fast-path guard: true once any stall window exists.
    has_stalls: AtomicBool,
    /// Per-PE steal splice marks (uptime ns of the oldest unmeasured
    /// donated batch, 0 = none) — consumed by the scheduler to time
    /// splice→first-run.
    steal_marks: Vec<AtomicU64>,
    epoch: Instant,
    /// Set once at shutdown so blocked receivers wake and observe it.
    closed: AtomicBool,
}

impl Interconnect {
    /// Build a machine with `n` PEs and FIFO delivery.
    pub fn new(n: usize) -> Arc<Self> {
        Self::with_config(n, DeliveryMode::Fifo, None, None)
    }

    /// Build a machine with an explicit delivery mode.
    pub fn with_mode(n: usize, mode: DeliveryMode) -> Arc<Self> {
        Self::with_config(n, mode, None, None)
    }

    /// Build a machine with an explicit delivery mode, an optional
    /// fault plan, and an optional trace sink for `Event::Fault`
    /// records. Installing a plan spawns the background pump thread
    /// that releases fault-delayed packets and drives retransmission;
    /// the pump holds only a `Weak` reference and exits once the
    /// machine closes or is dropped.
    pub fn with_config(
        n: usize,
        mode: DeliveryMode,
        plan: Option<FaultPlan>,
        trace: Option<Arc<dyn TraceSink>>,
    ) -> Arc<Self> {
        assert!(n > 0, "a machine needs at least one PE");
        if let Some(p) = &plan {
            p.validate(n);
        }
        let stalls: Vec<StallWindow> = plan.as_ref().map(|p| p.stalls.clone()).unwrap_or_default();
        let has_stalls = !stalls.is_empty();
        let net = Arc::new(Interconnect {
            boxes: (0..n).map(|_| Mailbox::new()).collect(),
            traffic: (0..n).map(|_| TrafficCell::default()).collect(),
            loads: (0..n).map(|_| LoadCell::default()).collect(),
            mode,
            links: (0..n * n)
                .map(|_| Mutex::new(LinkState::default()))
                .collect(),
            fstats: FaultCell::default(),
            trace: trace.filter(|t| t.enabled()),
            stalls: Mutex::new(stalls),
            has_stalls: AtomicBool::new(has_stalls),
            steal_marks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
            closed: AtomicBool::new(false),
            plan,
        });
        if let Some(tick) = net.plan.as_ref().map(|p| p.tick) {
            let weak: Weak<Interconnect> = Arc::downgrade(&net);
            std::thread::Builder::new()
                .name("net-fault-pump".into())
                .spawn(move || loop {
                    std::thread::sleep(tick);
                    let Some(net) = weak.upgrade() else { return };
                    net.pump_tick();
                    if net.is_closed() {
                        // One more sweep with `closed` observed: flushes
                        // every remaining limbo copy so late receivers
                        // can still drain their mailboxes.
                        net.pump_tick();
                        return;
                    }
                })
                .expect("spawn net-fault-pump");
        }
        net
    }

    /// Number of processors (`CmiNumPe`).
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.boxes.len()
    }

    /// Time since the machine booted — the base for `CmiTimer`.
    #[inline]
    pub fn uptime(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Aggregate fault-plane and reliability counters.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            transmissions: self.fstats.transmissions.load(Ordering::Relaxed),
            dropped: self.fstats.dropped.load(Ordering::Relaxed),
            duplicated: self.fstats.duplicated.load(Ordering::Relaxed),
            delayed: self.fstats.delayed.load(Ordering::Relaxed),
            retransmitted: self.fstats.retransmitted.load(Ordering::Relaxed),
            dedup_dropped: self.fstats.dedup_dropped.load(Ordering::Relaxed),
            superseded: self.fstats.superseded.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn li(&self, src: usize, dst: usize) -> usize {
        src * self.boxes.len() + dst
    }

    fn trace_fault(&self, pe: usize, kind: FaultKind, src: usize, dst: usize, seq: u64) {
        if let Some(t) = &self.trace {
            t.record(
                pe,
                self.uptime().as_nanos() as u64,
                Event::Fault {
                    kind,
                    src,
                    dst,
                    seq,
                },
            );
        }
    }

    /// Insert one packet into `dst`'s inbox, applying the delivery
    /// mode and the channel's supersede policy. `arrival` is the
    /// per-link arrival index keying the reorder-mode position draw
    /// (ignored under FIFO). The inbox lock is held only for the push
    /// itself; the wakeup is signalled after it drops (safe: waiters
    /// re-check under the lock before parking).
    #[inline]
    fn mailbox_insert(
        &self,
        src: usize,
        dst: usize,
        channel: Channel,
        seq: u64,
        block: MsgBlock,
        arrival: u64,
    ) {
        let mbox = &self.boxes[dst];
        {
            let mut q = mbox.inbox.lock();
            if channel.delivery == Delivery::LatestValueWins {
                // A queued older value on the same (src, channel) is
                // dead the moment a newer one lands: drop it in place.
                // Only the inbox is scanned — packets already swapped
                // onto the receiver's private staged list are past the
                // supersede horizon (taking the staged lock here would
                // invert the receiver's lock order).
                let before = q.len();
                q.retain(|p| !(p.src == src && p.channel.id == channel.id && p.seq < seq));
                let purged = (before - q.len()) as u64;
                if purged > 0 {
                    self.fstats.superseded.fetch_add(purged, Ordering::Relaxed);
                    self.trace_fault(dst, FaultKind::Supersede, src, dst, seq);
                }
            }
            match self.mode {
                DeliveryMode::Fifo => q.push_back(Packet {
                    src,
                    channel,
                    seq,
                    block,
                }),
                DeliveryMode::Reorder { seed, window } => {
                    // The scramble window covers the not-yet-swapped part
                    // of the queue (the inbox); anything already staged
                    // on the receiver's side is out of reach.
                    let w = window.min(q.len());
                    let draw = link_draw(seed, src, dst, arrival, 0, SALT_REORDER);
                    let pos = q.len() - (draw as usize % (w + 1));
                    q.insert(
                        pos,
                        Packet {
                            src,
                            channel,
                            seq,
                            block,
                        },
                    );
                }
            }
            mbox.inbox_len.store(q.len(), Ordering::Release);
        }
        mbox.cv.notify_one();
    }

    /// Pop one packet for `pe` in delivery order, without the stall
    /// check or traffic accounting. Fast paths: a lock-free depth read
    /// when the mailbox is empty, and a single inbox lock when nothing
    /// is staged (the common single-message case).
    #[inline]
    fn mailbox_pop(&self, pe: usize) -> Option<Packet> {
        let mbox = &self.boxes[pe];
        // Staged packets (swapped out of the inbox earlier) are older
        // than anything still in the inbox and must drain first.
        if mbox.staged_len.load(Ordering::Acquire) > 0 {
            let mut staged = mbox.staged.lock();
            let p = staged.pop_front();
            mbox.staged_len.store(staged.len(), Ordering::Release);
            return p;
        }
        let mut q = mbox.inbox.lock();
        let p = q.pop_front();
        if p.is_some() {
            mbox.inbox_len.store(q.len(), Ordering::Release);
        }
        p
    }

    /// Transmit a block over link `src → dst` on `channel`: the
    /// reliable-wire fast path when no plan is installed (seq 0,
    /// except LatestValueWins which always sequences — its supersede
    /// scan keys on `seq`), otherwise sequence + policy-dependent
    /// buffering + one wire attempt through the fault plane.
    #[inline]
    fn transmit(&self, src: usize, dst: usize, channel: Channel, block: MsgBlock) {
        let Some(plan) = &self.plan else {
            let lvw = channel.delivery == Delivery::LatestValueWins;
            match self.mode {
                DeliveryMode::Fifo if !lvw => self.mailbox_insert(src, dst, channel, 0, block, 0),
                _ => {
                    // The arrival index must be read and the insert done
                    // under the link lock so the draw keyed by it lands
                    // at the position it determines; LVW also stamps a
                    // real per-channel seq here so supersede ordering is
                    // well-defined even on the clean wire.
                    let mut link = self.links[self.li(src, dst)].lock();
                    let arrival = link.arrivals;
                    link.arrivals += 1;
                    let seq = if lvw {
                        let chan = link.chan(channel);
                        let s = chan.next_seq;
                        chan.next_seq += 1;
                        s
                    } else {
                        0
                    };
                    self.mailbox_insert(src, dst, channel, seq, block, arrival);
                }
            }
            return;
        };
        let seq;
        {
            let mut link = self.links[self.li(src, dst)].lock();
            let chan = link.chan(channel);
            seq = chan.next_seq;
            chan.next_seq += 1;
            match channel.delivery {
                Delivery::ExactlyOnce => {
                    chan.unacked.insert(
                        seq,
                        InFlight {
                            block: block.share(),
                            attempt: 1,
                            due: Instant::now() + plan.rto,
                        },
                    );
                }
                Delivery::AtMostOnce => {
                    // One wire attempt is all this channel gets: no
                    // retransmit buffer, no acks, no sender state.
                }
                Delivery::LatestValueWins => {
                    // Supersede everything older still in the sender's
                    // hands: the retransmit slot and fault-plane limbo.
                    // At most one value per channel is ever in flight.
                    let purged = (chan.unacked.len() + chan.limbo.len()) as u64;
                    chan.unacked.clear();
                    chan.limbo.clear();
                    if purged > 0 {
                        self.fstats.superseded.fetch_add(purged, Ordering::Relaxed);
                        self.trace_fault(src, FaultKind::Supersede, src, dst, seq);
                    }
                    chan.unacked.insert(
                        seq,
                        InFlight {
                            block: block.share(),
                            attempt: 1,
                            due: Instant::now() + plan.rto,
                        },
                    );
                }
            }
        }
        self.wire_transmit(src, dst, channel, seq, 1, block);
    }

    /// One attempt to push `seq` of link `src → dst` across the faulty
    /// wire: may be dropped, duplicated, or (per copy) delayed into
    /// limbo; surviving immediate copies reach [`Self::deliver_link`].
    /// Only called with a plan installed. Fault draws are salted by
    /// channel id so every channel sees an independent decision stream
    /// (channel 0's stream is the legacy one).
    fn wire_transmit(
        &self,
        src: usize,
        dst: usize,
        channel: Channel,
        seq: u64,
        attempt: u32,
        block: MsgBlock,
    ) {
        let plan = self.plan.as_ref().expect("wire_transmit requires a plan");
        self.fstats.transmissions.fetch_add(1, Ordering::Relaxed);
        let f = plan.faults_for(src, dst);
        // Per-channel salt offset: disjoint decision streams per
        // channel, byte-identical to the pre-QoS draws for channel 0.
        let co = channel.id as u64 * 4096;
        if f.drop > 0.0
            && unit(link_draw(plan.seed, src, dst, seq, attempt, SALT_DROP + co)) < f.drop
        {
            self.fstats.dropped.fetch_add(1, Ordering::Relaxed);
            self.trace_fault(src, FaultKind::Drop, src, dst, seq);
            return;
        }
        let copies: u64 = if f.dup > 0.0
            && unit(link_draw(plan.seed, src, dst, seq, attempt, SALT_DUP + co)) < f.dup
        {
            self.fstats.transmissions.fetch_add(1, Ordering::Relaxed);
            self.fstats.duplicated.fetch_add(1, Ordering::Relaxed);
            self.trace_fault(src, FaultKind::Duplicate, src, dst, seq);
            2
        } else {
            1
        };
        let closed = self.is_closed();
        for copy in 0..copies {
            let b = block.share();
            // Distinct decision streams per copy: shift the salt space.
            let delay_salt = SALT_DELAY + co + copy * 16;
            let slots_salt = SALT_DELAY_SLOTS + co + copy * 16;
            let delayed = !closed
                && f.delay > 0.0
                && f.max_delay_slots > 0
                && unit(link_draw(plan.seed, src, dst, seq, attempt, delay_salt)) < f.delay;
            if delayed {
                let slots = 1
                    + (link_draw(plan.seed, src, dst, seq, attempt, slots_salt) as usize
                        % f.max_delay_slots);
                self.fstats.delayed.fetch_add(1, Ordering::Relaxed);
                self.trace_fault(src, FaultKind::Delay, src, dst, seq);
                let due = Instant::now() + plan.tick * slots as u32;
                self.links[self.li(src, dst)]
                    .lock()
                    .chan(channel)
                    .limbo
                    .push(Limbo { seq, block: b, due });
            } else {
                self.deliver_link(src, dst, channel, seq, b);
            }
        }
    }

    /// Receive side of the QoS layer, dispatching on the channel's
    /// guarantee. Exactly-once: dedup, reassemble into sequence, hand
    /// in-order packets to the mailbox, and acknowledge (drop the
    /// sender's retransmit buffer below the watermark). At-most-once /
    /// latest-value-wins: a monotonic floor — only strictly newer seqs
    /// are delivered, so nothing ever surfaces twice and a stale value
    /// never overtakes a newer one.
    fn deliver_link(&self, src: usize, dst: usize, channel: Channel, seq: u64, block: MsgBlock) {
        let mut link = self.links[self.li(src, dst)].lock();
        let mut ready: Vec<(u64, MsgBlock)> = Vec::new();
        {
            let chan = link.chan(channel);
            match channel.delivery {
                Delivery::ExactlyOnce => {
                    if seq < chan.expected || chan.ooo.contains_key(&seq) {
                        self.fstats.dedup_dropped.fetch_add(1, Ordering::Relaxed);
                        self.trace_fault(dst, FaultKind::DedupDrop, src, dst, seq);
                        return;
                    }
                    // Selective acknowledgement: the copy is on the
                    // receiver now, so stop retransmitting this seq even
                    // if it sits out-of-order behind a gap. Without
                    // this, one dropped packet makes every later
                    // in-flight seq on the link look lost, and the
                    // spurious retransmits blow the wire-overhead
                    // budget.
                    chan.unacked.remove(&seq);
                    chan.ooo.insert(seq, block);
                    loop {
                        let next = chan.expected;
                        let Some(block) = chan.ooo.remove(&next) else {
                            break;
                        };
                        chan.expected += 1;
                        ready.push((next, block));
                    }
                    let watermark = chan.expected;
                    chan.unacked.retain(|s, _| *s >= watermark);
                }
                Delivery::AtMostOnce | Delivery::LatestValueWins => {
                    if seq < chan.expected {
                        self.fstats.dedup_dropped.fetch_add(1, Ordering::Relaxed);
                        self.trace_fault(dst, FaultKind::DedupDrop, src, dst, seq);
                        return;
                    }
                    chan.expected = seq + 1;
                    // LVW acknowledgment: this value (and anything
                    // older it superseded) is settled; stop
                    // retransmitting at or below it. AtMostOnce keeps
                    // no sender state, so the retain is a no-op there.
                    chan.unacked.retain(|s, _| *s > seq);
                    ready.push((seq, block));
                }
            }
        }
        for (s, b) in ready {
            let arrival = link.arrivals;
            link.arrivals += 1;
            // Mailbox lock nests inside the link lock (never reversed),
            // keeping the seq→mailbox order atomic per link.
            self.mailbox_insert(src, dst, channel, s, b, arrival);
        }
    }

    /// One pump pass: per channel of every link, release due (or, once
    /// closed, all) limbo copies in sequence order, then retransmit
    /// overdue unacknowledged packets with capped exponential backoff.
    /// At-most-once channels never have unacked entries, so they only
    /// ever see the limbo-release half.
    fn pump_tick(&self) {
        let Some(plan) = &self.plan else { return };
        let now = Instant::now();
        let closed = self.is_closed();
        let n = self.boxes.len();
        for li in 0..self.links.len() {
            let (src, dst) = (li / n, li % n);
            let mut releases: Vec<(Channel, Limbo)> = Vec::new();
            let mut retx: Vec<(Channel, u64, u32, MsgBlock)> = Vec::new();
            {
                let mut link = self.links[li].lock();
                let mut pump_chan = |chan: &mut ChanState| {
                    if chan.limbo.is_empty() && chan.unacked.is_empty() {
                        return;
                    }
                    let channel = chan.channel;
                    let mut i = 0;
                    while i < chan.limbo.len() {
                        if closed || chan.limbo[i].due <= now {
                            releases.push((channel, chan.limbo.swap_remove(i)));
                        } else {
                            i += 1;
                        }
                    }
                    if !closed {
                        for (seq, inf) in chan.unacked.iter_mut() {
                            if inf.due <= now {
                                inf.attempt += 1;
                                let backoff = plan.rto * (1u32 << (inf.attempt - 1).min(10));
                                inf.due = now + backoff.min(plan.rto_cap);
                                retx.push((channel, *seq, inf.attempt, inf.block.share()));
                            }
                        }
                    }
                };
                pump_chan(&mut link.chan0);
                for chan in link.extra.values_mut() {
                    pump_chan(chan);
                }
            }
            releases.sort_by_key(|(c, l)| (c.id, l.seq));
            for (channel, l) in releases {
                self.deliver_link(src, dst, channel, l.seq, l.block);
            }
            for (channel, seq, attempt, block) in retx {
                self.fstats.retransmitted.fetch_add(1, Ordering::Relaxed);
                self.trace_fault(src, FaultKind::Retransmit, src, dst, seq);
                self.wire_transmit(src, dst, channel, seq, attempt, block);
            }
        }
    }

    /// Deliver a message block from `src` into `dst`'s mailbox on the
    /// default (exactly-once) channel. The block **moves** — no copy is
    /// taken; share it first to keep a handle. Never blocks; the
    /// simulated wire has unbounded buffering, like the
    /// reliable-delivery abstraction the MMI exposes.
    #[inline]
    pub fn send(&self, src: usize, dst: usize, block: impl Into<MsgBlock>) {
        self.send_on(src, dst, block, Channel::DEFAULT);
    }

    /// Like [`Interconnect::send`] but on an explicit delivery
    /// channel: the channel's [`Delivery`] guarantee governs what the
    /// QoS layer does on loss, duplication, and supersession. Channel
    /// ordering is per `(link, channel)` — messages on different
    /// channels of one link may interleave arbitrarily.
    #[inline]
    pub fn send_on(&self, src: usize, dst: usize, block: impl Into<MsgBlock>, channel: Channel) {
        let block = block.into();
        let t = &self.traffic[src];
        bump(&t.msgs_sent, 1);
        bump(&t.bytes_sent, block.len() as u64);
        self.transmit(src, dst, channel, block);
    }

    /// Deliver a block into `dst`'s mailbox from *outside* the machine —
    /// the entry point used by front-ends such as CCS that inject
    /// external request traffic. The packet's `src` reads as `dst`
    /// itself (there is no external PE id) so per-(src,dst) FIFO stays
    /// well-defined, but the traffic is counted under the separate
    /// `msgs_injected`/`bytes_injected` counters, never as sends — so
    /// [`Interconnect::load_of`] is not skewed by external volume. It is
    /// subject to the same [`DeliveryMode`] scrambling — and the same
    /// fault plane — as native sends.
    pub fn inject(&self, dst: usize, block: impl Into<MsgBlock>) {
        let block = block.into();
        let t = &self.traffic[dst];
        t.msgs_injected.fetch_add(1, Ordering::Relaxed);
        t.bytes_injected
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        self.transmit(dst, dst, Channel::DEFAULT, block);
    }

    /// Broadcast to every PE except `src` (`CmiSyncBroadcast` semantics:
    /// the paper notes the broadcast is *not* a barrier — only the
    /// sender calls it). One block, P−1 refcount bumps: every
    /// destination's packet aliases the same allocation.
    pub fn broadcast_excl(&self, src: usize, block: impl Into<MsgBlock>) {
        self.broadcast_to(src, block.into(), false);
    }

    /// Broadcast to every PE including `src` (one block, P bumps).
    pub fn broadcast_all(&self, src: usize, block: impl Into<MsgBlock>) {
        self.broadcast_to(src, block.into(), true);
    }

    /// Shared broadcast body: **pre-stage** all per-destination shares
    /// before touching any link or mailbox lock, then run the append
    /// loop. The refcount traffic (P bumps on one allocation, nothing
    /// else) completes up front, so no destination's inbox lock is ever
    /// held while another share is being minted — the append loop holds
    /// exactly one short lock at a time. The original handle is dropped
    /// before the appends, so a broadcast to P PEs is exactly 1
    /// allocation + P live references, which tests assert via
    /// [`MsgBlock::ref_count`] and the pool's take counter.
    fn broadcast_to(&self, src: usize, block: MsgBlock, include_src: bool) {
        let mut shares: Vec<(usize, MsgBlock)> = Vec::with_capacity(self.num_pes());
        for dst in 0..self.num_pes() {
            if include_src || dst != src {
                shares.push((dst, block.share()));
            }
        }
        drop(block);
        for (dst, b) in shares {
            self.send(src, dst, b);
        }
    }

    /// True while `pe` sits inside a stall window — scripted by the
    /// fault plan or armed via [`Interconnect::stall_for`]. A stalled
    /// PE's receive paths yield nothing (its mailbox keeps filling). A
    /// closed machine overrides every stall so teardown can drain.
    #[inline]
    pub fn stalled(&self, pe: usize) -> bool {
        if !self.has_stalls.load(Ordering::Acquire) || self.is_closed() {
            return false;
        }
        let t = self.uptime();
        self.stalls
            .lock()
            .iter()
            .any(|w| w.pe == pe && t >= w.from && w.to.is_none_or(|to| t < to))
    }

    /// Arm a stall window for `pe` covering the next `dur` of uptime.
    /// Packets keep queuing; the PE's receive paths return nothing until
    /// the window passes. Usable with or without a fault plan — this is
    /// how tests stall a PE *after* boot-time barriers have completed.
    pub fn stall_for(&self, pe: usize, dur: Duration) {
        assert!(pe < self.num_pes(), "stall_for: PE {pe} out of range");
        let from = self.uptime();
        self.stalls.lock().push(StallWindow {
            pe,
            from,
            to: Some(from + dur),
        });
        self.has_stalls.store(true, Ordering::Release);
    }

    /// Non-blocking receive: the next packet for `pe`, if any. Yields
    /// nothing while `pe` is stalled. This is the thin single-message
    /// wrapper over the two-list mailbox; bulk consumers (the scheduler)
    /// should use [`Interconnect::drain_into`] instead, which amortizes
    /// the lock traffic over whole batches.
    #[inline]
    pub fn try_recv(&self, pe: usize) -> Option<Packet> {
        if self.stalled(pe) {
            return None;
        }
        let out = self.mailbox_pop(pe);
        if out.is_some() {
            bump(&self.traffic[pe].msgs_recv, 1);
        }
        out
    }

    /// Batched receive: move **every** packet currently queued for `pe`
    /// into `out` (preserving delivery order) and return how many moved.
    /// The whole inbox is swapped out under one short lock acquisition —
    /// the per-message cost of intake no longer includes a contended
    /// lock op. Yields nothing while `pe` is stalled.
    #[inline]
    pub fn drain_into(&self, pe: usize, out: &mut Vec<Packet>) -> usize {
        self.drain_into_bounded(pe, out, usize::MAX)
    }

    /// Like [`Interconnect::drain_into`] but moves at most `max`
    /// packets; the remainder stays queued (staged on the receiver side,
    /// still ahead of anything later in delivery order).
    #[inline]
    pub fn drain_into_bounded(
        &self,
        pe: usize,
        out: &mut impl Extend<Packet>,
        max: usize,
    ) -> usize {
        if max == 0 || self.stalled(pe) {
            return 0;
        }
        let mbox = &self.boxes[pe];
        if mbox.depth() == 0 {
            return 0;
        }
        let mut staged = mbox.staged.lock();
        if staged.len() < max {
            // One short lock acquisition moves the whole inbox over.
            let mut inbox = mbox.inbox.lock();
            if staged.is_empty() {
                // Swap rather than drain: the old staged buffer's
                // capacity becomes the new inbox, so steady state
                // recycles two deques with zero allocation.
                std::mem::swap(&mut *staged, &mut *inbox);
            } else {
                staged.extend(inbox.drain(..));
            }
            mbox.inbox_len.store(inbox.len(), Ordering::Release);
        }
        let n = staged.len().min(max);
        out.extend(staged.drain(..n));
        mbox.staged_len.store(staged.len(), Ordering::Release);
        drop(staged);
        if n > 0 {
            bump(&self.traffic[pe].msgs_recv, n as u64);
        }
        n
    }

    /// Blocking receive with timeout. Returns `None` on timeout or once
    /// the machine has been closed and the mailbox drained. While `pe`
    /// is stalled the call sleeps in short slices — it never pops a
    /// packet inside a stall window.
    pub fn recv_timeout(&self, pe: usize, timeout: Duration) -> Option<Packet> {
        let mbox = &self.boxes[pe];
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if self.stalled(pe) {
                if now >= deadline {
                    return None;
                }
                std::thread::sleep(STALL_SLICE.min(deadline.saturating_duration_since(now)));
                continue;
            }
            if let Some(p) = self.mailbox_pop(pe) {
                bump(&self.traffic[pe].msgs_recv, 1);
                return Some(p);
            }
            // Nothing staged and the inbox was empty at the pop: park on
            // the inbox condvar. The re-check under the lock closes the
            // race with a sender that pushed between the pop and here.
            let mut q = mbox.inbox.lock();
            if !q.is_empty() {
                continue;
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            // With stall windows armed, wait only a slice at a time so a
            // window opening mid-wait is observed before any pop.
            let wake = if self.has_stalls.load(Ordering::Acquire) {
                (now + STALL_SLICE).min(deadline)
            } else {
                deadline
            };
            if mbox.cv.wait_until(&mut q, wake).timed_out() && Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Park until `pe`'s mailbox is non-empty, the machine closes, or the
    /// timeout expires. Used by the scheduler's idle loop so an idle PE
    /// does not spin. A stalled PE parks for the duration (a non-empty
    /// mailbox it is forbidden to read is not a wake condition).
    pub fn wait_nonempty(&self, pe: usize, timeout: Duration) {
        let mbox = &self.boxes[pe];
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            if self.stalled(pe) {
                std::thread::sleep(STALL_SLICE.min(deadline.saturating_duration_since(now)));
                continue;
            }
            let mut q = mbox.inbox.lock();
            // Depth covers staged packets too: a receiver that left
            // mail staged must not park on it.
            if !q.is_empty()
                || mbox.staged_len.load(Ordering::Acquire) > 0
                || self.closed.load(Ordering::Acquire)
            {
                return;
            }
            let wake = if self.has_stalls.load(Ordering::Acquire) {
                (now + STALL_SLICE).min(deadline)
            } else {
                deadline
            };
            if mbox.cv.wait_until(&mut q, wake).timed_out() && wake == deadline {
                return;
            }
        }
    }

    /// Spin-then-park idle wait: spin up to `spin` iterations on the
    /// lock-free mailbox depth (so a message landing within the spin
    /// budget is noticed without paying a condvar wakeup), then fall
    /// back to [`Interconnect::wait_nonempty`]. Returns the number of
    /// spin iterations consumed (`spin` means the budget ran out and
    /// the call parked). With stall windows armed it parks immediately —
    /// a stalled PE must not burn a core polling mail it cannot read.
    pub fn wait_nonempty_spin(&self, pe: usize, timeout: Duration, spin: u32) -> u32 {
        if spin > 0 && !self.has_stalls.load(Ordering::Acquire) {
            let mbox = &self.boxes[pe];
            for i in 0..spin {
                if mbox.depth() > 0 || self.closed.load(Ordering::Acquire) {
                    return i;
                }
                std::hint::spin_loop();
            }
        }
        self.wait_nonempty(pe, timeout);
        spin
    }

    /// Queued (undelivered) packet count for `pe` — two atomic reads,
    /// safe to poll from monitoring paths at any rate.
    #[inline]
    pub fn pending(&self, pe: usize) -> usize {
        self.boxes[pe].depth()
    }

    /// Mark the machine closed and wake all blocked receivers. Receives
    /// drain remaining packets, then return `None`. Stall windows stop
    /// applying; the fault pump does one final limbo flush and exits.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for b in &self.boxes {
            // Hold the lock so a receiver between its check and its wait
            // cannot miss the notification.
            let _q = b.inbox.lock();
            b.cv.notify_all();
        }
    }

    /// True once [`Interconnect::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Traffic counters for `pe`.
    pub fn traffic(&self, pe: usize) -> PeTraffic {
        let t = &self.traffic[pe];
        PeTraffic {
            msgs_sent: t.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: t.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: t.msgs_recv.load(Ordering::Relaxed),
            msgs_injected: t.msgs_injected.load(Ordering::Relaxed),
            bytes_injected: t.bytes_injected.load(Ordering::Relaxed),
        }
    }

    /// Live load snapshot for one PE: cumulative traffic counters plus
    /// the current mailbox depth and stall state. This is the public
    /// read side used by the CCS bench and load balancers; it takes the
    /// mailbox lock only long enough to read the queue length.
    pub fn load_of(&self, pe: usize) -> PeLoad {
        let cell = &self.loads[pe];
        PeLoad {
            pe,
            traffic: self.traffic(pe),
            queued: self.pending(pe),
            staged: self.staged_of(pe),
            run_queue: cell.run_queue.load(Ordering::Relaxed),
            occupancy_pm: cell.occupancy_pm.load(Ordering::Relaxed),
            stalled: self.stalled(pe),
        }
    }

    /// Publish `pe`'s own scheduler sample: run-queue depth and EMA
    /// busy fraction in per-mille. Called (throttled) from the Csd loop;
    /// single-writer per cell, so plain stores suffice.
    pub fn publish_load(&self, pe: usize, run_queue: usize, occupancy_pm: u32) {
        let cell = &self.loads[pe];
        cell.run_queue.store(run_queue, Ordering::Relaxed);
        cell.occupancy_pm
            .store(occupancy_pm.min(1000), Ordering::Relaxed);
    }

    /// Depth of `pe`'s staged (receiver-private) list — the stealable
    /// share of [`Interconnect::pending`]. Lock-free read.
    #[inline]
    pub fn staged_of(&self, pe: usize) -> usize {
        self.boxes[pe].staged_len.load(Ordering::Acquire)
    }

    /// Extract up to `max` *stealable* packets from `victim`'s staged
    /// list, preserving relative FIFO order of both the stolen packets
    /// and the survivors.
    ///
    /// Only the staged list is touched — never the inbox, where the
    /// reliability sublayer's ordered/deduplicated stream lands — and
    /// only packets that are (a) flag-tagged relocatable by their
    /// sender ([`converse_msg::FLAG_STEALABLE`]) and (b) on the default
    /// channel qualify. Non-default channels carry per-channel delivery
    /// guarantees (ordering, LVW supersede) that a relocation would
    /// silently break, so their packets stay put regardless of the flag.
    ///
    /// Public for the socket transport, which extracts the batch here
    /// and donates it over the wire; in-process callers want
    /// [`Interconnect::steal_from`].
    pub fn steal_take(&self, victim: usize, max: usize) -> Vec<Packet> {
        if max == 0 {
            return Vec::new();
        }
        let mbox = &self.boxes[victim];
        let mut staged = mbox.staged.lock();
        let mut stolen = Vec::new();
        // Walk back-to-front so removals don't shift unvisited indices;
        // newest work is taken first, which also leaves the oldest
        // (soonest-executed) packets with their owner.
        let mut i = staged.len();
        while i > 0 && stolen.len() < max {
            i -= 1;
            let p = &staged[i];
            if p.channel.id == 0 && converse_msg::peek_stealable(p.block.as_slice()) {
                stolen.push(staged.remove(i).expect("index in range"));
            }
        }
        mbox.staged_len.store(staged.len(), Ordering::Release);
        drop(staged);
        // Collected newest-first; restore original arrival order.
        stolen.reverse();
        stolen
    }

    /// Move up to `max` stealable packets from `victim`'s staged list
    /// into `thief`'s mailbox; returns how many moved. Donated packets
    /// re-enter through the unsequenced (`seq == 0`) insert path — they
    /// already cleared the reliability sublayer at the victim, so they
    /// carry no per-link stream state. The two mailbox locks are never
    /// held at once.
    pub fn steal_from(&self, victim: usize, thief: usize, max: usize) -> usize {
        if victim == thief {
            return 0;
        }
        let stolen = self.steal_take(victim, max);
        let n = stolen.len();
        for p in stolen {
            self.mailbox_insert(p.src, thief, p.channel, 0, p.block, 0);
        }
        if n > 0 {
            // Mark the splice instant (keeping the oldest pending one)
            // so the thief's scheduler can time splice→first-run.
            let now = self.uptime().as_nanos() as u64;
            let _ = self.steal_marks[thief].compare_exchange(
                0,
                now.max(1),
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        n
    }

    /// Take-and-clear `pe`'s steal splice mark (see
    /// [`CmiTransport::take_steal_mark`]).
    pub fn take_steal_mark(&self, pe: usize) -> u64 {
        if self.steal_marks[pe].load(Ordering::Relaxed) == 0 {
            return 0;
        }
        self.steal_marks[pe].swap(0, Ordering::AcqRel)
    }

    /// Snapshot of every PE's load, in PE order. The per-PE reads are
    /// not mutually atomic (the machine keeps running underneath), which
    /// is fine for the monitoring/balancing uses this serves.
    pub fn load_snapshot(&self) -> Vec<PeLoad> {
        (0..self.num_pes()).map(|pe| self.load_of(pe)).collect()
    }

    /// Aggregate traffic over all PEs.
    pub fn total_traffic(&self) -> PeTraffic {
        let mut out = PeTraffic::default();
        for pe in 0..self.num_pes() {
            let t = self.traffic(pe);
            out.msgs_sent += t.msgs_sent;
            out.bytes_sent += t.bytes_sent;
            out.msgs_recv += t.msgs_recv;
            out.msgs_injected += t.msgs_injected;
            out.bytes_injected += t.bytes_injected;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv() {
        let net = Interconnect::new(2);
        net.send(0, 1, vec![1, 2, 3]);
        let p = net.try_recv(1).unwrap();
        assert_eq!(p.src, 0);
        assert_eq!(p.bytes(), vec![1, 2, 3]);
        assert!(net.try_recv(1).is_none());
    }

    #[test]
    fn self_send_works() {
        let net = Interconnect::new(1);
        net.send(0, 0, vec![9]);
        assert_eq!(net.try_recv(0).unwrap().bytes(), vec![9]);
    }

    #[test]
    fn fifo_per_pair_order() {
        let net = Interconnect::new(2);
        for i in 0..10u8 {
            net.send(0, 1, vec![i]);
        }
        for i in 0..10u8 {
            assert_eq!(net.try_recv(1).unwrap().bytes(), vec![i]);
        }
    }

    #[test]
    fn broadcast_excl_skips_sender() {
        let net = Interconnect::new(4);
        net.broadcast_excl(1, vec![7u8]);
        assert!(net.try_recv(1).is_none());
        for pe in [0, 2, 3] {
            assert_eq!(net.try_recv(pe).unwrap().bytes(), vec![7]);
        }
    }

    #[test]
    fn broadcast_all_includes_sender() {
        let net = Interconnect::new(3);
        net.broadcast_all(0, vec![8u8]);
        for pe in 0..3 {
            assert_eq!(net.try_recv(pe).unwrap().bytes(), vec![8]);
        }
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let net = Interconnect::new(2);
        let net2 = net.clone();
        let h = std::thread::spawn(move || net2.recv_timeout(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        net.send(0, 1, vec![42]);
        let p = h.join().unwrap().unwrap();
        assert_eq!(p.bytes(), vec![42]);
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Interconnect::new(1);
        let t0 = Instant::now();
        assert!(net.recv_timeout(0, Duration::from_millis(30)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let net = Interconnect::new(1);
        let net2 = net.clone();
        let h = std::thread::spawn(move || net2.recv_timeout(0, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        net.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn closed_machine_still_drains_mailbox() {
        let net = Interconnect::new(1);
        net.send(0, 0, vec![5]);
        net.close();
        assert_eq!(
            net.recv_timeout(0, Duration::from_millis(10))
                .unwrap()
                .bytes(),
            vec![5]
        );
        assert!(net.recv_timeout(0, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn reorder_mode_delivers_everything() {
        let net = Interconnect::with_mode(2, DeliveryMode::Reorder { seed: 7, window: 8 });
        let n = 100u8;
        for i in 0..n {
            net.send(0, 1, vec![i]);
        }
        let mut got: Vec<u8> = (0..n)
            .map(|_| net.try_recv(1).unwrap().bytes()[0])
            .collect();
        assert!(net.try_recv(1).is_none());
        let in_order = got.windows(2).all(|w| w[0] < w[1]);
        assert!(!in_order, "reorder mode should scramble order");
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_is_deterministic_per_seed() {
        let run = |seed| {
            let net = Interconnect::with_mode(2, DeliveryMode::Reorder { seed, window: 4 });
            for i in 0..20u8 {
                net.send(0, 1, vec![i]);
            }
            (0..20)
                .map(|_| net.try_recv(1).unwrap().bytes()[0])
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn traffic_counters() {
        let net = Interconnect::new(2);
        net.send(0, 1, vec![0; 100]);
        net.send(0, 1, vec![0; 50]);
        net.try_recv(1);
        let t0 = net.traffic(0);
        assert_eq!(t0.msgs_sent, 2);
        assert_eq!(t0.bytes_sent, 150);
        assert_eq!(net.traffic(1).msgs_recv, 1);
        let total = net.total_traffic();
        assert_eq!(total.msgs_sent, 2);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = Interconnect::new(0);
    }

    #[test]
    fn pending_counts() {
        let net = Interconnect::new(2);
        assert_eq!(net.pending(1), 0);
        net.send(0, 1, vec![1]);
        net.send(0, 1, vec![2]);
        assert_eq!(net.pending(1), 2);
        net.try_recv(1);
        assert_eq!(net.pending(1), 1);
    }

    #[test]
    fn inject_and_load_snapshot() {
        let net = Interconnect::new(3);
        net.inject(2, vec![1, 2, 3]);
        net.send(0, 2, vec![4]);
        let snap = net.load_snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[2].pe, 2);
        assert_eq!(snap[2].queued, 2);
        assert_eq!(snap[0].traffic.msgs_sent, 1);
        // Injected traffic is accounted separately: it must not inflate
        // the destination's own send counters.
        assert_eq!(snap[2].traffic.msgs_sent, 0);
        assert_eq!(snap[2].traffic.bytes_sent, 0);
        assert_eq!(snap[2].traffic.msgs_injected, 1);
        assert_eq!(snap[2].traffic.bytes_injected, 3);
        let total = net.total_traffic();
        assert_eq!(total.msgs_sent, 1);
        assert_eq!(total.msgs_injected, 1);
        // The injected packet still reads as coming from the destination
        // itself (there is no external PE id).
        assert_eq!(net.try_recv(2).unwrap().src, 2);
        assert_eq!(net.load_of(2).queued, 1);
    }

    #[test]
    fn broadcast_is_one_allocation_and_all_packets_alias() {
        let net = Interconnect::new(8);
        let block = MsgBlock::copy_from(&[9u8; 777]);
        let src_ptr = block.as_ptr();
        let takes = converse_msg::pool::stats().takes();
        net.broadcast_all(0, block);
        assert_eq!(
            converse_msg::pool::stats().takes(),
            takes,
            "broadcast must be refcount bumps only — zero further allocations"
        );
        for pe in 0..8 {
            let p = net.try_recv(pe).unwrap();
            assert_eq!(p.bytes(), &[9u8; 777][..]);
            assert_eq!(
                p.block.as_ptr(),
                src_ptr,
                "PE {pe}'s packet must alias the sender's allocation"
            );
        }
    }

    #[test]
    fn send_moves_block_without_copy() {
        let net = Interconnect::new(2);
        let block = MsgBlock::copy_from(b"zero copy");
        let ptr = block.as_ptr();
        net.send(0, 1, block);
        assert_eq!(net.try_recv(1).unwrap().block.as_ptr(), ptr);
    }

    #[test]
    fn wait_nonempty_returns_when_message_arrives() {
        let net = Interconnect::new(2);
        let net2 = net.clone();
        let h = std::thread::spawn(move || {
            net2.wait_nonempty(1, Duration::from_secs(5));
            net2.pending(1)
        });
        std::thread::sleep(Duration::from_millis(20));
        net.send(0, 1, vec![1]);
        assert_eq!(h.join().unwrap(), 1);
    }

    // ---- fault plane + reliability sublayer ---------------------------

    /// A plan with timing tight enough for unit tests.
    fn fast_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .retransmit(Duration::from_micros(500), Duration::from_millis(5))
            .tick(Duration::from_micros(200))
    }

    fn chaos_net(plan: FaultPlan, n: usize) -> Arc<Interconnect> {
        Interconnect::with_config(n, DeliveryMode::Fifo, Some(plan), None)
    }

    /// Drain `count` packets for `pe`, panicking if the net stops
    /// producing them.
    fn drain(net: &Interconnect, pe: usize, count: usize) -> Vec<Packet> {
        (0..count)
            .map(|i| {
                net.recv_timeout(pe, Duration::from_secs(10))
                    .unwrap_or_else(|| panic!("packet {i}/{count} never arrived"))
            })
            .collect()
    }

    #[test]
    fn lossy_link_still_delivers_exactly_once_in_order() {
        let plan = fast_plan(0xBAD5EED).faults(LinkFaults {
            drop: 0.5,
            dup: 0.3,
            delay: 0.5,
            max_delay_slots: 3,
        });
        let net = chaos_net(plan, 2);
        let n = 200u32;
        for i in 0..n {
            net.send(0, 1, i.to_le_bytes().to_vec());
        }
        let got = drain(&net, 1, n as usize);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(
                u32::from_le_bytes(p.bytes().try_into().unwrap()),
                i as u32,
                "payloads must arrive exactly once, in per-link order"
            );
        }
        // Exactly once: nothing further may surface, even after giving
        // straggler duplicates time to be pumped out of limbo.
        std::thread::sleep(Duration::from_millis(20));
        assert!(net.try_recv(1).is_none(), "duplicate escaped dedup");
        let s = net.fault_stats();
        assert!(
            s.dropped > 0 && s.retransmitted > 0,
            "plan was exercised: {s:?}"
        );
        assert!(
            s.duplicated > 0 && s.dedup_dropped > 0,
            "dup path exercised: {s:?}"
        );
        net.close();
    }

    #[test]
    fn clean_plan_is_invisible_but_counts_transmissions() {
        let net = chaos_net(fast_plan(1), 2);
        for i in 0..50u8 {
            net.send(0, 1, vec![i]);
        }
        for i in 0..50u8 {
            assert_eq!(net.try_recv(1).unwrap().bytes(), vec![i]);
        }
        let s = net.fault_stats();
        assert_eq!(s.transmissions, 50);
        assert_eq!(s.dropped + s.duplicated + s.delayed + s.dedup_dropped, 0);
        net.close();
    }

    #[test]
    fn delayed_packets_surface_in_order_after_pump() {
        // Every packet delayed: nothing is immediately receivable, but
        // the pump releases limbo copies and order still holds.
        let plan = fast_plan(3).faults(LinkFaults {
            drop: 0.0,
            dup: 0.0,
            delay: 1.0,
            max_delay_slots: 2,
        });
        let net = chaos_net(plan, 2);
        for i in 0..20u8 {
            net.send(0, 1, vec![i]);
        }
        assert!(net.try_recv(1).is_none(), "all copies should sit in limbo");
        let got = drain(&net, 1, 20);
        let payloads: Vec<u8> = got.iter().map(|p| p.bytes()[0]).collect();
        assert_eq!(payloads, (0..20).collect::<Vec<_>>());
        // ≥, not ==: spurious retransmits of limbo-held packets get
        // delayed again by the same plan.
        assert!(net.fault_stats().delayed >= 20);
        net.close();
    }

    #[test]
    fn identical_seeds_produce_identical_fault_traces() {
        // Satellite regression: two identically-seeded runs emit the
        // same trace event sequence. A dup-only plan keeps every fault
        // decision on the sender's thread (no pump involvement), so the
        // full per-PE sequence is deterministic.
        let run = |seed: u64| {
            let sink = converse_trace::MemorySink::new(2, 4096);
            let plan = fast_plan(seed).faults(LinkFaults {
                drop: 0.0,
                dup: 0.5,
                delay: 0.0,
                max_delay_slots: 0,
            });
            let net = Interconnect::with_config(
                2,
                DeliveryMode::Fifo,
                Some(plan),
                Some(sink.clone() as Arc<dyn TraceSink>),
            );
            for i in 0..100u32 {
                net.send(0, 1, i.to_le_bytes().to_vec());
            }
            let _ = drain(&net, 1, 100);
            net.close();
            let events: Vec<Event> = (0..2)
                .flat_map(|pe| sink.records(pe))
                .map(|r| r.event)
                .collect();
            assert!(!events.is_empty(), "dup plan must emit fault events");
            events
        };
        assert_eq!(run(42), run(42), "same seed must replay the same schedule");
        assert_ne!(run(42), run(43), "different seeds must diverge");
    }

    #[test]
    fn stall_window_blocks_recv_until_it_passes() {
        let net = Interconnect::new(2);
        net.send(0, 1, vec![7]);
        net.stall_for(1, Duration::from_millis(60));
        assert!(net.stalled(1));
        assert!(net.try_recv(1).is_none(), "stalled PE must not pop");
        assert!(
            net.recv_timeout(1, Duration::from_millis(10)).is_none(),
            "blocking recv must not pop inside the window"
        );
        // Queue keeps filling underneath.
        net.send(0, 1, vec![8]);
        assert_eq!(net.pending(1), 2);
        assert!(net.load_of(1).stalled);
        // After the window, everything drains in order.
        let p = net.recv_timeout(1, Duration::from_secs(5)).unwrap();
        assert_eq!(p.bytes(), vec![7]);
        assert!(!net.stalled(1));
        assert_eq!(net.try_recv(1).unwrap().bytes(), vec![8]);
    }

    #[test]
    fn crash_window_never_recovers_but_close_overrides() {
        let plan = fast_plan(5).crash(0, Duration::ZERO);
        let net = chaos_net(plan, 1);
        net.send(0, 0, vec![1]);
        assert!(net.stalled(0));
        assert!(net.recv_timeout(0, Duration::from_millis(30)).is_none());
        // Teardown must still be able to drain the mailbox.
        net.close();
        assert!(!net.stalled(0));
        assert_eq!(
            net.recv_timeout(0, Duration::from_millis(100))
                .unwrap()
                .bytes(),
            vec![1]
        );
    }

    #[test]
    fn reliability_composes_with_reorder_mode() {
        // Reliability reassembles per-link sequence; reorder mode then
        // scrambles mailbox order on purpose. Exactly-once must still
        // hold: every payload surfaces once.
        let plan = fast_plan(9).faults(LinkFaults {
            drop: 0.3,
            dup: 0.2,
            delay: 0.3,
            max_delay_slots: 2,
        });
        let net = Interconnect::with_config(
            2,
            DeliveryMode::Reorder {
                seed: 11,
                window: 6,
            },
            Some(plan),
            None,
        );
        let n = 100u32;
        for i in 0..n {
            net.send(0, 1, i.to_le_bytes().to_vec());
        }
        let mut got: Vec<u32> = drain(&net, 1, n as usize)
            .iter()
            .map(|p| u32::from_le_bytes(p.bytes().try_into().unwrap()))
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        assert!(net.try_recv(1).is_none(), "duplicate escaped dedup");
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        net.close();
    }

    #[test]
    #[should_panic(expected = "no liveness")]
    fn plan_with_total_loss_rejected_at_boot() {
        let _ = chaos_net(FaultPlan::lossy(1, 1.0, 0.0, 0.0, 0), 2);
    }

    // ---- per-channel delivery guarantees ------------------------------

    const AMO: Channel = Channel::new(7, Delivery::AtMostOnce);
    const LVW: Channel = Channel::new(9, Delivery::LatestValueWins);

    #[test]
    fn at_most_once_never_duplicates_never_retransmits() {
        let plan = fast_plan(0xA0).faults(LinkFaults {
            drop: 0.3,
            dup: 0.5,
            delay: 0.3,
            max_delay_slots: 2,
        });
        let net = chaos_net(plan, 2);
        let n = 200u32;
        for i in 0..n {
            net.send_on(0, 1, i.to_le_bytes().to_vec(), AMO);
        }
        // Let the pump flush every limbo copy, then take what arrived.
        std::thread::sleep(Duration::from_millis(50));
        let mut out = Vec::new();
        net.drain_into(1, &mut out);
        let got: Vec<u32> = out
            .iter()
            .map(|p| u32::from_le_bytes(p.bytes().try_into().unwrap()))
            .collect();
        assert!(!got.is_empty(), "a 30% drop plan must let most through");
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "at-most-once delivery must be strictly monotonic (no dups, no stale): {got:?}"
        );
        assert!(
            (got.len() as u32) < n,
            "drops must be real losses on an at-most-once channel"
        );
        let s = net.fault_stats();
        assert_eq!(s.retransmitted, 0, "at-most-once never retransmits: {s:?}");
        assert!(s.dropped > 0 && s.duplicated > 0, "plan exercised: {s:?}");
        assert!(
            s.dedup_dropped > 0,
            "duplicate copies must die at the monotonic floor: {s:?}"
        );
        net.close();
    }

    #[test]
    fn latest_value_wins_converges_to_final_value() {
        let plan = fast_plan(0x1A7E57).faults(LinkFaults {
            drop: 0.4,
            dup: 0.2,
            delay: 0.4,
            max_delay_slots: 3,
        });
        let net = chaos_net(plan, 2);
        let n = 100u32;
        for i in 0..n {
            net.send_on(0, 1, i.to_le_bytes().to_vec(), LVW);
        }
        // The last value is retransmitted until acked, so it must
        // surface; everything before it is best-effort but monotonic.
        let mut got: Vec<u32> = Vec::new();
        loop {
            let p = net
                .recv_timeout(1, Duration::from_secs(10))
                .expect("final value must converge");
            got.push(u32::from_le_bytes(p.bytes().try_into().unwrap()));
            if *got.last().unwrap() == n - 1 {
                break;
            }
        }
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "suffix-consistent: values strictly increase: {got:?}"
        );
        // Nothing may surface after the final value (stale copies die
        // at the floor).
        std::thread::sleep(Duration::from_millis(20));
        assert!(net.try_recv(1).is_none(), "stale value escaped the floor");
        let s = net.fault_stats();
        assert!(
            s.superseded > 0,
            "rapid-fire sends must supersede in-flight values: {s:?}"
        );
        net.close();
    }

    #[test]
    fn lvw_supersedes_queued_values_on_clean_wire() {
        // No fault plan at all: supersede still applies to values
        // queued in the destination inbox.
        let net = Interconnect::new(2);
        for i in 0..5u8 {
            net.send_on(0, 1, vec![i], LVW);
        }
        assert_eq!(net.pending(1), 1, "older queued values must be dropped");
        let p = net.try_recv(1).unwrap();
        assert_eq!(p.bytes(), vec![4]);
        assert_eq!(p.channel, LVW);
        assert!(p.seq > 0, "LVW packets are always sequenced");
        assert_eq!(net.fault_stats().superseded, 4);
    }

    #[test]
    fn channels_are_independent_sequenced_streams() {
        // A clean plan sequences every channel independently from 1 and
        // stays invisible; the default channel keeps its exact contract
        // next to AMO traffic on the same link.
        let net = chaos_net(fast_plan(2), 2);
        for i in 0..10u8 {
            net.send(0, 1, vec![i]);
            net.send_on(0, 1, vec![100 + i], AMO);
        }
        let mut def = Vec::new();
        let mut amo = Vec::new();
        for _ in 0..20 {
            let p = net.recv_timeout(1, Duration::from_secs(5)).unwrap();
            if p.channel.id == 0 {
                def.push(p.bytes()[0]);
                assert_eq!(p.channel, Channel::DEFAULT);
            } else {
                amo.push(p.bytes()[0]);
                assert_eq!(p.channel, AMO);
            }
        }
        assert_eq!(def, (0..10).collect::<Vec<_>>());
        assert_eq!(amo, (100..110).collect::<Vec<_>>());
        let s = net.fault_stats();
        assert_eq!(s.transmissions, 20);
        assert_eq!(s.dropped + s.duplicated + s.delayed + s.dedup_dropped, 0);
        net.close();
    }

    // ---- two-list mailbox + batched drain -----------------------------

    #[test]
    fn drain_into_moves_everything_in_order() {
        let net = Interconnect::new(2);
        for i in 0..50u8 {
            net.send(0, 1, vec![i]);
        }
        let mut out = Vec::new();
        assert_eq!(net.drain_into(1, &mut out), 50);
        let payloads: Vec<u8> = out.iter().map(|p| p.bytes()[0]).collect();
        assert_eq!(payloads, (0..50).collect::<Vec<_>>());
        assert_eq!(net.pending(1), 0);
        assert_eq!(net.traffic(1).msgs_recv, 50);
        assert_eq!(net.drain_into(1, &mut out), 0);
    }

    #[test]
    fn bounded_drain_leaves_remainder_ahead_of_new_arrivals() {
        let net = Interconnect::new(2);
        for i in 0..10u8 {
            net.send(0, 1, vec![i]);
        }
        let mut out = Vec::new();
        assert_eq!(net.drain_into_bounded(1, &mut out, 4), 4);
        assert_eq!(net.pending(1), 6);
        // New mail lands behind the staged remainder: delivery order is
        // unchanged by where a bounded drain stopped.
        for i in 10..13u8 {
            net.send(0, 1, vec![i]);
        }
        // Mix single pops and a final drain; the order must read 0..13.
        out.push(net.try_recv(1).unwrap());
        net.drain_into(1, &mut out);
        let payloads: Vec<u8> = out.iter().map(|p| p.bytes()[0]).collect();
        assert_eq!(payloads, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn drain_respects_stall_window() {
        let net = Interconnect::new(2);
        net.send(0, 1, vec![1]);
        net.stall_for(1, Duration::from_millis(50));
        let mut out = Vec::new();
        assert_eq!(net.drain_into(1, &mut out), 0, "stalled PE must not drain");
        assert!(out.is_empty());
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(net.drain_into(1, &mut out), 1);
    }

    #[test]
    fn drain_into_bounded_zero_is_a_noop() {
        let net = Interconnect::new(1);
        net.send(0, 0, vec![1]);
        let mut out = Vec::new();
        assert_eq!(net.drain_into_bounded(0, &mut out, 0), 0);
        assert_eq!(net.pending(0), 1);
    }

    /// A message-shaped byte block (8-byte header) tagged `tag`, with
    /// the stealable flag set or cleared.
    fn flagged(tag: u8, stealable: bool) -> Vec<u8> {
        let mut b = vec![0u8; converse_msg::HEADER_BYTES + 1];
        if stealable {
            b[6] = converse_msg::FLAG_STEALABLE as u8;
        }
        b[converse_msg::HEADER_BYTES] = tag;
        b
    }

    fn tag_of(p: &Packet) -> u8 {
        p.bytes()[converse_msg::HEADER_BYTES]
    }

    #[test]
    fn steal_takes_only_flagged_staged_packets_in_order() {
        let net = Interconnect::new(2);
        net.send(0, 1, flagged(0, false)); // dummy, consumed by the drain
        for (tag, s) in [(1, true), (2, false), (3, true), (4, false), (5, true)] {
            net.send(0, 1, flagged(tag, s));
        }
        // Bounded drain of one packet swaps the rest into staged.
        let mut out = Vec::new();
        assert_eq!(net.drain_into_bounded(1, &mut out, 1), 1);
        assert_eq!(net.staged_of(1), 5);

        assert_eq!(net.steal_from(1, 0, 8), 3);
        // Thief sees the stolen packets in their original arrival order,
        // with the original source preserved.
        for want in [1, 3, 5] {
            let p = net.try_recv(0).expect("stolen packet");
            assert_eq!(p.src, 0);
            assert_eq!(tag_of(&p), want);
        }
        // Victim keeps the unflagged packets, still in order.
        assert_eq!(net.staged_of(1), 2);
        for want in [2, 4] {
            assert_eq!(tag_of(&net.try_recv(1).expect("survivor")), want);
        }
    }

    #[test]
    fn steal_skips_non_default_channels_and_caps_batch() {
        let net = Interconnect::new(2);
        let ch = Channel {
            id: 3,
            delivery: Delivery::ExactlyOnce,
        };
        net.send(0, 1, flagged(0, false));
        net.send_on(0, 1, flagged(9, true), ch); // flagged but channelled
        for tag in [1, 2, 3] {
            net.send(0, 1, flagged(tag, true));
        }
        let mut out = Vec::new();
        net.drain_into_bounded(1, &mut out, 1);
        // Batch cap of 2: the two *newest* stealable default-channel
        // packets move; the channelled one never does.
        assert_eq!(net.steal_from(1, 0, 2), 2);
        assert_eq!(tag_of(&net.try_recv(0).unwrap()), 2);
        assert_eq!(tag_of(&net.try_recv(0).unwrap()), 3);
        assert_eq!(tag_of(&net.try_recv(1).unwrap()), 9);
        assert_eq!(tag_of(&net.try_recv(1).unwrap()), 1);
    }

    #[test]
    fn steal_never_touches_the_inbox() {
        let net = Interconnect::new(2);
        for tag in 0..4 {
            net.send(0, 1, flagged(tag, true));
        }
        // Nothing drained yet: everything is still in the inbox.
        assert_eq!(net.staged_of(1), 0);
        assert_eq!(net.steal_from(1, 0, 8), 0);
        assert_eq!(net.pending(1), 4);
        assert_eq!(net.steal_from(1, 1, 8), 0); // self-steal is a no-op
    }

    #[test]
    fn publish_load_roundtrip_and_backlog() {
        let net = Interconnect::new(2);
        let l0 = net.load_of(0);
        assert_eq!((l0.run_queue, l0.occupancy_pm, l0.staged), (0, 0, 0));
        net.publish_load(0, 7, 512);
        net.send(1, 0, vec![0u8; 9]);
        let l = net.load_of(0);
        assert_eq!(l.run_queue, 7);
        assert_eq!(l.occupancy_pm, 512);
        assert_eq!(l.queued, 1);
        assert_eq!(l.backlog(), 8);
        // Occupancy is clamped to per-mille range.
        net.publish_load(0, 0, 5000);
        assert_eq!(net.load_of(0).occupancy_pm, 1000);
    }

    #[test]
    fn swap_drain_sees_concurrent_enqueues_exactly_once() {
        // The satellite's race test: a sender pushes while the receiver
        // swap-drains in a tight loop. Every payload must surface exactly
        // once, in per-link FIFO order, regardless of where each swap
        // cuts the stream.
        let net = Interconnect::new(2);
        let n: u32 = 20_000;
        let sender = {
            let net = net.clone();
            std::thread::spawn(move || {
                for i in 0..n {
                    net.send(0, 1, i.to_le_bytes().to_vec());
                }
            })
        };
        let mut got: Vec<u32> = Vec::with_capacity(n as usize);
        let mut batch = Vec::new();
        while got.len() < n as usize {
            if net.drain_into(1, &mut batch) == 0 {
                std::hint::spin_loop();
                continue;
            }
            got.extend(
                batch
                    .drain(..)
                    .map(|p| u32::from_le_bytes(p.bytes().try_into().unwrap())),
            );
        }
        sender.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "exactly once, in order");
        assert_eq!(net.pending(1), 0);
        assert_eq!(net.traffic(1).msgs_recv, n as u64);
    }

    #[test]
    fn broadcast_packets_hold_exactly_p_references() {
        // Pre-staged broadcast: the original handle is dropped before the
        // appends, so P delivered packets are the only owners — refcount
        // is exactly P, proving 1 allocation + P bumps survived the
        // two-list mailbox rework.
        let p_count = 6;
        let net = Interconnect::new(p_count);
        net.broadcast_all(0, MsgBlock::copy_from(&[3u8; 64]));
        let packets: Vec<Packet> = (0..p_count).map(|pe| net.try_recv(pe).unwrap()).collect();
        for p in &packets {
            assert_eq!(p.block.ref_count(), p_count);
        }
        drop(packets);
    }

    #[test]
    fn spin_wait_notices_mail_within_budget() {
        let net = Interconnect::new(1);
        net.send(0, 0, vec![1]);
        // Mail already queued: the spin loop returns on its first probe.
        assert_eq!(net.wait_nonempty_spin(0, Duration::from_secs(1), 1000), 0);
        net.try_recv(0);
        // Empty mailbox: the budget burns out, then the park path runs
        // (bounded here by the timeout) and the call reports `spin`.
        let t0 = Instant::now();
        assert_eq!(net.wait_nonempty_spin(0, Duration::from_millis(20), 64), 64);
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }
}
