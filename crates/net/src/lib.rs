//! The simulated parallel machine under Converse.
//!
//! The paper evaluates Converse on five physical machines (networks of
//! ATM-connected HPs, Cray T3D, Myrinet-connected Suns with the FM
//! package, IBM SP-1, Intel Paragon running SUNMOS). None of those exist
//! here, so this crate provides the substitute substrate:
//!
//! * [`Interconnect`] — an in-process machine with one mailbox per
//!   logical processor (PE). Sends are byte-block deliveries into the
//!   destination mailbox; receivers poll or block. Per-(source,
//!   destination) FIFO order holds by default, but the MMI deliberately
//!   does **not** promise ordering (paper §3.1.3 criticizes MPI for
//!   paying for it), so an optional seeded [`DeliveryMode::Reorder`] mode
//!   scrambles arrival order to let tests verify nothing above depends
//!   on it.
//! * [`NetModel`] — an analytic wire-time model: `α` per-message latency,
//!   `β` per-byte cost, per-packet cost, and an optional packetization
//!   copy threshold (the T3D's 16 KB copy jump, §5.1). Benchmarks combine
//!   the *measured* software path time on the real Rust code with this
//!   model's wire time, reproducing the figures' shape.

pub mod model;

pub use model::NetModel;

use converse_msg::MsgBlock;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message block in flight, tagged with its source PE.
///
/// The block is the *same* refcounted buffer the sender built — a send
/// moves (or shares) it, never copies it. Broadcast packets on
/// different PEs alias one backing allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sending PE.
    pub src: usize,
    /// The generalized-message block.
    pub block: MsgBlock,
}

impl Packet {
    /// The wire bytes (the block's contents).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.block.as_slice()
    }
}

/// Delivery-order policy of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Per-(src,dst) FIFO, like most real interconnects.
    #[default]
    Fifo,
    /// Adversarial: each arriving packet is inserted at a seeded-random
    /// position among the last `window` queued packets. Every packet
    /// remains immediately receivable (no liveness loss), but FIFO order
    /// is broken. Used by tests of order-independence.
    Reorder {
        /// RNG seed (deterministic scrambling for reproducible tests).
        seed: u64,
        /// How far back an arrival may be inserted.
        window: usize,
    },
}

struct Mailbox {
    q: Mutex<VecDeque<Packet>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

/// Per-PE traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PeTraffic {
    /// Messages sent by this PE.
    pub msgs_sent: u64,
    /// Payload bytes sent by this PE.
    pub bytes_sent: u64,
    /// Messages received (popped) by this PE.
    pub msgs_recv: u64,
    /// External messages injected *into* this PE (CCS and other
    /// front-ends). Accounted separately from `msgs_sent` so external
    /// request volume never skews a PE's send-side load.
    pub msgs_injected: u64,
    /// Bytes injected into this PE from outside the machine.
    pub bytes_injected: u64,
}

/// Point-in-time load view of one PE: cumulative traffic plus the
/// instantaneous mailbox depth. Returned by [`Interconnect::load_of`]
/// and [`Interconnect::load_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeLoad {
    /// The PE this snapshot describes.
    pub pe: usize,
    /// Cumulative send/receive counters.
    pub traffic: PeTraffic,
    /// Packets delivered but not yet retrieved (queue depth).
    pub queued: usize,
}

#[derive(Default)]
struct TrafficCell {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    msgs_injected: AtomicU64,
    bytes_injected: AtomicU64,
}

/// Simple multiplicative-congruential RNG so reorder mode stays
/// deterministic per seed without external dependency state.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The simulated machine: `n` processors connected all-to-all.
///
/// Cloneable via `Arc`; every PE thread holds the same instance.
pub struct Interconnect {
    boxes: Vec<Mailbox>,
    traffic: Vec<TrafficCell>,
    mode: DeliveryMode,
    reorder_rng: Mutex<Lcg>,
    epoch: Instant,
    /// Set once at shutdown so blocked receivers wake and observe it.
    closed: std::sync::atomic::AtomicBool,
}

impl Interconnect {
    /// Build a machine with `n` PEs and FIFO delivery.
    pub fn new(n: usize) -> Arc<Self> {
        Self::with_mode(n, DeliveryMode::Fifo)
    }

    /// Build a machine with an explicit delivery mode.
    pub fn with_mode(n: usize, mode: DeliveryMode) -> Arc<Self> {
        assert!(n > 0, "a machine needs at least one PE");
        let seed = match mode {
            DeliveryMode::Reorder { seed, .. } => seed,
            DeliveryMode::Fifo => 0,
        };
        Arc::new(Interconnect {
            boxes: (0..n).map(|_| Mailbox::new()).collect(),
            traffic: (0..n).map(|_| TrafficCell::default()).collect(),
            mode,
            reorder_rng: Mutex::new(Lcg(seed ^ 0x9E3779B97F4A7C15)),
            epoch: Instant::now(),
            closed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Number of processors (`CmiNumPe`).
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.boxes.len()
    }

    /// Time since the machine booted — the base for `CmiTimer`.
    #[inline]
    pub fn uptime(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Queue a block into `dst`'s mailbox (no counter updates).
    fn push(&self, src: usize, dst: usize, block: MsgBlock) {
        let mbox = &self.boxes[dst];
        let mut q = mbox.q.lock();
        match self.mode {
            DeliveryMode::Fifo => q.push_back(Packet { src, block }),
            DeliveryMode::Reorder { window, .. } => {
                let w = window.min(q.len());
                let pos = q.len() - (self.reorder_rng.lock().next() as usize % (w + 1));
                q.insert(pos, Packet { src, block });
            }
        }
        mbox.cv.notify_one();
    }

    /// Deliver a message block from `src` into `dst`'s mailbox. The
    /// block **moves** — no copy is taken; share it first to keep a
    /// handle. Never blocks; the simulated wire has unbounded buffering,
    /// like the reliable-delivery abstraction the MMI exposes.
    pub fn send(&self, src: usize, dst: usize, block: impl Into<MsgBlock>) {
        let block = block.into();
        let t = &self.traffic[src];
        t.msgs_sent.fetch_add(1, Ordering::Relaxed);
        t.bytes_sent
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        self.push(src, dst, block);
    }

    /// Deliver a block into `dst`'s mailbox from *outside* the machine —
    /// the entry point used by front-ends such as CCS that inject
    /// external request traffic. The packet's `src` reads as `dst`
    /// itself (there is no external PE id) so per-(src,dst) FIFO stays
    /// well-defined, but the traffic is counted under the separate
    /// `msgs_injected`/`bytes_injected` counters, never as sends — so
    /// [`Interconnect::load_of`] is not skewed by external volume. It is
    /// subject to the same [`DeliveryMode`] scrambling as native sends.
    pub fn inject(&self, dst: usize, block: impl Into<MsgBlock>) {
        let block = block.into();
        let t = &self.traffic[dst];
        t.msgs_injected.fetch_add(1, Ordering::Relaxed);
        t.bytes_injected
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        self.push(dst, dst, block);
    }

    /// Broadcast to every PE except `src` (`CmiSyncBroadcast` semantics:
    /// the paper notes the broadcast is *not* a barrier — only the
    /// sender calls it). One block, P−1 refcount bumps: every
    /// destination's packet aliases the same allocation.
    pub fn broadcast_excl(&self, src: usize, block: impl Into<MsgBlock>) {
        let block = block.into();
        for dst in 0..self.num_pes() {
            if dst != src {
                self.send(src, dst, block.share());
            }
        }
    }

    /// Broadcast to every PE including `src` (one block, P bumps).
    pub fn broadcast_all(&self, src: usize, block: impl Into<MsgBlock>) {
        let block = block.into();
        for dst in 0..self.num_pes() {
            self.send(src, dst, block.share());
        }
    }

    /// Non-blocking receive: the next packet for `pe`, if any.
    pub fn try_recv(&self, pe: usize) -> Option<Packet> {
        let out = self.boxes[pe].q.lock().pop_front();
        if out.is_some() {
            self.traffic[pe].msgs_recv.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Blocking receive with timeout. Returns `None` on timeout or once
    /// the machine has been closed and the mailbox drained.
    pub fn recv_timeout(&self, pe: usize, timeout: Duration) -> Option<Packet> {
        let mbox = &self.boxes[pe];
        let deadline = Instant::now() + timeout;
        let mut q = mbox.q.lock();
        loop {
            if let Some(p) = q.pop_front() {
                self.traffic[pe].msgs_recv.fetch_add(1, Ordering::Relaxed);
                return Some(p);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            if mbox.cv.wait_until(&mut q, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Park until `pe`'s mailbox is non-empty, the machine closes, or the
    /// timeout expires. Used by the scheduler's idle loop so an idle PE
    /// does not spin.
    pub fn wait_nonempty(&self, pe: usize, timeout: Duration) {
        let mbox = &self.boxes[pe];
        let deadline = Instant::now() + timeout;
        let mut q = mbox.q.lock();
        while q.is_empty() && !self.closed.load(Ordering::Acquire) {
            if mbox.cv.wait_until(&mut q, deadline).timed_out() {
                return;
            }
        }
    }

    /// Queued (undelivered) packet count for `pe`.
    pub fn pending(&self, pe: usize) -> usize {
        self.boxes[pe].q.lock().len()
    }

    /// Mark the machine closed and wake all blocked receivers. Receives
    /// drain remaining packets, then return `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for b in &self.boxes {
            // Hold the lock so a receiver between its check and its wait
            // cannot miss the notification.
            let _q = b.q.lock();
            b.cv.notify_all();
        }
    }

    /// True once [`Interconnect::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Traffic counters for `pe`.
    pub fn traffic(&self, pe: usize) -> PeTraffic {
        let t = &self.traffic[pe];
        PeTraffic {
            msgs_sent: t.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: t.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: t.msgs_recv.load(Ordering::Relaxed),
            msgs_injected: t.msgs_injected.load(Ordering::Relaxed),
            bytes_injected: t.bytes_injected.load(Ordering::Relaxed),
        }
    }

    /// Live load snapshot for one PE: cumulative traffic counters plus
    /// the current mailbox depth. This is the public read side used by
    /// the CCS bench and load balancers; it takes the mailbox lock only
    /// long enough to read the queue length.
    pub fn load_of(&self, pe: usize) -> PeLoad {
        PeLoad {
            pe,
            traffic: self.traffic(pe),
            queued: self.pending(pe),
        }
    }

    /// Snapshot of every PE's load, in PE order. The per-PE reads are
    /// not mutually atomic (the machine keeps running underneath), which
    /// is fine for the monitoring/balancing uses this serves.
    pub fn load_snapshot(&self) -> Vec<PeLoad> {
        (0..self.num_pes()).map(|pe| self.load_of(pe)).collect()
    }

    /// Aggregate traffic over all PEs.
    pub fn total_traffic(&self) -> PeTraffic {
        let mut out = PeTraffic::default();
        for pe in 0..self.num_pes() {
            let t = self.traffic(pe);
            out.msgs_sent += t.msgs_sent;
            out.bytes_sent += t.bytes_sent;
            out.msgs_recv += t.msgs_recv;
            out.msgs_injected += t.msgs_injected;
            out.bytes_injected += t.bytes_injected;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv() {
        let net = Interconnect::new(2);
        net.send(0, 1, vec![1, 2, 3]);
        let p = net.try_recv(1).unwrap();
        assert_eq!(p.src, 0);
        assert_eq!(p.bytes(), vec![1, 2, 3]);
        assert!(net.try_recv(1).is_none());
    }

    #[test]
    fn self_send_works() {
        let net = Interconnect::new(1);
        net.send(0, 0, vec![9]);
        assert_eq!(net.try_recv(0).unwrap().bytes(), vec![9]);
    }

    #[test]
    fn fifo_per_pair_order() {
        let net = Interconnect::new(2);
        for i in 0..10u8 {
            net.send(0, 1, vec![i]);
        }
        for i in 0..10u8 {
            assert_eq!(net.try_recv(1).unwrap().bytes(), vec![i]);
        }
    }

    #[test]
    fn broadcast_excl_skips_sender() {
        let net = Interconnect::new(4);
        net.broadcast_excl(1, vec![7u8]);
        assert!(net.try_recv(1).is_none());
        for pe in [0, 2, 3] {
            assert_eq!(net.try_recv(pe).unwrap().bytes(), vec![7]);
        }
    }

    #[test]
    fn broadcast_all_includes_sender() {
        let net = Interconnect::new(3);
        net.broadcast_all(0, vec![8u8]);
        for pe in 0..3 {
            assert_eq!(net.try_recv(pe).unwrap().bytes(), vec![8]);
        }
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let net = Interconnect::new(2);
        let net2 = net.clone();
        let h = std::thread::spawn(move || net2.recv_timeout(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        net.send(0, 1, vec![42]);
        let p = h.join().unwrap().unwrap();
        assert_eq!(p.bytes(), vec![42]);
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Interconnect::new(1);
        let t0 = Instant::now();
        assert!(net.recv_timeout(0, Duration::from_millis(30)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let net = Interconnect::new(1);
        let net2 = net.clone();
        let h = std::thread::spawn(move || net2.recv_timeout(0, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        net.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn closed_machine_still_drains_mailbox() {
        let net = Interconnect::new(1);
        net.send(0, 0, vec![5]);
        net.close();
        assert_eq!(
            net.recv_timeout(0, Duration::from_millis(10))
                .unwrap()
                .bytes(),
            vec![5]
        );
        assert!(net.recv_timeout(0, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn reorder_mode_delivers_everything() {
        let net = Interconnect::with_mode(2, DeliveryMode::Reorder { seed: 7, window: 8 });
        let n = 100u8;
        for i in 0..n {
            net.send(0, 1, vec![i]);
        }
        let mut got: Vec<u8> = (0..n)
            .map(|_| net.try_recv(1).unwrap().bytes()[0])
            .collect();
        assert!(net.try_recv(1).is_none());
        let in_order = got.windows(2).all(|w| w[0] < w[1]);
        assert!(!in_order, "reorder mode should scramble order");
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_is_deterministic_per_seed() {
        let run = |seed| {
            let net = Interconnect::with_mode(2, DeliveryMode::Reorder { seed, window: 4 });
            for i in 0..20u8 {
                net.send(0, 1, vec![i]);
            }
            (0..20)
                .map(|_| net.try_recv(1).unwrap().bytes()[0])
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn traffic_counters() {
        let net = Interconnect::new(2);
        net.send(0, 1, vec![0; 100]);
        net.send(0, 1, vec![0; 50]);
        net.try_recv(1);
        let t0 = net.traffic(0);
        assert_eq!(t0.msgs_sent, 2);
        assert_eq!(t0.bytes_sent, 150);
        assert_eq!(net.traffic(1).msgs_recv, 1);
        let total = net.total_traffic();
        assert_eq!(total.msgs_sent, 2);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = Interconnect::new(0);
    }

    #[test]
    fn pending_counts() {
        let net = Interconnect::new(2);
        assert_eq!(net.pending(1), 0);
        net.send(0, 1, vec![1]);
        net.send(0, 1, vec![2]);
        assert_eq!(net.pending(1), 2);
        net.try_recv(1);
        assert_eq!(net.pending(1), 1);
    }

    #[test]
    fn inject_and_load_snapshot() {
        let net = Interconnect::new(3);
        net.inject(2, vec![1, 2, 3]);
        net.send(0, 2, vec![4]);
        let snap = net.load_snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[2].pe, 2);
        assert_eq!(snap[2].queued, 2);
        assert_eq!(snap[0].traffic.msgs_sent, 1);
        // Injected traffic is accounted separately: it must not inflate
        // the destination's own send counters.
        assert_eq!(snap[2].traffic.msgs_sent, 0);
        assert_eq!(snap[2].traffic.bytes_sent, 0);
        assert_eq!(snap[2].traffic.msgs_injected, 1);
        assert_eq!(snap[2].traffic.bytes_injected, 3);
        let total = net.total_traffic();
        assert_eq!(total.msgs_sent, 1);
        assert_eq!(total.msgs_injected, 1);
        // The injected packet still reads as coming from the destination
        // itself (there is no external PE id).
        assert_eq!(net.try_recv(2).unwrap().src, 2);
        assert_eq!(net.load_of(2).queued, 1);
    }

    #[test]
    fn broadcast_is_one_allocation_and_all_packets_alias() {
        let net = Interconnect::new(8);
        let block = MsgBlock::copy_from(&[9u8; 777]);
        let src_ptr = block.as_ptr();
        let takes = converse_msg::pool::stats().takes();
        net.broadcast_all(0, block);
        assert_eq!(
            converse_msg::pool::stats().takes(),
            takes,
            "broadcast must be refcount bumps only — zero further allocations"
        );
        for pe in 0..8 {
            let p = net.try_recv(pe).unwrap();
            assert_eq!(p.bytes(), &[9u8; 777][..]);
            assert_eq!(
                p.block.as_ptr(),
                src_ptr,
                "PE {pe}'s packet must alias the sender's allocation"
            );
        }
    }

    #[test]
    fn send_moves_block_without_copy() {
        let net = Interconnect::new(2);
        let block = MsgBlock::copy_from(b"zero copy");
        let ptr = block.as_ptr();
        net.send(0, 1, block);
        assert_eq!(net.try_recv(1).unwrap().block.as_ptr(), ptr);
    }

    #[test]
    fn wait_nonempty_returns_when_message_arrives() {
        let net = Interconnect::new(2);
        let net2 = net.clone();
        let h = std::thread::spawn(move || {
            net2.wait_nonempty(1, Duration::from_secs(5));
            net2.pending(1)
        });
        std::thread::sleep(Duration::from_millis(20));
        net.send(0, 1, vec![1]);
        assert_eq!(h.join().unwrap(), 1);
    }
}
