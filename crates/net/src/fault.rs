//! Deterministic fault injection for the simulated interconnect.
//!
//! A [`FaultPlan`] turns the reliable in-process wire into an
//! adversarial one: per-link drop/duplication probabilities, bounded
//! delivery delay, and scripted PE stall/crash windows. Every decision
//! is a pure function of `(plan seed, src, dst, seq, attempt)` — the
//! per-link stream is derived from `seed ⊕ src ⊕ dst`, then keyed by the
//! packet's link sequence number and transmission attempt through the
//! interconnect's LCG step and a splitmix finalizer. No shared RNG
//! state exists, so the fault schedule of a link is identical across
//! runs **regardless of thread interleaving**: one seed = one
//! replayable adversarial schedule.
//!
//! The plan also configures the reliability sublayer that masks the
//! faults (see the crate docs): base retransmit timeout, backoff cap,
//! and the pump tick that drives delayed release and retransmission.

use std::time::Duration;

/// Fault probabilities of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a transmission vanishes on the wire (per attempt,
    /// retransmissions included). Must be `< 1.0` or the link loses
    /// liveness.
    pub drop: f64,
    /// Probability a surviving transmission is duplicated.
    pub dup: f64,
    /// Probability a surviving copy is delayed instead of delivered
    /// immediately.
    pub delay: f64,
    /// Upper bound, in pump ticks ("slots"), on how long a delayed copy
    /// is held. `0` disables delay regardless of `delay`.
    pub max_delay_slots: usize,
}

impl LinkFaults {
    /// A perfectly reliable link (the default).
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        dup: 0.0,
        delay: 0.0,
        max_delay_slots: 0,
    };

    /// True when every probability is zero.
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0 && (self.delay == 0.0 || self.max_delay_slots == 0)
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// A scripted window during which one PE stops retrieving messages.
/// Packets still arrive and queue (visible as mailbox depth); the PE
/// simply does not run. `to: None` is a crash: the PE never recovers
/// until the machine closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled PE.
    pub pe: usize,
    /// Window start, as uptime since machine boot.
    pub from: Duration,
    /// Window end (exclusive), or `None` for a crash.
    pub to: Option<Duration>,
}

/// A complete seeded adversarial schedule plus the reliability tuning
/// that masks it. One plan + one seed = one reproducible run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; every per-link decision stream derives from it.
    pub seed: u64,
    /// Default faults applied to every link.
    pub faults: LinkFaults,
    /// Per-link overrides `(src, dst, faults)`; the last matching entry
    /// wins.
    pub links: Vec<(usize, usize, LinkFaults)>,
    /// Scripted stall/crash windows.
    pub stalls: Vec<StallWindow>,
    /// Base retransmit timeout for the first retry.
    pub rto: Duration,
    /// Cap on the exponential retransmit backoff.
    pub rto_cap: Duration,
    /// Pump interval: one "slot" of delivery delay, and the cadence at
    /// which retransmissions and delayed releases are driven.
    pub tick: Duration,
}

impl FaultPlan {
    /// A clean plan (no faults, no stalls) with default reliability
    /// tuning; compose with the builder methods.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: LinkFaults::NONE,
            links: Vec::new(),
            stalls: Vec::new(),
            rto: Duration::from_micros(800),
            rto_cap: Duration::from_millis(20),
            tick: Duration::from_micros(300),
        }
    }

    /// A uniformly lossy plan: every link drops, duplicates and delays
    /// with the given probabilities (delay bounded by `max_delay_slots`).
    pub fn lossy(seed: u64, drop: f64, dup: f64, delay: f64, max_delay_slots: usize) -> FaultPlan {
        FaultPlan::new(seed).faults(LinkFaults {
            drop,
            dup,
            delay,
            max_delay_slots,
        })
    }

    /// Set the default faults for every link.
    pub fn faults(mut self, f: LinkFaults) -> FaultPlan {
        self.faults = f;
        self
    }

    /// Override the faults of one directed link.
    pub fn link(mut self, src: usize, dst: usize, f: LinkFaults) -> FaultPlan {
        self.links.push((src, dst, f));
        self
    }

    /// Script a stall window for `pe` over `[from, to)` of uptime.
    pub fn stall(mut self, pe: usize, from: Duration, to: Duration) -> FaultPlan {
        self.stalls.push(StallWindow {
            pe,
            from,
            to: Some(to),
        });
        self
    }

    /// Script a crash: `pe` stops retrieving at `from` and never
    /// recovers (until the machine closes).
    pub fn crash(mut self, pe: usize, from: Duration) -> FaultPlan {
        self.stalls.push(StallWindow { pe, from, to: None });
        self
    }

    /// Set the retransmit timing (base timeout and backoff cap).
    pub fn retransmit(mut self, rto: Duration, rto_cap: Duration) -> FaultPlan {
        self.rto = rto;
        self.rto_cap = rto_cap;
        self
    }

    /// Set the pump tick (delay-slot width and retry cadence).
    pub fn tick(mut self, tick: Duration) -> FaultPlan {
        self.tick = tick;
        self
    }

    /// The effective faults of link `src → dst`.
    pub fn faults_for(&self, src: usize, dst: usize) -> LinkFaults {
        self.links
            .iter()
            .rev()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map(|(_, _, f)| *f)
            .unwrap_or(self.faults)
    }

    /// Panic on a plan that cannot preserve liveness or is out of range.
    pub fn validate(&self, num_pes: usize) {
        let check = |f: &LinkFaults, what: &str| {
            assert!(
                (0.0..1.0).contains(&f.drop),
                "FaultPlan: {what} drop probability {} must be in [0, 1) — \
                 a link dropping everything has no liveness",
                f.drop
            );
            assert!(
                (0.0..=1.0).contains(&f.dup) && (0.0..=1.0).contains(&f.delay),
                "FaultPlan: {what} dup/delay probabilities must be in [0, 1]"
            );
        };
        check(&self.faults, "default");
        for (s, d, f) in &self.links {
            assert!(
                *s < num_pes && *d < num_pes,
                "FaultPlan: link ({s},{d}) out of range for {num_pes} PEs"
            );
            check(f, "per-link");
        }
        for w in &self.stalls {
            assert!(
                w.pe < num_pes,
                "FaultPlan: stall window for PE {} out of range for {num_pes} PEs",
                w.pe
            );
        }
        assert!(!self.tick.is_zero(), "FaultPlan: tick must be non-zero");
        assert!(!self.rto.is_zero(), "FaultPlan: rto must be non-zero");
    }
}

/// Aggregate counters of the fault plane and the reliability sublayer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Wire transmissions attempted (originals + duplicates issued by
    /// the fault plane + retransmissions). With no plan installed this
    /// stays zero.
    pub transmissions: u64,
    /// Transmissions the fault plane dropped.
    pub dropped: u64,
    /// Transmissions the fault plane duplicated.
    pub duplicated: u64,
    /// Copies the fault plane delayed.
    pub delayed: u64,
    /// Retransmissions issued by the reliability send side.
    pub retransmitted: u64,
    /// Duplicate deliveries discarded by the receive side.
    pub dedup_dropped: u64,
    /// Values discarded because a newer value on the same
    /// latest-value-wins channel superseded them (in the sender's
    /// retransmit slot, in fault-plane limbo, or queued in the
    /// destination inbox).
    pub superseded: u64,
}

impl FaultStats {
    /// Wire transmissions per logical message: the cost of surviving
    /// the fault plane. `1.0` on a clean link; `0.0` when no messages
    /// were sent at all (never NaN/inf — reports divide by this).
    pub fn overhead_ratio(&self, logical_msgs: u64) -> f64 {
        if logical_msgs == 0 {
            return 0.0;
        }
        self.transmissions as f64 / logical_msgs as f64
    }
}

// ---- deterministic per-link decision streams ---------------------------

/// The interconnect's LCG step (Numerical Recipes constants) — the same
/// generator the reorder mode has always used, here applied statelessly.
const LCG_MUL: u64 = 6364136223846793005;
const LCG_ADD: u64 = 1442695040888963407;

/// splitmix64 finalizer: decorrelates the structured key material.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    x
}

/// One deterministic draw for a packet event. The stream is derived
/// per link from `seed ⊕ src ⊕ dst` (each id spread over 64 bits first,
/// so links (0,1) and (1,0) get distinct streams), then keyed by the
/// packet's sequence number, transmission attempt, and a salt naming
/// the decision being made.
pub fn link_draw(seed: u64, src: usize, dst: usize, seq: u64, attempt: u32, salt: u64) -> u64 {
    let link = (src as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (dst as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
    let x = (seed ^ link).wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
    mix64(
        x ^ seq.wrapping_mul(0xD6E8FEB86659FD93)
            ^ ((attempt as u64) << 40)
            ^ salt.wrapping_mul(0xFF51AFD7ED558CCD),
    )
}

/// Map a draw onto the unit interval.
pub fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

/// Decision salts (one per kind of question asked about a packet).
pub const SALT_DROP: u64 = 1;
pub const SALT_DUP: u64 = 2;
pub const SALT_DELAY: u64 = 3;
pub const SALT_DELAY_SLOTS: u64 = 4;
pub const SALT_REORDER: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_link_directional() {
        let a = link_draw(7, 0, 1, 5, 1, SALT_DROP);
        assert_eq!(a, link_draw(7, 0, 1, 5, 1, SALT_DROP));
        assert_ne!(a, link_draw(7, 1, 0, 5, 1, SALT_DROP), "direction matters");
        assert_ne!(a, link_draw(8, 0, 1, 5, 1, SALT_DROP), "seed matters");
        assert_ne!(a, link_draw(7, 0, 1, 6, 1, SALT_DROP), "seq matters");
        assert_ne!(a, link_draw(7, 0, 1, 5, 2, SALT_DROP), "attempt matters");
        assert_ne!(a, link_draw(7, 0, 1, 5, 1, SALT_DUP), "salt matters");
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let mut acc = 0.0;
        for i in 0..1000u64 {
            let u = unit(link_draw(42, 0, 1, i, 1, SALT_DROP));
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn faults_for_prefers_last_matching_override() {
        let plan = FaultPlan::new(1)
            .faults(LinkFaults {
                drop: 0.1,
                ..LinkFaults::NONE
            })
            .link(
                0,
                1,
                LinkFaults {
                    drop: 0.5,
                    ..LinkFaults::NONE
                },
            )
            .link(
                0,
                1,
                LinkFaults {
                    drop: 0.9,
                    ..LinkFaults::NONE
                },
            );
        assert_eq!(plan.faults_for(0, 1).drop, 0.9);
        assert_eq!(plan.faults_for(1, 0).drop, 0.1);
    }

    #[test]
    #[should_panic(expected = "no liveness")]
    fn total_loss_rejected() {
        FaultPlan::lossy(1, 1.0, 0.0, 0.0, 0).validate(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_stall_rejected() {
        FaultPlan::new(1)
            .stall(9, Duration::ZERO, Duration::from_secs(1))
            .validate(2);
    }

    #[test]
    fn overhead_ratio_is_finite_for_zero_messages() {
        // Satellite regression: a report over an idle machine must not
        // divide by zero — no NaN, no inf, just 0.0.
        let s = FaultStats {
            transmissions: 17,
            ..FaultStats::default()
        };
        assert_eq!(s.overhead_ratio(0), 0.0);
        assert!(s.overhead_ratio(0).is_finite());
        assert_eq!(FaultStats::default().overhead_ratio(0), 0.0);
        // And the normal path still reads transmissions per message.
        assert_eq!(s.overhead_ratio(17), 1.0);
    }
}
