//! Property tests: `CsdQueue` against a brute-force reference model.

use converse_msg::{BitVecPrio, HandlerId, Message, Priority};
use converse_queue::{CsdQueue, FifoQueue, QueueingMode, SchedulingQueue};
use proptest::prelude::*;

/// Reference model entry: (class, key, seq) where class orders the zero
/// lane against the priority lane per the documented rules.
#[derive(Clone, Debug)]
struct ModelEntry {
    /// Unified priority as a bool-vector (lexicographic Ord matches
    /// BitVecPrio by the msg crate's own property tests).
    key: Vec<bool>,
    /// True if it entered the zero lane (Fifo/Lifo mode).
    zero_lane: bool,
    seq: i64,
    tag: u32,
}

fn int_bits(i: i32) -> Vec<bool> {
    let w = (i as u32) ^ 0x8000_0000;
    (0..32).map(|b| w & (1 << (31 - b)) != 0).collect()
}

fn model_pop(model: &mut Vec<ModelEntry>) -> Option<u32> {
    if model.is_empty() {
        return None;
    }
    let zero_key = int_bits(0);
    // Best priority-lane entry.
    let best_prio = model
        .iter()
        .enumerate()
        .filter(|(_, e)| !e.zero_lane)
        .min_by(|(_, a), (_, b)| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)))
        .map(|(i, e)| (i, e.key.clone()));
    // Front of zero lane (smallest seq; Lifo inserts negative seqs).
    let zero_front = model
        .iter()
        .enumerate()
        .filter(|(_, e)| e.zero_lane)
        .min_by_key(|(_, e)| e.seq)
        .map(|(i, _)| i);
    let idx = match (best_prio, zero_front) {
        (Some((pi, pk)), Some(zi)) => {
            if pk < zero_key {
                pi
            } else {
                zi
            }
        }
        (Some((pi, _)), None) => pi,
        (None, Some(zi)) => zi,
        (None, None) => return None,
    };
    Some(model.remove(idx).tag)
}

#[derive(Clone, Debug)]
enum Op {
    EnqFifo,
    EnqLifo,
    EnqPrioInt(i32, bool),
    EnqPrioBits(Vec<bool>, bool),
    Deq,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::EnqFifo),
        Just(Op::EnqLifo),
        (any::<i32>(), any::<bool>()).prop_map(|(i, f)| Op::EnqPrioInt(i, f)),
        (
            proptest::collection::vec(any::<bool>(), 0..40),
            any::<bool>()
        )
            .prop_map(|(b, f)| Op::EnqPrioBits(b, f)),
        Just(Op::Deq),
        Just(Op::Deq),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary interleavings of enqueues (all modes and priority kinds)
    /// and dequeues produce exactly the order the reference model says.
    #[test]
    fn csd_matches_model(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let mut q = CsdQueue::new();
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut tag = 0u32;
        let mut fifo_seq = 0i64;
        let mut lifo_seq = 0i64;
        let mut prio_seq = 0i64;

        for op in ops {
            match op {
                Op::EnqFifo => {
                    let m = Message::new(HandlerId(0), &tag.to_le_bytes());
                    q.enqueue(m, QueueingMode::Fifo);
                    fifo_seq += 1;
                    model.push(ModelEntry { key: int_bits(0), zero_lane: true, seq: fifo_seq, tag });
                    tag += 1;
                }
                Op::EnqLifo => {
                    let m = Message::new(HandlerId(0), &tag.to_le_bytes());
                    q.enqueue(m, QueueingMode::Lifo);
                    lifo_seq -= 1;
                    model.push(ModelEntry { key: int_bits(0), zero_lane: true, seq: lifo_seq, tag });
                    tag += 1;
                }
                Op::EnqPrioInt(i, fifo) => {
                    let m = Message::with_priority(HandlerId(0), &Priority::Int(i), &tag.to_le_bytes());
                    let mode = if fifo { QueueingMode::PrioFifo } else { QueueingMode::PrioLifo };
                    q.enqueue(m, mode);
                    prio_seq += 1;
                    let seq = if fifo { prio_seq } else { -prio_seq };
                    model.push(ModelEntry { key: int_bits(i), zero_lane: false, seq, tag });
                    tag += 1;
                }
                Op::EnqPrioBits(bits, fifo) => {
                    let bv = BitVecPrio::from_bits(&bits);
                    let m = Message::with_priority(HandlerId(0), &Priority::BitVec(bv), &tag.to_le_bytes());
                    let mode = if fifo { QueueingMode::PrioFifo } else { QueueingMode::PrioLifo };
                    q.enqueue(m, mode);
                    prio_seq += 1;
                    let seq = if fifo { prio_seq } else { -prio_seq };
                    model.push(ModelEntry { key: bits, zero_lane: false, seq, tag });
                    tag += 1;
                }
                Op::Deq => {
                    let got = q.dequeue().map(|m| {
                        u32::from_le_bytes(m.payload().try_into().unwrap())
                    });
                    let want = model_pop(&mut model);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
        // Drain and compare the tails.
        loop {
            let got = q.dequeue().map(|m| u32::from_le_bytes(m.payload().try_into().unwrap()));
            let want = model_pop(&mut model);
            prop_assert_eq!(got, want);
            if got.is_none() { break; }
        }
    }

    /// FifoQueue preserves exact insertion order regardless of priorities.
    #[test]
    fn fifo_ignores_priorities(prios in proptest::collection::vec(any::<i32>(), 0..64)) {
        let mut q = FifoQueue::new();
        for (i, p) in prios.iter().enumerate() {
            let m = Message::with_priority(HandlerId(0), &Priority::Int(*p), &(i as u32).to_le_bytes());
            q.enqueue(m, QueueingMode::Fifo);
        }
        for i in 0..prios.len() {
            let m = q.dequeue().unwrap();
            prop_assert_eq!(u32::from_le_bytes(m.payload().try_into().unwrap()), i as u32);
        }
        prop_assert!(q.dequeue().is_none());
    }
}
