//! Pluggable scheduler queueing strategies (paper §2.3, §3.1.2).
//!
//! "The scheduler's queue is implemented as a separate module so that the
//! user can plug in different queuing strategies." This crate is that
//! module. It provides:
//!
//! * [`SchedulingQueue`] — the interface the scheduler programs against;
//! * [`FifoQueue`] / [`LifoQueue`] — trivial strategies with no priority
//!   machinery at all, honouring the paper's *need-based cost* guideline
//!   (§3, guideline 2): a language that never prioritizes pays for a
//!   `VecDeque`, nothing more;
//! * [`CsdQueue`] — the full prioritized queue with the same structure as
//!   Converse's `Cqs`: an O(1) "zero" lane for unprioritized entries and
//!   a priority lane ordering integer and bit-vector priorities in one
//!   unified total order (integers are embedded as 32-bit offset-binary
//!   vectors, exactly how Converse unifies the two domains).
//!
//! Queueing modes mirror `CQS_QUEUEING_{FIFO,LIFO,IFIFO,ILIFO,BFIFO,BLIFO}`:
//! [`QueueingMode::Fifo`]/[`QueueingMode::Lifo`] ignore the message's
//! priority; the `Prio*` modes order by it, breaking ties FIFO or LIFO.

use converse_msg::{BitVecPrio, Message, Priority};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// How a message enters the scheduler queue (`CsdEnqueueGeneral`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueingMode {
    /// Unprioritized, first-in first-out (`CQS_QUEUEING_FIFO`).
    #[default]
    Fifo,
    /// Unprioritized, last-in first-out (`CQS_QUEUEING_LIFO`).
    Lifo,
    /// By the message's priority, FIFO among equal priorities
    /// (`CQS_QUEUEING_IFIFO` / `BFIFO`).
    PrioFifo,
    /// By the message's priority, LIFO among equal priorities
    /// (`CQS_QUEUEING_ILIFO` / `BLIFO`).
    PrioLifo,
}

/// Interface between the scheduler and its queue module.
pub trait SchedulingQueue: Send {
    /// Insert a message under the given mode.
    fn enqueue(&mut self, msg: Message, mode: QueueingMode);
    /// Remove the next message to run, or `None` when empty.
    fn dequeue(&mut self) -> Option<Message>;
    /// Number of queued messages.
    fn len(&self) -> usize;
    /// True when no messages are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Move up to `max` messages into `out` in dequeue order; returns
    /// how many moved. A bulk companion to [`SchedulingQueue::dequeue`]
    /// for consumers that drain whole batches (benches, drainers); the
    /// scheduler's own loop intentionally stays per-entry so work
    /// enqueued mid-batch at a more urgent priority still preempts.
    fn dequeue_into(&mut self, out: &mut Vec<Message>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.dequeue() {
                Some(m) => {
                    out.push(m);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

/// Plain FIFO queue: the cheapest strategy. `Prio*` modes degrade to
/// their unprioritized counterparts (insertion order only).
#[derive(Default, Debug)]
pub struct FifoQueue {
    q: VecDeque<Message>,
}

impl FifoQueue {
    /// New empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulingQueue for FifoQueue {
    fn enqueue(&mut self, msg: Message, mode: QueueingMode) {
        match mode {
            QueueingMode::Lifo | QueueingMode::PrioLifo => self.q.push_front(msg),
            QueueingMode::Fifo | QueueingMode::PrioFifo => self.q.push_back(msg),
        }
    }

    fn dequeue(&mut self) -> Option<Message> {
        self.q.pop_front()
    }

    fn len(&self) -> usize {
        self.q.len()
    }
}

/// Plain LIFO (stack) queue. Useful for depth-first traversal of task
/// trees when memory footprint, not priority, is the concern.
#[derive(Default, Debug)]
pub struct LifoQueue {
    q: Vec<Message>,
}

impl LifoQueue {
    /// New empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulingQueue for LifoQueue {
    fn enqueue(&mut self, msg: Message, _mode: QueueingMode) {
        self.q.push(msg);
    }

    fn dequeue(&mut self) -> Option<Message> {
        self.q.pop()
    }

    fn len(&self) -> usize {
        self.q.len()
    }
}

/// Unified priority key: every priority becomes a bit vector; smaller
/// compares first. Integer priority `i` maps to the 32-bit offset-binary
/// word `i ^ i32::MIN`, which makes unsigned lexicographic comparison
/// agree with signed integer order — the same embedding real Converse
/// uses to mix `IFIFO` and `BFIFO` entries in one queue.
fn unified_key(p: &Priority) -> BitVecPrio {
    match p {
        Priority::None => int_key(0),
        Priority::Int(i) => int_key(*i),
        Priority::BitVec(bv) => bv.clone(),
    }
}

fn int_key(i: i32) -> BitVecPrio {
    BitVecPrio::from_raw(32, vec![(i as u32) ^ 0x8000_0000])
}

struct PrioEntry {
    key: BitVecPrio,
    /// Tie-break: ascending for FIFO; for LIFO the sequence is negated at
    /// insertion so later entries win among equal keys.
    seq: i64,
    msg: Message,
}

impl PartialEq for PrioEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl Eq for PrioEntry {}

impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest (most urgent)
        // key pops first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Occupancy statistics, mainly for the load balancer and benches.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Total messages ever enqueued.
    pub enqueued: u64,
    /// Total messages ever dequeued.
    pub dequeued: u64,
    /// Peak simultaneous occupancy.
    pub peak_len: usize,
}

/// The full Converse scheduler queue (`Cqs`).
///
/// Two lanes:
/// * **zero lane** — unprioritized entries ([`QueueingMode::Fifo`] /
///   [`QueueingMode::Lifo`]), a deque with O(1) operations;
/// * **priority lane** — a binary heap over the unified key.
///
/// Dequeue order: priority entries more urgent than integer‑0 run first;
/// then the zero lane; then the remaining priority entries. This matches
/// Converse, where unprioritized work is "priority zero" and drains ahead
/// of equal-priority (and all lower-priority) prioritized work.
///
/// ```
/// use converse_msg::{Message, HandlerId, Priority};
/// use converse_queue::{CsdQueue, QueueingMode, SchedulingQueue};
///
/// let mut q = CsdQueue::new();
/// q.enqueue(Message::new(HandlerId(0), b"plain"), QueueingMode::Fifo);
/// let urgent = Message::with_priority(HandlerId(0), &Priority::Int(-1), b"urgent");
/// q.enqueue(urgent, QueueingMode::PrioFifo);
///
/// assert_eq!(q.dequeue().unwrap().payload(), b"urgent");
/// assert_eq!(q.dequeue().unwrap().payload(), b"plain");
/// assert!(q.dequeue().is_none());
/// ```
pub struct CsdQueue {
    zero: VecDeque<Message>,
    prio: BinaryHeap<PrioEntry>,
    seq: i64,
    stats: QueueStats,
    zero_key: BitVecPrio,
}

impl Default for CsdQueue {
    fn default() -> Self {
        CsdQueue {
            zero: VecDeque::new(),
            prio: BinaryHeap::new(),
            seq: 0,
            stats: QueueStats::default(),
            zero_key: int_key(0),
        }
    }
}

impl CsdQueue {
    /// New empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occupancy statistics snapshot.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl SchedulingQueue for CsdQueue {
    fn enqueue(&mut self, msg: Message, mode: QueueingMode) {
        self.stats.enqueued += 1;
        match mode {
            QueueingMode::Fifo => self.zero.push_back(msg),
            QueueingMode::Lifo => self.zero.push_front(msg),
            QueueingMode::PrioFifo | QueueingMode::PrioLifo => {
                let key = unified_key(&msg.priority());
                self.seq += 1;
                let seq = if mode == QueueingMode::PrioFifo {
                    self.seq
                } else {
                    -self.seq
                };
                self.prio.push(PrioEntry { key, seq, msg });
            }
        }
        let len = self.len();
        if len > self.stats.peak_len {
            self.stats.peak_len = len;
        }
    }

    fn dequeue(&mut self) -> Option<Message> {
        let take_prio = match self.prio.peek() {
            None => false,
            Some(top) => {
                // Prioritized work strictly more urgent than "zero" wins;
                // otherwise the zero lane drains first.
                top.key < self.zero_key || self.zero.is_empty()
            }
        };
        let out = if take_prio {
            self.prio.pop().map(|e| e.msg)
        } else {
            self.zero.pop_front()
        };
        if out.is_some() {
            self.stats.dequeued += 1;
        }
        out
    }

    fn len(&self) -> usize {
        self.zero.len() + self.prio.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use converse_msg::HandlerId;

    fn msg(tag: u8) -> Message {
        Message::new(HandlerId(0), &[tag])
    }

    fn pmsg(tag: u8, p: Priority) -> Message {
        Message::with_priority(HandlerId(0), &p, &[tag])
    }

    fn drain(q: &mut impl SchedulingQueue) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(m) = q.dequeue() {
            out.push(m.payload()[0]);
        }
        out
    }

    #[test]
    fn fifo_order() {
        let mut q = FifoQueue::new();
        for t in 0..5 {
            q.enqueue(msg(t), QueueingMode::Fifo);
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fifo_queue_lifo_mode_prepends() {
        let mut q = FifoQueue::new();
        q.enqueue(msg(1), QueueingMode::Fifo);
        q.enqueue(msg(2), QueueingMode::Lifo);
        q.enqueue(msg(3), QueueingMode::Fifo);
        assert_eq!(drain(&mut q), vec![2, 1, 3]);
    }

    #[test]
    fn lifo_order() {
        let mut q = LifoQueue::new();
        for t in 0..4 {
            q.enqueue(msg(t), QueueingMode::Fifo);
        }
        assert_eq!(drain(&mut q), vec![3, 2, 1, 0]);
    }

    #[test]
    fn csd_zero_lane_fifo() {
        let mut q = CsdQueue::new();
        for t in 0..4 {
            q.enqueue(msg(t), QueueingMode::Fifo);
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn csd_int_priorities_smaller_first() {
        let mut q = CsdQueue::new();
        q.enqueue(pmsg(1, Priority::Int(5)), QueueingMode::PrioFifo);
        q.enqueue(pmsg(2, Priority::Int(-3)), QueueingMode::PrioFifo);
        q.enqueue(pmsg(3, Priority::Int(0)), QueueingMode::PrioFifo);
        assert_eq!(drain(&mut q), vec![2, 3, 1]);
    }

    #[test]
    fn csd_negative_prio_beats_zero_lane() {
        let mut q = CsdQueue::new();
        q.enqueue(msg(1), QueueingMode::Fifo);
        q.enqueue(pmsg(2, Priority::Int(-1)), QueueingMode::PrioFifo);
        q.enqueue(pmsg(3, Priority::Int(1)), QueueingMode::PrioFifo);
        assert_eq!(drain(&mut q), vec![2, 1, 3]);
    }

    #[test]
    fn csd_zero_lane_beats_equal_prio_zero() {
        let mut q = CsdQueue::new();
        q.enqueue(pmsg(1, Priority::Int(0)), QueueingMode::PrioFifo);
        q.enqueue(msg(2), QueueingMode::Fifo);
        assert_eq!(drain(&mut q), vec![2, 1]);
    }

    #[test]
    fn csd_fifo_tiebreak_within_priority() {
        let mut q = CsdQueue::new();
        for t in 0..4 {
            q.enqueue(pmsg(t, Priority::Int(7)), QueueingMode::PrioFifo);
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn csd_lifo_tiebreak_within_priority() {
        let mut q = CsdQueue::new();
        for t in 0..4 {
            q.enqueue(pmsg(t, Priority::Int(7)), QueueingMode::PrioLifo);
        }
        assert_eq!(drain(&mut q), vec![3, 2, 1, 0]);
    }

    #[test]
    fn csd_bitvec_and_int_unified() {
        // int -1 → key 0x7FFF_FFFF; bitvec "0" = one 0 bit, more urgent
        // than anything starting with a 1 bit and than 0x7FFF… ints;
        // bitvec "1" ties with int 0 on the first bit but is shorter,
        // hence more urgent than int 0.
        let mut q = CsdQueue::new();
        q.enqueue(pmsg(1, Priority::Int(-1)), QueueingMode::PrioFifo);
        q.enqueue(
            pmsg(2, Priority::BitVec(BitVecPrio::from_bits(&[false]))),
            QueueingMode::PrioFifo,
        );
        q.enqueue(pmsg(3, Priority::Int(0)), QueueingMode::PrioFifo);
        q.enqueue(
            pmsg(4, Priority::BitVec(BitVecPrio::from_bits(&[true]))),
            QueueingMode::PrioFifo,
        );
        assert_eq!(drain(&mut q), vec![2, 1, 4, 3]);
    }

    #[test]
    fn csd_lifo_zero_lane() {
        let mut q = CsdQueue::new();
        q.enqueue(msg(1), QueueingMode::Lifo);
        q.enqueue(msg(2), QueueingMode::Lifo);
        q.enqueue(msg(3), QueueingMode::Lifo);
        assert_eq!(drain(&mut q), vec![3, 2, 1]);
    }

    #[test]
    fn csd_stats() {
        let mut q = CsdQueue::new();
        q.enqueue(msg(1), QueueingMode::Fifo);
        q.enqueue(pmsg(2, Priority::Int(1)), QueueingMode::PrioFifo);
        assert_eq!(q.stats().enqueued, 2);
        assert_eq!(q.stats().peak_len, 2);
        q.dequeue();
        assert_eq!(q.stats().dequeued, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_dequeue_is_none() {
        assert!(CsdQueue::new().dequeue().is_none());
        assert!(FifoQueue::new().dequeue().is_none());
        assert!(LifoQueue::new().dequeue().is_none());
    }

    #[test]
    fn dequeue_into_respects_order_and_bound() {
        let mut q = CsdQueue::new();
        q.enqueue(msg(1), QueueingMode::Fifo);
        q.enqueue(pmsg(2, Priority::Int(-1)), QueueingMode::PrioFifo);
        q.enqueue(msg(3), QueueingMode::Fifo);
        q.enqueue(pmsg(4, Priority::Int(9)), QueueingMode::PrioFifo);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_into(&mut out, 2), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue_into(&mut out, usize::MAX), 2);
        let tags: Vec<u8> = out.iter().map(|m| m.payload()[0]).collect();
        // Same total order dequeue() would produce: urgent, zero lane,
        // then the rest of the priority lane.
        assert_eq!(tags, vec![2, 1, 3, 4]);
        assert_eq!(q.dequeue_into(&mut out, 5), 0);
    }

    #[test]
    fn csd_unprioritized_message_in_prio_mode_acts_as_zero() {
        // A message with Priority::None enqueued PrioFifo competes as
        // integer 0.
        let mut q = CsdQueue::new();
        q.enqueue(msg(1), QueueingMode::PrioFifo);
        q.enqueue(pmsg(2, Priority::Int(-1)), QueueingMode::PrioFifo);
        q.enqueue(pmsg(3, Priority::Int(1)), QueueingMode::PrioFifo);
        assert_eq!(drain(&mut q), vec![2, 1, 3]);
    }
}
