//! The Csd scheduler loop (paper §3.1.2, Figure 3; appendix §2).
//!
//! ```text
//! void Scheduler() {
//!     while (not done) {
//!         DeliverMsgs();                       // drain the network
//!         message = Dequeue(SchedulerQueue);   // one local entry
//!         (HandlerOf(message))(message);
//!     }
//! }
//! ```
//!
//! Network messages are delivered eagerly ("performance issues demand
//! timely processing of messages from the network interface"); their
//! handlers may call [`csd_enqueue`] to defer work with a priority. The
//! queue module is pluggable (chosen per machine via
//! `MachineConfig::queue`), so "the user can plug in different queuing
//! strategies".
//!
//! **Hot-path shape.** `DeliverMsgs` is batched underneath: the machine
//! layer swaps the PE's whole mailbox into a local intake buffer in one
//! lock acquisition and dispatches from there, so the per-message cost
//! of the drain phase no longer includes a contended lock op (see
//! `Interconnect::drain_into`). Per-link FIFO order is preserved —
//! intake drains strictly before the wire. The scheduler-queue phase
//! stays per-entry on purpose: a handler that enqueues urgent
//! prioritized work mid-batch still sees it preempt at the very next
//! dequeue. When both phases come up empty the loop idles with a
//! spin-then-park policy (`MachineConfig::idle_spin` probes of the
//! lock-free mailbox depth, then a condvar park), so short-message
//! latency does not pay a full condvar wakeup.

use converse_machine::{Message, Pe};
use converse_msg::Priority;
use converse_queue::QueueingMode;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Enqueue a message on this PE's scheduler queue, FIFO among
/// unprioritized work (`CsdEnqueue`). Usually called from a message
/// handler that decides the message should not be processed immediately.
pub fn csd_enqueue(pe: &Pe, msg: Message) {
    pe.queue_enqueue(msg, QueueingMode::Fifo);
}

/// Enqueue under an explicit queueing mode (`CsdEnqueueGeneral`); the
/// `Prio*` modes order by the priority embedded in the message.
pub fn csd_enqueue_general(pe: &Pe, msg: Message, mode: QueueingMode) {
    pe.queue_enqueue(msg, mode);
}

/// Enqueue a message by priority (FIFO tie-break) — the common
/// prioritized case. A convenience over [`csd_enqueue_general`].
pub fn csd_enqueue_prio(pe: &Pe, msg: Message) {
    let mode = if msg.priority() == Priority::None {
        QueueingMode::Fifo
    } else {
        QueueingMode::PrioFifo
    };
    pe.queue_enqueue(msg, mode);
}

/// Ask the running scheduler to stop once control returns to it
/// (`CsdExitScheduler`). Callable from any handler on this PE.
pub fn csd_exit_scheduler(pe: &Pe) {
    pe.sched_exit_flag().store(true, Ordering::Release);
}

fn take_exit(pe: &Pe) -> bool {
    pe.sched_exit_flag().swap(false, Ordering::AcqRel)
}

fn exit_requested(pe: &Pe) -> bool {
    pe.sched_exit_flag().load(Ordering::Acquire)
}

/// The Converse scheduler (`CsdScheduler`).
///
/// Processes messages — delivering each to its handler — until:
/// * `n` messages have been processed, when `n >= 0`
///   (the paper's `ScheduleFor(n)`), or
/// * [`csd_exit_scheduler`] is called from a handler, when `n == -1`.
///
/// Returns the number of messages actually processed (always `n` unless
/// an exit was requested or, for finite `n`, counted work ran out and
/// more arrived-work was awaited).
pub fn csd_scheduler(pe: &Pe, n: i64) -> u64 {
    let infinite = n < 0;
    let mut remaining = if infinite { u64::MAX } else { n as u64 };
    let mut processed = 0u64;
    let mut idle_since: Option<Instant> = None;

    while remaining > 0 {
        if take_exit(pe) {
            break;
        }
        // Phase 1: drain the network, delivering straight to handlers.
        let cap = if infinite {
            None
        } else {
            Some(remaining as usize)
        };
        let delivered = pe.deliver_msgs(cap) as u64;
        processed += delivered;
        remaining -= delivered.min(remaining);
        if remaining == 0 || take_exit(pe) {
            break;
        }
        pe.publish_load(delivered > 0);
        // Phase 2: one entry from the scheduler's queue.
        if let Some(m) = pe.queue_dequeue() {
            idle_since = None;
            pe.call_handler(m);
            processed += 1;
            remaining -= 1;
            continue;
        }
        if delivered > 0 {
            idle_since = None;
            continue;
        }
        // Nothing anywhere: before parking, try to steal a batch of
        // relocatable staged work from the most-loaded peer (a no-op
        // unless the machine enables stealing). A hit re-enters the
        // drain phase immediately.
        if pe.try_steal() > 0 {
            idle_since = None;
            continue;
        }
        // Idle-park until a message arrives. A PE that stays idle past
        // the machine's block watchdog panics — in this runtime that
        // means a lost exit condition, i.e. a bug. With an external
        // service attached the watchdog stands down: a server PE
        // legitimately idles waiting for outside traffic.
        pe.check_abort();
        let started = *idle_since.get_or_insert_with(Instant::now);
        if !pe.services_attached() && started.elapsed() > pe.block_timeout() {
            panic!(
                "PE {}: scheduler idle for {:?} with no exit requested — likely deadlock",
                pe.my_pe(),
                pe.block_timeout()
            );
        }
        pe.idle_wait(Duration::from_millis(5));
    }
    processed
}

/// Run the scheduler until both the network and the scheduler queue are
/// empty (`CsdScheduleUntilIdle` / `ScheduleUntilIdle()`), then return
/// the number of messages processed. An exit request also terminates it.
pub fn csd_scheduler_until_idle(pe: &Pe) -> u64 {
    let mut processed = 0u64;
    loop {
        if take_exit(pe) {
            break;
        }
        processed += pe.deliver_msgs(None) as u64;
        if exit_requested(pe) {
            continue;
        }
        match pe.queue_dequeue() {
            Some(m) => {
                pe.call_handler(m);
                processed += 1;
            }
            None => {
                if pe.inbound_pending() == 0 {
                    break;
                }
            }
        }
    }
    processed
}

/// Run the scheduler until `pred()` holds (checked between messages).
/// Not part of the 1996 API, but the natural Rust helper for tests and
/// blocking adapters: "pump the scheduler until my reply arrived".
pub fn schedule_until<F: FnMut() -> bool>(pe: &Pe, mut pred: F) -> u64 {
    let mut processed = 0u64;
    let mut idle_since: Option<Instant> = None;
    loop {
        if pred() {
            return processed;
        }
        let delivered = pe.deliver_msgs(None) as u64;
        processed += delivered;
        if pred() {
            return processed;
        }
        pe.publish_load(delivered > 0);
        if let Some(m) = pe.queue_dequeue() {
            idle_since = None;
            pe.call_handler(m);
            processed += 1;
            continue;
        }
        if delivered > 0 {
            idle_since = None;
            continue;
        }
        // Same pre-park steal attempt as `csd_scheduler`'s idle branch.
        if pe.try_steal() > 0 {
            idle_since = None;
            continue;
        }
        pe.check_abort();
        let started = *idle_since.get_or_insert_with(Instant::now);
        if started.elapsed() > pe.block_timeout() {
            panic!(
                "PE {}: schedule_until made no progress for {:?} — likely deadlock",
                pe.my_pe(),
                pe.block_timeout()
            );
        }
        pe.idle_wait(Duration::from_millis(5));
    }
}
