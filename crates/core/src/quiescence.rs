//! Counting-based global quiescence detection.
//!
//! A message-driven computation (paper §2.1) is *quiescent* when no
//! handler is running anywhere and no counted message is in flight or
//! queued. The classic two-wave counting detector: PE 0 repeatedly polls
//! every PE for its (created, processed) counters; when the machine-wide
//! totals are equal **and** identical across two consecutive waves, no
//! message can be hiding in the network, so the computation has
//! quiesced. Charm (the paper's flagship client runtime) relies on this
//! facility; our mini-Charm wires its message counts in automatically.
//!
//! Usage: every PE calls [`Quiescence::install`] (same registration
//! order!), work producers call [`Quiescence::msg_created`] per counted
//! message and consumers [`Quiescence::msg_processed`]; PE 0 arms the
//! detector with [`Quiescence::start`], providing a callback message
//! that is enqueued on PE 0's scheduler queue at quiescence.

use crate::csd;
use converse_machine::{HandlerId, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct RootWave {
    active: bool,
    wave: u64,
    replies: usize,
    sum_created: u64,
    sum_processed: u64,
    prev: Option<(u64, u64)>,
    callback: Option<Message>,
}

/// Per-PE quiescence runtime. Obtain with [`Quiescence::install`]; clone
/// of the `Arc` is cheap and handlers capture it.
pub struct Quiescence {
    created: AtomicU64,
    processed: AtomicU64,
    wave_h: HandlerId,
    reply_h: HandlerId,
    next_wave_h: HandlerId,
    root: Mutex<RootWave>,
}

/// Marker type for PE-local storage.
struct QdSlot(Arc<Quiescence>);

impl Quiescence {
    /// Register the detector's handlers on this PE and return its
    /// runtime. Must be called on **every** PE, in the same registration
    /// position, before any counted messages flow. Idempotent per PE.
    pub fn install(pe: &Pe) -> Arc<Quiescence> {
        if let Some(slot) = pe.try_local::<QdSlot>() {
            return slot.0.clone();
        }
        // Two-phase: register handlers that look the runtime up through
        // PE-local storage, then create the runtime with their ids.
        let wave_h = pe.register_handler(|pe, msg| {
            let qd = Quiescence::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let wave = u.u64().expect("qd wave: wave");
            let payload = Packer::new()
                .u64(wave)
                .u64(qd.created.load(Ordering::SeqCst))
                .u64(qd.processed.load(Ordering::SeqCst))
                .finish();
            pe.sync_send_and_free(0, Message::new(qd.reply_h, &payload));
        });
        let reply_h = pe.register_handler(|pe, msg| {
            let qd = Quiescence::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let wave = u.u64().expect("qd reply: wave");
            let created = u.u64().expect("qd reply: created");
            let processed = u.u64().expect("qd reply: processed");
            qd.on_reply(pe, wave, created, processed);
        });
        // Waves are paced through the scheduler queue at the *least
        // urgent* priority: a completed non-quiet wave enqueues this
        // message instead of immediately broadcasting the next wave, so
        // wave traffic can never starve real work out of the network
        // drain — the same use of priorities §2.3 motivates.
        let next_wave_h = pe.register_handler(|pe, _msg| {
            let qd = Quiescence::get(pe);
            if qd.root.lock().active {
                qd.send_wave(pe);
            }
        });
        let qd = Arc::new(Quiescence {
            created: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            wave_h,
            reply_h,
            next_wave_h,
            root: Mutex::new(RootWave {
                active: false,
                wave: 0,
                replies: 0,
                sum_created: 0,
                sum_processed: 0,
                prev: None,
                callback: None,
            }),
        });
        pe.local(|| QdSlot(qd.clone()));
        qd
    }

    /// The runtime previously installed on this PE; panics otherwise.
    pub fn get(pe: &Pe) -> Arc<Quiescence> {
        pe.try_local::<QdSlot>()
            .unwrap_or_else(|| panic!("PE {}: Quiescence::install was not called", pe.my_pe()))
            .0
            .clone()
    }

    /// Count `n` messages as created (sent). Call at every counted send.
    pub fn msg_created(&self, n: u64) {
        self.created.fetch_add(n, Ordering::SeqCst);
    }

    /// Count `n` messages as processed. Call when a counted message's
    /// handler completes.
    pub fn msg_processed(&self, n: u64) {
        self.processed.fetch_add(n, Ordering::SeqCst);
    }

    /// Local created-counter value.
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::SeqCst)
    }

    /// Local processed-counter value.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::SeqCst)
    }

    /// Arm the detector (PE 0 only): when the machine quiesces,
    /// `callback` is enqueued on PE 0's scheduler queue. Panics if armed
    /// twice concurrently or called off PE 0.
    pub fn start(&self, pe: &Pe, callback: Message) {
        assert_eq!(pe.my_pe(), 0, "quiescence detection starts on PE 0");
        {
            let mut r = self.root.lock();
            assert!(!r.active, "quiescence detection already active");
            r.active = true;
            r.wave += 1;
            r.replies = 0;
            r.sum_created = 0;
            r.sum_processed = 0;
            r.prev = None;
            r.callback = Some(callback);
        }
        self.send_wave(pe);
    }

    /// True while a detection is armed and waves are circulating.
    pub fn is_active(&self) -> bool {
        self.root.lock().active
    }

    fn send_wave(&self, pe: &Pe) {
        let wave = self.root.lock().wave;
        let payload = Packer::new().u64(wave).finish();
        let msg = Message::new(self.wave_h, &payload);
        pe.sync_broadcast_all(&msg);
    }

    fn on_reply(&self, pe: &Pe, wave: u64, created: u64, processed: u64) {
        let ready = {
            let mut r = self.root.lock();
            if !r.active || wave != r.wave {
                return; // stale reply from a previous wave
            }
            r.replies += 1;
            r.sum_created += created;
            r.sum_processed += processed;
            r.replies == pe.num_pes()
        };
        if !ready {
            return;
        }
        let mut r = self.root.lock();
        let totals = (r.sum_created, r.sum_processed);
        let quiet = totals.0 == totals.1 && r.prev == Some(totals);
        if quiet {
            r.active = false;
            let cb = r.callback.take().expect("armed detector has a callback");
            drop(r);
            csd::csd_enqueue(pe, cb);
        } else {
            r.prev = Some(totals);
            r.wave += 1;
            r.replies = 0;
            r.sum_created = 0;
            r.sum_processed = 0;
            drop(r);
            // Defer the next wave behind all queued work (see install).
            let msg = Message::with_priority(
                self.next_wave_h,
                &converse_msg::Priority::Int(i32::MAX),
                b"",
            );
            pe.queue_enqueue(msg, converse_queue::QueueingMode::PrioFifo);
        }
    }
}
