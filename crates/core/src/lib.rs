//! The Converse core: the **unified scheduler** (paper §3.1.2) and
//! quiescence detection.
//!
//! "There are two kinds of messages in the system waiting to be
//! scheduled — messages that have come from the network, and those that
//! are locally generated. The scheduler's job is to repeatedly deliver
//! these messages to their respective handlers." The loop implemented in
//! [`csd::csd_scheduler`] is the pseudo-code of the paper's Figure 3:
//! drain the network first (handlers run immediately; they may re-enqueue
//! with a priority), then deliver one entry from the scheduler's queue,
//! and repeat until [`csd::csd_exit_scheduler`] is called.
//!
//! The scheduler is deliberately **exposed to the user program**: SPM
//! modules call it explicitly to donate idle time to concurrent modules
//! (`ScheduleFor(n)`, `ScheduleUntilIdle()` — here
//! [`csd::csd_scheduler`] with a count and
//! [`csd::csd_scheduler_until_idle`]), which is what makes the explicit
//! and implicit control regimes composable (paper §3.1.2 and footnote 1).
//!
//! [`quiescence`] adds the counting-based global quiescence detector that
//! message-driven runtimes (our mini-Charm) use to learn that no work
//! remains anywhere — a facility Converse's successors expose as
//! `CkStartQD`.

pub mod csd;
pub mod quiescence;

pub use converse_machine::{
    run, run_with, try_run_with, HandlerId, MachineConfig, Message, Pe, QueueKind, RunError,
    RunReport, ThreadBackend, Transport,
};
pub use converse_queue::QueueingMode;
pub use csd::{
    csd_enqueue, csd_enqueue_general, csd_exit_scheduler, csd_scheduler, csd_scheduler_until_idle,
    schedule_until,
};
pub use quiescence::Quiescence;
