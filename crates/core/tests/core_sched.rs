//! Scheduler-loop and quiescence tests on live multi-PE machines.

use converse_core::{
    csd_enqueue, csd_enqueue_general, csd_exit_scheduler, csd_scheduler, csd_scheduler_until_idle,
    run, run_with, schedule_until, MachineConfig, Message, QueueingMode, Quiescence,
};
use converse_msg::Priority;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn scheduler_runs_queued_messages_in_fifo_order() {
    run(1, |pe| {
        let order = pe.local(|| Mutex::new(Vec::<u8>::new()));
        let o2 = order.clone();
        let h = pe.register_handler(move |pe, msg| {
            o2.lock().push(msg.payload()[0]);
            if msg.payload()[0] == 4 {
                csd_exit_scheduler(pe);
            }
        });
        for i in 0..5u8 {
            csd_enqueue(pe, Message::new(h, &[i]));
        }
        let n = csd_scheduler(pe, -1);
        assert_eq!(n, 5);
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    });
}

#[test]
fn scheduler_priorities_reorder_execution() {
    run(1, |pe| {
        let order = pe.local(|| Mutex::new(Vec::<i32>::new()));
        let o2 = order.clone();
        let h = pe.register_handler(move |_pe, msg| {
            let v = i32::from_le_bytes(msg.payload().try_into().unwrap());
            o2.lock().push(v);
        });
        for v in [3, -5, 0, 7, -1] {
            let m = Message::with_priority(h, &Priority::Int(v), &v.to_le_bytes());
            csd_enqueue_general(pe, m, QueueingMode::PrioFifo);
        }
        csd_scheduler(pe, 5);
        assert_eq!(*order.lock(), vec![-5, -1, 0, 3, 7]);
    });
}

#[test]
fn schedule_for_n_counts_messages() {
    run(1, |pe| {
        let count = pe.local(|| AtomicU64::new(0));
        let c2 = count.clone();
        let h = pe.register_handler(move |_pe, _| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..10 {
            csd_enqueue(pe, Message::new(h, b""));
        }
        assert_eq!(csd_scheduler(pe, 4), 4);
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(csd_scheduler(pe, 6), 6);
        assert_eq!(count.load(Ordering::Relaxed), 10);
    });
}

#[test]
fn until_idle_drains_everything_and_returns() {
    run(1, |pe| {
        let count = pe.local(|| AtomicU64::new(0));
        let c2 = count.clone();
        // Handler that fans out: each message spawns two more until depth
        // exhausted; until-idle must keep going through the cascade.
        let h = pe.local(|| Mutex::new(None));
        let h2 = h.clone();
        let id = pe.register_handler(move |pe, msg| {
            c2.fetch_add(1, Ordering::Relaxed);
            let depth = msg.payload()[0];
            if depth > 0 {
                let id = h2.lock().unwrap();
                csd_enqueue(pe, Message::new(id, &[depth - 1]));
                csd_enqueue(pe, Message::new(id, &[depth - 1]));
            }
        });
        *h.lock() = Some(id);
        csd_enqueue(pe, Message::new(id, &[3]));
        let n = csd_scheduler_until_idle(pe);
        // Full binary cascade of depth 3: 1+2+4+8 = 15 messages.
        assert_eq!(n, 15);
        assert_eq!(count.load(Ordering::Relaxed), 15);
        assert_eq!(csd_scheduler_until_idle(pe), 0, "idle machine stays idle");
    });
}

#[test]
fn network_messages_processed_before_queue() {
    // The Fig. 3 loop drains the network before each queue pop. Local
    // self-sends land in the mailbox, so they count as "network" work.
    run(1, |pe| {
        let order = pe.local(|| Mutex::new(Vec::<&'static str>::new()));
        let o_net = order.clone();
        let net_h = pe.register_handler(move |_pe, _| o_net.lock().push("net"));
        let o_q = order.clone();
        let q_h = pe.register_handler(move |pe, _| {
            o_q.lock().push("queue");
            csd_exit_scheduler(pe);
        });
        csd_enqueue(pe, Message::new(q_h, b""));
        pe.sync_send_and_free(0, Message::new(net_h, b""));
        csd_scheduler(pe, -1);
        assert_eq!(*order.lock(), vec!["net", "queue"]);
    });
}

#[test]
fn handler_enqueue_then_second_handler_pattern() {
    // The paper's §3.3 idiom: a first handler enqueues the message after
    // swapping in a second handler, so the dequeued copy is not
    // re-enqueued ("to avoid infinite regress").
    run(2, |pe| {
        let processed = pe.local(|| AtomicU64::new(0));
        let ids = pe.local(|| {
            Mutex::new((
                None::<converse_core::HandlerId>,
                None::<converse_core::HandlerId>,
            ))
        });
        let p2 = processed.clone();
        let ids2 = ids.clone();
        let first = pe.register_handler(move |pe, mut msg| {
            let second = ids2.lock().1.unwrap();
            msg.set_handler(second);
            csd_enqueue(pe, msg);
        });
        let p3 = p2.clone();
        let second = pe.register_handler(move |pe, msg| {
            p3.fetch_add(1, Ordering::Relaxed);
            assert_eq!(msg.payload(), b"pattern");
            csd_exit_scheduler(pe);
        });
        *ids.lock() = (Some(first), Some(second));
        pe.barrier();
        if pe.my_pe() == 0 {
            pe.sync_send_and_free(1, Message::new(first, b"pattern"));
        } else {
            csd_scheduler(pe, -1);
            assert_eq!(processed.load(Ordering::Relaxed), 1);
        }
        pe.barrier();
    });
}

#[test]
fn schedule_until_pumps_remote_reply() {
    run(2, |pe| {
        let got = pe.local(|| AtomicU64::new(0));
        let g2 = got.clone();
        let reply_h = pe.register_handler(move |_pe, msg| {
            g2.store(
                u64::from_le_bytes(msg.payload().try_into().unwrap()),
                Ordering::SeqCst,
            );
        });
        let req_h = pe.register_handler(move |pe, msg| {
            // Service: double the value and reply to PE 0.
            let v = u64::from_le_bytes(msg.payload()[8..].try_into().unwrap());
            let reply_to = converse_core::HandlerId(u32::from_le_bytes(
                msg.payload()[0..4].try_into().unwrap(),
            ));
            pe.sync_send_and_free(0, Message::new(reply_to, &(v * 2).to_le_bytes()));
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let mut payload = Vec::new();
            payload.extend_from_slice(&reply_h.0.to_le_bytes());
            payload.extend_from_slice(&[0u8; 4]);
            payload.extend_from_slice(&21u64.to_le_bytes());
            pe.sync_send_and_free(1, Message::new(req_h, &payload));
            schedule_until(pe, || got.load(Ordering::SeqCst) != 0);
            assert_eq!(got.load(Ordering::SeqCst), 42);
        } else {
            // Serve exactly one request.
            csd_scheduler(pe, 1);
        }
        pe.barrier();
    });
}

#[test]
fn exit_scheduler_from_network_handler() {
    run(2, |pe| {
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            pe.sync_send_and_free(1, Message::new(stop, b""));
        } else {
            csd_scheduler(pe, -1); // returns because of the remote stop
        }
        pe.barrier();
    });
}

// ---- quiescence ---------------------------------------------------------

/// Irregular fan-out workload: each message spawns 0..=2 children on
/// random-ish PEs until a depth budget runs out; quiescence fires when
/// the whole tree has been consumed everywhere.
#[test]
fn quiescence_detects_end_of_cascade() {
    let total = Arc::new(AtomicU64::new(0));
    let t2 = total.clone();
    run(4, move |pe| {
        let qd = Quiescence::install(pe);
        let work_total = t2.clone();
        let slot = pe.local(|| Mutex::new(None::<converse_core::HandlerId>));
        let slot2 = slot.clone();
        let qd2 = qd.clone();
        let work = pe.register_handler(move |pe, msg| {
            work_total.fetch_add(1, Ordering::SeqCst);
            let depth = msg.payload()[0];
            if depth > 0 {
                let id = slot2.lock().unwrap();
                // Deterministic pseudo-fanout: spawn to two neighbours.
                for k in 1..=2usize {
                    qd2.msg_created(1);
                    let dst = (pe.my_pe() + k * usize::from(depth)) % pe.num_pes();
                    pe.sync_send_and_free(dst, Message::new(id, &[depth - 1]));
                }
            }
            qd2.msg_processed(1);
        });
        *slot.lock() = Some(work);
        let done = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            qd.msg_created(1);
            pe.sync_send_and_free(1, Message::new(work, &[5]));
            qd.start(pe, Message::new(done, b""));
            csd_scheduler(pe, -1);
            // Quiescence fired; tell everyone else to stop.
            let stop = done;
            pe.sync_broadcast(&Message::new(stop, b""));
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
    // Depth-5 binary cascade: 1 + 2 + 4 + ... + 2^5 = 63 handler runs.
    assert_eq!(total.load(Ordering::SeqCst), 63);
}

#[test]
fn quiescence_on_empty_machine_fires_immediately() {
    run(3, |pe| {
        let qd = Quiescence::install(pe);
        let done = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            qd.start(pe, Message::new(done, b""));
            csd_scheduler(pe, -1);
            assert!(!qd.is_active());
            pe.sync_broadcast(&Message::new(done, b""));
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
}

#[test]
fn quiescence_not_fooled_by_in_flight_messages() {
    // A PE that creates work *after* replying to the first wave must
    // delay detection: the two-wave compare catches it.
    run(2, |pe| {
        let qd = Quiescence::install(pe);
        let seen = pe.local(|| AtomicU64::new(0));
        let s2 = seen.clone();
        let qd2 = qd.clone();
        let sink = pe.register_handler(move |_pe, _| {
            s2.fetch_add(1, Ordering::SeqCst);
            qd2.msg_processed(1);
        });
        let done = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            // Create one counted message but send it late — after arming.
            qd.msg_created(1);
            qd.start(pe, Message::new(done, b""));
            std::thread::sleep(std::time::Duration::from_millis(30));
            pe.sync_send_and_free(1, Message::new(sink, b""));
            csd_scheduler(pe, -1);
            pe.sync_broadcast(&Message::new(done, b""));
        } else {
            csd_scheduler(pe, -1);
            // The counted message MUST have been processed before
            // quiescence was declared.
            assert_eq!(seen.load(Ordering::SeqCst), 1);
        }
        pe.barrier();
    });
}

#[test]
fn queue_kind_fifo_machine_ignores_priorities() {
    let cfg = MachineConfig::new(1).queue(converse_core::QueueKind::Fifo);
    run_with(cfg, |pe| {
        let order = pe.local(|| Mutex::new(Vec::<i32>::new()));
        let o2 = order.clone();
        let h = pe.register_handler(move |_pe, msg| {
            o2.lock()
                .push(i32::from_le_bytes(msg.payload().try_into().unwrap()));
        });
        for v in [5, -9, 2] {
            let m = Message::with_priority(h, &Priority::Int(v), &v.to_le_bytes());
            csd_enqueue_general(pe, m, QueueingMode::PrioFifo);
        }
        csd_scheduler(pe, 3);
        // FIFO queue: insertion order, priorities ignored — the
        // "need-based cost" configuration.
        assert_eq!(*order.lock(), vec![5, -9, 2]);
    });
}
