//! Edge cases of the scheduler and quiescence detector.

use converse_core::{
    csd_enqueue, csd_exit_scheduler, csd_scheduler, csd_scheduler_until_idle, run, Message,
    Quiescence,
};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn schedule_zero_messages_returns_immediately() {
    run(1, |pe| {
        let h = pe.register_handler(|_, _| panic!("must not run"));
        csd_enqueue(pe, Message::new(h, b""));
        assert_eq!(csd_scheduler(pe, 0), 0);
        assert_eq!(pe.queue_len(), 1, "message still queued");
    });
}

#[test]
fn exit_request_before_scheduler_call_is_honoured() {
    run(1, |pe| {
        let count = pe.local(|| AtomicU64::new(0));
        let c2 = count.clone();
        let h = pe.register_handler(move |_, _| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        csd_enqueue(pe, Message::new(h, b""));
        csd_exit_scheduler(pe);
        // The pre-set flag is consumed at loop entry: nothing runs.
        assert_eq!(csd_scheduler(pe, -1), 0);
        assert_eq!(count.load(Ordering::Relaxed), 0);
        // The flag was consumed, so a second call processes the message.
        assert_eq!(csd_scheduler(pe, 1), 1);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn exit_flag_does_not_leak_between_scheduler_calls() {
    run(1, |pe| {
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        csd_enqueue(pe, Message::new(stop, b""));
        csd_scheduler(pe, -1);
        // Fresh call on an idle machine: must return, not hang, and must
        // not see a stale exit flag... until-idle returns immediately.
        assert_eq!(csd_scheduler_until_idle(pe), 0);
    });
}

#[test]
fn handler_registered_during_handler_execution() {
    // Handlers may register more handlers (a runtime bootstrapping a
    // sub-module on demand) — as long as every PE does the same.
    run(1, |pe| {
        let fired = pe.local(|| AtomicU64::new(0));
        let f2 = fired.clone();
        let boot = pe.register_handler(move |pe, _| {
            let f3 = f2.clone();
            let inner = pe.register_handler(move |_, _| {
                f3.fetch_add(1, Ordering::Relaxed);
            });
            csd_enqueue(pe, Message::new(inner, b""));
        });
        csd_enqueue(pe, Message::new(boot, b""));
        csd_scheduler_until_idle(pe);
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    });
}

#[test]
#[should_panic(expected = "already active")]
fn double_arm_quiescence_panics() {
    run(1, |pe| {
        let qd = Quiescence::install(pe);
        let done = pe.register_handler(|_, _| {});
        qd.msg_created(1); // keep it from firing instantly
        qd.start(pe, Message::new(done, b""));
        qd.start(pe, Message::new(done, b""));
    });
}

#[test]
fn quiescence_rearm_after_completion() {
    run(1, |pe| {
        let qd = Quiescence::install(pe);
        let fired = pe.local(|| AtomicU64::new(0));
        let f2 = fired.clone();
        let done = pe.register_handler(move |pe, _| {
            f2.fetch_add(1, Ordering::Relaxed);
            csd_exit_scheduler(pe);
        });
        for _ in 0..3 {
            qd.start(pe, Message::new(done, b""));
            csd_scheduler(pe, -1);
        }
        assert_eq!(fired.load(Ordering::Relaxed), 3);
    });
}

#[test]
fn nested_scheduler_donation_from_handler() {
    // csd_scheduler(n) from within a handler (re-entrant scheduling) is
    // the SPM time-donation pattern of §3.1.2 footnote 1; nested budgets
    // are independent of the outer invocation's.
    run(1, |pe| {
        let inner_runs = pe.local(|| AtomicU64::new(0));
        let i2 = inner_runs.clone();
        let inner = pe.register_handler(move |_, _| {
            i2.fetch_add(1, Ordering::Relaxed);
        });
        let i3 = inner_runs.clone();
        let outer = pe.register_handler(move |pe, _| {
            // Deposit work, then donate exactly that much time.
            csd_enqueue(pe, Message::new(inner, b""));
            csd_enqueue(pe, Message::new(inner, b""));
            assert_eq!(csd_scheduler(pe, 2), 2);
            assert_eq!(i3.load(Ordering::Relaxed), 2, "nested run completed inline");
        });
        csd_enqueue(pe, Message::new(outer, b""));
        assert_eq!(
            csd_scheduler(pe, 1),
            1,
            "outer counts as one at the top level"
        );
        assert_eq!(inner_runs.load(Ordering::Relaxed), 2);
        assert_eq!(csd_scheduler_until_idle(pe), 0, "nothing left over");
    });
}
