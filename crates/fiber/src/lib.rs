//! Stackful user-level **fibers** — the 1996 thread object's actual
//! mechanism, reproduced.
//!
//! The paper's thread object "is primarily implemented through the C
//! language calls to `setjmp` and `longjmp` which allow state
//! information (program counter, stack pointer and registers) to be
//! *saved* and later *jumped* to" (§3.2.2). This crate is that
//! mechanism: a minimal stackful coroutine whose context switch saves
//! and restores exactly the System-V callee-saved register set — the
//! same work `setjmp`/`longjmp` did — in ~10 ns on a modern x86-64
//! core, i.e. the "native-class" constant the 1996 implementation paid.
//! It is the engine of the **default** (`fiber`) backend of
//! `converse-threads`; the hand-off OS-thread backend remains as the
//! portable fallback on targets this crate does not support.
//!
//! The `threads_switch` bench reports this constant next to the
//! hand-off fallback's, closing the loop on the substitution note in
//! DESIGN.md.
//!
//! # Safety model
//!
//! * x86-64 System-V only (compile error elsewhere); the switch is ~20
//!   instructions of `global_asm!`.
//! * A fiber's closure runs on its own heap-allocated stack. Panics
//!   inside the fiber are caught at the fiber boundary and re-thrown
//!   from [`Fiber::resume`] on the resumer's stack.
//! * **Dropping a suspended fiber leaks whatever is live on its stack**
//!   (destructors do not run), exactly like discarding a `setjmp`
//!   context in 1996. Run fibers to completion when that matters.

#![cfg(all(target_arch = "x86_64", unix))]

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

std::arch::global_asm!(
    // fn fiber_switch(save: *mut *mut u8, load: *mut u8)
    //
    // Saves the callee-saved state of the current context on the current
    // stack, stores the resulting rsp through `save`, then installs
    // `load` as rsp and restores the state found there. Returning `ret`s
    // into whatever return address that stack holds — either a previous
    // fiber_switch call site or the bootstrap trampoline.
    ".global converse_fiber_switch",
    ".hidden converse_fiber_switch",
    "converse_fiber_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    // Bootstrap: first entry into a fresh fiber. The creation code put
    // the fiber context pointer in the r12 slot; hand it to fiber_main.
    // At this point rsp is 16-byte aligned (see stack layout in `new`),
    // so the call leaves the callee with standard SysV alignment.
    ".global converse_fiber_trampoline",
    ".hidden converse_fiber_trampoline",
    "converse_fiber_trampoline:",
    "mov rdi, r12",
    "call {main}",
    "ud2",
    main = sym fiber_main,
);

unsafe extern "C" {
    fn converse_fiber_switch(save: *mut *mut u8, load: *mut u8);
}

unsafe extern "C" {
    #[link_name = "converse_fiber_trampoline"]
    fn fiber_trampoline();
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// Created or suspended at a yield: resumable.
    Suspended,
    /// Currently on its own stack.
    Running,
    /// The closure returned (or panicked).
    Done,
}

/// A fiber's entry closure, boxed until first resume.
type Entry = Box<dyn FnOnce(&FiberHandle)>;

struct FiberInner {
    /// The fiber's stack (kept alive for the fiber's lifetime; `None`
    /// only after [`Fiber::take_stack`] reclaimed it).
    stack: Option<Box<[u8]>>,
    /// Saved rsp of the fiber while it is suspended.
    fiber_rsp: UnsafeCell<*mut u8>,
    /// Saved rsp of the resumer while the fiber runs.
    caller_rsp: UnsafeCell<*mut u8>,
    state: Cell<State>,
    entry: UnsafeCell<Option<Entry>>,
    panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
}

/// Handed to the fiber's closure; the only way to yield.
pub struct FiberHandle {
    inner: *const FiberInner,
}

impl FiberHandle {
    /// Suspend this fiber and return control to [`Fiber::resume`]'s
    /// caller. Execution continues here at the next `resume`.
    pub fn yield_now(&self) {
        let inner = unsafe { &*self.inner };
        inner.state.set(State::Suspended);
        unsafe {
            converse_fiber_switch(inner.fiber_rsp.get(), *inner.caller_rsp.get());
        }
        inner.state.set(State::Running);
    }
}

/// A stackful fiber: create with a closure, drive with
/// [`Fiber::resume`].
///
/// ```
/// use converse_fiber::Fiber;
///
/// let mut sum = 0u64;
/// let mut f = Fiber::new(64 * 1024, |h| {
///     for i in 1..=3u64 {
///         // (writes to captured state happen between resumes)
///         h.yield_now();
///         let _ = i;
///     }
/// });
/// let mut switches = 0;
/// while f.resume() {
///     switches += 1;
///     sum += 1;
/// }
/// assert_eq!(switches, 3);
/// assert_eq!(sum, 3);
/// ```
pub struct Fiber {
    inner: Box<FiberInner>,
}

extern "C" fn fiber_main(ctx: *mut FiberInner) -> ! {
    let inner = unsafe { &*ctx };
    inner.state.set(State::Running);
    let entry = unsafe {
        (*inner.entry.get())
            .take()
            .expect("entry set before first resume")
    };
    let handle = FiberHandle { inner: ctx };
    let result = catch_unwind(AssertUnwindSafe(|| entry(&handle)));
    if let Err(p) = result {
        unsafe {
            *inner.panic.get() = Some(p);
        }
    }
    inner.state.set(State::Done);
    // Hand control back; a finished fiber is never switched into again
    // (resume() checks the state), so this switch never returns.
    unsafe {
        converse_fiber_switch(inner.fiber_rsp.get(), *inner.caller_rsp.get());
    }
    unreachable!("finished fiber resumed");
}

impl Fiber {
    /// Create a fiber with a dedicated stack of `stack_size` bytes
    /// (rounded up to 16-byte alignment; 64 KiB is plenty for most
    /// uses). The closure does not run until the first [`Fiber::resume`].
    pub fn new<F>(stack_size: usize, f: F) -> Fiber
    where
        F: FnOnce(&FiberHandle) + 'static,
    {
        let stack_size = stack_size.max(4096);
        Fiber::with_stack(vec![0u8; stack_size].into_boxed_slice(), f)
    }

    /// Create a fiber on a caller-provided stack — the pooling entry
    /// point: a stack reclaimed from a finished fiber via
    /// [`Fiber::take_stack`] can be handed straight back in, skipping
    /// the allocation (and zeroing) [`Fiber::new`] pays per fiber.
    /// Panics if the stack is smaller than 4 KiB.
    pub fn with_stack<F>(mut stack: Box<[u8]>, f: F) -> Fiber
    where
        F: FnOnce(&FiberHandle) + 'static,
    {
        let stack_size = stack.len();
        assert!(stack_size >= 4096, "fiber stack must be at least 4 KiB");
        // Highest 16-aligned address within the stack.
        let top = {
            let end = stack.as_mut_ptr() as usize + stack_size;
            (end & !15) as *mut u8
        };
        // Layout below `top` (downward):
        //   [top-8]         : trampoline return address (ret target)
        //   [top-16..top-56): six callee-saved slots (r15 r14 r13 r12 rbx
        //                     rbp; r15 popped first = lowest address)
        // After the six pops rsp = top-8; `ret` consumes the trampoline
        // address leaving rsp = top ≡ 0 (mod 16) inside the trampoline;
        // its `call` pushes a return address, so fiber_main starts with
        // the standard SysV entry alignment (rsp ≡ 8 mod 16).
        unsafe {
            let ret_slot = top.sub(8) as *mut usize;
            *ret_slot = fiber_trampoline as *const () as usize;
            let regs_base = top.sub(8 + 48) as *mut usize; // 6 slots below
            for i in 0..6 {
                *regs_base.add(i) = 0;
            }
            let inner = Box::new(FiberInner {
                stack: Some(stack),
                fiber_rsp: UnsafeCell::new(regs_base as *mut u8),
                caller_rsp: UnsafeCell::new(std::ptr::null_mut()),
                state: Cell::new(State::Suspended),
                entry: UnsafeCell::new(Some(Box::new(f))),
                panic: UnsafeCell::new(None),
            });
            // r12 slot (pop order: r15 r14 r13 r12 → index 3) carries the
            // context pointer for the trampoline.
            *regs_base.add(3) = &*inner as *const FiberInner as usize;
            Fiber { inner }
        }
    }

    /// Run the fiber until it yields or finishes. Returns true while the
    /// fiber can be resumed again; false once its closure has returned.
    /// Re-raises a panic that occurred inside the fiber.
    pub fn resume(&mut self) -> bool {
        if self.inner.state.get() == State::Done {
            return false;
        }
        assert_ne!(
            self.inner.state.get(),
            State::Running,
            "fiber resumed reentrantly"
        );
        unsafe {
            converse_fiber_switch(self.inner.caller_rsp.get(), *self.inner.fiber_rsp.get());
        }
        // Back from the fiber: it either yielded or finished.
        if let Some(p) = unsafe { (*self.inner.panic.get()).take() } {
            resume_unwind(p);
        }
        self.inner.state.get() != State::Done
    }

    /// True once the fiber's closure has returned.
    pub fn is_done(&self) -> bool {
        self.inner.state.get() == State::Done
    }

    /// Reclaim the stack of a **finished** fiber for reuse (feed it back
    /// to [`Fiber::with_stack`]). Returns `None` for a fiber that has
    /// not run to completion: a suspended fiber's stack still holds live
    /// frames, and taking it out from under them would be unsound — the
    /// caller must either resume the fiber to completion first or accept
    /// the documented dropped-while-suspended leak.
    pub fn take_stack(mut self) -> Option<Box<[u8]>> {
        if self.inner.state.get() == State::Done {
            self.inner.stack.take()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn runs_to_completion_without_yield() {
        let hit = Rc::new(Cell::new(0));
        let h2 = hit.clone();
        let mut f = Fiber::new(32 * 1024, move |_h| {
            h2.set(41);
        });
        assert!(!f.is_done());
        assert!(!f.resume(), "no yields: finished on first resume");
        assert!(f.is_done());
        assert_eq!(hit.get(), 41);
        assert!(!f.resume(), "finished fiber stays finished");
    }

    #[test]
    fn yields_alternate_with_resumer() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        let mut f = Fiber::new(32 * 1024, move |h| {
            for i in 0..3 {
                l2.borrow_mut().push(format!("fiber {i}"));
                h.yield_now();
            }
        });
        for i in 0..3 {
            assert!(f.resume());
            log.borrow_mut().push(format!("main {i}"));
        }
        assert!(!f.resume());
        assert_eq!(
            *log.borrow(),
            vec!["fiber 0", "main 0", "fiber 1", "main 1", "fiber 2", "main 2"]
        );
    }

    #[test]
    fn state_lives_across_yields_on_the_fiber_stack() {
        let out = Rc::new(Cell::new(0u64));
        let o2 = out.clone();
        let mut f = Fiber::new(64 * 1024, move |h| {
            // A stack array mutated across yields: the saved context must
            // preserve it exactly.
            let mut acc = [0u64; 32];
            for round in 0..4u64 {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a += round * i as u64;
                }
                h.yield_now();
            }
            o2.set(acc.iter().sum());
        });
        while f.resume() {}
        // sum over i of i * (0+1+2+3) = 6 * (31*32/2)
        assert_eq!(out.get(), 6 * (31 * 32 / 2));
    }

    #[test]
    fn many_fibers_interleaved() {
        let n = 64;
        let counter = Rc::new(Cell::new(0u64));
        let mut fibers: Vec<Fiber> = (0..n)
            .map(|_| {
                let c = counter.clone();
                Fiber::new(16 * 1024, move |h| {
                    for _ in 0..10 {
                        c.set(c.get() + 1);
                        h.yield_now();
                    }
                })
            })
            .collect();
        let mut live = n;
        while live > 0 {
            live = 0;
            for f in &mut fibers {
                if f.resume() {
                    live += 1;
                }
            }
        }
        assert_eq!(counter.get(), n as u64 * 10);
    }

    #[test]
    fn panic_inside_fiber_rethrows_on_resume() {
        let mut f = Fiber::new(32 * 1024, |h| {
            h.yield_now();
            panic!("fiber boom");
        });
        assert!(f.resume(), "first resume reaches the yield");
        let err = catch_unwind(AssertUnwindSafe(|| f.resume())).expect_err("panic re-thrown");
        assert_eq!(err.downcast_ref::<&str>().copied(), Some("fiber boom"));
        assert!(f.is_done());
        assert!(!f.resume());
    }

    #[test]
    fn switch_count_is_exact() {
        let mut f = Fiber::new(16 * 1024, |h| {
            for _ in 0..1000 {
                h.yield_now();
            }
        });
        let mut resumes = 0;
        while f.resume() {
            resumes += 1;
        }
        assert_eq!(resumes, 1000);
    }

    #[test]
    fn finished_fiber_stack_is_reusable() {
        let mut f = Fiber::new(32 * 1024, |h| h.yield_now());
        assert!(f.resume());
        assert!(!f.resume());
        let stack = f.take_stack().expect("finished fiber yields its stack");
        assert_eq!(stack.len(), 32 * 1024);
        // The reclaimed (dirty, un-zeroed) stack must host a new fiber
        // correctly: nothing in the mechanism depends on fresh zeroes.
        let out = Rc::new(Cell::new(0u64));
        let o2 = out.clone();
        let mut g = Fiber::with_stack(stack, move |h| {
            let mut acc = [1u64; 16];
            h.yield_now();
            for (i, a) in acc.iter_mut().enumerate() {
                *a += i as u64;
            }
            o2.set(acc.iter().sum());
        });
        while g.resume() {}
        assert_eq!(out.get(), 16 + (15 * 16 / 2));
    }

    #[test]
    fn suspended_fiber_refuses_to_give_up_its_stack() {
        let mut f = Fiber::new(32 * 1024, |h| h.yield_now());
        assert!(f.resume(), "suspended at the yield");
        assert!(
            f.take_stack().is_none(),
            "a suspended fiber's stack holds live frames and must not be reclaimed"
        );
    }

    #[test]
    fn dropping_suspended_fiber_leaks_stack_contents() {
        // Pins the documented caveat: destructors on a dropped suspended
        // fiber's stack do NOT run, exactly like discarding a `setjmp`
        // context in 1996. If this test ever fails, the caveat in the
        // crate docs (and docs/API.md) no longer holds.
        let alive = Rc::new(());
        let a2 = alive.clone();
        let mut f = Fiber::new(32 * 1024, move |h| {
            let _hold = a2;
            h.yield_now();
        });
        assert!(f.resume(), "suspended with the Rc live on its stack");
        drop(f);
        assert_eq!(
            Rc::strong_count(&alive),
            2,
            "the clone on the dropped stack was leaked, not dropped"
        );
    }

    #[test]
    fn nested_calls_on_fiber_stack() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        let out = Rc::new(Cell::new(0));
        let o2 = out.clone();
        let mut f = Fiber::new(256 * 1024, move |h| {
            let a = fib(20);
            h.yield_now();
            let b = fib(15);
            o2.set(a + b);
        });
        while f.resume() {}
        assert_eq!(out.get(), 6765 + 610);
    }
}
