//! Processor-group reductions (EMI §3.1.3): group-scoped global
//! operations along the group's own spanning tree.

use converse_machine::pgrp::Pgrp;
use converse_machine::{run, Message};

fn sum_combiner(pe: &converse_machine::Pe) -> converse_machine::coll::CombinerId {
    pe.register_combiner(|a, b| {
        let x = i64::from_le_bytes(a.try_into().unwrap());
        let y = i64::from_le_bytes(b.try_into().unwrap());
        (x + y).to_le_bytes().to_vec()
    })
}

fn sample_group() -> Pgrp {
    // Root 1, children 3 and 4; 4 has child 0. PEs 2 and 5 excluded.
    let mut g = Pgrp::create(1);
    g.add_children(1, &[3, 4]);
    g.add_children(4, &[0]);
    g
}

#[test]
fn group_reduce_sums_members_only() {
    run(6, |pe| {
        let sum = sum_combiner(pe);
        let g = sample_group();
        pe.barrier();
        if g.is_member(pe.my_pe()) {
            let contrib = (pe.my_pe() as i64 + 1).to_le_bytes().to_vec();
            let out = pe.pgrp_reduce(&g, 7, contrib, sum);
            if pe.my_pe() == 1 {
                // Members 1, 3, 4, 0 → contributions 2 + 4 + 5 + 1 = 12.
                let total = i64::from_le_bytes(out.unwrap().try_into().unwrap());
                assert_eq!(total, 12);
            } else {
                assert!(out.is_none());
            }
        }
        pe.barrier();
    });
}

#[test]
fn concurrent_group_reductions_by_tag() {
    run(6, |pe| {
        let sum = sum_combiner(pe);
        let g = sample_group();
        pe.barrier();
        if g.is_member(pe.my_pe()) {
            // Two back-to-back reductions distinguished by tag; the
            // second's contributions may overtake the first's under
            // load, so tags must keep them apart.
            let a = pe.pgrp_reduce(&g, 100, 1i64.to_le_bytes().to_vec(), sum);
            let b = pe.pgrp_reduce(&g, 101, 10i64.to_le_bytes().to_vec(), sum);
            if pe.my_pe() == 1 {
                assert_eq!(i64::from_le_bytes(a.unwrap().try_into().unwrap()), 4);
                assert_eq!(i64::from_le_bytes(b.unwrap().try_into().unwrap()), 40);
            }
        }
        pe.barrier();
    });
}

#[test]
fn singleton_group_reduce() {
    run(2, |pe| {
        let sum = sum_combiner(pe);
        pe.barrier();
        if pe.my_pe() == 1 {
            let g = Pgrp::create(1);
            let out = pe.pgrp_reduce(&g, 1, 99i64.to_le_bytes().to_vec(), sum);
            assert_eq!(i64::from_le_bytes(out.unwrap().try_into().unwrap()), 99);
        }
        pe.barrier();
    });
}

#[test]
fn group_reduce_with_multicast_roundtrip() {
    // Root multicasts a question; members reduce their answers back.
    // Multicast payloads are delivered by *handler* (point-of-arrival
    // dispatch), so members observe it through a flag, not a blocking
    // receive.
    run(4, |pe| {
        let sum = sum_combiner(pe);
        let asked = pe.local(|| std::sync::atomic::AtomicU64::new(0));
        let a2 = asked.clone();
        let question = pe.register_handler(move |_pe, msg| {
            assert_eq!(msg.payload(), b"contribute!");
            a2.store(1, std::sync::atomic::Ordering::SeqCst);
        });
        let mut g = Pgrp::create(0);
        g.add_children(0, &[1, 2, 3]);
        pe.barrier();
        if pe.my_pe() == 0 {
            let h = pe.async_multicast(&g, &Message::new(question, b"contribute!"));
            pe.release_comm_handle(h);
            let out = pe.pgrp_reduce(&g, 5, 0i64.to_le_bytes().to_vec(), sum);
            assert_eq!(
                i64::from_le_bytes(out.unwrap().try_into().unwrap()),
                1 + 2 + 3
            );
        } else {
            // Wait for the question, then contribute my PE id.
            pe.deliver_until(|| asked.load(std::sync::atomic::Ordering::SeqCst) == 1);
            let out = pe.pgrp_reduce(&g, 5, (pe.my_pe() as i64).to_le_bytes().to_vec(), sum);
            assert!(out.is_none());
        }
        pe.barrier();
    });
}

#[test]
#[should_panic(expected = "non-member")]
fn non_member_reduce_panics() {
    // catch_unwind-free: the panic propagates out of run().
    run(3, |pe| {
        let sum = sum_combiner(pe);
        let g = Pgrp::create(0); // only PE 0 belongs
        if pe.my_pe() == 1 {
            let _ = pe.pgrp_reduce(&g, 1, vec![], sum);
        }
    });
}
