//! End-to-end tests of the machine layer: boots real multi-PE machines
//! (one OS thread per PE) and exercises MMI and EMI calls across them.

use converse_machine::{run, run_with, HandlerId, MachineConfig, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use converse_net::DeliveryMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handlers are registered per-PE inside the entry; ids agree because
/// registration order is identical. This helper registers a counting
/// handler and returns (id, counter).
fn counting_handler(pe: &Pe) -> (HandlerId, Arc<AtomicU64>) {
    let c = Arc::new(AtomicU64::new(0));
    let c2 = c.clone();
    let id = pe.register_handler(move |_pe, _msg| {
        c2.fetch_add(1, Ordering::Relaxed);
    });
    (id, c)
}

#[test]
fn single_pe_machine_boots() {
    let report = run(1, |pe| {
        assert_eq!(pe.my_pe(), 0);
        assert_eq!(pe.num_pes(), 1);
        assert!(pe.timer() >= 0.0);
    });
    assert_eq!(report.traffic.len(), 1);
}

#[test]
fn ping_pong_specific_msg() {
    // Classic SPM round trip: PE0 sends, PE1 echoes, no scheduler at all.
    run(2, |pe| {
        let echo = pe.register_handler(|_, _| unreachable!("retrieved, never dispatched"));
        pe.barrier();
        if pe.my_pe() == 0 {
            for i in 0..50u32 {
                let m = Message::new(echo, &i.to_le_bytes());
                pe.sync_send_and_free(1, m);
                let back = pe.get_specific_msg(echo);
                let v = u32::from_le_bytes(back.payload().try_into().unwrap());
                assert_eq!(v, i + 1);
            }
        } else {
            for _ in 0..50 {
                let m = pe.get_specific_msg(echo);
                let v = u32::from_le_bytes(m.payload().try_into().unwrap());
                let reply = Message::new(echo, &(v + 1).to_le_bytes());
                pe.sync_send_and_free(0, reply);
            }
        }
    });
}

#[test]
fn get_specific_buffers_other_handlers() {
    run(2, |pe| {
        let a = pe.register_handler(|_, _| {});
        let b = pe.register_handler(|_, _| {});
        pe.barrier();
        if pe.my_pe() == 0 {
            // Send three for handler A, then one for B.
            for i in 0..3u8 {
                pe.sync_send_and_free(1, Message::new(a, &[i]));
            }
            pe.sync_send_and_free(1, Message::new(b, &[99]));
        } else {
            // Wait for B first: the three A messages must be buffered.
            let mb = pe.get_specific_msg(b);
            assert_eq!(mb.payload(), &[99]);
            assert_eq!(pe.pending_len(), 3);
            // Buffered A messages now come out of get_msg in order.
            for i in 0..3u8 {
                let m = pe.get_specific_msg(a);
                assert_eq!(m.payload(), &[i]);
            }
        }
    });
}

#[test]
fn deliver_msgs_dispatches_directly() {
    run(2, |pe| {
        let (id, count) = counting_handler(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            for _ in 0..10 {
                pe.sync_send_and_free(1, Message::new(id, b"x"));
            }
            pe.barrier();
        } else {
            let mut seen = 0;
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while seen < 10 {
                seen += pe.deliver_msgs(None);
                assert!(
                    std::time::Instant::now() < deadline,
                    "messages never arrived"
                );
            }
            assert_eq!(count.load(Ordering::Relaxed), 10);
            pe.barrier();
        }
    });
}

#[test]
fn deliver_msgs_respects_max() {
    run(1, |pe| {
        let (id, count) = counting_handler(pe);
        for _ in 0..5 {
            pe.sync_send_and_free(0, Message::new(id, b""));
        }
        // Give the loopback a moment (it is synchronous in-process, so
        // messages are already in the mailbox).
        assert_eq!(pe.deliver_msgs(Some(2)), 2);
        assert_eq!(count.load(Ordering::Relaxed), 2);
        assert_eq!(pe.deliver_msgs(None), 3);
        assert_eq!(count.load(Ordering::Relaxed), 5);
    });
}

#[test]
fn broadcast_excludes_sender() {
    let n = 5;
    let report = run(n, move |pe| {
        let (id, count) = counting_handler(pe);
        pe.barrier();
        if pe.my_pe() == 2 {
            pe.sync_broadcast(&Message::new(id, b"hello"));
        }
        pe.barrier(); // barrier traffic flushes nothing into handlers...
        if pe.my_pe() != 2 {
            pe.deliver_until(|| count.load(Ordering::Relaxed) == 1);
        } else {
            // Sender must NOT receive it; drain everything pending and check.
            pe.deliver_msgs(None);
            assert_eq!(count.load(Ordering::Relaxed), 0);
        }
        pe.barrier();
    });
    assert!(report.total_msgs() > 0);
}

#[test]
fn broadcast_all_includes_sender() {
    run(4, |pe| {
        let (id, count) = counting_handler(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            pe.sync_broadcast_all(&Message::new(id, b""));
        }
        pe.deliver_until(|| count.load(Ordering::Relaxed) == 1);
        pe.barrier();
    });
}

#[test]
fn broadcast_allocation_follows_the_transport_contract() {
    // The allocation contract is per-transport, advertised by
    // `Pe::broadcast_zero_copy()`: in-process, every receiver's message
    // aliases the sender's one block (the zero-copy acceptance bar); a
    // real wire cannot share an allocation across address spaces, so
    // each receiving process gets its own un-aliased copy. On BOTH
    // transports the sender pays exactly one pool take — the Message
    // construction (the socket path serializes into plain frame
    // buffers, not pool blocks).
    let n = 6;
    let sender_ptr = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let sp = sender_ptr.clone();
    converse_machine::run_on_each_transport(n, move |pe| {
        let sp = sp.clone();
        let sp2 = sp.clone();
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        let id = pe.register_handler(move |pe, msg| {
            assert_eq!(msg.payload(), &[0xAB; 4096][..]);
            if pe.broadcast_zero_copy() {
                assert_eq!(
                    msg.block().as_ptr() as usize,
                    sp2.load(Ordering::SeqCst),
                    "zero-copy transport: receiver's message must alias the sender's block"
                );
            } else {
                // Another process's pointer is meaningless here; what
                // the wire contract pins is that this copy is ours
                // alone (no aliasing to dedup against).
                assert!(
                    msg.block().is_unique(),
                    "wire transport: each receiver owns its copy outright"
                );
            }
            d2.fetch_add(1, Ordering::Relaxed);
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let before = pe.msg_pool_stats().takes();
            let msg = Message::new(id, &[0xAB; 4096]);
            sp.store(msg.block().as_ptr() as usize, Ordering::SeqCst);
            pe.sync_broadcast(&msg);
            let after = pe.msg_pool_stats().takes();
            assert_eq!(
                after - before,
                1,
                "broadcast to {n} PEs must cost the sender exactly one pool take"
            );
        } else {
            pe.deliver_until(|| done.load(Ordering::Relaxed) == 1);
        }
        pe.barrier();
    });
}

#[test]
fn pool_counters_reach_the_trace() {
    // The per-PE free-list counters surface as MsgPool records at PE
    // teardown; a summary folds them in.
    let sink = converse_trace::MemorySink::new(3, 4096);
    let cfg = MachineConfig::new(3).trace(sink.clone());
    run_with(cfg, |pe| {
        let (id, count) = counting_handler(pe);
        pe.barrier();
        pe.sync_broadcast_all(&Message::new(id, b"fill the pool"));
        pe.deliver_until(|| count.load(Ordering::Relaxed) == pe.num_pes() as u64);
        pe.barrier();
    });
    // Every PE allocated at least once (hits OR misses: a PE that
    // recycled inbound buffers before its first allocation is all-hits).
    for pe in 0..3 {
        let has_pool = sink.records(pe).iter().any(|r| {
            matches!(
                r.event,
                converse_trace::Event::MsgPool { hits, misses, .. } if hits + misses > 0
            )
        });
        assert!(has_pool, "PE {pe} must emit a MsgPool teardown snapshot");
    }
    let sum = sink.summary();
    assert!(sum.pes.iter().all(|p| p.pool_hits + p.pool_misses > 0));
}

#[test]
fn async_send_handle_lifecycle() {
    run(2, |pe| {
        let id = pe.register_handler(|_, _| {});
        pe.barrier();
        if pe.my_pe() == 0 {
            let m = Message::new(id, b"async");
            let h = pe.async_send(1, &m);
            assert!(pe.async_msg_sent(h));
            assert!(pe.release_comm_handle(h));
            assert!(!pe.release_comm_handle(h), "double release detected");
            assert_eq!(pe.outstanding_comm_handles(), 0);
        } else {
            let m = pe.get_specific_msg(id);
            assert_eq!(m.payload(), b"async");
        }
    });
}

#[test]
fn vector_send_concatenates_pieces() {
    run(2, |pe| {
        let id = pe.register_handler(|_, _| {});
        pe.barrier();
        if pe.my_pe() == 0 {
            let h = pe.vector_send(1, id, &[b"abc", b"", b"defg", b"h"]);
            assert!(pe.async_msg_sent(h));
            pe.release_comm_handle(h);
        } else {
            let m = pe.get_specific_msg(id);
            assert_eq!(m.payload(), b"abcdefgh");
        }
    });
}

#[test]
fn barrier_synchronizes() {
    // Each PE increments a shared epoch after the barrier; no PE may see
    // a pre-barrier value afterwards.
    let flags: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
    let f2 = flags.clone();
    run(4, move |pe| {
        f2[pe.my_pe()].store(1, Ordering::SeqCst);
        pe.barrier();
        for i in 0..4 {
            assert_eq!(f2[i].load(Ordering::SeqCst), 1, "PE {i} had not arrived");
        }
    });
}

#[test]
fn reduce_sums_at_root() {
    run(7, |pe| {
        let sum = pe.register_combiner(|a, b| {
            let x = u64::from_le_bytes(a.try_into().unwrap());
            let y = u64::from_le_bytes(b.try_into().unwrap());
            (x + y).to_le_bytes().to_vec()
        });
        let contrib = (pe.my_pe() as u64 + 1).to_le_bytes().to_vec();
        let out = pe.reduce_bytes(contrib, sum);
        if pe.my_pe() == 0 {
            let total = u64::from_le_bytes(out.unwrap().try_into().unwrap());
            assert_eq!(total, (1..=7).sum::<u64>());
        } else {
            assert!(out.is_none());
        }
        pe.barrier();
    });
}

#[test]
fn allreduce_gives_everyone_the_result() {
    run(5, |pe| {
        let max = pe.register_combiner(|a, b| {
            let x = i64::from_le_bytes(a.try_into().unwrap());
            let y = i64::from_le_bytes(b.try_into().unwrap());
            x.max(y).to_le_bytes().to_vec()
        });
        let mine = ((pe.my_pe() as i64) * 10 - 7).to_le_bytes().to_vec();
        let out = pe.allreduce_bytes(mine, max);
        assert_eq!(i64::from_le_bytes(out.try_into().unwrap()), 33);
    });
}

#[test]
fn bcast_from_nonzero_root() {
    run(6, |pe| {
        let data = if pe.my_pe() == 3 {
            Some(b"from three".to_vec())
        } else {
            None
        };
        let got = pe.bcast_bytes(3, data);
        assert_eq!(got, b"from three");
        // And again from root 0, to check sequence numbering.
        let data = if pe.my_pe() == 0 {
            Some(vec![7u8; 3])
        } else {
            None
        };
        assert_eq!(pe.bcast_bytes(0, data), vec![7u8; 3]);
    });
}

#[test]
fn collectives_survive_reordered_delivery() {
    let cfg = MachineConfig::new(8).delivery(DeliveryMode::Reorder {
        seed: 42,
        window: 6,
    });
    run_with(cfg, |pe| {
        let sum = pe.register_combiner(|a, b| {
            let x = u64::from_le_bytes(a.try_into().unwrap());
            let y = u64::from_le_bytes(b.try_into().unwrap());
            (x + y).to_le_bytes().to_vec()
        });
        for round in 0..10u64 {
            let out = pe.allreduce_bytes((round + pe.my_pe() as u64).to_le_bytes().to_vec(), sum);
            let expect: u64 = (0..8).map(|p| round + p).sum();
            assert_eq!(
                u64::from_le_bytes(out.try_into().unwrap()),
                expect,
                "round {round}"
            );
        }
    });
}

#[test]
fn gptr_remote_get_and_put() {
    run(3, |pe| {
        // PE0 owns a region; others read and write it.
        let reg = pe.local(|| parking_lot::Mutex::new(None::<converse_machine::gptr::GlobalPtr>));
        let announce = pe.register_handler({
            let reg = reg.clone();
            move |_pe, msg| {
                *reg.lock() = converse_machine::gptr::GlobalPtr::decode(msg.payload());
            }
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let g = pe.gptr_create(vec![0u8; 16]);
            let m = Message::new(announce, &g.encode());
            pe.sync_broadcast(&m);
            // Wait until PE1's put lands: poll the region.
            pe.deliver_until(|| pe.gptr_deref(&g).map(|d| d[4] == 44).unwrap_or(false));
            pe.barrier();
        } else {
            pe.deliver_until(|| reg.lock().is_some());
            let g = reg.lock().unwrap();
            if pe.my_pe() == 1 {
                pe.put_bytes(&g, 4, &[44]);
            } else {
                // PE2 reads; eventually sees PE1's write or zeros — both
                // fine, we only assert the read mechanism works.
                let all = pe.get_all(&g);
                assert_eq!(all.len(), 16);
            }
            pe.barrier();
        }
    });
}

#[test]
fn gptr_local_fast_path() {
    run(1, |pe| {
        let g = pe.gptr_create(vec![1, 2, 3, 4, 5]);
        assert_eq!(pe.get_bytes(&g, 1, 3), vec![2, 3, 4]);
        pe.put_bytes(&g, 0, &[9, 9]);
        assert_eq!(pe.gptr_deref(&g).unwrap(), vec![9, 9, 3, 4, 5]);
        assert!(pe.gptr_update_local(&g, |r| r[4] = 50));
        assert_eq!(pe.get_all(&g), vec![9, 9, 3, 4, 50]);
        assert!(pe.gptr_destroy(&g));
        assert!(!pe.gptr_destroy(&g));
        assert!(pe.gptr_deref(&g).is_none());
    });
}

#[test]
fn gptr_async_get_poll() {
    run(2, |pe| {
        let reg = pe.local(|| parking_lot::Mutex::new(None::<converse_machine::gptr::GlobalPtr>));
        let announce = pe.register_handler({
            let reg = reg.clone();
            move |_pe, msg| {
                *reg.lock() = converse_machine::gptr::GlobalPtr::decode(msg.payload());
            }
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let g = pe.gptr_create((0u8..32).collect());
            pe.sync_send_and_free(1, Message::new(announce, &g.encode()));
            pe.barrier();
        } else {
            pe.deliver_until(|| reg.lock().is_some());
            let g = reg.lock().unwrap();
            let h = pe.get_async(&g, 8, 4);
            let data = pe.get_wait(h);
            assert_eq!(data, vec![8, 9, 10, 11]);
            pe.barrier();
        }
    });
}

#[test]
fn pgrp_multicast_reaches_members_only() {
    run(6, |pe| {
        let (id, count) = counting_handler(pe);
        pe.barrier();
        // Group: root 1, children 3 and 5; 5 has child 4. PE 0 and 2 out.
        let mut g = converse_machine::pgrp::Pgrp::create(1);
        g.add_children(1, &[3, 5]);
        g.add_children(5, &[4]);
        if pe.my_pe() == 0 {
            // Caller outside the group: every member receives.
            let h = pe.async_multicast(&g, &Message::new(id, b"m"));
            pe.release_comm_handle(h);
        }
        pe.barrier();
        let member = g.is_member(pe.my_pe());
        if member {
            pe.deliver_until(|| count.load(Ordering::Relaxed) == 1);
        }
        pe.barrier();
        pe.deliver_msgs(None);
        let expect = u64::from(member);
        assert_eq!(count.load(Ordering::Relaxed), expect, "PE {}", pe.my_pe());
    });
}

#[test]
fn pgrp_multicast_excludes_caller_member() {
    run(4, |pe| {
        let (id, count) = counting_handler(pe);
        pe.barrier();
        let mut g = converse_machine::pgrp::Pgrp::create(0);
        g.add_children(0, &[1, 2]);
        if pe.my_pe() == 0 {
            let h = pe.async_multicast(&g, &Message::new(id, b""));
            pe.release_comm_handle(h);
        }
        pe.barrier();
        if pe.my_pe() == 1 || pe.my_pe() == 2 {
            pe.deliver_until(|| count.load(Ordering::Relaxed) == 1);
        }
        pe.barrier();
        pe.deliver_msgs(None);
        let expect = u64::from(pe.my_pe() == 1 || pe.my_pe() == 2);
        assert_eq!(count.load(Ordering::Relaxed), expect);
    });
}

#[test]
fn cmi_printf_capture_and_atomicity() {
    let cfg = MachineConfig::new(4).capture_output();
    let report = run_with(cfg, |pe| {
        for i in 0..25 {
            pe.cmi_printf(format!("pe{} line{}", pe.my_pe(), i));
        }
    });
    assert_eq!(report.output.len(), 100);
    // Every line is intact (atomic): parseable and complete.
    for line in &report.output {
        assert!(line.starts_with("pe"), "mangled line: {line:?}");
        assert!(line.contains(" line"), "mangled line: {line:?}");
    }
}

#[test]
fn cmi_scanf_serializes_input() {
    let lines: Vec<String> = (0..8).map(|i| format!("input-{i}")).collect();
    let cfg = MachineConfig::new(4).stdin(lines).capture_output();
    let report = run_with(cfg, |pe| {
        // Each PE consumes two lines; machine-wide each line is consumed
        // exactly once.
        for _ in 0..2 {
            let l = pe.cmi_scanf_line().expect("line available");
            pe.cmi_printf(format!("got {l}"));
        }
    });
    let mut got: Vec<String> = report
        .output
        .iter()
        .map(|s| s.replace("got ", ""))
        .collect();
    got.sort();
    let mut expect: Vec<String> = (0..8).map(|i| format!("input-{i}")).collect();
    expect.sort();
    assert_eq!(got, expect);
}

#[test]
fn scanf_returns_none_when_exhausted() {
    let cfg = MachineConfig::new(1).stdin(vec!["only".into()]);
    run_with(cfg, |pe| {
        assert_eq!(pe.cmi_scanf_line().as_deref(), Some("only"));
        // Input exhausted but machine still running: the call blocks
        // until shutdown... which only happens when we return. Use the
        // handler-based variant to observe emptiness instead.
        let h = pe.register_handler(|_, _| {});
        assert!(!pe.cmi_scanf_to_handler(h));
    });
}

#[test]
fn scanf_to_handler_delivers_line() {
    let cfg = MachineConfig::new(1).stdin(vec!["hello scanf".into()]);
    run_with(cfg, |pe| {
        let got = pe.local(|| parking_lot::Mutex::new(String::new()));
        let got2 = got.clone();
        let h = pe.register_handler(move |_pe, msg| {
            *got2.lock() = String::from_utf8_lossy(msg.payload()).into_owned();
        });
        assert!(pe.cmi_scanf_to_handler(h));
        pe.deliver_until(|| !got.lock().is_empty());
        assert_eq!(got.lock().as_str(), "hello scanf");
    });
}

#[test]
fn pe_local_storage_is_per_type_singleton() {
    run(2, |pe| {
        let a = pe.local(|| AtomicU64::new(5));
        let b = pe.local(|| AtomicU64::new(99));
        assert_eq!(
            b.load(Ordering::Relaxed),
            5,
            "second access reuses the first instance"
        );
        a.store(7, Ordering::Relaxed);
        assert_eq!(pe.local(|| AtomicU64::new(0)).load(Ordering::Relaxed), 7);
        assert!(pe.try_local::<AtomicU64>().is_some());
        assert!(pe.try_local::<parking_lot::Mutex<Vec<u8>>>().is_none());
    });
}

#[test]
fn panic_on_one_pe_propagates_and_does_not_hang() {
    let result = std::panic::catch_unwind(|| {
        run(3, |pe| {
            if pe.my_pe() == 1 {
                panic!("deliberate test panic");
            }
            // Other PEs block forever; the machine must abort them.
            let h = pe.register_handler(|_, _| {});
            let _ = pe.get_specific_msg(h);
        });
    });
    assert!(result.is_err());
}

#[test]
fn block_watchdog_fires_on_deadlock() {
    let result = std::panic::catch_unwind(|| {
        let cfg = MachineConfig::new(1).block_timeout(Duration::from_millis(200));
        run_with(cfg, |pe| {
            let h = pe.register_handler(|_, _| {});
            let _ = pe.get_specific_msg(h); // nobody will ever send this
        });
    });
    let err = result.expect_err("watchdog should have fired");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("no progress"), "unexpected panic: {msg}");
}

#[test]
fn traffic_accounting_in_report() {
    let report = run(2, |pe| {
        let id = pe.register_handler(|_, _| {});
        pe.barrier();
        if pe.my_pe() == 0 {
            pe.sync_send_and_free(1, Message::new(id, &[0u8; 100]));
        } else {
            let _ = pe.get_specific_msg(id);
        }
    });
    // PE0 sent at least the payload message (plus collective traffic).
    assert!(report.traffic[0].msgs_sent >= 1);
    assert!(report.total_bytes() >= 100);
    assert!(report.elapsed > Duration::ZERO);
}

#[test]
fn handler_payload_roundtrip_with_packer() {
    run(2, |pe| {
        let seen = pe.local(|| parking_lot::Mutex::new(Vec::<(u32, String)>::new()));
        let seen2 = seen.clone();
        let h = pe.register_handler(move |_pe, msg| {
            let mut u = Unpacker::new(msg.payload());
            let n = u.u32().unwrap();
            let s = u.str().unwrap();
            seen2.lock().push((n, s));
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let payload = Packer::new().u32(7).str("structured").finish();
            pe.sync_send_and_free(1, Message::new(h, &payload));
        } else {
            pe.deliver_until(|| !seen.lock().is_empty());
            assert_eq!(seen.lock()[0], (7, "structured".to_string()));
        }
    });
}
