//! Property test: remote global-pointer reads/writes agree with a
//! local model of the region, under arbitrary operation sequences.

use converse_machine::gptr::GlobalPtr;
use converse_machine::{run, Message};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Remote read of [off, off+len).
    Get { off: usize, len: usize },
    /// Remote write of `byte` repeated `len` times at `off`.
    Put { off: usize, len: usize, byte: u8 },
}

fn arb_op(region: usize) -> impl Strategy<Value = Op> {
    (0..region, 1..region.min(32), any::<u8>(), any::<bool>()).prop_map(
        move |(off, len, byte, is_get)| {
            let len = len.min(region - off).max(1);
            if is_get {
                Op::Get { off, len }
            } else {
                Op::Put { off, len, byte }
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PE 1 performs a random op sequence against PE 0's region; a model
    /// Vec mirrors every put, and every get must match the model.
    #[test]
    fn remote_ops_match_model(ops in proptest::collection::vec(arb_op(256), 1..40)) {
        let ops = Arc::new(ops);
        let o2 = ops.clone();
        run(2, move |pe| {
            let reg = pe.local(|| Mutex::new(None::<GlobalPtr>));
            let announce = pe.register_handler({
                let reg = reg.clone();
                move |_pe, msg| {
                    *reg.lock() = GlobalPtr::decode(msg.payload());
                }
            });
            // Completion marker so PE 0 outlives PE 1's traffic.
            let done = pe.register_handler(|_pe, _| {});
            pe.barrier();
            if pe.my_pe() == 0 {
                let g = pe.gptr_create(vec![0u8; 256]);
                pe.sync_send_and_free(1, Message::new(announce, &g.encode()));
                let m = pe.get_specific_msg(done);
                assert_eq!(m.payload(), b"done");
            } else {
                pe.deliver_until(|| reg.lock().is_some());
                let g = reg.lock().unwrap();
                let mut model = vec![0u8; 256];
                for op in o2.iter() {
                    match op {
                        Op::Get { off, len } => {
                            let got = pe.get_bytes(&g, *off, *len);
                            assert_eq!(got, model[*off..*off + *len].to_vec());
                        }
                        Op::Put { off, len, byte } => {
                            let data = vec![*byte; *len];
                            pe.put_bytes(&g, *off, &data);
                            model[*off..*off + *len].copy_from_slice(&data);
                        }
                    }
                }
                // Final full read must equal the model exactly.
                assert_eq!(pe.get_all(&g), model);
                pe.sync_send_and_free(0, Message::new(done, b"done"));
            }
            pe.barrier();
        });
    }
}
