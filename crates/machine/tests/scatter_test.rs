//! EMI scatter "advance receive" tests (paper §3.1.3).

use converse_machine::scatter::{ScatterPiece, ScatterSpec};
use converse_machine::{run, Message};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn advance_receive_scatters_matching_message() {
    run(2, |pe| {
        let data_h = pe.register_handler(|_pe, _| panic!("scatter should consume the message"));
        pe.barrier();
        if pe.my_pe() == 1 {
            // Arm BEFORE the message arrives — the "advance receive".
            pe.scatter_register(ScatterSpec {
                handler: data_h,
                match_offset: 0,
                match_value: 0xAB,
                pieces: vec![
                    ScatterPiece {
                        src_offset: 4,
                        len: 3,
                        area: 1,
                    },
                    ScatterPiece {
                        src_offset: 7,
                        len: 5,
                        area: 2,
                    },
                ],
                notify: None,
            });
        }
        pe.barrier();
        if pe.my_pe() == 0 {
            let mut payload = 0xABu32.to_le_bytes().to_vec();
            payload.extend_from_slice(b"xyzHELLO");
            pe.sync_send_and_free(1, Message::new(data_h, &payload));
        } else {
            // Drive delivery; the scatter consumes the message.
            pe.deliver_until(|| !pe.scatter_peek(2).is_empty());
            assert_eq!(pe.scatter_take(1), b"xyz");
            assert_eq!(pe.scatter_take(2), b"HELLO");
            assert!(pe.scatter_take(1).is_empty(), "take clears the area");
        }
        pe.barrier();
    });
}

#[test]
fn non_matching_message_dispatches_normally() {
    run(2, |pe| {
        let hits = pe.local(|| AtomicU64::new(0));
        let h2 = hits.clone();
        let data_h = pe.register_handler(move |_pe, _| {
            h2.fetch_add(1, Ordering::SeqCst);
        });
        pe.barrier();
        if pe.my_pe() == 1 {
            pe.scatter_register(ScatterSpec {
                handler: data_h,
                match_offset: 0,
                match_value: 42,
                pieces: vec![ScatterPiece {
                    src_offset: 4,
                    len: 4,
                    area: 1,
                }],
                notify: None,
            });
        }
        pe.barrier();
        if pe.my_pe() == 0 {
            // Match value is 7, not 42: falls through to the handler.
            let mut payload = 7u32.to_le_bytes().to_vec();
            payload.extend_from_slice(b"data");
            pe.sync_send_and_free(1, Message::new(data_h, &payload));
        } else {
            pe.deliver_until(|| hits.load(Ordering::SeqCst) == 1);
            assert!(pe.scatter_peek(1).is_empty());
        }
        pe.barrier();
    });
}

#[test]
fn notify_variant_enqueues_empty_message() {
    // "the other queues a short empty message in addition … sometimes
    // necessary to notify the recipient that the data has arrived."
    run(2, |pe| {
        let data_h = pe.register_handler(|_pe, _| unreachable!("consumed by scatter"));
        let notified = pe.local(|| AtomicU64::new(0));
        let n2 = notified.clone();
        let notify_h = pe.register_handler(move |_pe, msg| {
            assert!(msg.payload().is_empty(), "notify is a short empty message");
            n2.fetch_add(1, Ordering::SeqCst);
        });
        pe.barrier();
        if pe.my_pe() == 1 {
            pe.scatter_register(ScatterSpec {
                handler: data_h,
                match_offset: 0,
                match_value: 5,
                pieces: vec![ScatterPiece {
                    src_offset: 4,
                    len: 2,
                    area: 9,
                }],
                notify: Some(notify_h),
            });
        }
        pe.barrier();
        if pe.my_pe() == 0 {
            let mut payload = 5u32.to_le_bytes().to_vec();
            payload.extend_from_slice(b"ok");
            pe.sync_send_and_free(1, Message::new(data_h, &payload));
        } else {
            // The notify goes through the scheduler queue: wait for the
            // scatter to consume the data message, then drain the queue.
            pe.deliver_until(|| pe.queue_len() > 0);
            while let Some(m) = pe.queue_dequeue() {
                pe.call_handler(m);
            }
            assert_eq!(notified.load(Ordering::SeqCst), 1);
            assert_eq!(pe.scatter_take(9), b"ok");
        }
        pe.barrier();
    });
}

#[test]
fn gather_send_scatter_receive_roundtrip() {
    // CmiVectorSend on one side, advance receive on the other: gathered
    // pieces land in scatter areas.
    run(2, |pe| {
        let data_h = pe.register_handler(|_pe, _| unreachable!("consumed by scatter"));
        pe.barrier();
        if pe.my_pe() == 1 {
            pe.scatter_register(ScatterSpec {
                handler: data_h,
                match_offset: 0,
                match_value: u32::from_le_bytes(*b"GATH"),
                pieces: vec![
                    ScatterPiece {
                        src_offset: 4,
                        len: 6,
                        area: 1,
                    },
                    ScatterPiece {
                        src_offset: 10,
                        len: 6,
                        area: 2,
                    },
                ],
                notify: None,
            });
        }
        pe.barrier();
        if pe.my_pe() == 0 {
            let h = pe.vector_send(1, data_h, &[b"GATH", b"first!", b"second"]);
            pe.release_comm_handle(h);
        } else {
            pe.deliver_until(|| !pe.scatter_peek(2).is_empty());
            assert_eq!(pe.scatter_take(1), b"first!");
            assert_eq!(pe.scatter_take(2), b"second");
        }
        pe.barrier();
    });
}

#[test]
fn cancelled_scatter_stops_matching() {
    run(1, |pe| {
        let hits = pe.local(|| AtomicU64::new(0));
        let h2 = hits.clone();
        let data_h = pe.register_handler(move |_pe, _| {
            h2.fetch_add(1, Ordering::SeqCst);
        });
        let handle = pe.scatter_register(ScatterSpec {
            handler: data_h,
            match_offset: 0,
            match_value: 1,
            pieces: vec![ScatterPiece {
                src_offset: 4,
                len: 1,
                area: 3,
            }],
            notify: None,
        });
        let mut payload = 1u32.to_le_bytes().to_vec();
        payload.push(b'a');
        pe.sync_send(0, &Message::new(data_h, &payload));
        pe.deliver_msgs(None);
        assert_eq!(pe.scatter_take(3), b"a");
        assert_eq!(hits.load(Ordering::SeqCst), 0);

        assert!(pe.scatter_cancel(handle));
        assert!(!pe.scatter_cancel(handle));
        pe.sync_send(0, &Message::new(data_h, &payload));
        pe.deliver_msgs(None);
        assert_eq!(hits.load(Ordering::SeqCst), 1, "handler runs after cancel");
        assert!(pe.scatter_take(3).is_empty());
    });
}

#[test]
fn scatter_accumulates_across_messages() {
    run(1, |pe| {
        let data_h = pe.register_handler(|_pe, _| unreachable!());
        pe.scatter_register(ScatterSpec {
            handler: data_h,
            match_offset: 0,
            match_value: 2,
            pieces: vec![ScatterPiece {
                src_offset: 4,
                len: 1,
                area: 4,
            }],
            notify: None,
        });
        for c in b"abc" {
            let mut payload = 2u32.to_le_bytes().to_vec();
            payload.push(*c);
            pe.sync_send(0, &Message::new(data_h, &payload));
        }
        pe.deliver_msgs(None);
        assert_eq!(pe.scatter_take(4), b"abc", "pieces append in arrival order");
    });
}
