//! Property tests for EMI collectives: random machine sizes, value
//! sets, operation sequences, and delivery orders must all agree with
//! the sequential model.

use converse_machine::{run_with, DeliveryMode, MachineConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

proptest! {
    // Machine spin-up is expensive; keep case counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// allreduce(sum) over random per-PE contributions equals the scalar
    /// sum on every PE, for random PE counts and delivery reordering.
    #[test]
    fn allreduce_sum_matches_model(
        n in 1usize..9,
        vals in proptest::collection::vec(-1000i64..1000, 8),
        seed in any::<u64>(),
        reorder in any::<bool>(),
    ) {
        let vals = Arc::new(vals);
        let v2 = vals.clone();
        let expect: i64 = vals.iter().take(n).sum();
        let mut cfg = MachineConfig::new(n);
        if reorder {
            cfg = cfg.delivery(DeliveryMode::Reorder { seed, window: 5 });
        }
        let ok = Arc::new(AtomicI64::new(0));
        let ok2 = ok.clone();
        run_with(cfg, move |pe| {
            let sum = pe.register_combiner(|a, b| {
                let x = i64::from_le_bytes(a.try_into().unwrap());
                let y = i64::from_le_bytes(b.try_into().unwrap());
                (x + y).to_le_bytes().to_vec()
            });
            let mine = v2[pe.my_pe()].to_le_bytes().to_vec();
            let out = pe.allreduce_bytes(mine, sum);
            let got = i64::from_le_bytes(out.try_into().unwrap());
            if pe.my_pe() == 0 {
                ok2.store(got, Ordering::SeqCst);
            }
            assert_eq!(got, {
                // each PE checks independently
                let e: i64 = v2.iter().take(pe.num_pes()).sum();
                e
            });
        });
        prop_assert_eq!(ok.load(Ordering::SeqCst), expect);
    }

    /// Mixed sequences of collectives (barrier / reduce / allreduce /
    /// bcast) executed in lockstep stay consistent: each op's result
    /// matches the model regardless of what preceded it.
    #[test]
    fn mixed_collective_sequences(
        n in 2usize..6,
        ops in proptest::collection::vec(0u8..4, 1..12),
        seed in any::<u64>(),
    ) {
        let ops = Arc::new(ops);
        let o2 = ops.clone();
        let cfg = MachineConfig::new(n).delivery(DeliveryMode::Reorder { seed, window: 4 });
        run_with(cfg, move |pe| {
            let sum = pe.register_combiner(|a, b| {
                let x = i64::from_le_bytes(a.try_into().unwrap());
                let y = i64::from_le_bytes(b.try_into().unwrap());
                (x + y).to_le_bytes().to_vec()
            });
            let n = pe.num_pes() as i64;
            for (round, op) in o2.iter().enumerate() {
                let r = round as i64;
                match op {
                    0 => pe.barrier(),
                    1 => {
                        let out = pe.reduce_bytes((r + pe.my_pe() as i64).to_le_bytes().to_vec(), sum);
                        if pe.my_pe() == 0 {
                            let expect = n * r + n * (n - 1) / 2;
                            assert_eq!(
                                i64::from_le_bytes(out.unwrap().try_into().unwrap()),
                                expect,
                                "reduce round {round}"
                            );
                        }
                    }
                    2 => {
                        let out = pe.allreduce_bytes((r * 2).to_le_bytes().to_vec(), sum);
                        assert_eq!(
                            i64::from_le_bytes(out.try_into().unwrap()),
                            n * r * 2,
                            "allreduce round {round}"
                        );
                    }
                    _ => {
                        let root = round % pe.num_pes();
                        let data = if pe.my_pe() == root {
                            Some(r.to_le_bytes().to_vec())
                        } else {
                            None
                        };
                        let got = pe.bcast_bytes(root, data);
                        assert_eq!(i64::from_le_bytes(got.try_into().unwrap()), r, "bcast round {round}");
                    }
                }
            }
        });
    }
}
