//! Console I/O semantics (appendix §3.7) and timer behaviour.

use converse_machine::{run, run_with, MachineConfig, Message};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn printf_and_error_both_captured_atomically() {
    let cfg = MachineConfig::new(3).capture_output();
    let report = run_with(cfg, |pe| {
        pe.cmi_printf(format!("out from {}", pe.my_pe()));
        pe.cmi_error(format!("err from {}", pe.my_pe()));
    });
    assert_eq!(report.output.len(), 6);
    for pe in 0..3 {
        assert!(report.output.iter().any(|l| l == &format!("out from {pe}")));
        assert!(report.output.iter().any(|l| l == &format!("err from {pe}")));
    }
}

#[test]
fn scanf_lines_consumed_exactly_once_under_contention() {
    let lines: Vec<String> = (0..30).map(|i| format!("L{i}")).collect();
    let cfg = MachineConfig::new(3).stdin(lines).capture_output();
    let report = run_with(cfg, |pe| {
        // Every PE greedily reads until exhaustion; between them the 30
        // lines are each seen exactly once. Exhaustion is signalled when
        // the machine closes input at the end — so read a fixed share.
        for _ in 0..10 {
            let l = pe.cmi_scanf_line().expect("shares are exact");
            pe.cmi_printf(l);
        }
    });
    let mut seen = report.output.clone();
    seen.sort();
    let mut expect: Vec<String> = (0..30).map(|i| format!("L{i}")).collect();
    expect.sort();
    assert_eq!(seen, expect);
}

#[test]
fn nonblocking_scanf_polls_until_line_available() {
    let cfg = MachineConfig::new(2).stdin(vec!["payload".into()]);
    run_with(cfg, |pe| {
        let got = pe.local(|| AtomicU64::new(0));
        let g2 = got.clone();
        let h = pe.register_handler(move |_pe, msg| {
            assert_eq!(msg.payload(), b"payload");
            g2.store(1, Ordering::SeqCst);
        });
        pe.barrier();
        if pe.my_pe() == 1 {
            // PE 1 races PE 0 for the single line; exactly one wins.
            let won = pe.cmi_scanf_to_handler(h);
            if won {
                pe.deliver_until(|| got.load(Ordering::SeqCst) == 1);
            }
        } else {
            let won = pe.cmi_scanf_to_handler(h);
            if won {
                pe.deliver_until(|| got.load(Ordering::SeqCst) == 1);
            }
        }
        pe.barrier();
    });
}

#[test]
fn timers_are_monotone_and_consistent() {
    run(1, |pe| {
        let t0 = pe.timer();
        let n0 = pe.now_ns();
        let c0 = pe.timer_coarse_ms();
        std::thread::sleep(std::time::Duration::from_millis(15));
        let t1 = pe.timer();
        let n1 = pe.now_ns();
        let c1 = pe.timer_coarse_ms();
        assert!(t1 > t0, "CmiTimer advances");
        assert!(n1 > n0, "fine timer advances");
        assert!(c1 >= c0, "coarse timer is monotone");
        assert!(t1 - t0 >= 0.014, "seconds track wall time");
        assert!(n1 - n0 >= 14_000_000, "nanoseconds track wall time");
        // Consistency across resolutions: same epoch.
        assert!((pe.timer() * 1000.0) as u64 >= pe.timer_coarse_ms());
    });
}

#[test]
fn broadcast_messages_printed_in_whole_lines() {
    // Handlers printing concurrently with other PEs must never interleave
    // mid-line (the CmiPrintf atomicity guarantee).
    let cfg = MachineConfig::new(4).capture_output();
    let report = run_with(cfg, |pe| {
        let handled = pe.local(|| AtomicU64::new(0));
        let h2 = handled.clone();
        let h = pe.register_handler(move |pe, msg| {
            pe.cmi_printf(format!(
                "PE{} handled payload={}",
                pe.my_pe(),
                String::from_utf8_lossy(msg.payload())
            ));
            h2.fetch_add(1, Ordering::Relaxed);
        });
        pe.barrier();
        pe.sync_broadcast_all(&Message::new(h, format!("from-{}", pe.my_pe()).as_bytes()));
        // 4 broadcasts × 4 PEs = 4 deliveries per PE.
        pe.deliver_until(|| handled.load(Ordering::Relaxed) == 4);
        pe.barrier();
    });
    assert_eq!(report.output.len(), 16);
    for line in &report.output {
        // Every captured line is whole and parseable: "PEx handled
        // payload=from-y".
        assert!(line.starts_with("PE"), "mangled: {line:?}");
        assert!(line.contains(" handled payload=from-"), "mangled: {line:?}");
    }
}
