//! EMI processor groups (paper §3.1.3, appendix §3.8).
//!
//! "Often entities in a subgroup of processors need to engage in group
//! communication. The machine layer … is best able to optimize such
//! group operations." A [`Pgrp`] is an explicit spanning tree over a
//! subset of PEs, built by its root with [`Pgrp::add_children`]
//! (`CmiAddChildren`) and queried with the root/parent/children calls.
//! [`Pe::async_multicast`] (`CmiAsyncMulticast`) delivers a message to
//! every member except the caller by forwarding along the tree — each
//! hop sends only to its own children, so no PE sends more than its
//! fan-out.

use crate::coll::CombinerId;
use crate::mmi::CommHandle;
use crate::pe::Pe;
use converse_msg::pack::{PackError, Packer, Unpacker};
use converse_msg::Message;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A processor group: a spanning tree over member PEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pgrp {
    root: usize,
    /// member → parent (root maps to itself).
    parent: HashMap<usize, usize>,
    /// member → children, in insertion order.
    children: HashMap<usize, Vec<usize>>,
}

impl Pgrp {
    /// Create a group rooted at `root` (`CmiPgrpCreate` — the caller
    /// passes its own PE id as the root).
    pub fn create(root: usize) -> Pgrp {
        let mut parent = HashMap::new();
        parent.insert(root, root);
        let mut children = HashMap::new();
        children.insert(root, Vec::new());
        Pgrp {
            root,
            parent,
            children,
        }
    }

    /// Attach `procs` as children of member `penum` (`CmiAddChildren`).
    /// Panics if `penum` is not a member or a proc already belongs to the
    /// group — group trees are built once, top-down, by the root.
    pub fn add_children(&mut self, penum: usize, procs: &[usize]) {
        assert!(self.is_member(penum), "PE {penum} is not in the group");
        for &p in procs {
            assert!(!self.is_member(p), "PE {p} is already in the group");
            self.parent.insert(p, penum);
            self.children.insert(p, Vec::new());
            self.children
                .get_mut(&penum)
                .expect("member has a child list")
                .push(p);
        }
    }

    /// The root PE (`CmiPgrpRoot`).
    pub fn root(&self) -> usize {
        self.root
    }

    /// Member test.
    pub fn is_member(&self, pe: usize) -> bool {
        self.parent.contains_key(&pe)
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when only the root belongs.
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Number of children of `penum` (`CmiNumChildren`).
    pub fn num_children(&self, penum: usize) -> usize {
        self.children.get(&penum).map(|v| v.len()).unwrap_or(0)
    }

    /// Parent of `penum` (`CmiParent`); the root's parent is itself.
    pub fn parent(&self, penum: usize) -> Option<usize> {
        self.parent.get(&penum).copied()
    }

    /// Children of `penum` (`CmiChildren`).
    pub fn children(&self, penum: usize) -> &[usize] {
        self.children
            .get(&penum)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All members, root first, in breadth-first tree order.
    pub fn members(&self) -> Vec<usize> {
        let mut out = vec![self.root];
        let mut i = 0;
        while i < out.len() {
            out.extend_from_slice(self.children(out[i]));
            i += 1;
        }
        out
    }

    /// Serialize for embedding in forwarding messages.
    pub fn encode(&self) -> Vec<u8> {
        let members = self.members();
        let mut p = Packer::new().usize(self.root).usize(members.len());
        for m in &members {
            p = p.usize(*m).usize(self.parent[m]);
            let kids = self.children(*m);
            p = p.usize(kids.len());
            for k in kids {
                p = p.usize(*k);
            }
        }
        p.finish()
    }

    /// Inverse of [`Pgrp::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Pgrp, PackError> {
        let mut u = Unpacker::new(bytes);
        let root = u.usize()?;
        let n = u.usize()?;
        let mut parent = HashMap::with_capacity(n);
        let mut children = HashMap::with_capacity(n);
        for _ in 0..n {
            let m = u.usize()?;
            let par = u.usize()?;
            let nk = u.usize()?;
            let mut kids = Vec::with_capacity(nk);
            for _ in 0..nk {
                kids.push(u.usize()?);
            }
            parent.insert(m, par);
            children.insert(m, kids);
        }
        Ok(Pgrp {
            root,
            parent,
            children,
        })
    }
}

/// Per-PE state for in-flight group reductions: (tag) → contributions
/// received from in-group children.
/// (tag) → contributions received from in-group children.
type GroupInbox = HashMap<u64, Vec<(usize, Vec<u8>)>>;

#[derive(Default)]
pub(crate) struct PgrpState {
    inbox: Mutex<GroupInbox>,
}

impl Pe {
    /// Reduce `contribution` with `op` over the members of `group`,
    /// along the group's own spanning tree (the EMI's "reductions and
    /// other global operations … within a processor group"). Every
    /// member must call it with the same `tag` — the identifier that
    /// keeps concurrent group operations apart; the group's **root**
    /// returns `Some(result)`, other members `None`. Combiners are the
    /// machine-wide registry ([`Pe::register_combiner`]); contributions
    /// fold in tree order (own value, then children ascending by PE id).
    pub fn pgrp_reduce(
        &self,
        group: &Pgrp,
        tag: u64,
        contribution: Vec<u8>,
        op: CombinerId,
    ) -> Option<Vec<u8>> {
        assert!(
            group.is_member(self.my_pe()),
            "PE {}: pgrp_reduce by a non-member",
            self.my_pe()
        );
        let me = self.my_pe();
        let kids = group.children(me).to_vec();
        let acc = if kids.is_empty() {
            contribution
        } else {
            self.deliver_internal_until(|| {
                self.pgrp
                    .inbox
                    .lock()
                    .get(&tag)
                    .map(|v| v.len())
                    .unwrap_or(0)
                    == kids.len()
            });
            let mut got = self
                .pgrp
                .inbox
                .lock()
                .remove(&tag)
                .expect("children arrived");
            got.sort_by_key(|(pe, _)| *pe);
            let f = self.combiner_fn_public(op);
            let mut acc = contribution;
            for (_, bytes) in got {
                acc = f(&acc, &bytes);
            }
            acc
        };
        if me == group.root() {
            Some(acc)
        } else {
            let parent = group.parent(me).expect("non-root member has a parent");
            let payload = Packer::new().u64(tag).usize(me).bytes(&acc).finish();
            self.sync_send_and_free(parent, Message::new(self.ids.pgrp_up, &payload));
            None
        }
    }

    /// Multicast `msg` to every member of `group` except this PE
    /// (`CmiAsyncMulticast`). The caller need not belong to the group.
    /// Delivery forwards along the group's spanning tree.
    pub fn async_multicast(&self, group: &Pgrp, msg: &Message) -> CommHandle {
        let payload = Packer::new()
            .usize(self.my_pe()) // excluded caller
            .bytes(&group.encode())
            .bytes(msg.as_bytes())
            .finish();
        let fwd = Message::new(self.ids.pgrp_fwd, &payload);
        self.sync_send_and_free(group.root(), fwd);
        self.comm.create(true)
    }
}

pub(crate) fn handle_up(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let tag = u.u64().expect("pgrp up: tag");
    let child = u.usize().expect("pgrp up: child");
    let bytes = u.bytes().expect("pgrp up: bytes").to_vec();
    pe.pgrp
        .inbox
        .lock()
        .entry(tag)
        .or_default()
        .push((child, bytes));
}

pub(crate) fn handle_fwd(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let caller = u.usize().expect("pgrp fwd: caller");
    let group_bytes = u.bytes().expect("pgrp fwd: group");
    let inner_bytes = u.bytes().expect("pgrp fwd: inner");
    let group = Pgrp::decode(group_bytes).expect("pgrp fwd: group decodes");
    // Forward to this node's children in the group tree first, then
    // deliver locally (unless we are the excluded caller).
    for &c in group.children(pe.my_pe()) {
        pe.sync_send(c, &msg);
    }
    if pe.my_pe() != caller {
        let inner = Message::from_bytes(inner_bytes.to_vec()).expect("pgrp fwd: inner decodes");
        pe.call_handler_from(caller, inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pgrp {
        let mut g = Pgrp::create(3);
        g.add_children(3, &[1, 5]);
        g.add_children(1, &[0]);
        g
    }

    #[test]
    fn build_and_query() {
        let g = sample();
        assert_eq!(g.root(), 3);
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_children(3), 2);
        assert_eq!(g.num_children(1), 1);
        assert_eq!(g.num_children(0), 0);
        assert_eq!(g.parent(3), Some(3));
        assert_eq!(g.parent(5), Some(3));
        assert_eq!(g.parent(0), Some(1));
        assert_eq!(g.children(3), &[1, 5]);
        assert!(g.is_member(5));
        assert!(!g.is_member(2));
    }

    #[test]
    fn members_bfs_order() {
        assert_eq!(sample().members(), vec![3, 1, 5, 0]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let g = sample();
        let back = Pgrp::decode(&g.encode()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    #[should_panic(expected = "is not in the group")]
    fn add_children_rejects_nonmember_parent() {
        let mut g = Pgrp::create(0);
        g.add_children(9, &[1]);
    }

    #[test]
    #[should_panic(expected = "already in the group")]
    fn add_children_rejects_duplicates() {
        let mut g = Pgrp::create(0);
        g.add_children(0, &[1]);
        g.add_children(1, &[1]);
    }

    #[test]
    fn singleton_group() {
        let g = Pgrp::create(2);
        assert!(g.is_empty());
        assert_eq!(g.members(), vec![2]);
        assert_eq!(Pgrp::decode(&g.encode()).unwrap(), g);
    }
}
