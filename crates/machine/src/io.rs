//! Atomic console I/O (paper §3.1.3, appendix §3.7).
//!
//! "The CmiPrintf and CmiScanf calls provide atomic writes and reads to
//! standard output and input … the MMI guarantees that data from two
//! separate printfs is not interleaved. Similarly, the scanf calls from
//! different sources are effectively serialized."
//!
//! Output from all PEs funnels through one machine-wide lock, so each
//! `cmi_printf` emits atomically. For tests the machine can capture
//! output in memory instead of writing to the process stdout, and input
//! is an injectable queue of lines consumed by `cmi_scanf_line` in
//! arrival order (the serialization the paper requires falls out of the
//! single queue).

use crate::pe::Pe;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::Write;
use std::time::Duration;

pub(crate) enum ConsoleOut {
    /// Forward to the real process stdout/stderr.
    Real,
    /// Capture lines in memory (tests, RunReport).
    Capture(Vec<String>),
}

pub(crate) struct Console {
    out: Mutex<ConsoleOut>,
    input: Mutex<VecDeque<String>>,
    input_cv: Condvar,
    input_closed: Mutex<bool>,
}

impl Console {
    pub(crate) fn new(capture: bool, stdin_lines: Vec<String>) -> Console {
        Console {
            out: Mutex::new(if capture {
                ConsoleOut::Capture(Vec::new())
            } else {
                ConsoleOut::Real
            }),
            input: Mutex::new(stdin_lines.into()),
            input_cv: Condvar::new(),
            input_closed: Mutex::new(false),
        }
    }

    fn write_line(&self, line: &str, err: bool) {
        let mut out = self.out.lock();
        match &mut *out {
            ConsoleOut::Real => {
                if err {
                    let mut h = std::io::stderr().lock();
                    let _ = writeln!(h, "{line}");
                } else {
                    let mut h = std::io::stdout().lock();
                    let _ = writeln!(h, "{line}");
                }
            }
            ConsoleOut::Capture(buf) => buf.push(line.to_string()),
        }
    }

    pub(crate) fn captured(&self) -> Vec<String> {
        match &*self.out.lock() {
            ConsoleOut::Capture(buf) => buf.clone(),
            ConsoleOut::Real => Vec::new(),
        }
    }

    pub(crate) fn close_input(&self) {
        *self.input_closed.lock() = true;
        // Lock the queue so a reader between check and wait sees it.
        let _q = self.input.lock();
        self.input_cv.notify_all();
    }

    fn read_line(&self, pe: &Pe) -> Option<String> {
        let deadline = pe.blocking_deadline();
        let mut q = self.input.lock();
        loop {
            if let Some(l) = q.pop_front() {
                return Some(l);
            }
            if *self.input_closed.lock() {
                return None;
            }
            pe.check_deadline(deadline, "cmi_scanf_line");
            self.input_cv.wait_for(&mut q, Duration::from_millis(20));
        }
    }
}

impl Pe {
    /// Atomic line write to standard output (`CmiPrintf`). The line is
    /// emitted whole; concurrent prints from other PEs never interleave
    /// within it.
    pub fn cmi_printf(&self, line: impl AsRef<str>) {
        self.shared.console.write_line(line.as_ref(), false);
    }

    /// Atomic line write to standard error (`CmiError`).
    pub fn cmi_error(&self, line: impl AsRef<str>) {
        self.shared.console.write_line(line.as_ref(), true);
    }

    /// Blocking read of one input line (`CmiScanf`): the calling PE
    /// blocks until a line is available; lines from the shared input are
    /// handed out in order, one per call, machine-wide. Returns `None`
    /// once input is exhausted and closed.
    pub fn cmi_scanf_line(&self) -> Option<String> {
        self.shared.console.read_line(self)
    }

    /// Non-blocking scanf (the paper's handler-based variant): if a line
    /// is available now it is sent to `handler` on this PE as a message
    /// whose payload is the line's bytes, and true is returned; otherwise
    /// false, and the caller may retry.
    pub fn cmi_scanf_to_handler(&self, handler: converse_msg::HandlerId) -> bool {
        let line = {
            let mut q = self.shared.console.input.lock();
            q.pop_front()
        };
        match line {
            Some(l) => {
                let msg = converse_msg::Message::new(handler, l.as_bytes());
                self.sync_send_and_free(self.my_pe(), msg);
                true
            }
            None => false,
        }
    }
}
