//! Machine start-up and tear-down (`ConverseInit` / `ConverseExit`).
//!
//! [`run`] boots a simulated machine: it builds one [`Interconnect`] and
//! spawns one OS thread per PE, each constructing its [`Pe`] (which
//! registers the machine-internal handlers in a fixed order) and then
//! executing the user's entry function — the moral equivalent of `main`
//! after `ConverseInit` in a C Converse program. When the last PE's
//! entry returns, the machine closes and [`RunReport`] is produced.
//!
//! A panic on any PE marks the whole machine panicked and closes the
//! interconnect so PEs blocked in machine-level loops abort promptly
//! instead of hanging; the first panic is re-raised to the caller.

use crate::exo::{MachineHandle, MachineService};
use crate::pe::{MachineShared, Pe};
pub use crate::pe::{QueueKind, StealConfig, ThreadBackend};
use converse_net::{
    Channel, Delivery, DeliveryMode, FaultPlan, FaultStats, Interconnect, PeTraffic,
};
use converse_trace::{NullSink, TraceSink};
pub use converse_wire::{WireKind, WireOptions};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which transport carries the machine's messages — the `MachineConfig`
/// axis that decides whether PEs are threads or processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Every PE is a thread of this process behind one
    /// [`Interconnect`] — the fast path and the test default.
    #[default]
    InProcess,
    /// Every PE is a separate OS process connected to a launcher-side
    /// hub over a real socket (TCP loopback or Unix-domain); see
    /// `converse-wire`. The current process becomes the launcher: it
    /// re-executes itself once per rank with the `CONVERSE_WORKER`
    /// role, routes frames, and aggregates the [`RunReport`].
    Socket,
    /// Like [`Transport::Socket`], but the *data plane* is a
    /// shared-memory region of lock-free SPSC byte rings (one per
    /// ordered PE pair, `memfd_create` + `mmap`): DATA/ACK/steal
    /// frames travel peer-to-peer through the rings while the hub
    /// socket is demoted to a control plane (HELLO/GO bootstrap,
    /// EXIT/FIN/ABORT teardown, crash detection) plus overflow path
    /// for frames larger than one ring. Linux x86-64/aarch64 only —
    /// elsewhere `try_run_with` reports [`RunError::Bootstrap`]; see
    /// [`converse_wire::SHM_SUPPORTED`].
    ShmRing,
}

impl Transport {
    /// All transports usable on this host, in canonical order —
    /// what [`run_on_each_transport`] iterates. Three-way on Linux
    /// x86-64/aarch64 (in-process, socket, shared-memory rings),
    /// two-way elsewhere.
    pub fn each() -> &'static [Transport] {
        if converse_wire::SHM_SUPPORTED {
            &[Transport::InProcess, Transport::Socket, Transport::ShmRing]
        } else {
            &[Transport::InProcess, Transport::Socket]
        }
    }
}

/// Why a machine run failed to produce a report. Worker *panics* are
/// not errors — they propagate as panics, exactly as on the in-process
/// transport.
#[derive(Debug)]
pub enum RunError {
    /// The machine never assembled: spawn/connect/handshake failed or
    /// timed out.
    Bootstrap(String),
    /// A worker process died mid-run without reporting (crash,
    /// kill -9). Surviving workers were torn down.
    WorkerCrashed {
        /// The dead worker's PE rank.
        rank: usize,
        /// Its exit code, when it exited by code.
        code: Option<i32>,
        /// The signal that killed it (Unix), e.g. 9 for SIGKILL.
        signal: Option<i32>,
        /// Human-readable context.
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Bootstrap(d) => write!(f, "machine bootstrap failed: {d}"),
            RunError::WorkerCrashed {
                rank,
                code,
                signal,
                detail,
            } => write!(
                f,
                "worker process for PE {rank} died (code {code:?}, signal {signal:?}): {detail}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Configuration of a simulated machine.
pub struct MachineConfig {
    /// Number of logical processors.
    pub num_pes: usize,
    /// Interconnect delivery-order policy.
    pub delivery: DeliveryMode,
    /// Optional deterministic fault plan: drops, duplication, bounded
    /// delay and scripted stalls, masked by the net's reliability
    /// sublayer. `None` = perfectly reliable wire, zero overhead.
    pub faults: Option<FaultPlan>,
    /// Scheduler-queue implementation each PE uses.
    pub queue: QueueKind,
    /// Trace sink shared by all PEs (default: the zero-cost null sink).
    pub trace: Arc<dyn TraceSink>,
    /// Lines pre-loaded into the machine's shared standard input.
    pub stdin_lines: Vec<String>,
    /// Capture `cmi_printf` output into the report instead of stdout.
    pub capture_output: bool,
    /// How long a machine-level blocking call (specific receive, global
    /// pointer wait, collective) may wait without progress before the PE
    /// panics. A deadlock detector for tests, not a semantic timeout.
    pub block_timeout: Duration,
    /// Idle-policy spin budget: an idle PE probes its (lock-free)
    /// mailbox depth this many times before parking on the condvar, so
    /// a message landing within the budget skips the condvar wakeup —
    /// the paper's "scheduling delta visible only for short messages"
    /// shape. `0` parks immediately (the pre-batching behavior). The
    /// default is `0` on a single-hardware-thread host (spinning there
    /// only steals the timeslice the sender needs to produce the very
    /// message being waited for) and 160 probes otherwise.
    pub idle_spin: u32,
    /// Background services (e.g. the CCS server) whose lifetime is
    /// bounded by this run: started before the PEs boot, stopped after
    /// every PE joined — on the panic path too.
    pub services: Vec<Box<dyn MachineService>>,
    /// Which backend implements thread objects (`cth_*`); see
    /// [`ThreadBackend`]. `Auto` (default) = fiber where supported,
    /// subject to the `CTH_BACKEND` environment override.
    pub thread_backend: ThreadBackend,
    /// Which transport carries messages: threads sharing one address
    /// space (default) or one OS process per PE over a real socket.
    pub transport: Transport,
    /// Socket-transport tunables (family, bootstrap timeouts, failure
    /// grace); ignored under [`Transport::InProcess`].
    pub wire: WireOptions,
    /// Named delivery channels (see [`MachineConfig::channel`]). Ids
    /// are assigned 1..N in declaration order; id 0 is always the
    /// default exactly-once channel.
    pub channels: Vec<(String, Delivery)>,
    /// Idle-PE work stealing: before parking, an idle PE asks the
    /// most-loaded peer to donate a batch of stealable staged messages.
    /// `None` (default) = off.
    pub steal: Option<StealConfig>,
}

/// Host-appropriate idle-spin default: 160 depth probes when real
/// parallelism is available, `0` (park immediately) when the host has a
/// single hardware thread — there, every spin iteration delays the
/// sender whose message would end the wait.
pub fn default_idle_spin() -> u32 {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 160,
        _ => 0,
    }
}

impl MachineConfig {
    /// Defaults: FIFO delivery, the full Csd queue, no tracing, captured
    /// output off, 30-second block watchdog, and an idle spin budget
    /// picked for the host (see [`default_idle_spin`]).
    pub fn new(num_pes: usize) -> Self {
        MachineConfig {
            num_pes,
            delivery: DeliveryMode::Fifo,
            faults: None,
            queue: QueueKind::Csd,
            trace: Arc::new(NullSink),
            stdin_lines: Vec::new(),
            capture_output: false,
            block_timeout: Duration::from_secs(30),
            idle_spin: default_idle_spin(),
            services: Vec::new(),
            thread_backend: ThreadBackend::Auto,
            transport: Transport::default(),
            wire: WireOptions::default(),
            channels: Vec::new(),
            steal: None,
        }
    }

    /// Enable idle-PE work stealing with explicit knobs
    /// ([`StealConfig::default`] for the stock tuning).
    pub fn steal(mut self, cfg: StealConfig) -> Self {
        self.steal = Some(cfg);
        self
    }

    /// Declare a named delivery channel with an explicit guarantee.
    /// Channels get ids 1..N in declaration order (the default
    /// exactly-once channel is id 0 and needs no declaration); every
    /// PE resolves the name with [`Pe::channel`]. Declaring the same
    /// name twice is a programming error.
    pub fn channel(mut self, name: &str, delivery: Delivery) -> Self {
        assert!(
            !self.channels.iter().any(|(n, _)| n == name),
            "delivery channel {name:?} declared twice"
        );
        self.channels.push((name.to_string(), delivery));
        self
    }

    /// Select the transport (threads in-process vs one process per PE).
    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = t;
        self
    }

    /// Tune the socket transport (only meaningful with
    /// [`Transport::Socket`]).
    pub fn wire(mut self, w: WireOptions) -> Self {
        self.wire = w;
        self
    }

    /// Set the delivery mode.
    pub fn delivery(mut self, d: DeliveryMode) -> Self {
        self.delivery = d;
        self
    }

    /// Install a deterministic fault plan (see [`FaultPlan`]).
    pub fn faults(mut self, p: FaultPlan) -> Self {
        self.faults = Some(p);
        self
    }

    /// Set the scheduler-queue kind.
    pub fn queue(mut self, q: QueueKind) -> Self {
        self.queue = q;
        self
    }

    /// Install a trace sink.
    pub fn trace(mut self, t: Arc<dyn TraceSink>) -> Self {
        self.trace = t;
        self
    }

    /// Pre-load standard-input lines.
    pub fn stdin(mut self, lines: Vec<String>) -> Self {
        self.stdin_lines = lines;
        self
    }

    /// Capture `cmi_printf` output into the [`RunReport`].
    pub fn capture_output(mut self) -> Self {
        self.capture_output = true;
        self
    }

    /// Change the blocking-call watchdog.
    pub fn block_timeout(mut self, t: Duration) -> Self {
        self.block_timeout = t;
        self
    }

    /// Change the idle-policy spin budget (`0` = park immediately).
    pub fn idle_spin(mut self, probes: u32) -> Self {
        self.idle_spin = probes;
        self
    }

    /// Pin the thread-object backend for this machine (overrides the
    /// `CTH_BACKEND` environment variable, which only applies under
    /// [`ThreadBackend::Auto`]).
    pub fn thread_backend(mut self, b: ThreadBackend) -> Self {
        self.thread_backend = b;
        self
    }

    /// Attach a background service to this machine's lifetime. While at
    /// least one service is attached, the scheduler's idle watchdog is
    /// suspended (an externally-driven PE legitimately idles).
    pub fn attach(mut self, svc: Box<dyn MachineService>) -> Self {
        self.services.push(svc);
        self
    }
}

/// What a machine run leaves behind.
#[derive(Debug)]
pub struct RunReport {
    /// Per-PE traffic counters.
    pub traffic: Vec<PeTraffic>,
    /// Aggregate fault-plane and reliability counters (all zero when no
    /// fault plan was installed).
    pub fault_stats: FaultStats,
    /// Captured `cmi_printf` lines (empty unless capture was enabled).
    pub output: Vec<String>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RunReport {
    /// Total messages sent machine-wide.
    pub fn total_msgs(&self) -> u64 {
        self.traffic.iter().map(|t| t.msgs_sent).sum()
    }

    /// Total bytes sent machine-wide.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.iter().map(|t| t.bytes_sent).sum()
    }
}

/// Stop `services` in reverse attach order, catching (and returning the
/// first of) any panic so one misbehaving service cannot prevent the
/// rest from releasing their threads and ports.
fn stop_services(
    services: &mut [Box<dyn MachineService>],
) -> Option<Box<dyn std::any::Any + Send>> {
    let mut first = None;
    for svc in services.iter_mut().rev() {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| svc.stop()));
        if let Err(p) = r {
            first.get_or_insert(p);
        }
    }
    first
}

/// Boot a machine of `num_pes` PEs with default configuration and run
/// `entry` on every PE (the `ConverseInit`-to-`ConverseExit` lifetime).
pub fn run<F>(num_pes: usize, entry: F) -> RunReport
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    run_with(MachineConfig::new(num_pes), entry)
}

/// Boot a machine with explicit configuration; see [`run`]. Panics on
/// [`RunError`] — use [`try_run_with`] to handle transport failures
/// (worker crashes, bootstrap timeouts) programmatically.
pub fn run_with<F>(cfg: MachineConfig, entry: F) -> RunReport
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    try_run_with(cfg, entry).unwrap_or_else(|e| panic!("{e}"))
}

/// Boot a machine with explicit configuration, surfacing transport
/// failures as [`RunError`] instead of panicking. A PE *panic* still
/// propagates as a panic on every transport (that is program failure,
/// not machine failure). On [`Transport::InProcess`] this never
/// returns `Err`.
pub fn try_run_with<F>(cfg: MachineConfig, entry: F) -> Result<RunReport, RunError>
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    match cfg.transport {
        Transport::InProcess => Ok(run_in_process(cfg, entry)),
        Transport::Socket => crate::wire_run::run_socket(cfg, entry),
        Transport::ShmRing => {
            if !converse_wire::SHM_SUPPORTED {
                return Err(RunError::Bootstrap(
                    "Transport::ShmRing requires Linux on x86-64/aarch64 \
                     (memfd_create + futex); use Transport::Socket here"
                        .into(),
                ));
            }
            crate::wire_run::run_socket(cfg, entry)
        }
    }
}

/// Run `entry` once per transport in [`Transport::each`], each time on
/// a fresh machine of `num_pes` PEs with that transport selected — the
/// cross-transport analogue of `converse_threads::run_on_each_backend`.
/// Code that passes here is proven equivalent with PEs as threads of
/// one process, as separate OS processes over a real socket, and (on
/// Linux x86-64/aarch64) as processes exchanging data through
/// shared-memory rings.
///
/// The entry function (and everything the program does before calling
/// this) must be deterministic: the socket transport re-executes the
/// calling binary once per rank to reach the same call site (see
/// [`Transport::Socket`]), and inside a worker process the in-process
/// iteration replays first.
pub fn run_on_each_transport<F>(num_pes: usize, entry: F)
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    let entry = Arc::new(entry);
    for &t in Transport::each() {
        let e = entry.clone();
        run_with(MachineConfig::new(num_pes).transport(t), move |pe| e(pe));
    }
}

/// Assign declared channels their machine-wide ids: 1..N in
/// declaration order (0 is the default exactly-once channel). Both
/// transports resolve from the same declaration list, so a name means
/// the same `(id, guarantee)` on every rank of either wire.
pub(crate) fn resolve_channels(declared: &[(String, Delivery)]) -> Vec<(String, Channel)> {
    declared
        .iter()
        .enumerate()
        .map(|(i, (name, d))| (name.clone(), Channel::new(i as u32 + 1, *d)))
        .collect()
}

/// The in-process machine: one thread per PE over one [`Interconnect`].
/// Also the body each socket-transport *worker process* would have run
/// had it been in-process — the shared semantics both transports pin.
pub(crate) fn run_in_process<F>(mut cfg: MachineConfig, entry: F) -> RunReport
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    assert!(cfg.num_pes > 0, "a machine needs at least one PE");
    let net = Interconnect::with_config(
        cfg.num_pes,
        cfg.delivery,
        cfg.faults.take(),
        Some(cfg.trace.clone()),
    );
    let shared = Arc::new(MachineShared {
        console: crate::io::Console::new(cfg.capture_output, cfg.stdin_lines.clone()),
        panicked: std::sync::atomic::AtomicBool::new(false),
        block_timeout: cfg.block_timeout,
        idle_spin: cfg.idle_spin,
        exo: crate::exo::ExoState::default(),
        thread_backend: cfg.thread_backend,
        channels: resolve_channels(&cfg.channels),
        steal: cfg.steal,
    });
    let mut services = std::mem::take(&mut cfg.services);
    shared.exo.services.store(services.len(), Ordering::Release);
    let handle = MachineHandle {
        net: net.clone(),
        shared: shared.clone(),
        exo_req: crate::pe::INTERNAL_LAYOUT.exo_req,
    };
    for i in 0..services.len() {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            services[i].start(&handle);
        }));
        if let Err(p) = r {
            // A service failed to boot: tear down the ones already up
            // (no PEs exist yet), then surface the failure.
            stop_services(&mut services[..i]);
            std::panic::resume_unwind(p);
        }
    }
    let entry = Arc::new(entry);
    let remaining = Arc::new(AtomicUsize::new(cfg.num_pes));
    let started = std::time::Instant::now();

    let mut joins = Vec::with_capacity(cfg.num_pes);
    for id in 0..cfg.num_pes {
        let net = net.clone();
        let shared = shared.clone();
        let entry = entry.clone();
        let remaining = remaining.clone();
        let trace = cfg.trace.clone();
        let queue = cfg.queue;
        let h = std::thread::Builder::new()
            .name(format!("pe{id}"))
            .spawn(move || {
                let pe = Pe::new(id, net.clone(), queue, shared.clone(), trace);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    entry(&pe);
                }));
                if result.is_err() {
                    shared.panicked.store(true, Ordering::Release);
                    net.close();
                }
                // Exit hooks run on success AND failure: they release
                // resources (e.g. still-suspended thread objects) that
                // would otherwise leak OS threads.
                let hooks = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    pe.run_exit_hooks();
                }));
                // Final buffer-pool snapshot so traces carry the hit/miss
                // balance of this PE's whole lifetime.
                pe.trace_msg_pool();
                let result = result.and(hooks);
                if result.is_err() {
                    shared.panicked.store(true, Ordering::Release);
                    net.close();
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last PE out shuts the machine down, waking anything
                    // still blocked (e.g. a scanf on exhausted input).
                    net.close();
                    shared.console.close_input();
                }
                result
            })
            .expect("spawn PE thread");
        joins.push(h);
    }

    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for h in joins {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(p)) => {
                first_panic.get_or_insert(p);
            }
            Err(p) => {
                first_panic.get_or_insert(p);
            }
        }
    }
    // Every PE has joined. Stop attached services BEFORE re-raising any
    // panic: listener threads and ports must not outlive the machine,
    // least of all on the failure path.
    if let Some(p) = stop_services(&mut services) {
        first_panic.get_or_insert(p);
    }
    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }

    RunReport {
        traffic: (0..cfg.num_pes).map(|p| net.traffic(p)).collect(),
        fault_stats: net.fault_stats(),
        output: shared.console.captured(),
        elapsed: started.elapsed(),
    }
}
