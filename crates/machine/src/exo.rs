//! The external-request gateway and the machine-service harness.
//!
//! Converse machines are closed worlds: every message originates on
//! some PE. Front-ends that serve *external* traffic (the CCS server in
//! `converse-ccs`) need three things from the machine layer, provided
//! here:
//!
//! 1. **Reserved protocol handlers.** Three handler-table slots,
//!    registered identically on every PE by `Pe::new`, carry external
//!    requests and their replies:
//!    * `exo_req` — runs when an injected request comes off the wire.
//!      It retargets the message at `exo_dispatch` and puts it on the
//!      scheduler queue (`CsdEnqueue`), so external work is scheduled
//!      *exactly* like native Converse messages — the paper §3.3
//!      retarget idiom.
//!    * `exo_dispatch` — runs from the scheduler queue; decodes the
//!      envelope, exposes the [`ExoToken`] to the target handler, and
//!      calls it.
//!    * `exo_reply` — receives reply envelopes (from any PE, any time)
//!      and forwards them to the sink the front-end installed.
//! 2. **An injection path.** [`MachineHandle::inject_request`] wraps a
//!    request in the envelope and delivers it into the destination
//!    PE's mailbox from outside the machine.
//! 3. **A lifecycle contract.** [`MachineService`] instances attached
//!    via `MachineConfig::attach` are started before the PEs boot and
//!    stopped after every PE has joined — **including when a PE
//!    panicked** — so listener threads and ports never outlive the
//!    machine.
//!
//! A handler that wants to answer later (e.g. from a suspended thread,
//! or after forwarding work to another PE) captures
//! [`Pe::exo_current_token`] while it runs and calls [`Pe::exo_reply`]
//! with it whenever the answer is ready, from whatever PE it happens to
//! be on.

use crate::pe::{MachineShared, Pe};
use converse_msg::pack::{PackError, Packer, Unpacker};
use converse_msg::{HandlerId, Message};
use converse_net::{CmiTransport, PeLoad};
use converse_queue::QueueingMode;
use converse_trace::Event;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Reply statuses carried in the envelope. The gateway only transports
/// the byte; the meaning is fixed here so server and client agree.
pub mod status {
    /// The handler ran and produced this payload.
    pub const OK: u8 = 0;
    /// No handler registered under the requested name.
    pub const UNKNOWN_HANDLER: u8 = 1;
    /// Destination PE outside `0..num_pes`.
    pub const BAD_PE: u8 = 2;
    /// The request exceeded its server-side deadline before a reply.
    pub const TIMEOUT: u8 = 3;
    /// The request frame could not be decoded.
    pub const MALFORMED: u8 = 4;
    /// The server shut down with the request still in flight.
    pub const SHUTDOWN: u8 = 5;
    /// A non-final streamed reply: more frames follow for the same
    /// request (pub-sub subscription updates). The request stays open
    /// server-side; a later non-`STREAM` status ends the stream.
    pub const STREAM: u8 = 6;
}

/// Identity of one in-flight external request: enough to route a reply
/// back to the issuing connection from any PE at any later time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExoToken {
    /// Server-assigned connection id.
    pub conn: u64,
    /// Per-connection request sequence number.
    pub seq: u64,
    /// PE the request was dispatched on; replies are routed through its
    /// `exo_reply` handler to keep the reply path a normal Converse
    /// message no matter where the answer is produced.
    pub home: usize,
}

/// A reply envelope as handed to the front-end's sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExoReply {
    /// Connection the originating request arrived on.
    pub conn: u64,
    /// Sequence number of the originating request.
    pub seq: u64,
    /// One of the [`status`] codes.
    pub status: u8,
    /// Reply payload.
    pub payload: Vec<u8>,
}

/// Where `exo_reply` forwards envelopes; installed by the front-end.
pub type ReplySink = Arc<dyn Fn(ExoReply) + Send + Sync>;

/// Gateway state shared machine-wide (lives in `MachineShared`).
#[derive(Default)]
pub(crate) struct ExoState {
    pub(crate) sink: RwLock<Option<ReplySink>>,
    /// Number of attached external services. Non-zero suspends the
    /// scheduler's idle-deadlock watchdog: a server PE legitimately
    /// idles while waiting for outside traffic.
    pub(crate) services: std::sync::atomic::AtomicUsize,
}

/// PE-local cell holding the token of the request currently dispatching.
#[derive(Default)]
struct TokenCell(Mutex<Option<ExoToken>>);

/// A background service whose lifetime is bounded by one machine run.
///
/// Attached with `MachineConfig::attach`; `start` runs on the booting
/// thread before any PE exists, `stop` runs after every PE has joined —
/// on the panic path too, before the panic is re-raised — so services
/// must release their OS resources (threads, sockets) in `stop`.
pub trait MachineService: Send {
    /// Short name for diagnostics.
    fn name(&self) -> &str;
    /// Bring the service up against a booting machine.
    fn start(&mut self, machine: &MachineHandle);
    /// Tear the service down. Must be idempotent and must not assume
    /// the machine shut down cleanly.
    fn stop(&mut self);
}

/// Capability handle a [`MachineService`] uses to talk to the machine
/// without being a PE: inject requests, install the reply sink, read
/// live load. Cloneable; safe to hold in service threads.
#[derive(Clone)]
pub struct MachineHandle {
    pub(crate) net: Arc<dyn CmiTransport>,
    pub(crate) shared: Arc<MachineShared>,
    pub(crate) exo_req: HandlerId,
}

impl MachineHandle {
    /// Number of PEs in the running machine.
    pub fn num_pes(&self) -> usize {
        self.net.num_pes()
    }

    /// True once any PE has panicked.
    pub fn panicked(&self) -> bool {
        self.shared.panicked.load(Ordering::Acquire)
    }

    /// True once the interconnect has been closed (machine over).
    pub fn closed(&self) -> bool {
        self.net.is_closed()
    }

    /// Live per-PE load (traffic counters + mailbox depth), PE order.
    pub fn load_snapshot(&self) -> Vec<PeLoad> {
        self.net.load_snapshot()
    }

    /// Wrap an external request in the gateway envelope and deliver it
    /// into `dst`'s mailbox. From there it is retrieved, enqueued and
    /// scheduled exactly like a native message. Returns `false` (and
    /// drops the request) once the machine is closed.
    pub fn inject_request(
        &self,
        dst: usize,
        token_conn: u64,
        seq: u64,
        target: HandlerId,
        payload: &[u8],
    ) -> bool {
        assert!(
            dst < self.num_pes(),
            "inject_request: PE {dst} out of range"
        );
        if self.net.is_closed() {
            return false;
        }
        let body = Packer::with_capacity(24 + payload.len())
            .u64(token_conn)
            .u64(seq)
            .u32(target.0)
            .bytes(payload)
            .finish();
        self.net
            .inject_block(dst, Message::new(self.exo_req, &body).into_block());
        true
    }

    /// Install the sink that `exo_reply` handlers forward envelopes to.
    /// One front-end at a time; installing replaces the previous sink.
    pub fn install_reply_sink(&self, sink: ReplySink) {
        *self.shared.exo.sink.write() = Some(sink);
    }

    /// Remove the reply sink (late replies are dropped from then on).
    pub fn clear_reply_sink(&self) {
        *self.shared.exo.sink.write() = None;
    }
}

fn encode_reply(exo_reply: HandlerId, r: &ExoReply) -> Message {
    let body = Packer::with_capacity(21 + r.payload.len())
        .u64(r.conn)
        .u64(r.seq)
        .u8(r.status)
        .bytes(&r.payload)
        .finish();
    Message::new(exo_reply, &body)
}

fn decode_request(payload: &[u8]) -> Result<(u64, u64, HandlerId, &[u8]), PackError> {
    let mut u = Unpacker::new(payload);
    Ok((u.u64()?, u.u64()?, HandlerId(u.u32()?), u.bytes()?))
}

fn decode_reply(payload: &[u8]) -> Result<ExoReply, PackError> {
    let mut u = Unpacker::new(payload);
    Ok(ExoReply {
        conn: u.u64()?,
        seq: u.u64()?,
        status: u.u8()?,
        payload: u.bytes()?.to_vec(),
    })
}

/// `exo_req`: an injected request just came off the wire. Retarget it
/// at `exo_dispatch` and enqueue, so the request pays the same
/// scheduler path as native work instead of running inside delivery.
pub(crate) fn handle_req(pe: &Pe, mut msg: Message) {
    if pe.trace_enabled() {
        if let Ok((conn, seq, _target, payload)) = decode_request(msg.payload()) {
            pe.trace_event(Event::CcsRequestArrive {
                conn,
                seq,
                bytes: payload.len(),
            });
        }
    }
    msg.set_handler(pe.ids.exo_dispatch);
    pe.queue_enqueue(msg, QueueingMode::Fifo);
}

/// `exo_dispatch`: scheduled entry of an external request. Decode the
/// envelope, publish the token, run the target handler.
pub(crate) fn handle_dispatch(pe: &Pe, msg: Message) {
    let (conn, seq, target, payload) = match decode_request(msg.payload()) {
        Ok(parts) => parts,
        Err(e) => {
            // The server encoded this envelope; corruption is a bug, but
            // answer the client rather than killing the PE.
            pe.exo_reply(
                ExoToken {
                    conn: 0,
                    seq: 0,
                    home: pe.my_pe(),
                },
                status::MALFORMED,
                format!("bad gateway envelope: {e}").as_bytes(),
            );
            return;
        }
    };
    let token = ExoToken {
        conn,
        seq,
        home: pe.my_pe(),
    };
    if pe.trace_enabled() {
        pe.trace_event(Event::CcsDispatch {
            conn,
            seq,
            handler: target.0,
        });
    }
    if target.index() >= pe.num_handlers() {
        pe.exo_reply(
            token,
            status::UNKNOWN_HANDLER,
            b"handler index out of range",
        );
        return;
    }
    let inner = Message::new(target, payload);
    let cell = pe.local(TokenCell::default);
    *cell.0.lock() = Some(token);
    pe.call_handler(inner);
    *cell.0.lock() = None;
}

/// `exo_reply`: a reply envelope arrived at the gateway PE; hand it to
/// the front-end's sink (dropped if no front-end is attached).
pub(crate) fn handle_reply(pe: &Pe, msg: Message) {
    let rep = match decode_reply(msg.payload()) {
        Ok(r) => r,
        Err(_) => return, // nothing to route a complaint to
    };
    if pe.trace_enabled() {
        pe.trace_event(Event::CcsReply {
            conn: rep.conn,
            seq: rep.seq,
            bytes: rep.payload.len(),
        });
    }
    let sink = pe.shared.exo.sink.read().clone();
    if let Some(sink) = sink {
        sink(rep);
    }
}

impl Pe {
    /// Token of the external request currently being dispatched on this
    /// PE, if any. A handler that will answer later captures this while
    /// it runs; the token stays valid after the handler returns.
    pub fn exo_current_token(&self) -> Option<ExoToken> {
        self.try_local::<TokenCell>().and_then(|c| *c.0.lock())
    }

    /// Send a reply for `token`. Callable from any PE, any context, any
    /// time after the request was dispatched: the envelope travels as a
    /// normal Converse message to the token's home PE, whose `exo_reply`
    /// handler forwards it to the attached front-end.
    pub fn exo_reply(&self, token: ExoToken, status_code: u8, payload: &[u8]) {
        let rep = ExoReply {
            conn: token.conn,
            seq: token.seq,
            status: status_code,
            payload: payload.to_vec(),
        };
        self.sync_send_and_free(token.home, encode_reply(self.ids.exo_reply, &rep));
    }

    /// Send one non-final streamed reply frame for `token`
    /// ([`status::STREAM`]). The request stays open on the server —
    /// call [`Pe::exo_reply`] later with a final status to end the
    /// stream, or let the server's request timeout reclaim an idle
    /// subscription.
    pub fn exo_reply_stream(&self, token: ExoToken, payload: &[u8]) {
        self.exo_reply(token, status::STREAM, payload);
    }

    /// True while external services are attached to this machine; the
    /// scheduler's idle watchdog stands down because waiting for outside
    /// traffic is not a deadlock.
    pub fn services_attached(&self) -> bool {
        self.shared.exo.services.load(Ordering::Acquire) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_envelope_roundtrip() {
        let body = Packer::new().u64(3).u64(9).u32(17).bytes(b"hi").finish();
        let (conn, seq, target, payload) = decode_request(&body).unwrap();
        assert_eq!(
            (conn, seq, target, payload),
            (3, 9, HandlerId(17), &b"hi"[..])
        );
    }

    #[test]
    fn reply_envelope_roundtrip() {
        let r = ExoReply {
            conn: 1,
            seq: 2,
            status: status::OK,
            payload: vec![5, 6],
        };
        let msg = encode_reply(HandlerId(10), &r);
        assert_eq!(msg.handler(), HandlerId(10));
        assert_eq!(decode_reply(msg.payload()).unwrap(), r);
    }

    #[test]
    fn truncated_envelope_is_error() {
        assert!(decode_request(&[1, 2, 3]).is_err());
        assert!(decode_reply(&[]).is_err());
    }
}
