//! MMI point-to-point communication and message retrieval (paper §3.1.3
//! and appendix §3.3/§3.5).
//!
//! Send calls mirror the C API: `CmiSyncSend` (buffer reusable on
//! return), `CmiAsyncSend` (returns a [`CommHandle`] to poll with
//! `CmiAsyncMsgSent`), `*AndFree` variants that consume the message, the
//! broadcast family, and `CmiVectorSend` which gathers scattered pieces
//! into one message. Retrieval: `get_msg` (`CmiGetMsg`), `deliver_msgs`
//! (`CmiDeliverMsgs`), and `get_specific_msg` (`CmiGetSpecificMsg`) which
//! blocks for one handler while buffering messages destined for others —
//! the call that lets *no-concurrency* (SPM) languages block without any
//! scheduler at all.

use crate::pe::Pe;
use converse_msg::{HandlerId, Message};
use converse_trace::Event;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Handle identifying an asynchronous communication in progress
/// (`CommHandle` in the appendix). Query with [`Pe::async_msg_sent`],
/// recycle with [`Pe::release_comm_handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommHandle(u64);

/// Registry of outstanding async operations. The simulated wire
/// completes sends synchronously, but the handle lifecycle (create,
/// poll, release) is kept faithful so code written against it ports.
#[derive(Default)]
pub(crate) struct CommHandles {
    slots: Mutex<HashMap<u64, bool>>,
    next: std::sync::atomic::AtomicU64,
}

impl CommHandles {
    pub(crate) fn create(&self, done: bool) -> CommHandle {
        let id = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.slots.lock().insert(id, done);
        CommHandle(id)
    }

    fn is_done(&self, h: CommHandle) -> Option<bool> {
        self.slots.lock().get(&h.0).copied()
    }

    fn release(&self, h: CommHandle) -> bool {
        self.slots.lock().remove(&h.0).is_some()
    }

    pub(crate) fn outstanding(&self) -> usize {
        self.slots.lock().len()
    }
}

impl Pe {
    fn trace_send(&self, dst: usize, msg: &Message) {
        if self.trace_enabled() {
            self.trace_event(Event::MsgSent {
                dst,
                bytes: msg.len(),
                handler: msg.handler().0,
            });
        }
    }

    // ---- sends -----------------------------------------------------------

    /// Send `msg` to `dst`; the caller keeps the message and may reuse it
    /// immediately (`CmiSyncSend`). Zero-copy: the wire carries a share
    /// of the caller's block, so this costs a refcount bump, not a
    /// payload copy (later in-place edits by the caller copy-on-write).
    pub fn sync_send(&self, dst: usize, msg: &Message) {
        self.trace_send(dst, msg);
        self.net()
            .send_block(self.my_pe(), dst, msg.block().share());
    }

    /// Send `msg` to `dst`, consuming it (`CmiSyncSendAndFree`). The
    /// block moves to the wire outright — no copy, no refcount traffic.
    pub fn sync_send_and_free(&self, dst: usize, msg: Message) {
        self.trace_send(dst, &msg);
        self.net().send_block(self.my_pe(), dst, msg.into_block());
    }

    /// [`Pe::sync_send`] on an explicit delivery channel: the channel's
    /// guarantee (exactly-once, at-most-once, latest-value-wins)
    /// governs how the wire treats loss, duplication and supersession.
    /// Resolve named channels with [`Pe::channel`].
    pub fn sync_send_on(&self, dst: usize, channel: converse_net::Channel, msg: &Message) {
        self.trace_send(dst, msg);
        self.net()
            .send_block_on(self.my_pe(), dst, msg.block().share(), channel);
    }

    /// [`Pe::sync_send_and_free`] on an explicit delivery channel.
    pub fn sync_send_and_free_on(&self, dst: usize, channel: converse_net::Channel, msg: Message) {
        self.trace_send(dst, &msg);
        self.net()
            .send_block_on(self.my_pe(), dst, msg.into_block(), channel);
    }

    /// Begin an asynchronous send (`CmiAsyncSend`). On this machine the
    /// data is captured immediately, so the returned handle is already
    /// complete; poll it with [`Pe::async_msg_sent`].
    pub fn async_send(&self, dst: usize, msg: &Message) -> CommHandle {
        self.sync_send(dst, msg);
        self.comm.create(true)
    }

    /// Status of an asynchronous operation (`CmiAsyncMsgSent`). Panics on
    /// a released or never-issued handle.
    pub fn async_msg_sent(&self, h: CommHandle) -> bool {
        self.comm
            .is_done(h)
            .unwrap_or_else(|| panic!("PE {}: unknown CommHandle {h:?}", self.my_pe()))
    }

    /// Recycle an asynchronous handle (`CmiReleaseCommHandle`). Returns
    /// false if the handle was already released.
    pub fn release_comm_handle(&self, h: CommHandle) -> bool {
        self.comm.release(h)
    }

    /// Handles issued but not yet released — a leak check for tests.
    pub fn outstanding_comm_handles(&self) -> usize {
        self.comm.outstanding()
    }

    /// Gather `pieces` from scattered memory into one message for
    /// `handler` and send it to `dst` (`CmiVectorSend`). The receiver
    /// sees a single contiguous payload: vector-send and ordinary sends
    /// are interchangeable on the receive side, as the paper specifies
    /// for gather/scatter ("it is not necessary that a message sent via a
    /// gather is received via a scatter call").
    pub fn vector_send(&self, dst: usize, handler: HandlerId, pieces: &[&[u8]]) -> CommHandle {
        let total: usize = pieces.iter().map(|p| p.len()).sum();
        let mut msg = Message::alloc(total);
        msg.set_handler(handler);
        let mut off = 0;
        let payload = msg.payload_mut();
        for p in pieces {
            payload[off..off + p.len()].copy_from_slice(p);
            off += p.len();
        }
        self.trace_send(dst, &msg);
        self.net().send_block(self.my_pe(), dst, msg.into_block());
        self.comm.create(true)
    }

    // ---- broadcasts --------------------------------------------------------

    /// Send to every other PE (`CmiSyncBroadcast`). Not a barrier: only
    /// the sender participates. One block, P−1 refcount bumps — every
    /// destination aliases the same allocation.
    pub fn sync_broadcast(&self, msg: &Message) {
        for dst in 0..self.num_pes() {
            if dst != self.my_pe() {
                self.trace_send(dst, msg);
            }
        }
        self.net()
            .broadcast_excl_block(self.my_pe(), msg.block().share());
    }

    /// Send to every PE including self (`CmiSyncBroadcastAll`). One
    /// block, P refcount bumps.
    pub fn sync_broadcast_all(&self, msg: &Message) {
        for dst in 0..self.num_pes() {
            self.trace_send(dst, msg);
        }
        self.net()
            .broadcast_all_block(self.my_pe(), msg.block().share());
    }

    /// Broadcast to all and consume the message
    /// (`CmiSyncBroadcastAllAndFree`).
    pub fn sync_broadcast_all_and_free(&self, msg: Message) {
        self.sync_broadcast_all(&msg);
    }

    /// Asynchronous broadcast excluding self (`CmiAsyncBroadcast`).
    pub fn async_broadcast(&self, msg: &Message) -> CommHandle {
        self.sync_broadcast(msg);
        self.comm.create(true)
    }

    /// Asynchronous broadcast including self (`CmiAsyncBroadcastAll`).
    pub fn async_broadcast_all(&self, msg: &Message) -> CommHandle {
        self.sync_broadcast_all(msg);
        self.comm.create(true)
    }

    // ---- retrieval ---------------------------------------------------------

    /// The next received message, if any (`CmiGetMsg`): first anything
    /// buffered by [`Pe::get_specific_msg`], then the intake buffer /
    /// network.
    pub fn get_msg(&self) -> Option<Message> {
        if let Some(m) = self.pending_pop() {
            return Some(m);
        }
        self.get_packet(1).map(|(_src, m)| m)
    }

    /// Like [`Pe::get_msg`] but bypassing the pending buffer and
    /// reporting the source PE; internal use by the delivery loops. The
    /// packet comes from the PE's intake buffer, refilled from the net
    /// in batches of up to `budget` — single-message callers pass 1,
    /// bulk callers a large budget, and both observe one delivery order.
    pub(crate) fn get_packet(&self, budget: usize) -> Option<(usize, Message)> {
        let p = self.next_inbound(budget)?;
        let src = p.src;
        let msg = Message::from_block(p.block)
            .unwrap_or_else(|e| panic!("PE {}: corrupt message from PE {src}: {e}", self.my_pe()));
        Some((src, msg))
    }

    /// Deliver received messages straight to their handlers
    /// (`CmiDeliverMsgs`): up to `max` of them (all if `None`). Returns
    /// how many were delivered. Buffered (pending) messages go first.
    /// Network intake is batched: the whole mailbox is swapped into the
    /// PE's intake buffer in one lock acquisition and dispatched from
    /// there, so the per-message cost no longer includes a contended
    /// lock op.
    pub fn deliver_msgs(&self, max: Option<usize>) -> usize {
        let mut n = 0;
        let limit = max.unwrap_or(usize::MAX);
        while n < limit {
            if let Some(m) = self.pending_pop() {
                if self.scatter_try(&m) {
                    n += 1;
                    continue;
                }
                self.call_handler(m);
                n += 1;
                continue;
            }
            // Refill in bounded batches rather than swapping the whole
            // mailbox at once: packets in the PE-private intake are
            // invisible to load probes and to work stealing, so a
            // bounded refill keeps any real backlog observable (and
            // stealable) in the staged list while still amortizing the
            // mailbox lock.
            match self.get_packet((limit - n).min(crate::pe::INTERNAL_BUDGET)) {
                Some((src, m)) => {
                    if self.scatter_try(&m) {
                        n += 1;
                        continue;
                    }
                    self.call_handler_from(src, m);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Block until a message for `handler` arrives, buffering any
    /// messages meant for other handlers (`CmiGetSpecificMsg`). This is
    /// the SPM blocking receive: "no other activity takes place in user
    /// space while the program is blocked waiting for a specific
    /// message" — buffered messages are *not* delivered, just retained
    /// for later retrieval.
    pub fn get_specific_msg(&self, handler: HandlerId) -> Message {
        let deadline = self.blocking_deadline();
        loop {
            if let Some(m) = self.pending_take_matching(handler) {
                return m;
            }
            match self.get_packet(crate::pe::INTERNAL_BUDGET) {
                Some((src, m)) => {
                    if m.handler() == handler {
                        return m;
                    }
                    if self.is_internal_handler(m.handler()) {
                        // Machine-internal protocol traffic (collective
                        // waves, global-pointer replies) progresses even
                        // while the user layer blocks — it is below the
                        // "no user-space activity" line.
                        self.call_handler_from(src, m);
                    } else {
                        self.pending_push(m);
                    }
                }
                None => {
                    self.check_abort();
                    self.check_deadline(deadline, "get_specific_msg");
                    self.idle_wait(Duration::from_millis(20));
                }
            }
        }
    }
}
