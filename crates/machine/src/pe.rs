//! The logical processor ([`Pe`]) and its handler table.
//!
//! A `Pe` bundles everything one Converse processor owns: its identity,
//! the interconnect endpoint, the registered handler table, the
//! scheduler's queue, typed PE-local storage, and the internal state of
//! the EMI modules. One `Pe` is created per processor by [`crate::run`]
//! and shared (via `Arc`) by every execution context — the main context
//! and any thread objects — that runs on that processor.

use crate::coll::CollState;
use crate::gptr::GptrState;
use crate::io::Console;
use crate::mmi::CommHandles;
use crate::pgrp::PgrpState;
use crate::scatter::ScatterState;
use converse_msg::{HandlerId, Message};
use converse_net::{Channel, CmiTransport, Packet};
use converse_queue::{CsdQueue, FifoQueue, LifoQueue, QueueingMode, SchedulingQueue};
use converse_trace::{Event, StealPhase, TraceSink};
use parking_lot::{Mutex, RwLock};
use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A registered message handler: the function named by a generalized
/// message's first word. Handlers must be `Send + Sync` because any
/// execution context of the PE (main context or a thread object, each a
/// distinct OS thread that runs exclusively) may dispatch them.
pub type Handler = Arc<dyn Fn(&Pe, Message) + Send + Sync>;

/// A PE exit finalizer registered with [`Pe::on_exit`].
type ExitHook = Box<dyn FnOnce(&Pe) + Send>;

/// Handler ids reserved for the machine layer's internal protocols
/// (global pointers, collectives, group multicast). User registration
/// starts after these; since every PE registers them identically in
/// `Pe::new`, indices agree machine-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InternalIds {
    pub gptr_get_req: HandlerId,
    pub gptr_get_reply: HandlerId,
    pub gptr_put_req: HandlerId,
    pub gptr_put_ack: HandlerId,
    pub coll_up: HandlerId,
    pub coll_down: HandlerId,
    pub pgrp_fwd: HandlerId,
    pub pgrp_up: HandlerId,
    pub exo_req: HandlerId,
    pub exo_dispatch: HandlerId,
    pub exo_reply: HandlerId,
}

/// The fixed table positions of the reserved handlers — needed before
/// any [`Pe`] exists (e.g. by [`crate::exo::MachineHandle`], built at
/// boot). `Pe::new` asserts its sequentially assigned ids match this.
pub(crate) const INTERNAL_LAYOUT: InternalIds = InternalIds {
    gptr_get_req: HandlerId(0),
    gptr_get_reply: HandlerId(1),
    gptr_put_req: HandlerId(2),
    gptr_put_ack: HandlerId(3),
    coll_up: HandlerId(4),
    coll_down: HandlerId(5),
    pgrp_fwd: HandlerId(6),
    pgrp_up: HandlerId(7),
    exo_req: HandlerId(8),
    exo_dispatch: HandlerId(9),
    exo_reply: HandlerId(10),
};

/// Intake-refill batch size for blocking retrieval paths
/// (`get_specific_msg`, `deliver_internal_until`): big enough to
/// amortize the mailbox lock, small enough that a blocked context never
/// hoards the whole mailbox in its intake while deciding one message.
pub(crate) const INTERNAL_BUDGET: usize = 32;

/// Publish the PE's load sample to the transport every this many
/// [`Pe::publish_load`] calls (scheduler iterations).
const LOAD_PUBLISH_PERIOD: u64 = 16;

/// Which scheduler queue implementation a machine uses — the "plug in
/// different queuing strategies" hook at machine-configuration level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Full prioritized Converse queue (two-lane `Cqs`).
    #[default]
    Csd,
    /// Plain FIFO — the cheapest strategy, for languages that never
    /// prioritize.
    Fifo,
    /// Plain LIFO.
    Lifo,
}

fn make_queue(kind: QueueKind) -> Box<dyn SchedulingQueue> {
    match kind {
        QueueKind::Csd => Box::new(CsdQueue::new()),
        QueueKind::Fifo => Box::new(FifoQueue::new()),
        QueueKind::Lifo => Box::new(LifoQueue::new()),
    }
}

/// Which mechanism backs the thread objects (`cth_*`) of a machine.
///
/// The machine layer only carries the choice; `converse-threads`
/// interprets it. `Auto` (the default) lets the thread runtime pick:
/// the fiber backend where supported (x86-64 SysV), the hand-off
/// OS-thread backend elsewhere, with a `CTH_BACKEND` environment
/// override (`"fiber"` / `"handoff"`) honoured only under `Auto` so an
/// explicit per-machine configuration always wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadBackend {
    /// Runtime's choice: fiber where supported, else hand-off;
    /// `CTH_BACKEND` may override.
    #[default]
    Auto,
    /// Stackful user-level fibers (~20 ns switch). Falls back to
    /// hand-off on targets without fiber support.
    Fiber,
    /// Hand-off OS threads (portable fallback, ~10 µs switch).
    Handoff,
}

/// Idle-PE work-stealing knobs (`MachineConfig::steal`). When enabled,
/// a PE whose drain loop comes up empty asks the most-loaded peer to
/// donate a batch of *stealable* staged messages before parking — see
/// the stealable-message contract on `converse_msg::FLAG_STEALABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// Most messages moved per steal.
    pub batch: usize,
    /// Minimum victim backlog (mailbox depth + published run queue)
    /// before a steal is worth its interruption.
    pub min_backlog: usize,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            batch: 8,
            min_backlog: 2,
        }
    }
}

/// Machine-wide state shared by all PEs of one [`crate::run`] invocation.
pub(crate) struct MachineShared {
    pub console: Console,
    /// Set when any PE's entry function panicked; blocked PEs observe it
    /// and abort instead of hanging.
    pub panicked: AtomicBool,
    /// Watchdog limit for machine-level blocking calls.
    pub block_timeout: Duration,
    /// Idle-policy spin budget: how many lock-free mailbox-depth probes
    /// a PE burns before parking on the condvar
    /// (`MachineConfig::idle_spin`).
    pub idle_spin: u32,
    /// External-request gateway state (reply sink, service count).
    pub exo: crate::exo::ExoState,
    /// Thread-object backend requested for this machine
    /// (`MachineConfig::thread_backend`).
    pub thread_backend: ThreadBackend,
    /// Named delivery channels declared in `MachineConfig::channel`,
    /// ids assigned 1..N in declaration order (0 is the default
    /// exactly-once channel). Resolved by [`Pe::channel`].
    pub channels: Vec<(String, Channel)>,
    /// Idle-PE work stealing (`MachineConfig::steal`); `None` = off.
    pub steal: Option<StealConfig>,
}

/// One logical processor of the simulated machine.
pub struct Pe {
    id: usize,
    net: Arc<dyn CmiTransport>,
    handlers: RwLock<Vec<Handler>>,
    /// Messages taken off the wire by `get_specific_msg` that were meant
    /// for other handlers; consumed before the network on retrieval.
    pending: Mutex<VecDeque<Message>>,
    /// Local intake batch: packets pulled off the net by a bulk
    /// [`CmiTransport::drain_bounded`] and not yet retrieved. Every
    /// retrieval path pops here before touching the network, so a batch
    /// never lets a later wire arrival overtake an earlier one — the
    /// per-link FIFO contract survives recursive retrieval (a handler
    /// calling `get_specific_msg` mid-batch included). Only this PE's
    /// own contexts touch it: the lock is uncontended by construction.
    intake: Mutex<VecDeque<Packet>>,
    /// Spin iterations consumed by the most recent idle wait.
    last_spin: AtomicU32,
    /// Intake batches drained so far — the sampling key for
    /// `Event::SchedBatch`.
    sched_batches: AtomicU64,
    /// Calls to [`Pe::publish_load`] so far — its throttle key.
    load_ticks: AtomicU64,
    /// EMA busy fraction in per-mille, folded on every
    /// [`Pe::publish_load`] call.
    occupancy_pm: AtomicU32,
    /// Round-robin cursor for victim selection when remote loads are
    /// not observable (distributed transports).
    steal_rr: AtomicU64,
    queue: Mutex<Box<dyn SchedulingQueue>>,
    sched_exit: AtomicBool,
    locals: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
    req_counter: AtomicU64,
    pub(crate) comm: CommHandles,
    pub(crate) gptr: GptrState,
    pub(crate) coll: CollState,
    pub(crate) scatter: ScatterState,
    pub(crate) pgrp: PgrpState,
    pub(crate) ids: InternalIds,
    pub(crate) shared: Arc<MachineShared>,
    trace: Arc<dyn TraceSink>,
    self_ref: std::sync::Weak<Pe>,
    /// Number of reserved machine-internal handlers (table prefix).
    internal_count: usize,
    /// Finalizers run (in reverse registration order) after the entry
    /// function returns, before machine teardown.
    exit_hooks: Mutex<Vec<ExitHook>>,
}

impl Pe {
    pub(crate) fn new(
        id: usize,
        net: Arc<dyn CmiTransport>,
        queue: QueueKind,
        shared: Arc<MachineShared>,
        trace: Arc<dyn TraceSink>,
    ) -> Arc<Pe> {
        let mut table: Vec<Handler> = Vec::new();
        let mut push = |h: Handler| {
            table.push(h);
            HandlerId((table.len() - 1) as u32)
        };
        let ids = InternalIds {
            gptr_get_req: push(Arc::new(crate::gptr::handle_get_req)),
            gptr_get_reply: push(Arc::new(crate::gptr::handle_get_reply)),
            gptr_put_req: push(Arc::new(crate::gptr::handle_put_req)),
            gptr_put_ack: push(Arc::new(crate::gptr::handle_put_ack)),
            coll_up: push(Arc::new(crate::coll::handle_up)),
            coll_down: push(Arc::new(crate::coll::handle_down)),
            pgrp_fwd: push(Arc::new(crate::pgrp::handle_fwd)),
            pgrp_up: push(Arc::new(crate::pgrp::handle_up)),
            exo_req: push(Arc::new(crate::exo::handle_req)),
            exo_dispatch: push(Arc::new(crate::exo::handle_dispatch)),
            exo_reply: push(Arc::new(crate::exo::handle_reply)),
        };
        debug_assert_eq!(ids, INTERNAL_LAYOUT, "reserved handler layout drifted");
        let internal_count = table.len();
        Arc::new_cyclic(|self_ref| Pe {
            id,
            net,
            handlers: RwLock::new(table),
            pending: Mutex::new(VecDeque::new()),
            intake: Mutex::new(VecDeque::new()),
            last_spin: AtomicU32::new(0),
            sched_batches: AtomicU64::new(0),
            load_ticks: AtomicU64::new(0),
            occupancy_pm: AtomicU32::new(0),
            steal_rr: AtomicU64::new(0),
            queue: Mutex::new(make_queue(queue)),
            sched_exit: AtomicBool::new(false),
            locals: Mutex::new(HashMap::new()),
            req_counter: AtomicU64::new(1),
            comm: CommHandles::default(),
            gptr: GptrState::default(),
            coll: CollState::default(),
            scatter: ScatterState::default(),
            pgrp: PgrpState::default(),
            ids,
            shared,
            trace,
            self_ref: self_ref.clone(),
            internal_count,
            exit_hooks: Mutex::new(Vec::new()),
        })
    }

    /// A counted reference to this PE. Execution contexts that outlive
    /// the current stack frame (thread objects) hold one of these.
    pub fn arc(&self) -> Arc<Pe> {
        self.self_ref
            .upgrade()
            .expect("Pe is alive while any context runs on it")
    }

    /// Register a finalizer to run on this PE after its entry function
    /// returns (reverse registration order). Runtime layers use this to
    /// tear down resources — e.g. poisoning still-suspended threads —
    /// before the machine closes.
    pub fn on_exit<F: FnOnce(&Pe) + Send + 'static>(&self, f: F) {
        self.exit_hooks.lock().push(Box::new(f));
    }

    pub(crate) fn run_exit_hooks(&self) {
        loop {
            let hook = self.exit_hooks.lock().pop();
            match hook {
                Some(f) => f(self),
                None => break,
            }
        }
    }

    /// The thread-object backend requested for this machine
    /// (`MachineConfig::thread_backend`; default [`ThreadBackend::Auto`]).
    /// The thread runtime resolves `Auto` on first use.
    pub fn thread_backend(&self) -> ThreadBackend {
        self.shared.thread_backend
    }

    /// Mark the whole machine as failed and wake every blocked context.
    /// Used when a non-main execution context (a thread object)
    /// panics, so the failure propagates instead of deadlocking.
    pub fn abort_machine(&self) {
        self.shared.panicked.store(true, Ordering::Release);
        self.net.close();
    }

    /// Logical processor id, `0..num_pes` (`CmiMyPe`).
    #[inline]
    pub fn my_pe(&self) -> usize {
        self.id
    }

    /// Total processors in this machine (`CmiNumPe`).
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.net.num_pes()
    }

    /// Short name of the transport carrying this PE's messages
    /// (`"inproc"` or `"socket"`).
    pub fn transport_name(&self) -> &'static str {
        self.net.transport_name()
    }

    /// Resolve a delivery channel declared with
    /// `MachineConfig::channel(name, delivery)`. Every PE resolves the
    /// same name to the same channel id, so a tag created on one rank
    /// is meaningful on all of them. Panics on an undeclared name —
    /// a misspelled channel is a programming error, not a runtime
    /// condition.
    pub fn channel(&self, name: &str) -> Channel {
        self.shared
            .channels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| panic!("no delivery channel named {name:?} declared"))
    }

    /// True when a P-way broadcast on this machine shares one
    /// allocation (refcount bumps only); false when destinations in
    /// other address spaces each receive a copy. Tests assert the
    /// broadcast allocation contract through this, never a hard-coded
    /// count.
    pub fn broadcast_zero_copy(&self) -> bool {
        self.net.broadcast_zero_copy()
    }

    /// The interconnect this PE is attached to.
    #[inline]
    pub(crate) fn net(&self) -> &Arc<dyn CmiTransport> {
        &self.net
    }

    /// Arm a stall window: PE `target` stops retrieving messages for the
    /// next `dur` of machine uptime (its mailbox keeps filling). The
    /// chaos-testing entry point for runtime-scripted stalls — boot-time
    /// windows would block the registration barriers every program runs
    /// first. See [`converse_net::StallWindow`].
    pub fn stall_pe(&self, target: usize, dur: std::time::Duration) {
        self.net.stall_for(target, dur);
    }

    /// True while `target` sits inside a stall window.
    pub fn pe_stalled(&self, target: usize) -> bool {
        self.net.stalled(target)
    }

    /// Aggregate fault-plane and reliability counters of the machine's
    /// interconnect (all zero when no fault plan is installed).
    pub fn fault_stats(&self) -> converse_net::FaultStats {
        self.net.fault_stats()
    }

    /// Seconds since machine boot with sub-microsecond resolution
    /// (`CmiTimer`).
    pub fn timer(&self) -> f64 {
        self.net.uptime().as_secs_f64()
    }

    /// Nanoseconds since machine boot.
    pub fn now_ns(&self) -> u64 {
        self.net.uptime().as_nanos() as u64
    }

    /// Whole milliseconds since machine boot — the coarse variant of the
    /// paper's "timers with different resolutions".
    pub fn timer_coarse_ms(&self) -> u64 {
        self.net.uptime().as_millis() as u64
    }

    /// Fresh machine-unique-enough request id for internal protocols.
    pub(crate) fn next_req_id(&self) -> u64 {
        self.req_counter.fetch_add(1, Ordering::Relaxed)
    }

    // ---- handler table --------------------------------------------------

    /// Register a message handler and return its index
    /// (`CmiRegisterHandler`). **Must be called in the same order on
    /// every PE** so an id denotes the same function machine-wide.
    pub fn register_handler<F>(&self, f: F) -> HandlerId
    where
        F: Fn(&Pe, Message) + Send + Sync + 'static,
    {
        let mut t = self.handlers.write();
        t.push(Arc::new(f));
        HandlerId((t.len() - 1) as u32)
    }

    /// Look up the handler function for a message
    /// (`CmiGetHandlerFunction`). Panics on an unregistered id — that is
    /// a registration-order bug, not a runtime condition.
    pub fn handler_fn(&self, id: HandlerId) -> Handler {
        let t = self.handlers.read();
        t.get(id.index())
            .unwrap_or_else(|| {
                panic!(
                    "PE {}: message for unregistered handler {id} (table has {}); \
                     handlers must be registered in the same order on every PE \
                     before communication begins",
                    self.id,
                    t.len()
                )
            })
            .clone()
    }

    /// Number of registered handlers (internal ones included).
    pub fn num_handlers(&self) -> usize {
        self.handlers.read().len()
    }

    /// Invoke `msg`'s handler immediately on this PE, recording trace
    /// events. `src` is the sending PE for trace purposes (self for
    /// locally generated entries).
    pub fn call_handler_from(&self, src: usize, msg: Message) {
        let id = msg.handler();
        let f = self.handler_fn(id);
        if self.trace.enabled() {
            // Splice→first-run steal latency: the transport stamps the
            // moment stolen work was spliced into this PE's stream; the
            // next handler dispatch here closes the interval.
            if self.shared.steal.is_some() {
                let mark = self.net.take_steal_mark(self.id);
                if mark != 0 {
                    let now = self.now_ns();
                    self.trace.record(
                        self.id,
                        now,
                        Event::StealLatency {
                            phase: StealPhase::SpliceToRun,
                            ns: now.saturating_sub(mark),
                        },
                    );
                }
            }
            self.trace.record(
                self.id,
                self.now_ns(),
                Event::BeginProcessing { handler: id.0, src },
            );
            f(self, msg);
            self.trace.record(
                self.id,
                self.now_ns(),
                Event::EndProcessing { handler: id.0 },
            );
        } else {
            f(self, msg);
        }
    }

    /// Invoke `msg`'s handler immediately (local origin).
    pub fn call_handler(&self, msg: Message) {
        self.call_handler_from(self.id, msg);
    }

    // ---- scheduler queue access (used by converse-core's Csd) -----------

    /// Put a message on the scheduler's queue under `mode`
    /// (`CsdEnqueueGeneral`). The scheduler (in `converse-core`) will
    /// deliver it to its handler later.
    pub fn queue_enqueue(&self, msg: Message, mode: QueueingMode) {
        if self.trace.enabled() {
            self.trace.record(
                self.id,
                self.now_ns(),
                Event::Enqueue {
                    handler: msg.handler().0,
                },
            );
        }
        self.queue.lock().enqueue(msg, mode);
    }

    /// Take the next message off the scheduler's queue.
    pub fn queue_dequeue(&self) -> Option<Message> {
        self.queue.lock().dequeue()
    }

    /// Scheduler-queue occupancy — also the load metric the load
    /// balancer monitors.
    pub fn queue_len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Scheduler exit flag (`CsdExitScheduler` sets it; the scheduler
    /// loop clears it when it honours the request).
    pub fn sched_exit_flag(&self) -> &AtomicBool {
        &self.sched_exit
    }

    // ---- PE-local storage (the Cpv analogue) -----------------------------

    /// Typed PE-local storage: returns this PE's instance of `T`,
    /// creating it with `init` on first access. The Rust analogue of
    /// Converse's `Cpv` per-processor globals; language runtimes keep
    /// their per-PE state here keyed by a private type.
    pub fn local<T, F>(&self, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut l = self.locals.lock();
        let entry = l
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Arc::new(init()) as Arc<dyn Any + Send + Sync>);
        entry
            .clone()
            .downcast::<T>()
            .expect("TypeId-keyed map guarantees the type")
    }

    /// The PE-local instance of `T` if already created.
    pub fn try_local<T: Send + Sync + 'static>(&self) -> Option<Arc<T>> {
        self.locals.lock().get(&TypeId::of::<T>()).map(|a| {
            a.clone()
                .downcast::<T>()
                .expect("TypeId-keyed map guarantees the type")
        })
    }

    // ---- pending buffer & abort plumbing ---------------------------------

    pub(crate) fn pending_pop(&self) -> Option<Message> {
        self.pending.lock().pop_front()
    }

    pub(crate) fn pending_push(&self, m: Message) {
        self.pending.lock().push_back(m);
    }

    pub(crate) fn pending_take_matching(&self, h: HandlerId) -> Option<Message> {
        let mut p = self.pending.lock();
        let idx = p.iter().position(|m| m.handler() == h)?;
        p.remove(idx)
    }

    pub(crate) fn pending_take_internal(&self) -> Option<Message> {
        let mut p = self.pending.lock();
        let idx = p
            .iter()
            .position(|m| m.handler().index() < self.internal_count)?;
        p.remove(idx)
    }

    /// Number of retrieved-but-unprocessed messages buffered by
    /// `get_specific_msg`.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Panic (unwinding this PE) if the machine has been torn down or
    /// another PE panicked. Called inside every potentially-blocking
    /// loop so one failing PE cannot hang the rest of the test suite.
    pub fn check_abort(&self) {
        if self.shared.panicked.load(Ordering::Acquire) {
            panic!("PE {}: aborting — another PE panicked", self.id);
        }
        if self.net.is_closed()
            && self.net.pending(self.id) == 0
            && self.intake.lock().is_empty()
            && self.pending.lock().is_empty()
        {
            panic!(
                "PE {}: blocked on a message but the machine has shut down",
                self.id
            );
        }
    }

    /// Deadline for a machine-level blocking call starting now; loops
    /// that exceed it without completing panic, turning a distributed
    /// deadlock into a diagnosable test failure.
    pub(crate) fn blocking_deadline(&self) -> std::time::Instant {
        std::time::Instant::now() + self.shared.block_timeout
    }

    /// Panic if the watchdog `deadline` for a blocking call has passed.
    pub(crate) fn check_deadline(&self, deadline: std::time::Instant, what: &str) {
        if std::time::Instant::now() >= deadline {
            panic!(
                "PE {}: {} made no progress for {:?} — likely deadlock \
                 (raise MachineConfig::block_timeout if intentional)",
                self.id, what, self.shared.block_timeout
            );
        }
    }

    /// Drive message delivery until `done()` holds: repeatedly drains the
    /// network (dispatching each message straight to its handler, like
    /// `CmiDeliverMsgs`), parking briefly when idle. This is a
    /// user-level blocking helper; it never touches the scheduler queue.
    pub fn deliver_until<F: FnMut() -> bool>(&self, mut done: F) {
        let deadline = self.blocking_deadline();
        loop {
            if done() {
                return;
            }
            if self.deliver_msgs(None) == 0 {
                if done() {
                    return;
                }
                self.check_abort();
                self.check_deadline(deadline, "deliver_until");
                self.idle_wait(Duration::from_millis(20));
            }
        }
    }

    /// True when `h` is one of the machine layer's reserved protocol
    /// handlers (global pointers, collectives, group forwarding).
    pub fn is_internal_handler(&self, h: HandlerId) -> bool {
        h.index() < self.internal_count
    }

    /// Machine-internal blocking wait: dispatches **only** the machine's
    /// internal protocol messages, buffering user messages for later
    /// retrieval (like `CmiGetSpecificMsg` does). This is what the EMI's
    /// synchronous calls (collectives, global-pointer waits) block on,
    /// so blocking in a collective never consumes a user message that an
    /// SPM receive is waiting for — the paper's no-concurrency promise:
    /// "no other actions should take place within the same process"
    /// while an SPM module blocks.
    pub fn deliver_internal_until<F: FnMut() -> bool>(&self, mut done: F) {
        let deadline = self.blocking_deadline();
        loop {
            if done() {
                return;
            }
            let mut progressed = false;
            // Internal messages stranded in the pending buffer first
            // (defensive: the retrieval paths dispatch them eagerly).
            while let Some(m) = self.pending_take_internal() {
                self.call_handler(m);
                progressed = true;
            }
            while let Some((src, m)) = self.get_packet(INTERNAL_BUDGET) {
                if self.is_internal_handler(m.handler()) {
                    self.call_handler_from(src, m);
                    progressed = true;
                    // Re-check promptly: the protocol message we just ran
                    // may have satisfied the wait.
                    break;
                }
                self.pending_push(m);
            }
            if !progressed {
                if done() {
                    return;
                }
                self.check_abort();
                self.check_deadline(deadline, "deliver_internal_until");
                self.idle_wait(Duration::from_millis(20));
            }
        }
    }

    /// Messages waiting to be retrieved: undelivered network packets,
    /// batch-drained packets sitting in the intake buffer, plus anything
    /// buffered by `get_specific_msg`.
    pub fn inbound_pending(&self) -> usize {
        self.net.pending(self.id) + self.intake.lock().len() + self.pending.lock().len()
    }

    /// The next inbound packet in delivery order, refilling the intake
    /// buffer from the network in batches of up to `budget` when it runs
    /// dry. This is the single chokepoint between the wire and every
    /// retrieval path: intake drains strictly before the net, so batched
    /// and single-message retrieval interleave without reordering.
    /// Returns `None` when nothing is queued (or this PE is stalled).
    pub(crate) fn next_inbound(&self, budget: usize) -> Option<Packet> {
        let mut intake = self.intake.lock();
        if let Some(p) = intake.pop_front() {
            return Some(p);
        }
        let n = self.net.drain_bounded(self.id, &mut intake, budget.max(1));
        if n > 0 {
            self.trace_sched_batch(n);
        }
        intake.pop_front()
    }

    /// Sampled [`Event::SchedBatch`] emission: every 32nd intake batch
    /// (the first included) records its size and the spin count of the
    /// most recent idle wait, so batch shapes and idle-spin behavior are
    /// observable in `trace_profile` without per-batch trace cost.
    fn trace_sched_batch(&self, drained: usize) {
        let count = self.sched_batches.fetch_add(1, Ordering::Relaxed);
        if count.is_multiple_of(32) && self.trace.enabled() {
            self.trace.record(
                self.id,
                self.now_ns(),
                Event::SchedBatch {
                    drained,
                    spin_iters: self.last_spin.load(Ordering::Relaxed),
                },
            );
        }
    }

    /// Spin-then-park until a message arrives, the machine closes, or
    /// `timeout` expires — the scheduler's idle wait. Spins up to the
    /// machine's configured `idle_spin` budget on the lock-free mailbox
    /// depth before parking on the condvar, so short-message latency
    /// does not pay a full condvar wakeup. Returns the spin iterations
    /// consumed (== the budget when the call actually parked).
    pub fn idle_wait(&self, timeout: Duration) -> u32 {
        let spun = self
            .net
            .wait_nonempty_spin(self.id, timeout, self.shared.idle_spin);
        self.last_spin.store(spun, Ordering::Relaxed);
        spun
    }

    /// The configured watchdog limit for blocking calls.
    pub fn block_timeout(&self) -> Duration {
        self.shared.block_timeout
    }

    // ---- load sampling & work stealing -----------------------------------

    /// Live load snapshot of every PE (see
    /// [`converse_net::CmiTransport::load_snapshot`]). On distributed
    /// transports remote entries degrade to zeros — check
    /// [`Pe::remote_load_visible`] before trusting them.
    pub fn load_snapshot(&self) -> Vec<converse_net::PeLoad> {
        self.net.load_snapshot()
    }

    /// True when load snapshots of *remote* PEs reflect their real
    /// state (shared-memory transports). False on distributed
    /// transports, where balancers must rely on gossiped samples.
    pub fn remote_load_visible(&self) -> bool {
        self.net.remote_load_visible()
    }

    /// Fold one scheduler-iteration sample (`busy` = the iteration did
    /// work) into this PE's EMA occupancy, and every
    /// [`LOAD_PUBLISH_PERIOD`]th call publish `(run_queue, occupancy)`
    /// to the transport's load board for peers, balancers, and the CCS
    /// monitor. Called from the Csd loop; the off-period cost is one
    /// relaxed load/store pair.
    pub fn publish_load(&self, busy: bool) {
        let prev = self.occupancy_pm.load(Ordering::Relaxed);
        let sample: u32 = if busy { 1000 } else { 0 };
        // EMA with 1/8 gain: prev * 7/8 + sample / 8.
        let ema = prev - prev / 8 + sample / 8;
        self.occupancy_pm.store(ema, Ordering::Relaxed);
        let t = self.load_ticks.fetch_add(1, Ordering::Relaxed);
        if t.is_multiple_of(LOAD_PUBLISH_PERIOD) {
            self.net.publish_load(self.id, self.queue_len(), ema);
        }
    }

    /// Idle-PE steal attempt: pick the most-backlogged peer and ask it
    /// to donate a batch of stealable staged messages. Returns how many
    /// arrived synchronously — always 0 on distributed transports,
    /// where the request is asynchronous (donations land later as
    /// ordinary deliveries) and the victim rotates round-robin because
    /// remote loads are not observable. A no-op unless the machine was
    /// configured with `MachineConfig::steal`.
    pub fn try_steal(&self) -> usize {
        let Some(cfg) = self.shared.steal else {
            return 0;
        };
        let n_pes = self.num_pes();
        if n_pes < 2 || cfg.batch == 0 {
            return 0;
        }
        if self.net.remote_load_visible() {
            let mut best: Option<(usize, usize)> = None; // (backlog, pe)
            for l in self.net.load_snapshot() {
                if l.pe == self.id || l.staged == 0 {
                    continue;
                }
                let b = l.backlog();
                if b >= cfg.min_backlog && best.is_none_or(|(bb, _)| b > bb) {
                    best = Some((b, l.pe));
                }
            }
            let Some((_, victim)) = best else {
                return 0;
            };
            let t0 = self.now_ns();
            let n = self.net.steal_from(victim, self.id, cfg.batch);
            if n > 0 && self.trace.enabled() {
                let now = self.now_ns();
                // Synchronous steal: the request→donate leg is simply
                // the duration of the call itself.
                self.trace.record(
                    self.id,
                    now,
                    Event::StealLatency {
                        phase: StealPhase::ReqToDonate,
                        ns: now.saturating_sub(t0),
                    },
                );
                self.trace.record(
                    self.id,
                    now,
                    Event::Steal {
                        victim,
                        thief: self.id,
                        batch: n,
                    },
                );
            }
            n
        } else {
            // One asynchronous request per idle pass, rotating victims;
            // the idle park between passes bounds the request rate.
            let k = self.steal_rr.fetch_add(1, Ordering::Relaxed) as usize;
            let victim = (self.id + 1 + k % (n_pes - 1)) % n_pes;
            self.net.steal_from(victim, self.id, cfg.batch)
        }
    }

    /// Record a trace event from runtime layers above the machine.
    pub fn trace_event(&self, event: Event) {
        if self.trace.enabled() {
            self.trace.record(self.id, self.now_ns(), event);
        }
    }

    /// True when the configured sink records events; callers may skip
    /// building expensive payloads otherwise.
    pub fn trace_enabled(&self) -> bool {
        self.trace.enabled()
    }

    /// This PE's message-buffer pool counters (the CmiAlloc/CmiFree
    /// free list). The pool is per-OS-thread and each PE is one thread,
    /// so this must be called from the PE's own thread — which is where
    /// all handler and entry code runs anyway.
    pub fn msg_pool_stats(&self) -> converse_msg::PoolStats {
        converse_msg::pool::stats()
    }

    /// Emit a [`Event::MsgPool`] snapshot of this PE's buffer-pool
    /// counters into the trace. Called at PE teardown by the runner;
    /// user code may also call it mid-run to bracket a phase.
    pub fn trace_msg_pool(&self) {
        if self.trace.enabled() {
            let s = self.msg_pool_stats();
            self.trace_event(Event::MsgPool {
                hits: s.hits,
                misses: s.misses,
                recycled: s.recycled,
                discarded: s.discarded,
            });
        }
    }
}

impl std::fmt::Debug for Pe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pe")
            .field("id", &self.id)
            .field("num_pes", &self.num_pes())
            .field("handlers", &self.num_handlers())
            .finish()
    }
}
