//! EMI global operations: spanning-tree reductions, broadcasts and
//! barriers over all PEs (paper §3.1.3: "the EMI provides calls for …
//! carrying out reductions and other global operations, as well as
//! spanning-tree based operations").
//!
//! All PEs must invoke collectives in the same order — the loosely
//! synchronous discipline of the SPM world these calls serve. Each call
//! consumes one slot of a per-PE sequence counter; the sequence number
//! keys all protocol messages, so contributions arriving "early" (a
//! child racing ahead of its parent) are buffered until the parent
//! reaches that collective.
//!
//! The spanning tree is the complete binary tree over PE ids rooted at
//! PE 0: parent `(p-1)/2`, children `2p+1, 2p+2`.

use crate::pe::Pe;
use converse_msg::pack::{Packer, Unpacker};
use converse_msg::Message;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registered reduction combiner: `f(acc, contribution) -> acc`.
/// Must be associative; contributions combine in tree order (own value,
/// then children ascending by PE id).
pub type Combiner = Arc<dyn Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync>;

/// Index of a registered combiner. Registration must occur in the same
/// order on every PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CombinerId(pub u32);

const UP_KIND_REDUCE: u8 = 0;
const UP_KIND_RELAY: u8 = 1;

/// Contributions received from children, per sequence number:
/// (child_pe, bytes).
type UpInbox = HashMap<u64, Vec<(usize, Vec<u8>)>>;

/// Per-PE collective-protocol state.
pub(crate) struct CollState {
    next_seq: AtomicU64,
    inbox_up: Mutex<UpInbox>,
    /// (seq) → broadcast payload received from the parent.
    inbox_down: Mutex<HashMap<u64, Vec<u8>>>,
    combiners: Mutex<Vec<Combiner>>,
}

impl Default for CollState {
    fn default() -> Self {
        // Combiner 0 is reserved: "keep accumulator" — used by barriers,
        // whose payloads are empty and meaningless.
        let keep: Combiner = Arc::new(|acc, _| acc.to_vec());
        CollState {
            next_seq: AtomicU64::new(0),
            inbox_up: Mutex::new(HashMap::new()),
            inbox_down: Mutex::new(HashMap::new()),
            combiners: Mutex::new(vec![keep]),
        }
    }
}

/// Children of `pe` in the machine-wide spanning tree.
pub fn tree_children(pe: usize, num_pes: usize) -> Vec<usize> {
    [2 * pe + 1, 2 * pe + 2]
        .into_iter()
        .filter(|&c| c < num_pes)
        .collect()
}

/// Parent of `pe` in the machine-wide spanning tree (`None` for PE 0).
pub fn tree_parent(pe: usize) -> Option<usize> {
    if pe == 0 {
        None
    } else {
        Some((pe - 1) / 2)
    }
}

impl Pe {
    /// Register a reduction combiner (same order on every PE!).
    pub fn register_combiner<F>(&self, f: F) -> CombinerId
    where
        F: Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        let mut c = self.coll.combiners.lock();
        c.push(Arc::new(f));
        CombinerId((c.len() - 1) as u32)
    }

    pub(crate) fn combiner_fn_public(&self, id: CombinerId) -> Combiner {
        self.combiner_fn(id)
    }

    fn combiner_fn(&self, id: CombinerId) -> Combiner {
        self.coll
            .combiners
            .lock()
            .get(id.0 as usize)
            .unwrap_or_else(|| panic!("PE {}: unregistered combiner {id:?}", self.my_pe()))
            .clone()
    }

    fn next_coll_seq(&self) -> u64 {
        self.coll.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Tree-reduce `contribution` with `op` toward PE 0. Returns
    /// `Some(result)` on PE 0, `None` elsewhere. A collective: every PE
    /// must call it, in the same relative order as its other collectives.
    pub fn reduce_bytes(&self, contribution: Vec<u8>, op: CombinerId) -> Option<Vec<u8>> {
        let seq = self.next_coll_seq();
        let acc = self.reduce_up(seq, contribution, op);
        if self.my_pe() == 0 {
            Some(acc)
        } else {
            let payload = Packer::new()
                .u8(UP_KIND_REDUCE)
                .u64(seq)
                .usize(self.my_pe())
                .bytes(&acc)
                .finish();
            let parent = tree_parent(self.my_pe()).expect("non-root has a parent");
            self.sync_send_and_free(parent, Message::new(self.ids.coll_up, &payload));
            None
        }
    }

    /// Tree-reduce then broadcast the result to every PE; all PEs return
    /// the reduced value.
    pub fn allreduce_bytes(&self, contribution: Vec<u8>, op: CombinerId) -> Vec<u8> {
        match self.reduce_bytes(contribution, op) {
            Some(result) => {
                // Root: one more collective slot for the down wave.
                let seq = self.next_coll_seq();
                self.initiate_down(seq, result.clone());
                result
            }
            None => {
                let seq = self.next_coll_seq();
                self.wait_down(seq)
            }
        }
    }

    /// Global barrier: returns only after every PE has entered it.
    pub fn barrier(&self) {
        self.allreduce_bytes(Vec::new(), CombinerId(0));
    }

    /// Broadcast `data` (given by the `root` PE; `None` elsewhere) to all
    /// PEs; every PE returns the payload. A collective.
    pub fn bcast_bytes(&self, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
        let seq = self.next_coll_seq();
        if self.my_pe() == root {
            let data = data.unwrap_or_else(|| {
                panic!("PE {}: bcast root must supply the payload", self.my_pe())
            });
            if root == 0 {
                self.initiate_down(seq, data.clone());
                data
            } else {
                // Relay through PE 0, the root of the spanning tree.
                let payload = Packer::new()
                    .u8(UP_KIND_RELAY)
                    .u64(seq)
                    .usize(self.my_pe())
                    .bytes(&data)
                    .finish();
                self.sync_send_and_free(0, Message::new(self.ids.coll_up, &payload));
                self.wait_down(seq)
            }
        } else {
            self.wait_down(seq)
        }
    }

    // ---- internals ----------------------------------------------------------

    /// Wait for all children's contributions for `seq` and fold them into
    /// `contribution` in tree order.
    fn reduce_up(&self, seq: u64, contribution: Vec<u8>, op: CombinerId) -> Vec<u8> {
        let kids = tree_children(self.my_pe(), self.num_pes());
        if kids.is_empty() {
            return contribution;
        }
        self.deliver_internal_until(|| {
            self.coll
                .inbox_up
                .lock()
                .get(&seq)
                .map(|v| v.len())
                .unwrap_or(0)
                == kids.len()
        });
        let mut got = self
            .coll
            .inbox_up
            .lock()
            .remove(&seq)
            .expect("children arrived");
        got.sort_by_key(|(pe, _)| *pe);
        let f = self.combiner_fn(op);
        let mut acc = contribution;
        for (_, bytes) in got {
            acc = f(&acc, &bytes);
        }
        acc
    }

    fn initiate_down(&self, seq: u64, data: Vec<u8>) {
        // One down-wave message; every child gets a share of its block.
        let payload = Packer::new().u64(seq).bytes(&data).finish();
        let msg = Message::new(self.ids.coll_down, &payload);
        for c in tree_children(self.my_pe(), self.num_pes()) {
            self.sync_send(c, &msg);
        }
    }

    fn wait_down(&self, seq: u64) -> Vec<u8> {
        self.deliver_internal_until(|| self.coll.inbox_down.lock().contains_key(&seq));
        self.coll
            .inbox_down
            .lock()
            .remove(&seq)
            .expect("down arrived")
    }
}

pub(crate) fn handle_up(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let kind = u.u8().expect("coll up: kind");
    let seq = u.u64().expect("coll up: seq");
    let child = u.usize().expect("coll up: child");
    let bytes = u.bytes().expect("coll up: bytes").to_vec();
    match kind {
        UP_KIND_REDUCE => {
            pe.coll
                .inbox_up
                .lock()
                .entry(seq)
                .or_default()
                .push((child, bytes));
        }
        UP_KIND_RELAY => {
            debug_assert_eq!(pe.my_pe(), 0, "relay targets the tree root");
            // Root participates in this broadcast too: store its own copy
            // (its wait_down will find it) and fan out one shared block.
            let payload = Packer::new().u64(seq).bytes(&bytes).finish();
            let down = Message::new(pe.ids.coll_down, &payload);
            pe.coll.inbox_down.lock().insert(seq, bytes);
            for c in tree_children(pe.my_pe(), pe.num_pes()) {
                pe.sync_send(c, &down);
            }
        }
        k => panic!("PE {}: unknown collective up-kind {k}", pe.my_pe()),
    }
}

pub(crate) fn handle_down(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let seq = u.u64().expect("coll down: seq");
    let bytes = u.bytes().expect("coll down: bytes").to_vec();
    // Forward the *same* message down the tree: the children receive
    // shares of the block this PE was handed — the down wave repacks and
    // copies nothing at any hop.
    for c in tree_children(pe.my_pe(), pe.num_pes()) {
        pe.sync_send(c, &msg);
    }
    pe.coll.inbox_down.lock().insert(seq, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        assert_eq!(tree_children(0, 7), vec![1, 2]);
        assert_eq!(tree_children(1, 7), vec![3, 4]);
        assert_eq!(tree_children(2, 7), vec![5, 6]);
        assert_eq!(tree_children(3, 7), Vec::<usize>::new());
        assert_eq!(tree_children(0, 2), vec![1]);
        assert_eq!(tree_parent(0), None);
        assert_eq!(tree_parent(1), Some(0));
        assert_eq!(tree_parent(6), Some(2));
    }

    #[test]
    fn every_pe_reaches_root() {
        for n in 1..40 {
            for mut p in 0..n {
                let mut hops = 0;
                while let Some(q) = tree_parent(p) {
                    p = q;
                    hops += 1;
                    assert!(hops <= n, "cycle in tree of {n}");
                }
                assert_eq!(p, 0);
            }
        }
    }

    #[test]
    fn children_and_parent_agree() {
        let n = 33;
        for p in 0..n {
            for c in tree_children(p, n) {
                assert_eq!(tree_parent(c), Some(p));
            }
        }
    }
}
