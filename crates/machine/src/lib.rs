//! The Converse Machine Interface (paper §3.1.3) and PE run harness.
//!
//! The machine interface is "divided into two parts: the MMI (Minimal
//! Machine Interface) and the EMI (Extended Machine Interface)". This
//! crate implements both over the simulated interconnect from
//! `converse-net`:
//!
//! * **MMI** ([`mmi`], methods on [`Pe`]): process creation/coordination
//!   ([`run`]), synchronous and asynchronous sends, broadcast variants,
//!   message retrieval (`get_msg`, `deliver_msgs`, `get_specific_msg`),
//!   timers, processor ids, and atomic console I/O.
//! * **EMI** ([`gptr`], [`coll`], [`pgrp`], vector send): gather-style
//!   vector sends, global pointers with synchronous and asynchronous
//!   get/put, processor groups with spanning-tree multicast, and global
//!   reductions/barriers.
//!
//! The unit of execution is the **PE** (logical processor): one OS thread
//! created by [`run`] per configured processor, all connected by one
//! [`converse_net::Interconnect`]. A [`Pe`] handle is the Rust stand-in
//! for Converse's per-processor global state (`Cpv`): explicit rather
//! than ambient, so tests can run many machines concurrently.
//!
//! What the paper calls `CmiGrabBuffer` — the explicit ownership-transfer
//! protocol for received buffers — is subsumed by Rust move semantics:
//! retrieval APIs hand the caller an owned [`converse_msg::Message`], so
//! "grabbing" is the default and cannot be forgotten.

pub mod coll;
pub mod exo;
pub mod gptr;
pub mod io;
pub mod mmi;
pub mod pe;
pub mod pgrp;
mod run;
pub mod scatter;
mod wire_run;

pub use converse_msg::{HandlerId, Message};
pub use converse_net::{
    Channel, CmiTransport, Delivery, DeliveryMode, FaultPlan, FaultStats, LinkFaults, NetModel,
    PeLoad, StallWindow,
};
pub use exo::{ExoReply, ExoToken, MachineHandle, MachineService, ReplySink};
pub use pe::{Handler, Pe};
pub use run::{
    default_idle_spin, run, run_on_each_transport, run_with, try_run_with, MachineConfig,
    QueueKind, RunError, RunReport, StealConfig, ThreadBackend, Transport, WireKind, WireOptions,
};
pub use wire_run::in_socket_worker;
