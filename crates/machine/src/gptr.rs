//! EMI global pointers (paper §3.1.3 "EMI", appendix §3.4).
//!
//! "For transferring data between local and remote processors
//! transparently, Converse provides asynchronous get and put calls, and
//! global pointers. A global pointer is an opaque handle, which specifies
//! a particular address on a particular processor."
//!
//! [`GlobalPtr`] names a registered memory region (`CmiGptrCreate`);
//! [`Pe::get_bytes`]/[`Pe::put_bytes`] are the synchronous transfers
//! (`CmiSyncGet` and the blocking form of `CmiPut`);
//! [`Pe::get_async`]/[`Pe::put_async`] return handles whose completion is
//! polled or awaited. Remote transfers ride an internal request/reply
//! protocol over ordinary generalized messages; local transfers
//! short-circuit to a memcpy. Offset/length sub-range access is
//! supported — it is what the data-parallel layer's halo exchange uses.

use crate::pe::Pe;
use converse_msg::pack::{Packer, Unpacker};
use converse_msg::Message;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An opaque machine-wide name for a byte region on some PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalPtr {
    /// Owning processor.
    pub pe: usize,
    /// Region key on the owner.
    pub key: u64,
    /// Region size in bytes.
    pub size: usize,
}

impl GlobalPtr {
    /// Serialize for embedding in message payloads.
    pub fn encode(&self) -> Vec<u8> {
        Packer::new()
            .usize(self.pe)
            .u64(self.key)
            .usize(self.size)
            .finish()
    }

    /// Deserialize from [`GlobalPtr::encode`] output.
    pub fn decode(bytes: &[u8]) -> Option<GlobalPtr> {
        let mut u = Unpacker::new(bytes);
        Some(GlobalPtr {
            pe: u.usize().ok()?,
            key: u.u64().ok()?,
            size: u.usize().ok()?,
        })
    }

    /// Encoded size in bytes.
    pub const ENCODED_LEN: usize = 24;
}

/// Completion handle for an asynchronous get.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GetHandle(u64);

/// Completion handle for an asynchronous put.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PutHandle(u64);

/// Per-PE global-pointer state: owned regions plus in-flight requests.
#[derive(Default)]
pub(crate) struct GptrState {
    regions: Mutex<HashMap<u64, Vec<u8>>>,
    get_replies: Mutex<HashMap<u64, Option<Vec<u8>>>>,
    put_acks: Mutex<HashMap<u64, bool>>,
    next_key: AtomicU64,
}

impl Pe {
    // ---- region lifecycle -------------------------------------------------

    /// Register `data` as a remotely accessible region and return its
    /// global pointer (`CmiGptrCreate`).
    pub fn gptr_create(&self, data: Vec<u8>) -> GlobalPtr {
        let key = self.gptr.next_key.fetch_add(1, Ordering::Relaxed);
        let size = data.len();
        self.gptr.regions.lock().insert(key, data);
        GlobalPtr {
            pe: self.my_pe(),
            key,
            size,
        }
    }

    /// Read a copy of a **local** region (`CmiGptrDref`). `None` if the
    /// pointer belongs to another PE or was destroyed.
    pub fn gptr_deref(&self, g: &GlobalPtr) -> Option<Vec<u8>> {
        if g.pe != self.my_pe() {
            return None;
        }
        self.gptr.regions.lock().get(&g.key).cloned()
    }

    /// Mutate a **local** region in place via the provided closure.
    /// Returns false if the pointer is remote or destroyed.
    pub fn gptr_update_local<F: FnOnce(&mut [u8])>(&self, g: &GlobalPtr, f: F) -> bool {
        if g.pe != self.my_pe() {
            return false;
        }
        match self.gptr.regions.lock().get_mut(&g.key) {
            Some(r) => {
                f(r);
                true
            }
            None => false,
        }
    }

    /// Unregister a local region, freeing its storage. Returns false if
    /// it was not local or already destroyed.
    pub fn gptr_destroy(&self, g: &GlobalPtr) -> bool {
        g.pe == self.my_pe() && self.gptr.regions.lock().remove(&g.key).is_some()
    }

    // ---- get ---------------------------------------------------------------

    /// Synchronously copy `len` bytes starting at `offset` from the
    /// region into a fresh buffer (`CmiSyncGet`). Blocks — servicing
    /// other machine-level messages meanwhile — until the data arrives.
    pub fn get_bytes(&self, g: &GlobalPtr, offset: usize, len: usize) -> Vec<u8> {
        let h = self.get_async(g, offset, len);
        self.get_wait(h)
    }

    /// Convenience: fetch the entire region.
    pub fn get_all(&self, g: &GlobalPtr) -> Vec<u8> {
        self.get_bytes(g, 0, g.size)
    }

    /// Begin an asynchronous get (`CmiGet`); complete with
    /// [`Pe::get_wait`] or poll with [`Pe::get_done`].
    pub fn get_async(&self, g: &GlobalPtr, offset: usize, len: usize) -> GetHandle {
        assert!(
            offset + len <= g.size,
            "get of {len}@{offset} exceeds region of {} bytes",
            g.size
        );
        let req_id = self.next_req_id();
        if g.pe == self.my_pe() {
            // Local fast path: resolve immediately.
            let data = self
                .gptr
                .regions
                .lock()
                .get(&g.key)
                .map(|r| r[offset..offset + len].to_vec())
                .unwrap_or_else(|| {
                    panic!("PE {}: get on destroyed region {}", self.my_pe(), g.key)
                });
            self.gptr.get_replies.lock().insert(req_id, Some(data));
            return GetHandle(req_id);
        }
        self.gptr.get_replies.lock().insert(req_id, None);
        let payload = Packer::new()
            .u64(g.key)
            .usize(offset)
            .usize(len)
            .u64(req_id)
            .usize(self.my_pe())
            .finish();
        let msg = Message::new(self.ids.gptr_get_req, &payload);
        self.sync_send_and_free(g.pe, msg);
        GetHandle(req_id)
    }

    /// True once the asynchronous get completed (data arrived).
    pub fn get_done(&self, h: GetHandle) -> bool {
        matches!(self.gptr.get_replies.lock().get(&h.0), Some(Some(_)))
    }

    /// Block until the get completes and take its data.
    pub fn get_wait(&self, h: GetHandle) -> Vec<u8> {
        self.deliver_internal_until(|| {
            matches!(self.gptr.get_replies.lock().get(&h.0), Some(Some(_)))
        });
        self.gptr
            .get_replies
            .lock()
            .remove(&h.0)
            .flatten()
            .expect("get_wait: reply present by deliver_until postcondition")
    }

    // ---- put ---------------------------------------------------------------

    /// Synchronously write `data` into the region at `offset`, blocking
    /// until the owner acknowledges.
    pub fn put_bytes(&self, g: &GlobalPtr, offset: usize, data: &[u8]) {
        let h = self.put_async(g, offset, data);
        self.put_wait(h);
    }

    /// Begin an asynchronous put (`CmiPut`); complete with
    /// [`Pe::put_wait`] or poll with [`Pe::put_done`].
    pub fn put_async(&self, g: &GlobalPtr, offset: usize, data: &[u8]) -> PutHandle {
        assert!(
            offset + data.len() <= g.size,
            "put of {}@{offset} exceeds region of {} bytes",
            data.len(),
            g.size
        );
        let req_id = self.next_req_id();
        if g.pe == self.my_pe() {
            let mut regions = self.gptr.regions.lock();
            let r = regions.get_mut(&g.key).unwrap_or_else(|| {
                panic!("PE {}: put on destroyed region {}", self.my_pe(), g.key)
            });
            r[offset..offset + data.len()].copy_from_slice(data);
            self.gptr.put_acks.lock().insert(req_id, true);
            return PutHandle(req_id);
        }
        self.gptr.put_acks.lock().insert(req_id, false);
        let payload = Packer::new()
            .u64(g.key)
            .usize(offset)
            .u64(req_id)
            .usize(self.my_pe())
            .bytes(data)
            .finish();
        let msg = Message::new(self.ids.gptr_put_req, &payload);
        self.sync_send_and_free(g.pe, msg);
        PutHandle(req_id)
    }

    /// True once the put was acknowledged by the owner.
    pub fn put_done(&self, h: PutHandle) -> bool {
        self.gptr
            .put_acks
            .lock()
            .get(&h.0)
            .copied()
            .unwrap_or(false)
    }

    /// Block until the put is acknowledged.
    pub fn put_wait(&self, h: PutHandle) {
        self.deliver_internal_until(|| {
            self.gptr
                .put_acks
                .lock()
                .get(&h.0)
                .copied()
                .unwrap_or(false)
        });
        self.gptr.put_acks.lock().remove(&h.0);
    }
}

// ---- internal protocol handlers ---------------------------------------------

pub(crate) fn handle_get_req(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let key = u.u64().expect("gptr get_req: key");
    let offset = u.usize().expect("gptr get_req: offset");
    let len = u.usize().expect("gptr get_req: len");
    let req_id = u.u64().expect("gptr get_req: req_id");
    let reply_pe = u.usize().expect("gptr get_req: reply_pe");
    let data = pe
        .gptr
        .regions
        .lock()
        .get(&key)
        .map(|r| r[offset..offset + len].to_vec())
        .unwrap_or_else(|| panic!("PE {}: remote get on destroyed region {key}", pe.my_pe()));
    let payload = Packer::new().u64(req_id).bytes(&data).finish();
    pe.sync_send_and_free(reply_pe, Message::new(pe.ids.gptr_get_reply, &payload));
}

pub(crate) fn handle_get_reply(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let req_id = u.u64().expect("gptr get_reply: req_id");
    let data = u.bytes().expect("gptr get_reply: data").to_vec();
    pe.gptr.get_replies.lock().insert(req_id, Some(data));
}

pub(crate) fn handle_put_req(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let key = u.u64().expect("gptr put_req: key");
    let offset = u.usize().expect("gptr put_req: offset");
    let req_id = u.u64().expect("gptr put_req: req_id");
    let reply_pe = u.usize().expect("gptr put_req: reply_pe");
    let data = u.bytes().expect("gptr put_req: data");
    {
        let mut regions = pe.gptr.regions.lock();
        let r = regions
            .get_mut(&key)
            .unwrap_or_else(|| panic!("PE {}: remote put on destroyed region {key}", pe.my_pe()));
        r[offset..offset + data.len()].copy_from_slice(data);
    }
    let payload = Packer::new().u64(req_id).finish();
    pe.sync_send_and_free(reply_pe, Message::new(pe.ids.gptr_put_ack, &payload));
}

pub(crate) fn handle_put_ack(pe: &Pe, msg: Message) {
    let mut u = Unpacker::new(msg.payload());
    let req_id = u.u64().expect("gptr put_ack: req_id");
    pe.gptr.put_acks.lock().insert(req_id, true);
}
