//! The socket-transport run harness: self-exec launcher and worker.
//!
//! [`Transport::Socket`] splits one logical machine across OS
//! processes, but the program is still *one* binary calling
//! [`crate::run_with`]: the launcher re-executes itself once per rank
//! (the `rusty-fork` idiom) with a `CONVERSE_WORKER` environment role.
//! Each worker process runs the *same* code path up to the same
//! `run_with` call — guaranteed by determinism of the code before the
//! call — then, instead of launching, connects a
//! [`converse_wire::WireEndpoint`] to the hub and runs the entry
//! function as its assigned rank. The launcher routes frames and
//! aggregates worker reports into the same [`RunReport`] shape the
//! in-process transport produces.
//!
//! Because one process (a test, say) may perform several socket runs in
//! sequence, every socket-transport `run_with` call is numbered by a
//! process-wide counter and the target call index rides the worker
//! environment: a worker re-running the earlier calls executes them
//! **in-process** (they are complete, self-contained machines, so the
//! replay is semantically identical), and only the call it was spawned
//! for goes to the wire. The worker exits the process when that call
//! completes — code after it never runs in the worker.
//!
//! Test binaries are handled by the thread-name trick: libtest names
//! each test's thread after the test, so the worker re-invocation is
//! `<exe> <test-name> --exact --nocapture`, re-running exactly one
//! test. Binaries running on the main thread re-use their own argv.
//! Caveat (documented in docs/API.md): under `--test-threads=1`
//! libtest runs tests on the main thread, where the test's name is not
//! recoverable — socket-transport tests need the default threaded
//! harness.

use crate::pe::{MachineShared, Pe};
use crate::run::{MachineConfig, RunError, RunReport, Transport};
use converse_net::{CmiTransport, FaultStats};
use converse_wire::{HubFailure, ShmPlane, ShmRegion, WireEndpoint, WireHub, WorkerReport};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

thread_local! {
    /// Per-thread count of socket-transport runs; pairs a worker with
    /// the launcher call that spawned it (see the module docs).
    /// Thread-local, not process-global: a test binary runs many tests
    /// concurrently, but a worker re-runs exactly one of them
    /// (`--exact`), so the call index must count only the calls *this*
    /// test makes — which, under the thread-name trick, means calls
    /// from this thread.
    static SOCKET_CALLS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Worker exit codes (distinct from 101, the Rust panic code, so a
/// crash report can tell infrastructure failures from program panics).
const EXIT_BAD_ENV: i32 = 81;
const EXIT_CONNECT_FAILED: i32 = 82;
const EXIT_FLUSH_TIMEOUT: i32 = 83;

/// True when this process is a socket-transport *worker* (spawned by a
/// launcher, `CONVERSE_WORKER` role) rather than the original program.
///
/// Workers re-execute the program up to the `run_with` call they were
/// spawned for, replaying earlier socket runs in-process — and an
/// earlier run that *failed* in the launcher (worker crash, bootstrap
/// timeout) succeeds in the replay. Code between socket runs that
/// depends on such an outcome (asserting on a crashed run's error,
/// say) must gate itself on this predicate.
pub fn in_socket_worker() -> bool {
    std::env::var_os("CONVERSE_WORKER").is_some()
}

struct WorkerEnv {
    rank: usize,
    npes: usize,
    addr: String,
    call: usize,
    /// Inherited `memfd` of the shared ring region — present exactly
    /// when the call this worker was spawned for is a
    /// [`Transport::ShmRing`] run.
    shm_fd: Option<i32>,
}

fn worker_env() -> Option<WorkerEnv> {
    let rank = std::env::var("CONVERSE_WORKER").ok()?;
    let parse = |k: &str| -> usize {
        std::env::var(k)
            .unwrap_or_default()
            .parse()
            .unwrap_or_else(|_| {
                eprintln!("converse worker: bad or missing {k}");
                std::process::exit(EXIT_BAD_ENV);
            })
    };
    Some(WorkerEnv {
        rank: rank.parse().unwrap_or_else(|_| {
            eprintln!("converse worker: bad CONVERSE_WORKER rank {rank:?}");
            std::process::exit(EXIT_BAD_ENV);
        }),
        npes: parse("CONVERSE_WIRE_NPES"),
        addr: std::env::var("CONVERSE_WIRE_ADDR").unwrap_or_else(|_| {
            eprintln!("converse worker: missing CONVERSE_WIRE_ADDR");
            std::process::exit(EXIT_BAD_ENV);
        }),
        call: parse("CONVERSE_WIRE_CALL"),
        shm_fd: std::env::var("CONVERSE_SHM_FD").ok().map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("converse worker: bad CONVERSE_SHM_FD {s:?}");
                std::process::exit(EXIT_BAD_ENV);
            })
        }),
    })
}

/// Dispatch one `Transport::Socket` / `Transport::ShmRing` run:
/// launcher, worker, or in-process replay of an earlier call inside a
/// worker. Both transports share the hub bootstrap and the self-exec
/// machinery; `ShmRing` additionally maps a shared ring region into
/// every process and routes data frames through it.
pub(crate) fn run_socket<F>(cfg: MachineConfig, entry: F) -> Result<RunReport, RunError>
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    debug_assert!(matches!(
        cfg.transport,
        Transport::Socket | Transport::ShmRing
    ));
    let call = SOCKET_CALLS.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    });
    match worker_env() {
        None => run_launcher(cfg, call),
        Some(w) if call < w.call => {
            // An earlier socket run replayed inside a worker process:
            // run it in-process — complete and semantically identical,
            // without recursive process fan-out.
            Ok(crate::run::run_in_process(cfg, entry))
        }
        Some(w) if call == w.call => run_worker(cfg, entry, w),
        Some(w) => panic!(
            "nested Transport::Socket run (call {call}) inside worker rank {} \
             (spawned for call {}): socket machines cannot launch from worker \
             processes",
            w.rank, w.call
        ),
    }
}

// ---- launcher -----------------------------------------------------------

/// Compute the argv a worker re-invocation needs to reach the same
/// `run_with` call. Inside a test harness the current thread carries
/// the test's name; otherwise re-use this process's own arguments.
fn worker_args() -> Vec<String> {
    match std::thread::current().name() {
        Some(name) if name != "main" && !name.is_empty() => vec![
            name.to_string(),
            "--exact".to_string(),
            "--nocapture".to_string(),
        ],
        _ => std::env::args().skip(1).collect(),
    }
}

fn spawn_worker(
    rank: usize,
    n: usize,
    addr: &str,
    call: usize,
    args: &[String],
    shm_fd: Option<i32>,
) -> std::io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.args(args)
        .env("CONVERSE_WORKER", rank.to_string())
        .env("CONVERSE_WIRE_NPES", n.to_string())
        .env("CONVERSE_WIRE_ADDR", addr)
        .env("CONVERSE_WIRE_CALL", call.to_string())
        .stdin(Stdio::null());
    if let Some(fd) = shm_fd {
        // The memfd is created without CLOEXEC so the raw descriptor
        // survives into the child; the number rides the environment.
        cmd.env("CONVERSE_SHM_FD", fd.to_string());
    } else {
        // A worker replaying earlier calls must not see a stale fd
        // from an enclosing run's environment.
        cmd.env_remove("CONVERSE_SHM_FD");
    }
    cmd.spawn()
}

fn exit_signal(status: &std::process::ExitStatus) -> Option<i32> {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        status.signal()
    }
    #[cfg(not(unix))]
    {
        None
    }
}

/// Reap every child: poll for `grace`, then kill and wait the rest.
/// Returns each child's exit status (always present — kill + wait
/// cannot fail to produce one short of host trouble).
fn reap_children(
    children: &mut [(usize, Child)],
    grace: Duration,
) -> Vec<Option<std::process::ExitStatus>> {
    let deadline = Instant::now() + grace;
    let mut statuses: Vec<Option<std::process::ExitStatus>> = vec![None; children.len()];
    loop {
        let mut all = true;
        for (i, (_rank, child)) in children.iter_mut().enumerate() {
            if statuses[i].is_none() {
                match child.try_wait() {
                    Ok(Some(st)) => statuses[i] = Some(st),
                    _ => all = false,
                }
            }
        }
        if all || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for (i, (_rank, child)) in children.iter_mut().enumerate() {
        if statuses[i].is_none() {
            let _ = child.kill();
            statuses[i] = child.wait().ok();
        }
    }
    statuses
}

fn run_launcher(cfg: MachineConfig, call: usize) -> Result<RunReport, RunError> {
    assert!(cfg.num_pes > 0, "a machine needs at least one PE");
    if !cfg.services.is_empty() {
        return Err(RunError::Bootstrap(
            "attached services (CCS etc.) are not supported on Transport::Socket; \
             run them on the in-process transport"
                .into(),
        ));
    }
    if let Some(p) = &cfg.faults {
        p.validate(cfg.num_pes);
    }
    let n = cfg.num_pes;
    let started = Instant::now();
    let hub = WireHub::bind(n, cfg.wire.kind)
        .map_err(|e| RunError::Bootstrap(format!("bind hub listener: {e}")))?;
    let addr = hub.addr().to_string();
    let args = worker_args();

    // ShmRing: build the ring region up front so every worker inherits
    // its memfd. A 1-PE ring machine has no remote pair, but the region
    // layout assumes n >= 2 — fall back to pure hub routing there.
    let shm_region = if cfg.transport == Transport::ShmRing && n >= 2 {
        Some(
            ShmRegion::create(n, cfg.wire.ring_bytes)
                .map_err(|e| RunError::Bootstrap(format!("create shm ring region: {e}")))?,
        )
    } else {
        None
    };
    let shm_fd = shm_region.as_ref().and_then(|r| r.fd());

    let mut children: Vec<(usize, Child)> = Vec::with_capacity(n);
    for rank in 0..n {
        match spawn_worker(rank, n, &addr, call, &args, shm_fd) {
            Ok(c) => children.push((rank, c)),
            Err(e) => {
                reap_children(&mut children, Duration::ZERO);
                return Err(RunError::Bootstrap(format!(
                    "spawn worker process for PE {rank}: {e}"
                )));
            }
        }
    }
    // Every child now holds an inherited copy of the memfd; dropping
    // the launcher's region (close + unmap) leaves the kernel to free
    // the memory when the last worker's mapping goes away.
    drop(shm_region);

    let outcome = {
        // While waiting for HELLOs, notice a child that died before
        // connecting so the bootstrap fails fast instead of timing out.
        let kids = &mut children;
        hub.run(&cfg.wire, || {
            for (rank, child) in kids.iter_mut() {
                if let Ok(Some(st)) = child.try_wait() {
                    return Some((
                        Some(*rank),
                        format!("worker for PE {rank} exited during bootstrap: {st}"),
                    ));
                }
            }
            None
        })
    };

    match outcome {
        Ok(out) => {
            reap_children(&mut children, cfg.wire.grace);
            let mut fault_stats = FaultStats::default();
            let mut output: Vec<String> = Vec::new();
            let mut traffic = Vec::with_capacity(n);
            for r in &out.reports {
                let f = &r.faults;
                fault_stats.transmissions += f.transmissions;
                fault_stats.dropped += f.dropped;
                fault_stats.duplicated += f.duplicated;
                fault_stats.delayed += f.delayed;
                fault_stats.retransmitted += f.retransmitted;
                fault_stats.dedup_dropped += f.dedup_dropped;
                fault_stats.superseded += f.superseded;
                // Cross-process capture interleaves by rank, not by
                // time: each worker's lines arrive as one block.
                output.extend(r.output.iter().cloned());
                traffic.push(r.traffic);
            }
            Ok(RunReport {
                traffic,
                fault_stats,
                output,
                elapsed: started.elapsed(),
            })
        }
        Err(HubFailure::Panicked { rank, msg }) => {
            reap_children(&mut children, cfg.wire.grace);
            // A PE panic propagates as a panic, matching the
            // in-process transport.
            panic!("PE {rank} (worker process) panicked: {msg}");
        }
        Err(HubFailure::Crashed { rank }) => {
            let statuses = reap_children(&mut children, cfg.wire.grace);
            let status = children
                .iter()
                .position(|(r, _)| *r == rank)
                .and_then(|i| statuses[i]);
            Err(RunError::WorkerCrashed {
                rank,
                code: status.and_then(|s| s.code()),
                signal: status.as_ref().and_then(exit_signal),
                detail: format!(
                    "connection to PE {rank} hit EOF before EXIT/ABORT; exit status {status:?}"
                ),
            })
        }
        Err(HubFailure::Bootstrap { rank, detail }) => {
            let statuses = reap_children(&mut children, cfg.wire.grace.min(Duration::from_secs(1)));
            if let Some(rank) = rank {
                let status = children
                    .iter()
                    .position(|(r, _)| *r == rank)
                    .and_then(|i| statuses[i]);
                if let Some(st) = status {
                    if !st.success() {
                        return Err(RunError::WorkerCrashed {
                            rank,
                            code: st.code(),
                            signal: exit_signal(&st),
                            detail,
                        });
                    }
                }
            }
            Err(RunError::Bootstrap(detail))
        }
    }
    // `cfg.faults`/`cfg.trace` intentionally unused here: the launcher
    // hosts no PE — each worker rebuilds them from its own replay of
    // the program.
}

// ---- worker -------------------------------------------------------------

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker role: connect this process's single rank to the hub, run
/// the entry function against the wire endpoint, then speak the
/// teardown protocol. Never returns — the process exits when the run
/// it was spawned for completes.
fn run_worker<F>(mut cfg: MachineConfig, entry: F, w: WorkerEnv) -> Result<RunReport, RunError>
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    if cfg.num_pes != w.npes {
        eprintln!(
            "converse worker rank {}: config says {} PEs but launcher says {} — \
             the code before run_with diverged between processes",
            w.rank, cfg.num_pes, w.npes
        );
        std::process::exit(EXIT_BAD_ENV);
    }
    if cfg.transport == Transport::ShmRing && w.npes >= 2 && w.shm_fd.is_none() {
        eprintln!(
            "converse worker rank {}: Transport::ShmRing but no CONVERSE_SHM_FD \
             in the environment",
            w.rank
        );
        std::process::exit(EXIT_BAD_ENV);
    }
    let shm_plane = match w.shm_fd {
        Some(fd) if cfg.transport == Transport::ShmRing => {
            // Map the inherited memfd (validating the header) and close
            // the descriptor: the mapping alone keeps the region alive.
            match ShmRegion::adopt(fd, w.npes) {
                Ok(region) => Some(ShmPlane::new(Arc::new(region), w.rank, cfg.idle_spin)),
                Err(e) => {
                    eprintln!("converse worker rank {}: map shm ring region: {e}", w.rank);
                    std::process::exit(EXIT_CONNECT_FAILED);
                }
            }
        }
        _ => None,
    };
    let endpoint = match WireEndpoint::connect(
        w.rank,
        w.npes,
        &w.addr,
        cfg.delivery,
        cfg.faults.take(),
        &cfg.wire,
        cfg.trace.clone(),
        shm_plane,
    ) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("converse worker rank {}: connect failed: {e}", w.rank);
            std::process::exit(EXIT_CONNECT_FAILED);
        }
    };
    let shared = Arc::new(MachineShared {
        console: crate::io::Console::new(cfg.capture_output, cfg.stdin_lines.clone()),
        panicked: AtomicBool::new(false),
        block_timeout: cfg.block_timeout,
        idle_spin: cfg.idle_spin,
        exo: crate::exo::ExoState::default(),
        thread_backend: cfg.thread_backend,
        channels: crate::run::resolve_channels(&cfg.channels),
        steal: cfg.steal,
    });
    {
        // A peer failure (panic elsewhere, hub loss) unwinds this
        // worker's blocked contexts through the same `check_abort`
        // path the in-process transport uses.
        let shared = shared.clone();
        endpoint.set_abort_hook(Box::new(move |_msg| {
            shared.panicked.store(true, Ordering::Release);
        }));
    }

    let rank = w.rank;
    let net: Arc<dyn CmiTransport> = endpoint.clone();
    let entry_shared = shared.clone();
    let trace = cfg.trace.clone();
    let queue = cfg.queue;
    let pe_thread = std::thread::Builder::new()
        .name(format!("pe{rank}"))
        .spawn(move || {
            let pe = Pe::new(rank, net.clone(), queue, entry_shared.clone(), trace);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                entry(&pe);
            }));
            if result.is_err() {
                entry_shared.panicked.store(true, Ordering::Release);
                net.close();
            }
            let hooks = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pe.run_exit_hooks();
            }));
            pe.trace_msg_pool();
            result.and(hooks)
        })
        .expect("spawn worker PE thread");

    let result = pe_thread.join();
    let failed = match result {
        Ok(Ok(())) => None,
        Ok(Err(p)) | Err(p) => Some(panic_message(p.as_ref())),
    };
    if let Some(msg) = failed {
        if endpoint.aborted().is_some() {
            // This worker unwound *because* a peer already failed; the
            // hub has the authoritative first failure.
            std::process::exit(0);
        }
        endpoint.send_abort(&msg);
        std::process::exit(101);
    }

    // Clean completion: make every remote send durable before EXIT.
    if !endpoint.flush(Instant::now() + cfg.block_timeout) {
        if endpoint.aborted().is_some() {
            std::process::exit(0);
        }
        endpoint.send_abort(&format!(
            "PE {rank}: teardown flush still had unacknowledged packets after {:?}",
            cfg.block_timeout
        ));
        std::process::exit(EXIT_FLUSH_TIMEOUT);
    }
    shared.console.close_input();
    let report = WorkerReport {
        rank,
        traffic: endpoint.local_traffic(),
        faults: endpoint.fault_stats(),
        output: shared.console.captured(),
    };
    endpoint.send_exit(&report.encode());
    // FIN arrives when the *slowest* rank exits — unbounded program
    // time. The wait is still hang-proof: losing the hub (launcher
    // death included) aborts the endpoint and ends the loop.
    loop {
        if endpoint.wait_fin(Duration::from_secs(1)) {
            std::process::exit(0);
        }
        if endpoint.aborted().is_some() {
            std::process::exit(0);
        }
    }
}
