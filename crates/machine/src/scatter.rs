//! EMI scatter "advance receive" calls (paper §3.1.3).
//!
//! "The scattering related calls are more complex because they must also
//! specify how to identify a message for which scattering needs to be
//! done in a particular manner. The scatter-related calls are 'advance
//! receive' calls, in that it is expected (although not required) that
//! these calls are made before the actual message arrives. The calls
//! specify how to identify their target with offsets and values. They
//! also specify which parts of matching messages must be copied to which
//! of the user data areas. Two variants of this call are provided, one
//! of which simply scatters the data on receipt of the message, while
//! the other queues a short empty message in addition."
//!
//! A [`ScatterSpec`] names the match predicate (payload word at `offset`
//! equals `value`), the pieces to copy out (payload ranges → scatter
//! areas), and optionally a notify handler that receives a short empty
//! message after the data lands. Registered specs are checked on every
//! received message *before* normal dispatch; a matching message is
//! consumed by the scatter. Areas are read back with
//! [`Pe::scatter_take`]. The gather counterpart is `CmiVectorSend`
//! (`Pe::vector_send`) — and per the paper, gathered sends and scatter
//! receives are freely mixable with ordinary ones.

use crate::pe::Pe;
use converse_msg::{HandlerId, Message};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One piece of a scatter: copy `len` payload bytes starting at
/// `src_offset` into the scatter area named by `area`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterPiece {
    /// Byte offset within the matching message's payload.
    pub src_offset: usize,
    /// Bytes to copy.
    pub len: usize,
    /// Destination area key (created implicitly, read with
    /// [`Pe::scatter_take`]).
    pub area: u64,
}

/// An advance-receive registration.
#[derive(Debug, Clone)]
pub struct ScatterSpec {
    /// Handler the matching message targets (scatters are per-handler,
    /// like everything else in Converse).
    pub handler: HandlerId,
    /// Payload byte offset of the 4-byte little-endian match word.
    pub match_offset: usize,
    /// Value the match word must equal.
    pub match_value: u32,
    /// The copies to perform.
    pub pieces: Vec<ScatterPiece>,
    /// When set, a short empty message for this handler is enqueued on
    /// the scheduler queue after the data lands — the paper's second
    /// variant, "sometimes necessary to notify the recipient that the
    /// data has arrived".
    pub notify: Option<HandlerId>,
}

/// Handle identifying a registered scatter (to cancel or re-arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScatterHandle(u64);

#[derive(Default)]
pub(crate) struct ScatterState {
    specs: Mutex<HashMap<u64, ScatterSpec>>,
    areas: Mutex<HashMap<u64, Vec<u8>>>,
    next: AtomicU64,
}

impl Pe {
    /// Register an advance receive. Returns a handle; the scatter stays
    /// armed (matching any number of messages) until cancelled.
    pub fn scatter_register(&self, spec: ScatterSpec) -> ScatterHandle {
        let id = self.scatter.next.fetch_add(1, Ordering::Relaxed);
        self.scatter.specs.lock().insert(id, spec);
        ScatterHandle(id)
    }

    /// Cancel an advance receive. Returns false if already cancelled.
    pub fn scatter_cancel(&self, h: ScatterHandle) -> bool {
        self.scatter.specs.lock().remove(&h.0).is_some()
    }

    /// Take the accumulated contents of a scatter area (clearing it).
    /// Empty if nothing matched yet.
    pub fn scatter_take(&self, area: u64) -> Vec<u8> {
        self.scatter.areas.lock().remove(&area).unwrap_or_default()
    }

    /// Peek at a scatter area without clearing.
    pub fn scatter_peek(&self, area: u64) -> Vec<u8> {
        self.scatter
            .areas
            .lock()
            .get(&area)
            .cloned()
            .unwrap_or_default()
    }

    /// Try to consume `msg` by a registered scatter. Returns true when a
    /// spec matched (the message is then fully handled here). Called by
    /// the retrieval paths before normal dispatch.
    pub(crate) fn scatter_try(&self, msg: &Message) -> bool {
        let matched: Option<ScatterSpec> = {
            let specs = self.scatter.specs.lock();
            specs
                .values()
                .find(|s| {
                    s.handler == msg.handler() && {
                        let p = msg.payload();
                        p.len() >= s.match_offset + 4
                            && u32::from_le_bytes(
                                p[s.match_offset..s.match_offset + 4]
                                    .try_into()
                                    .expect("4 bytes"),
                            ) == s.match_value
                    }
                })
                .cloned()
        };
        let Some(spec) = matched else {
            return false;
        };
        let p = msg.payload();
        {
            let mut areas = self.scatter.areas.lock();
            for piece in &spec.pieces {
                let end = (piece.src_offset + piece.len).min(p.len());
                if piece.src_offset < end {
                    areas
                        .entry(piece.area)
                        .or_default()
                        .extend_from_slice(&p[piece.src_offset..end]);
                }
            }
        }
        if let Some(h) = spec.notify {
            self.queue_enqueue(Message::new(h, b""), converse_queue::QueueingMode::Fifo);
        }
        true
    }
}
