//! Load generation against the CCS front-end: boots a machine with an
//! echo handler exported over CCS, then drives it with real TCP clients.
//! Shared by the `ccs_throughput` binary and the `ccs_roundtrip`
//! criterion bench.

use converse_ccs::{self as ccs, CcsClient, CcsRegistry, CcsServer, CcsServerConfig};
use converse_core::{csd_exit_scheduler, csd_scheduler, run_with, MachineConfig, Message, Pe};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One benchmark configuration.
pub struct CcsBenchConfig {
    /// PEs in the machine.
    pub pes: usize,
    /// Request payload bytes (the reply echoes them back).
    pub payload: usize,
    /// Closed-loop requests for the latency pass.
    pub latency_reqs: usize,
    /// Concurrent clients in the throughput pass.
    pub throughput_clients: usize,
    /// Pipelined requests per throughput client.
    pub reqs_per_client: usize,
    /// In-flight window per throughput client.
    pub window: usize,
}

/// Measured result of one configuration.
pub struct CcsBenchResult {
    /// PEs in the machine.
    pub pes: usize,
    /// Request payload bytes.
    pub payload: usize,
    /// Pipelined completions per second across all clients.
    pub reqs_per_sec: f64,
    /// Closed-loop median round trip, µs.
    pub p50_us: f64,
    /// Closed-loop 99th-percentile round trip, µs.
    pub p99_us: f64,
    /// Total requests completed in the throughput pass.
    pub throughput_reqs: usize,
}

/// Register the bench's CCS names on a PE — identical order everywhere.
fn register_bench_handlers(pe: &Pe, registry: &CcsRegistry) {
    registry.register(pe, "echo", |pe, msg| {
        let token = ccs::current_token(pe).expect("gateway dispatch");
        ccs::send_reply(pe, token, msg.payload());
    });
    let exit_exec = pe.register_handler(|pe, _msg| csd_exit_scheduler(pe));
    registry.register(pe, "exit", move |pe, _msg| {
        pe.sync_broadcast_all(&Message::new(exit_exec, b""));
    });
}

/// Boot a `pes`-PE machine serving "echo" over CCS and run `driver`
/// with a connected, warmed-up client. The driver must NOT send "exit";
/// teardown is handled here.
fn with_echo_machine<R: Send + 'static>(
    pes: usize,
    server_cfg: CcsServerConfig,
    driver: impl FnOnce(std::net::SocketAddr, &mut CcsClient) -> R + Send + 'static,
) -> R {
    let registry = CcsRegistry::new();
    let server = CcsServer::new(registry.clone(), server_cfg);
    let handle = server.handle();

    let worker = std::thread::spawn(move || {
        let addr = handle
            .wait_addr(Duration::from_secs(10))
            .expect("server bound");
        let mut c = CcsClient::connect(addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(60))).unwrap();
        // Warm up until every PE answers (registration races settle).
        for pe in 0..pes {
            loop {
                match c.call("echo", pe, b"warmup") {
                    Ok(_) => break,
                    Err(ccs::CcsError::Status { .. }) => {
                        std::thread::sleep(Duration::from_millis(2))
                    }
                    Err(e) => panic!("warmup failed: {e}"),
                }
            }
        }
        let out = driver(addr, &mut c);
        let _ = c.submit("exit", 0, b"");
        out
    });

    run_with(
        MachineConfig::new(pes).attach(Box::new(server)),
        move |pe| {
            register_bench_handlers(pe, &registry);
            pe.barrier();
            csd_scheduler(pe, -1);
        },
    );
    worker.join().expect("bench driver thread")
}

/// Run both passes of one configuration.
pub fn run_config(cfg: &CcsBenchConfig) -> CcsBenchResult {
    let pes = cfg.pes;
    let payload = vec![0x5au8; cfg.payload];
    let latency_reqs = cfg.latency_reqs;
    let clients = cfg.throughput_clients;
    let per_client = cfg.reqs_per_client;
    let window = cfg.window;
    let server_cfg = CcsServerConfig {
        max_inflight: window.max(32),
        request_timeout: Duration::from_secs(60),
        ..CcsServerConfig::default()
    };

    let (p50_us, p99_us, reqs_per_sec, total) =
        with_echo_machine(pes, server_cfg, move |addr, c| {
            // Pass 1: closed loop — one request in flight, each timed.
            let mut samples_us: Vec<f64> = Vec::with_capacity(latency_reqs);
            for i in 0..latency_reqs {
                let t0 = Instant::now();
                c.call("echo", i % pes, &payload).expect("latency echo");
                samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            samples_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let pct = |p: f64| samples_us[((samples_us.len() - 1) as f64 * p) as usize];

            // Pass 2: pipelined clients, windowed in-flight.
            let total = clients * per_client;
            let t0 = Instant::now();
            let workers: Vec<_> = (0..clients)
                .map(|_| {
                    let payload = payload.clone();
                    std::thread::spawn(move || {
                        let mut c = CcsClient::connect(addr).expect("connect");
                        c.set_timeout(Some(Duration::from_secs(60))).unwrap();
                        let mut inflight = VecDeque::with_capacity(window);
                        for i in 0..per_client {
                            if inflight.len() == window {
                                let t = inflight.pop_front().unwrap();
                                c.wait_ok(t).expect("echo reply");
                            }
                            inflight.push_back(c.submit("echo", i % pes, &payload).unwrap());
                        }
                        for t in inflight {
                            c.wait_ok(t).expect("echo reply");
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("throughput client");
            }
            let elapsed = t0.elapsed();
            (
                pct(0.5),
                pct(0.99),
                total as f64 / elapsed.as_secs_f64(),
                total,
            )
        });

    CcsBenchResult {
        pes: cfg.pes,
        payload: cfg.payload,
        reqs_per_sec,
        p50_us,
        p99_us,
        throughput_reqs: total,
    }
}

/// Time `iters` closed-loop echo round trips on a fresh machine — the
/// criterion `iter_custom` building block.
pub fn echo_round_trips(pes: usize, payload: usize, iters: u64) -> Duration {
    let body = Arc::new(vec![0x5au8; payload]);
    with_echo_machine(pes, CcsServerConfig::default(), move |_addr, c| {
        let t0 = Instant::now();
        for i in 0..iters {
            c.call("echo", (i as usize) % pes, &body).expect("echo");
        }
        t0.elapsed()
    })
}
