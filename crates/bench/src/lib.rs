//! Benchmark harness regenerating the paper's evaluation (§5).
//!
//! Figures 4–8 plot **one-way message time against message size** on
//! five 1995 machines, comparing Converse against each machine's native
//! layer; Figure 6 adds a third series routing every message through the
//! scheduler's queue. The absolute wire times belong to hardware we do
//! not have, so each series is composed as
//!
//! ```text
//! t(size) = wire_model(size)      — NetModel calibrated to the paper
//!         + measured software ns  — the REAL Rust code path, measured
//! ```
//!
//! so the quantities the paper actually argues about — the *delta*
//! Converse adds over the native layer, the *delta* scheduling adds, and
//! where each becomes negligible — are live measurements of this
//! implementation. See EXPERIMENTS.md for paper-vs-measured tables.
//!
//! Measurement methodology: loopback on one PE (send → retrieve →
//! dispatch on the same OS thread), which exercises the full header
//! encode/decode, mailbox, handler-table and (optionally) priority-queue
//! code without cross-thread wakeup noise; a two-PE ping-pong variant
//! with real hand-offs is also provided for the overhead bench.

pub mod ccs_load;

use converse_core::{csd_scheduler, run, run_with, MachineConfig, Message, Pe};
use converse_msg::HEADER_BYTES;
pub use converse_net::NetModel;
use converse_queue::QueueingMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message sizes (payload bytes) used across all figures, log-spaced
/// like the paper's x-axes.
pub fn standard_sizes() -> Vec<usize> {
    vec![
        4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
    ]
}

/// Run `f` on a one-PE machine and return the duration it reports.
pub fn run_timed<F>(num_pes: usize, f: F) -> Duration
where
    F: Fn(&Pe) -> Option<Duration> + Send + Sync + 'static,
{
    let out = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
    let o2 = out.clone();
    run(num_pes, move |pe| {
        if let Some(d) = f(pe) {
            *o2.lock() = d;
        }
    });
    let d = *out.lock();
    d
}

/// [`run_timed`] with an explicit machine configuration (thread backend,
/// queue kind, …).
pub fn run_timed_with<F>(cfg: MachineConfig, f: F) -> Duration
where
    F: Fn(&Pe) -> Option<Duration> + Send + Sync + 'static,
{
    let out = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
    let o2 = out.clone();
    run_with(cfg, move |pe| {
        if let Some(d) = f(pe) {
            *o2.lock() = d;
        }
    });
    let d = *out.lock();
    d
}

/// Raw transport baseline: bytes through the interconnect mailbox with
/// no Converse header, handler, or queue — the "native layer" software
/// floor of this substrate.
pub fn raw_loopback_ns(size: usize, iters: u64) -> f64 {
    let net = converse_net::Interconnect::new(1);
    // One block for the whole run; each send moves a share — the same
    // zero-copy discipline real senders use.
    let payload = converse_msg::MsgBlock::copy_from(&vec![7u8; size]);
    // Warm up.
    for _ in 0..100 {
        net.send(0, 0, payload.share());
        net.try_recv(0).expect("loopback");
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        net.send(0, 0, payload.share());
        std::hint::black_box(net.try_recv(0).expect("loopback"));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Full Converse path: `CmiSyncSend` → mailbox → retrieve → decode →
/// handler dispatch. With `scheduled`, the first handler re-enqueues on
/// the Csd queue (FIFO) and a second handler runs from the queue — the
/// Figure-6 "with scheduling" series.
pub fn converse_loopback_ns(size: usize, iters: u64, scheduled: bool) -> f64 {
    let per_iter = run_timed(1, move |pe| {
        let sink = pe.register_handler(|_pe, msg| {
            std::hint::black_box(msg.payload().len());
        });
        let requeue = pe.register_handler(move |pe, mut msg| {
            msg.set_handler(sink);
            pe.queue_enqueue(msg, QueueingMode::Fifo);
        });
        let handler = if scheduled { requeue } else { sink };
        let msg = Message::new(handler, &vec![7u8; size]);
        let per_msg_work = if scheduled { 2 } else { 1 };
        // Warm up.
        for _ in 0..100 {
            pe.sync_send(0, &msg);
            csd_scheduler(pe, per_msg_work);
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            pe.sync_send(0, &msg);
            csd_scheduler(pe, per_msg_work);
        }
        Some(t0.elapsed())
    });
    per_iter.as_nanos() as f64 / iters as f64
}

/// Cross-PE round trip with real thread hand-offs: PE 0 sends, PE 1's
/// handler echoes; returns ns per one-way message (half the round
/// trip). With `scheduled`, the echo goes through PE 1's queue.
pub fn round_trip_2pe_ns(size: usize, iters: u64, scheduled: bool) -> f64 {
    let total = Arc::new(AtomicU64::new(0));
    let t2 = total.clone();
    run(2, move |pe| {
        let done = pe.local(|| AtomicU64::new(0));
        let d2 = done.clone();
        let pong = pe.register_handler(move |_pe, msg| {
            d2.store(
                u64::from_le_bytes(msg.payload()[..8].try_into().unwrap()),
                Ordering::Release,
            );
        });
        let echo_exec = pe.register_handler(move |pe, msg| {
            pe.sync_send(0, &{
                let mut m = msg;
                m.set_handler(pong);
                m
            });
        });
        let echo = pe.register_handler(move |pe, mut msg| {
            if scheduled {
                msg.set_handler(echo_exec);
                pe.queue_enqueue(msg, QueueingMode::Fifo);
            } else {
                msg.set_handler(pong);
                pe.sync_send(0, &msg);
            }
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let mut payload = vec![7u8; size.max(8)];
            let t0 = Instant::now();
            for i in 1..=iters {
                payload[..8].copy_from_slice(&i.to_le_bytes());
                pe.sync_send(1, &Message::new(echo, &payload));
                pe.deliver_until(|| done.load(Ordering::Acquire) == i);
            }
            t2.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
            // Unblock PE 1.
            pe.sync_send_and_free(1, Message::new(pong, &u64::MAX.to_le_bytes()));
        } else {
            loop {
                if done.load(Ordering::Acquire) == u64::MAX {
                    break;
                }
                csd_scheduler(pe, 1);
            }
        }
        pe.barrier();
    });
    total.load(Ordering::SeqCst) as f64 / iters as f64 / 2.0
}

/// Per-size measured software costs of this implementation.
#[derive(Debug, Clone, Copy)]
pub struct SwCost {
    /// Payload size.
    pub size: usize,
    /// Raw transport ns (native floor).
    pub raw_ns: f64,
    /// Full Converse path ns.
    pub converse_ns: f64,
    /// Converse path with the scheduler queue ns.
    pub sched_ns: f64,
}

/// Scale an iteration budget down for large messages so total bytes
/// copied stays bounded.
pub fn scaled_iters(base: u64, size: usize) -> u64 {
    ((base as u128 * 1024 / (size as u128 + 1024)) as u64)
        .max(base / 20)
        .max(500)
}

/// Measure the software path for each size (`iters` scaled per size).
pub fn measure_sw(sizes: &[usize], iters: u64) -> Vec<SwCost> {
    sizes
        .iter()
        .map(|&size| {
            let it = scaled_iters(iters, size);
            SwCost {
                size,
                raw_ns: raw_loopback_ns(size, it),
                converse_ns: converse_loopback_ns(size, it, false),
                sched_ns: converse_loopback_ns(size, it, true),
            }
        })
        .collect()
}

/// One row of a reproduced figure.
#[derive(Debug, Clone, Copy)]
pub struct FigureRow {
    /// Payload size in bytes (x-axis).
    pub size: usize,
    /// Native layer: modeled wire time only.
    pub native_us: f64,
    /// Converse: wire time (header included) + measured software path.
    pub converse_us: f64,
    /// Converse with scheduler queueing (the Figure-6 third series).
    pub converse_sched_us: f64,
}

/// Compose a figure's series from the wire model and measured software
/// costs.
pub fn figure_series(model: &NetModel, sw: &[SwCost]) -> Vec<FigureRow> {
    sw.iter()
        .map(|c| {
            let sw_converse_us = (c.converse_ns - c.raw_ns).max(0.0) / 1000.0;
            let sw_sched_us = (c.sched_ns - c.raw_ns).max(0.0) / 1000.0;
            FigureRow {
                size: c.size,
                native_us: model.one_way_us(c.size),
                converse_us: model.one_way_us(c.size + HEADER_BYTES) + sw_converse_us,
                converse_sched_us: model.one_way_us(c.size + HEADER_BYTES) + sw_sched_us,
            }
        })
        .collect()
}

/// Print a figure as the paper's underlying table: size vs series.
pub fn print_figure(title: &str, rows: &[FigureRow], with_sched: bool) {
    println!("\n{title}");
    if with_sched {
        println!(
            "{:>8} {:>14} {:>14} {:>18}",
            "bytes", "native (µs)", "Converse (µs)", "+scheduling (µs)"
        );
    } else {
        println!(
            "{:>8} {:>14} {:>14}",
            "bytes", "native (µs)", "Converse (µs)"
        );
    }
    for r in rows {
        if with_sched {
            println!(
                "{:>8} {:>14.2} {:>14.2} {:>18.2}",
                r.size, r.native_us, r.converse_us, r.converse_sched_us
            );
        } else {
            println!(
                "{:>8} {:>14.2} {:>14.2}",
                r.size, r.native_us, r.converse_us
            );
        }
    }
}

/// Timing-noise tolerance for shape checks, µs. Software deltas at large
/// sizes are dominated by memcpy jitter; the claims concern deltas well
/// above this.
const SHAPE_TOL_US: f64 = 0.25;

/// Shape checks the reproduced series must satisfy (the paper's claims);
/// returns human-readable violations, empty when all hold. Differences
/// within [`SHAPE_TOL_US`] of measurement noise are accepted.
pub fn shape_check(model: &NetModel, rows: &[FigureRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for w in rows.windows(2) {
        if w[1].converse_us < w[0].converse_us - SHAPE_TOL_US {
            bad.push(format!(
                "{}: Converse series not monotone at {} bytes",
                model.name, w[1].size
            ));
        }
    }
    for r in rows {
        if r.converse_us < r.native_us - SHAPE_TOL_US {
            bad.push(format!(
                "{}: Converse beat native at {} bytes",
                model.name, r.size
            ));
        }
        if r.converse_sched_us < r.converse_us - SHAPE_TOL_US {
            bad.push(format!(
                "{}: scheduling was free at {} bytes",
                model.name, r.size
            ));
        }
    }
    // Relative overhead must shrink with size (claim C2).
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let rel_small = (first.converse_sched_us - first.native_us) / first.native_us;
        let rel_large = (last.converse_sched_us - last.native_us) / last.native_us;
        if rel_large > rel_small * 1.10 + 1e-4 {
            bad.push(format!(
                "{}: relative overhead grew with size ({rel_small:.4} → {rel_large:.4})",
                model.name
            ));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_loopback_is_fast_and_positive() {
        let ns = raw_loopback_ns(64, 2_000);
        assert!(ns > 0.0 && ns < 100_000.0, "{ns} ns");
    }

    #[test]
    fn converse_costs_more_than_raw_and_sched_more_than_plain() {
        let sw = measure_sw(&[64], 2_000);
        let c = sw[0];
        assert!(c.converse_ns > 0.0);
        assert!(
            c.sched_ns > c.converse_ns * 0.8,
            "queueing path unexpectedly cheap: {c:?}"
        );
    }

    /// Deterministic composition check with synthetic software costs;
    /// the live (release-mode) shape assertions run in the figure
    /// benches and the `figures` binary, where timing is stable.
    #[test]
    fn figure_series_shapes_hold_on_reference_costs() {
        let sw: Vec<SwCost> = [16usize, 1024, 65536]
            .iter()
            .map(|&size| SwCost {
                size,
                raw_ns: 100.0,
                converse_ns: 250.0,
                sched_ns: 400.0,
            })
            .collect();
        for model in NetModel::all_figures() {
            let rows = figure_series(&model, &sw);
            let bad = shape_check(&model, &rows);
            assert!(bad.is_empty(), "{bad:?}");
        }
    }

    /// A series where scheduling looks cheaper than plain dispatch by
    /// more than the tolerance must be flagged.
    #[test]
    fn shape_check_catches_inverted_sched_cost() {
        let model = NetModel::myrinet_fm();
        let rows = vec![
            FigureRow {
                size: 16,
                native_us: 25.0,
                converse_us: 27.0,
                converse_sched_us: 26.0,
            },
            FigureRow {
                size: 64,
                native_us: 25.0,
                converse_us: 27.1,
                converse_sched_us: 27.3,
            },
        ];
        let bad = shape_check(&model, &rows);
        assert!(
            bad.iter().any(|b| b.contains("scheduling was free")),
            "{bad:?}"
        );
    }

    #[test]
    fn two_pe_round_trip_measures() {
        let ns = round_trip_2pe_ns(16, 200, false);
        assert!(ns > 0.0, "one-way ns {ns}");
    }
}
