//! Fan-out throughput per delivery guarantee under a lossy wire.
//!
//! One sender fans `MSGS` small messages to every other PE of a 2/4/8
//! PE interconnect under a drop-0.2 fault plan, once per guarantee:
//!
//! * **exactly-once** — the sustained rate is bounded by retransmit
//!   round trips: every dropped message must be re-sent and the run
//!   only ends when the last one lands.
//! * **at-most-once** — drops are shed, not repaired: the rate is the
//!   raw send rate, and delivered counts what survived.
//! * **latest-value-wins** — newer values supersede queued/in-flight
//!   ones; the run ends when every receiver holds the final value.
//!
//! The point of the QoS layer in one number: what does the exactly-once
//! guarantee *cost* on a lossy wire, per fan-out width? Results print
//! as a table and land in `BENCH_fanout.json`; fresh numbers are gated
//! against the checked-in baseline at 25% tolerance (`FANOUT_GATE=off`
//! to re-baseline). The acceptance floor — at-most-once ≥ 2× the
//! exactly-once rate at 8 PEs — is asserted unconditionally.
//!
//! ```sh
//! cargo run --release -p converse-bench --bin fanout
//! ```

use converse_msg::MsgBlock;
use converse_net::{Channel, Delivery, FaultPlan, Interconnect, LinkFaults};
use std::time::{Duration, Instant};

/// Messages fanned to each receiver, per guarantee.
const MSGS: u64 = 2000;
const FLEETS: [usize; 3] = [2, 4, 8];
/// The EO end-of-burst marker rides the default channel.
const DONE: u64 = u64::MAX;

fn plan() -> FaultPlan {
    FaultPlan::new(42)
        .faults(LinkFaults {
            drop: 0.2,
            dup: 0.0,
            delay: 0.0,
            max_delay_slots: 0,
        })
        .retransmit(Duration::from_micros(600), Duration::from_millis(8))
        .tick(Duration::from_micros(250))
}

struct Row {
    guarantee: &'static str,
    pes: usize,
    msgs_per_sec: f64,
    delivered: u64,
    superseded: u64,
}

fn payload(v: u64) -> MsgBlock {
    MsgBlock::copy_from(&v.to_le_bytes())
}

fn value(p: &converse_net::Packet) -> u64 {
    u64::from_le_bytes(p.bytes().try_into().expect("8-byte payload"))
}

/// Fan `MSGS` messages from PE 0 to every other PE over `delivery`,
/// and measure the sustained logical-publish rate until the
/// guarantee's own completion condition holds on every receiver.
#[allow(clippy::needless_range_loop)] // dst indexes both the net and `finished`
fn fanout(pes: usize, delivery: Delivery) -> Row {
    let net = Interconnect::with_config(pes, converse_net::DeliveryMode::Fifo, Some(plan()), None);
    let chan = Channel::new(5, delivery);
    let started = Instant::now();
    for i in 0..MSGS {
        let b = payload(i);
        for dst in 1..pes {
            net.send_on(0, dst, b.share(), chan);
        }
    }
    // End-of-burst marker on the default exactly-once channel: it
    // cannot outrun the burst (per-link FIFO between sequenced
    // streams is not guaranteed, but its own delivery is), and it
    // gives the at-most-once run a finish line drops cannot erase.
    for dst in 1..pes {
        net.send(0, dst, payload(DONE));
    }

    let logical = MSGS * (pes as u64 - 1);
    let mut delivered = 0u64;
    let mut finished = vec![false; pes];
    finished[0] = true;
    let elapsed = loop {
        let mut all_done = true;
        for dst in 1..pes {
            while let Some(p) = net.try_recv(dst) {
                let v = value(&p);
                match delivery {
                    // EO finish line: every logical message arrived.
                    Delivery::ExactlyOnce => {
                        if v != DONE {
                            delivered += 1;
                        }
                    }
                    // AMO finish line: the EO marker arrived.
                    Delivery::AtMostOnce => {
                        if v == DONE {
                            finished[dst] = true;
                        } else {
                            delivered += 1;
                        }
                    }
                    // LVW finish line: the final value arrived.
                    Delivery::LatestValueWins => {
                        if v == MSGS - 1 {
                            finished[dst] = true;
                        }
                        if v != DONE {
                            delivered += 1;
                        }
                    }
                }
            }
            let done = match delivery {
                Delivery::ExactlyOnce => delivered == logical,
                _ => finished[dst],
            };
            all_done &= done;
        }
        if all_done {
            break started.elapsed();
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "{} fan-out at {pes} PEs never finished (delivered {delivered}/{logical})",
            delivery.label()
        );
        std::thread::yield_now();
    };

    let stats = net.fault_stats();
    net.close();
    match delivery {
        Delivery::ExactlyOnce => assert_eq!(delivered, logical, "exactly-once lost messages"),
        Delivery::AtMostOnce => {
            // At drop 0.2 a loss-free 2000-message run is implausible;
            // the gap is the point of the guarantee. (Retransmissions
            // are not zero: the end-of-burst marker rides the reliable
            // default channel.)
            assert!(
                delivered < logical,
                "at-most-once shed nothing under drop 0.2"
            );
        }
        Delivery::LatestValueWins => {
            assert!(delivered <= logical, "latest-value-wins duplicated")
        }
    }
    Row {
        guarantee: delivery.label(),
        pes,
        msgs_per_sec: logical as f64 / elapsed.as_secs_f64(),
        delivered,
        superseded: stats.superseded,
    }
}

fn main() {
    let gate_on = std::env::var("FANOUT_GATE")
        .map(|v| v != "off")
        .unwrap_or(true);
    let baseline = std::fs::read_to_string("BENCH_fanout.json").ok();

    println!("fan-out under drop 0.2: logical publishes/sec per guarantee\n");
    println!(
        "{:>18} {:>4} {:>14} {:>10} {:>10}",
        "guarantee", "pes", "msgs/s", "delivered", "superseded"
    );
    let mut rows = Vec::new();
    for pes in FLEETS {
        for d in [
            Delivery::ExactlyOnce,
            Delivery::AtMostOnce,
            Delivery::LatestValueWins,
        ] {
            let r = fanout(pes, d);
            println!(
                "{:>18} {:>4} {:>14.0} {:>10} {:>10}",
                r.guarantee, r.pes, r.msgs_per_sec, r.delivered, r.superseded
            );
            rows.push(r);
        }
    }

    // The acceptance floor: shedding drops must beat repairing them by
    // at least 2x at the widest fan-out.
    let rate = |g: &str, p: usize| {
        rows.iter()
            .find(|r| r.guarantee == g && r.pes == p)
            .map(|r| r.msgs_per_sec)
            .expect("measured row")
    };
    let (eo8, amo8) = (rate("exactly-once", 8), rate("at-most-once", 8));
    assert!(
        amo8 >= 2.0 * eo8,
        "at-most-once fan-out ({amo8:.0}/s) is not 2x exactly-once ({eo8:.0}/s) at 8 PEs"
    );
    println!(
        "\nacceptance: at-most-once {:.1}x exactly-once at 8 PEs",
        amo8 / eo8
    );

    // Regression gate: fresh rates vs the checked-in baseline, 25%
    // tolerance, higher is better.
    let mut gate_failed = false;
    if let Some(text) = &baseline {
        for (guarantee, pes, base) in baseline_rows(text) {
            let fresh = rate(&guarantee, pes);
            if fresh < base / 1.25 {
                eprintln!(
                    "GATE: {guarantee}@{pes}pe {fresh:.0} msgs/s < baseline {base:.0} by >25%"
                );
                gate_failed = true;
            } else {
                println!("gate ok: {guarantee}@{pes}pe {fresh:.0} (baseline {base:.0})");
            }
        }
    } else {
        println!("no checked-in BENCH_fanout.json baseline; gate skipped (first run)");
    }

    std::fs::write("BENCH_fanout.json", render_json(&rows)).expect("write BENCH_fanout.json");
    println!("\nwrote BENCH_fanout.json ({} rows)", rows.len());

    if gate_failed {
        if gate_on {
            eprintln!("fan-out regression gate FAILED (set FANOUT_GATE=off to re-baseline)");
            std::process::exit(1);
        } else {
            println!("gate failures ignored: FANOUT_GATE=off");
        }
    }
}

/// Hand-rolled JSON — the workspace is offline, so no serde.
fn render_json(rows: &[Row]) -> String {
    let mut s = String::from(
        "{\n  \"bench\": \"fanout\",\n  \"plan\": {\"drop\": 0.2, \"msgs_per_receiver\": 2000},\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"guarantee\": \"{}\", \"pes\": {}, \"msgs_per_sec\": {:.0}, \"delivered\": {}, \"superseded\": {}}}{}\n",
            r.guarantee,
            r.pes,
            r.msgs_per_sec,
            r.delivered,
            r.superseded,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull (guarantee, pes, msgs_per_sec) triples back out of the
/// baseline JSON with a scan — same idiom as the other gated benches.
fn baseline_rows(text: &str) -> Vec<(String, usize, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(g0) = line.find("\"guarantee\": \"") else {
            continue;
        };
        let rest = &line[g0 + 14..];
        let Some(g1) = rest.find('"') else { continue };
        let guarantee = rest[..g1].to_string();
        let field = |key: &str| -> Option<f64> {
            let k0 = line.find(key)? + key.len();
            let tail = &line[k0..];
            let end = tail.find([',', '}']).unwrap_or(tail.len());
            tail[..end].trim().parse().ok()
        };
        let (Some(pes), Some(rate)) = (field("\"pes\": "), field("\"msgs_per_sec\": ")) else {
            continue;
        };
        out.push((guarantee, pes as usize, rate));
    }
    out
}
