//! Regenerate every figure of the paper's evaluation section (§5.1) in
//! one run, plus the in-text numeric claims, printing the size-vs-time
//! rows each figure plots.
//!
//! ```sh
//! cargo run --release -p converse-bench --bin figures
//! ```

use converse_bench::{
    converse_loopback_ns, figure_series, measure_sw, print_figure, raw_loopback_ns,
    round_trip_2pe_ns, shape_check, standard_sizes, NetModel,
};

fn main() {
    println!("Reproducing 'Converse: An Interoperable Framework for Parallel Programming'");
    println!("(IPPS 1996), evaluation section — wire times are modeled per machine;");
    println!("Converse software costs are live measurements of this implementation.\n");

    println!("measuring software path (this takes a few seconds)…");
    let sw = measure_sw(&standard_sizes(), 50_000);

    println!("\nMeasured software costs (ns per one-way message):");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "bytes", "raw", "converse", "sched"
    );
    for c in &sw {
        println!(
            "{:>8} {:>10.0} {:>12.0} {:>10.0}",
            c.size, c.raw_ns, c.converse_ns, c.sched_ns
        );
    }

    let figures: [(&str, NetModel, bool); 5] = [
        ("Figure 4", NetModel::atm_hp(), false),
        ("Figure 5", NetModel::t3d(), false),
        ("Figure 6", NetModel::myrinet_fm(), true),
        ("Figure 7", NetModel::sp1(), false),
        ("Figure 8", NetModel::paragon(), false),
    ];

    let mut violations = Vec::new();
    for (title, model, with_sched) in figures {
        let rows = figure_series(&model, &sw);
        print_figure(
            &format!("{title}: message passing performance on {}", model.name),
            &rows,
            with_sched,
        );
        violations.extend(shape_check(&model, &rows));
    }

    // ---- In-text claims ----
    println!("\n=== In-text claims ===");

    // Fig 5 text: "The jump at 16K bytes is due to copying during
    // packetization".
    let t3d = NetModel::t3d();
    let rows = figure_series(&t3d, &measure_sw(&[16 * 1024 - 8, 16 * 1024 + 8], 20_000));
    println!(
        "T3D 16K packetization jump: {:.1} µs → {:.1} µs across the 16 KiB boundary",
        rows[0].converse_us, rows[1].converse_us
    );

    // Fig 6 text: FM delivers ≤128 B in 25 µs; Converse needs ~31 µs.
    let fm = NetModel::myrinet_fm();
    let sw128 = measure_sw(&[120], 50_000);
    let r = &figure_series(&fm, &sw128)[0];
    println!(
        "Myrinet/FM 128 B: native {:.1} µs vs Converse {:.2} µs (paper: 25 vs ~31; the 1995 \
         delta was CPU-bound software cost — ours is {:.3} µs on a modern CPU)",
        r.native_us,
        r.converse_us,
        r.converse_us - r.native_us
    );

    // §5.1: "scheduling is seen to add about 9 to 15 µs for short
    // messages. For large messages, the relative difference becomes
    // negligible."
    let small = &figure_series(&fm, &measure_sw(&[16], 50_000))[0];
    let large = &figure_series(&fm, &measure_sw(&[65536], 2_000))[0];
    println!(
        "scheduling delta: {:.3} µs at 16 B ({:.2}% of total) vs {:.3} µs at 64 KiB ({:.4}% of total)",
        small.converse_sched_us - small.converse_us,
        100.0 * (small.converse_sched_us - small.converse_us) / small.converse_sched_us,
        large.converse_sched_us - large.converse_us,
        100.0 * (large.converse_sched_us - large.converse_us) / large.converse_sched_us,
    );

    // C1: "a few tens of instructions" overhead over native.
    let raw = raw_loopback_ns(16, 100_000);
    let conv = converse_loopback_ns(16, 100_000, false);
    println!(
        "C1 software overhead (16 B): Converse path {:.0} ns vs raw transport {:.0} ns (+{:.0} ns)",
        conv,
        raw,
        conv - raw
    );

    let handoff = round_trip_2pe_ns(16, 2_000, false);
    println!("substrate scale: real 2-PE one-way with thread hand-off = {handoff:.0} ns");

    if violations.is_empty() {
        println!("\nall shape checks PASSED");
    } else {
        println!("\nSHAPE VIOLATIONS:");
        for v in violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
