//! Per-message software-overhead scorecard (paper §5's overhead tables).
//!
//! The paper's central performance claim is that the generalized-message
//! core adds only a small **constant** per-message overhead on the native
//! layer — the FM port's "25 µs for messages up to 128 bytes" figure.
//! This bench measures our two-list-mailbox delivery spine against a
//! faithful replica of the pre-batching design (one `Mutex<VecDeque>`
//! per mailbox, one lock op per message on both sides, the same stall
//! check and traffic accounting the seed paid) and emits
//! `BENCH_sched.json` with before/after deltas:
//!
//! * `pingpong_loopback` — single-PE send→recv latency per payload size:
//!   the uncontended constant-overhead floor. Acceptance: the batched
//!   mailbox must not regress p50 at any size.
//! * `pingpong_2pe` — cross-thread round-trip latency: legacy mailbox
//!   with park-only idling (before) vs two-list mailbox with the
//!   spin-then-park policy (after). On a single-hardware-thread host the
//!   spin budget resolves to 0 — matching
//!   `converse_machine::default_idle_spin` — because spinning there only
//!   steals the echo thread's timeslice; the rows then compare the two
//!   mailboxes under identical park-only idling.
//! * `fanin` — 1→N small-message delivery throughput: P−1 sender
//!   threads pre-fill PE 0's mailbox concurrently (untimed), then the
//!   timed section moves every message into receiver-local storage —
//!   per-message `try_recv` before vs bounded `drain_into` after. This
//!   isolates the per-message delivery overhead, which is exactly the
//!   cost batching amortizes; timing producers and consumer together on
//!   a one-core host would measure the kernel's timeslicing instead.
//!   Acceptance: ≥ 2× at 4 PEs.
//!
//! The run also regression-gates itself against the checked-in
//! `BENCH_sched.json`: if small-message (≤128 B) loopback p50 exceeds
//! the baseline by >25% the process exits non-zero (CI fails). Set
//! `SCHED_GATE=off` to skip the gate (e.g. when re-baselining on new
//! hardware).
//!
//! ```sh
//! cargo run --release -p converse-bench --bin sched_overhead
//! ```

use converse_msg::MsgBlock;
use converse_net::{Interconnect, Packet};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAYLOADS: [usize; 5] = [16, 128, 1024, 16384, 65536];
const FANIN_PES: [usize; 3] = [2, 4, 8];
const FANIN_PAYLOAD: usize = 16;
/// Messages per sender thread in the fan-in runs.
const FANIN_MSGS: u64 = 60_000;
/// Batch bound for the "after" fan-in drain — mirrors the scheduler's
/// bounded intake rather than an unbounded swallow-everything drain.
const DRAIN_BOUND: usize = 1024;
/// Latency sampling: median over `SAMPLES` means of `BATCH` iterations.
const SAMPLES: usize = 300;
const BATCH: u64 = 64;

/// Spin budget for the "after" idle policy, host-adjusted the same way
/// `converse_machine::default_idle_spin` is: 0 on a single-hardware-
/// thread host (spinning would starve the peer thread of the core it
/// needs to produce the awaited message), generous otherwise.
fn auto_spin() -> u32 {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 20_000,
        _ => 0,
    }
}

// ---------------------------------------------------------------------
// The "before" substrate: a faithful replica of the pre-batching
// mailbox — one mutex-guarded deque per PE, a condvar for blocking
// waits, one lock acquisition per message on the send side AND per
// message on the receive side, plus the stall check and traffic
// accounting the seed's real paths performed. Kept here (not in
// converse-net) so the shipped crate carries no dead legacy path.
// ---------------------------------------------------------------------

struct LegacyMailbox {
    q: Mutex<VecDeque<Packet>>,
    cv: Condvar,
}

struct LegacyCounters {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
}

/// Wait-slice the seed used while stall windows were armed.
const LEGACY_STALL_SLICE: Duration = Duration::from_millis(2);

struct LegacyNet {
    boxes: Vec<LegacyMailbox>,
    traffic: Vec<LegacyCounters>,
    /// Always false; probed on every receive so the replica pays the
    /// seed's per-message stall check, like the real interconnect.
    has_stalls: AtomicBool,
    /// Always false; probed where the seed's paths probed it.
    closed: AtomicBool,
}

impl LegacyNet {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(LegacyNet {
            boxes: (0..n)
                .map(|_| LegacyMailbox {
                    q: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            traffic: (0..n)
                .map(|_| LegacyCounters {
                    msgs_sent: AtomicU64::new(0),
                    bytes_sent: AtomicU64::new(0),
                    msgs_recv: AtomicU64::new(0),
                })
                .collect(),
            has_stalls: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        })
    }

    /// The seed's `stalled` fast path: one atomic load when no stall
    /// windows are armed (always the case here).
    fn stalled(&self, _pe: usize) -> bool {
        self.has_stalls.load(Ordering::Acquire) && !self.closed.load(Ordering::Acquire)
    }

    fn send(&self, src: usize, dst: usize, block: MsgBlock) {
        self.traffic[src].msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.traffic[src]
            .bytes_sent
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        let mbox = &self.boxes[dst];
        mbox.q.lock().push_back(Packet {
            src,
            channel: converse_net::Channel::DEFAULT,
            seq: 0,
            block,
        });
        mbox.cv.notify_one();
    }

    fn try_recv(&self, pe: usize) -> Option<Packet> {
        if self.stalled(pe) {
            return None; // never taken; the load replicates the seed's cost
        }
        let p = self.boxes[pe].q.lock().pop_front();
        if p.is_some() {
            self.traffic[pe].msgs_recv.fetch_add(1, Ordering::Relaxed);
        }
        p
    }

    /// The seed's `wait_nonempty`, verbatim in shape: per-iteration
    /// clock reads, stall probe, closed probe, and the stall-aware wake
    /// computation — the costs the wake path actually paid.
    fn wait_nonempty(&self, pe: usize, timeout: Duration) {
        let mbox = &self.boxes[pe];
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            if self.stalled(pe) {
                std::thread::sleep(LEGACY_STALL_SLICE.min(deadline.saturating_duration_since(now)));
                continue;
            }
            let mut q = mbox.q.lock();
            if !q.is_empty() || self.closed.load(Ordering::Acquire) {
                return;
            }
            let wake = if self.has_stalls.load(Ordering::Acquire) {
                (now + LEGACY_STALL_SLICE).min(deadline)
            } else {
                deadline
            };
            if mbox.cv.wait_until(&mut q, wake).timed_out() && wake == deadline {
                return;
            }
        }
    }

    fn pending(&self, pe: usize) -> usize {
        self.boxes[pe].q.lock().len()
    }
}

// ---------------------------------------------------------------------
// Measurement helpers
// ---------------------------------------------------------------------

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Single-PE loopback pingpong, legacy mailbox vs two-list mailbox,
/// returned as `(before_p50, after_p50)`. The two variants are sampled
/// in **alternating** batches so slow machine-state drift (frequency
/// scaling, noisy neighbors) biases both the same way instead of
/// whichever happened to run second.
fn loopback_pair(payload: usize) -> (u64, u64) {
    let legacy = LegacyNet::new(1);
    let net = Interconnect::new(1);
    // One shared payload buffer: per-iteration allocation + memset would
    // dominate (and add allocator noise to) the large-payload rows, on
    // both sides equally, hiding the spine delta under memory traffic.
    let buf = vec![7u8; payload];
    let iter_before = || {
        legacy.send(0, 0, MsgBlock::copy_from(&buf));
        let p = legacy.try_recv(0).expect("loopback packet");
        std::hint::black_box(p.bytes().len());
    };
    let iter_after = || {
        net.send(0, 0, MsgBlock::copy_from(&buf));
        let p = net.try_recv(0).expect("loopback packet");
        std::hint::black_box(p.bytes().len());
    };
    for _ in 0..BATCH * 4 {
        iter_before();
        iter_after();
    }
    let mut before: Vec<u64> = Vec::with_capacity(SAMPLES);
    let mut after: Vec<u64> = Vec::with_capacity(SAMPLES);
    // Alternate which side runs first within the pair so any warm-cache
    // advantage of going second is split evenly between the two.
    for s in 0..SAMPLES {
        let mut time_before = || {
            let t0 = Instant::now();
            for _ in 0..BATCH {
                iter_before();
            }
            before.push(t0.elapsed().as_nanos() as u64 / BATCH);
        };
        let mut time_after = || {
            let t0 = Instant::now();
            for _ in 0..BATCH {
                iter_after();
            }
            after.push(t0.elapsed().as_nanos() as u64 / BATCH);
        };
        if s.is_multiple_of(2) {
            time_before();
            time_after();
        } else {
            time_after();
            time_before();
        }
    }
    (median(before), median(after))
}

/// Cross-thread one-way latency, `(before_p50, after_p50)`: legacy
/// mailbox with park-only idling vs two-list mailbox with the
/// spin-then-park policy (budget from [`auto_spin`]). PE 0 sends, PE 1's
/// thread wakes under the policy under test and echoes, PE 0 waits the
/// same way. Both substrates stay alive for the whole measurement and
/// are sampled in alternating batches (see [`loopback_pair`]).
fn pingpong_2pe_pair(payload: usize) -> (u64, u64) {
    let legacy = LegacyNet::new(2);
    let net = Interconnect::new(2);
    let spin = auto_spin();
    let stop = Arc::new(AtomicBool::new(false));
    let echo_before = {
        let net = legacy.clone();
        let stop = stop.clone();
        std::thread::spawn(move || loop {
            net.wait_nonempty(1, Duration::from_millis(5));
            if stop.load(Ordering::Relaxed) {
                return;
            }
            if let Some(p) = net.try_recv(1) {
                net.send(1, 0, p.block);
            }
        })
    };
    let echo_after = {
        let net = net.clone();
        let stop = stop.clone();
        std::thread::spawn(move || loop {
            net.wait_nonempty_spin(1, Duration::from_millis(5), spin);
            if stop.load(Ordering::Relaxed) {
                return;
            }
            if let Some(p) = net.try_recv(1) {
                net.send(1, 0, p.block);
            }
        })
    };
    let block = MsgBlock::copy_from(&vec![9u8; payload]);
    let iter_before = || {
        legacy.send(0, 1, block.share());
        loop {
            if let Some(p) = legacy.try_recv(0) {
                std::hint::black_box(p.bytes().len());
                break;
            }
            legacy.wait_nonempty(0, Duration::from_millis(5));
        }
    };
    let iter_after = || {
        net.send(0, 1, block.share());
        loop {
            if let Some(p) = net.try_recv(0) {
                std::hint::black_box(p.bytes().len());
                break;
            }
            net.wait_nonempty_spin(0, Duration::from_millis(5), spin);
        }
    };
    for _ in 0..BATCH * 4 {
        iter_before();
        iter_after();
    }
    let mut before: Vec<u64> = Vec::with_capacity(SAMPLES);
    let mut after: Vec<u64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            iter_before();
        }
        before.push(t0.elapsed().as_nanos() as u64 / BATCH);
        let t0 = Instant::now();
        for _ in 0..BATCH {
            iter_after();
        }
        after.push(t0.elapsed().as_nanos() as u64 / BATCH);
    }
    stop.store(true, Ordering::Relaxed);
    legacy.send(0, 1, block.share()); // wake the echo threads so they observe stop
    net.send(0, 1, block);
    echo_before.join().expect("legacy echo thread");
    echo_after.join().expect("echo thread");
    // Round trip → one-way.
    (median(before) / 2, median(after) / 2)
}

/// 1→N fan-in, legacy: `pes - 1` sender threads each push `FANIN_MSGS`
/// small messages at PE 0 (concurrently, untimed — each sends shares of
/// one pre-built block so the allocator stays out of the measurement),
/// then the timed section moves every queued packet into receiver-local
/// storage one `try_recv` — one lock acquisition — at a time. Packet
/// drops and handler dispatch cost the same in both designs and are
/// excluded from both. Returns messages/second of delivery.
fn fanin_before(pes: usize) -> f64 {
    let net = LegacyNet::new(pes);
    let total = FANIN_MSGS * (pes as u64 - 1);
    let senders: Vec<_> = (1..pes)
        .map(|src| {
            let net = net.clone();
            std::thread::spawn(move || {
                let block = MsgBlock::copy_from(&[3u8; FANIN_PAYLOAD]);
                for _ in 0..FANIN_MSGS {
                    net.send(src, 0, block.share());
                }
            })
        })
        .collect();
    for s in senders {
        s.join().expect("sender");
    }
    assert_eq!(net.pending(0) as u64, total);
    let mut sink: Vec<Packet> = Vec::with_capacity(total as usize);
    let t0 = Instant::now();
    while sink.len() < total as usize {
        if let Some(p) = net.try_recv(0) {
            sink.push(p);
        }
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(sink.len());
    total as f64 / elapsed.as_secs_f64()
}

/// 1→N fan-in, batched: same pre-fill, but the timed section delivers
/// through `drain_into_bounded` — the whole inbox is swapped behind one
/// lock and handed out `DRAIN_BOUND` packets at a time, the scheduler's
/// intake shape.
fn fanin_after(pes: usize) -> f64 {
    let net = Interconnect::new(pes);
    let total = FANIN_MSGS * (pes as u64 - 1);
    let senders: Vec<_> = (1..pes)
        .map(|src| {
            let net = net.clone();
            std::thread::spawn(move || {
                let block = MsgBlock::copy_from(&[3u8; FANIN_PAYLOAD]);
                for _ in 0..FANIN_MSGS {
                    net.send(src, 0, block.share());
                }
            })
        })
        .collect();
    for s in senders {
        s.join().expect("sender");
    }
    assert_eq!(net.pending(0) as u64, total);
    let mut sink: Vec<Packet> = Vec::with_capacity(total as usize);
    let t0 = Instant::now();
    while sink.len() < total as usize {
        net.drain_into_bounded(0, &mut sink, DRAIN_BOUND);
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(sink.len());
    total as f64 / elapsed.as_secs_f64()
}

// ---------------------------------------------------------------------
// Reporting + regression gate
// ---------------------------------------------------------------------

struct Row {
    kind: &'static str,
    pes: usize,
    payload: usize,
    unit: &'static str,
    before: f64,
    after: f64,
}

impl Row {
    /// Higher-is-better for throughput, lower-is-better for latency;
    /// either way speedup > 1 means "after" won.
    fn speedup(&self) -> f64 {
        if self.unit == "msgs_per_sec" {
            self.after / self.before
        } else {
            self.before / self.after
        }
    }
}

/// One result object per line so the gate (and CI diffing) can parse
/// the checked-in file with line-based matching, no JSON parser needed.
fn render_json(rows: &[Row]) -> String {
    let mut s = String::from("{\n  \"bench\": \"sched_overhead\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kind\": \"{}\", \"pes\": {}, \"payload_bytes\": {}, \"unit\": \"{}\", \"before\": {:.1}, \"after\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.kind,
            r.pes,
            r.payload,
            r.unit,
            r.before,
            r.after,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull `"after"` values for small-payload loopback rows out of the
/// checked-in baseline, by line matching.
fn baseline_small_loopback(text: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.contains("\"kind\": \"pingpong_loopback\"") {
            continue;
        }
        let field = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\": ");
            let at = line.find(&pat)? + pat.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        if let (Some(payload), Some(after)) = (field("payload_bytes"), field("after")) {
            if payload <= 128.0 {
                out.push((payload as usize, after));
            }
        }
    }
    out
}

fn main() {
    let gate_on = std::env::var("SCHED_GATE")
        .map(|v| v != "off")
        .unwrap_or(true);
    let baseline = std::fs::read_to_string("BENCH_sched.json").ok();

    let mut rows: Vec<Row> = Vec::new();

    println!("pingpong loopback (1 PE): legacy mailbox vs two-list mailbox");
    println!(
        "{:>9} {:>12} {:>12} {:>8}",
        "bytes", "before p50", "after p50", "speedup"
    );
    for payload in PAYLOADS {
        let (b, a) = loopback_pair(payload);
        let (before, after) = (b as f64, a as f64);
        let r = Row {
            kind: "pingpong_loopback",
            pes: 1,
            payload,
            unit: "ns_p50",
            before,
            after,
        };
        println!(
            "{:>9} {:>10.0}ns {:>10.0}ns {:>7.2}x",
            payload,
            before,
            after,
            r.speedup()
        );
        rows.push(r);
    }

    println!(
        "\npingpong one-way (2 PEs): legacy park-only vs spin-then-park (spin budget {})",
        auto_spin()
    );
    println!(
        "{:>9} {:>12} {:>12} {:>8}",
        "bytes", "before p50", "after p50", "speedup"
    );
    for payload in [16, 128] {
        let (b, a) = pingpong_2pe_pair(payload);
        let (before, after) = (b as f64, a as f64);
        let r = Row {
            kind: "pingpong_2pe",
            pes: 2,
            payload,
            unit: "ns_p50",
            before,
            after,
        };
        println!(
            "{:>9} {:>10.0}ns {:>10.0}ns {:>7.2}x",
            payload,
            before,
            after,
            r.speedup()
        );
        rows.push(r);
    }

    println!("\n1->N fan-in ({FANIN_PAYLOAD} B): per-message recv vs batched drain");
    println!(
        "{:>9} {:>14} {:>14} {:>8}",
        "pes", "before msg/s", "after msg/s", "speedup"
    );
    for pes in FANIN_PES {
        let before = fanin_before(pes);
        let after = fanin_after(pes);
        let r = Row {
            kind: "fanin",
            pes,
            payload: FANIN_PAYLOAD,
            unit: "msgs_per_sec",
            before,
            after,
        };
        println!(
            "{:>9} {:>14.0} {:>14.0} {:>7.2}x",
            pes,
            before,
            after,
            r.speedup()
        );
        rows.push(r);
    }

    // Acceptance: the contended 4-PE small-message case must be >= 2x.
    let fanin4 = rows
        .iter()
        .find(|r| r.kind == "fanin" && r.pes == 4)
        .expect("4-PE fan-in row");
    assert!(
        fanin4.speedup() >= 2.0,
        "4-PE fan-in speedup {:.2}x below the 2x acceptance floor",
        fanin4.speedup()
    );

    // Regression gate against the checked-in baseline (fresh "after" vs
    // baseline "after" for <=128 B loopback, 25% tolerance).
    let mut gate_failed = false;
    if let Some(text) = &baseline {
        for (payload, base_after) in baseline_small_loopback(text) {
            let fresh = rows
                .iter()
                .find(|r| r.kind == "pingpong_loopback" && r.payload == payload)
                .map(|r| r.after)
                .unwrap_or(f64::INFINITY);
            let limit = base_after * 1.25;
            if fresh > limit {
                eprintln!(
                    "GATE: {payload} B loopback p50 {fresh:.0} ns exceeds baseline {base_after:.0} ns by >25%"
                );
                gate_failed = true;
            } else {
                println!(
                    "gate ok: {payload} B loopback p50 {fresh:.0} ns <= {limit:.0} ns (baseline {base_after:.0} ns + 25%)"
                );
            }
        }
    } else {
        println!("no checked-in BENCH_sched.json baseline; gate skipped (first run)");
    }

    std::fs::write("BENCH_sched.json", render_json(&rows)).expect("write BENCH_sched.json");
    println!("\nwrote BENCH_sched.json ({} rows)", rows.len());

    if gate_failed {
        if gate_on {
            eprintln!(
                "small-message latency regression gate FAILED (set SCHED_GATE=off to re-baseline)"
            );
            std::process::exit(1);
        } else {
            println!("gate failures ignored: SCHED_GATE=off");
        }
    }
}
