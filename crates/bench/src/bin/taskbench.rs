//! Task Bench workload matrix: per-task overhead curves for the
//! Converse execution layers over generated dependency graphs.
//!
//! One driver walks `pattern × grain × payload × PEs × layer ×
//! transport` (see `converse-taskbench` for the generator and the
//! layer adapters) and reports **per-task overhead**: aggregate
//! PE-time per task minus the task's own busy-work grain. As the grain
//! shrinks toward zero the curve exposes what the runtime itself
//! costs per task — the Task Bench methodology, pointed at the
//! Charm-style chare layer and the tSM thread layer side by side.
//!
//! Every cell **validates before it reports**: each task's output is a
//! hash chained over its predecessors' transmitted payload bytes, and
//! a machine-wide allreduce compares against the generator's serial
//! oracle — so a wrong schedule, a lost dependency, or a truncated
//! payload fails the bench loudly rather than producing a fast number.
//!
//! Results land in `BENCH_taskbench.json`; fresh overheads are gated
//! against the checked-in baseline (3× + 50 µs slack — per-task
//! overheads are tens of µs and jittery on shared/oversubscribed
//! hosts, and the gate exists to catch order-of-magnitude runtime
//! regressions, not scheduler weather). Set
//! `TASKBENCH_GATE=off` to re-baseline, `TASKBENCH_SMOKE=1` for the
//! reduced CI matrix (subset of cells, 1 rep, no JSON rewrite).
//!
//! ```sh
//! cargo run --release -p converse-bench --bin taskbench
//! cargo run --release -p converse-bench --bin taskbench -- --list-patterns
//! cargo run --release -p converse-bench --bin taskbench -- --dry-run
//! ```

use converse_machine::{run_with, MachineConfig, Transport};
use converse_taskbench::exec::{assert_machine_valid, Layer, RunOpts};
use converse_taskbench::{GraphSpec, Pattern, TaskGraph};
use std::sync::Arc;
use std::time::Instant;

/// Graph shape of every measured cell: identical in full and smoke
/// runs, so smoke rows stay comparable with the checked-in baseline.
const WIDTH: usize = 8;
const STEPS: usize = 12;
const SEED: u64 = 1996;
const GRAINS: [u64; 3] = [0, 1_000, 10_000];
const PAYLOADS: [usize; 3] = [16, 1024, 65536];
const SCALE_PES: [usize; 4] = [1, 2, 4, 8];
const MATRIX_PES: usize = 8;

struct Row {
    kind: &'static str,
    layer: &'static str,
    pattern: &'static str,
    pes: usize,
    transport: &'static str,
    grain_ns: u64,
    payload_bytes: usize,
    tasks: usize,
    elapsed_ns: u64,
    per_task_ns: f64,
    overhead_ns: f64,
}

/// One validated measurement: run `pattern` on `layer`, `reps` times in
/// one machine, take the fastest rep. The elapsed window is the
/// adapter call itself (registration + barriers + execution), timed on
/// PE 0 between machine-wide barriers; every rep validates machine-wide
/// before its time can count.
#[allow(clippy::too_many_arguments)] // one arg per matrix axis
fn cell(
    layer: Layer,
    pattern: Pattern,
    pes: usize,
    transport: Transport,
    grain_ns: u64,
    payload_bytes: usize,
    reps: usize,
    kind: &'static str,
) -> Row {
    let graph = Arc::new(TaskGraph::generate(GraphSpec {
        pattern,
        seed: SEED,
        width: WIDTH,
        steps: STEPS,
    }));
    let g = graph.clone();
    let report = run_with(
        MachineConfig::new(pes)
            .transport(transport)
            .capture_output(),
        move |pe| {
            let opts = RunOpts {
                grain_ns,
                payload_bytes,
                ..RunOpts::default()
            };
            let mut best = u64::MAX;
            // One untimed warmup rep: the first tSM run on a fresh
            // machine pays for every thread stack the pool will later
            // recycle (~1 ms/task cold vs ~60 µs warm), which would
            // otherwise dominate single-rep smoke cells.
            for rep in 0..reps + 1 {
                pe.barrier();
                let t0 = Instant::now();
                let summary = layer.run(pe, &g, &opts);
                let dt = t0.elapsed().as_nanos() as u64;
                // No number leaves a cell unvalidated: exactly-once
                // execution + dependency-order hashes, machine-wide.
                assert_machine_valid(pe, &g, &summary, opts.payload_bytes);
                if rep > 0 {
                    best = best.min(dt);
                }
            }
            if pe.my_pe() == 0 {
                pe.cmi_printf(format!("CELL_NS {best}"));
            }
        },
    );
    let elapsed_ns: u64 = report
        .output
        .iter()
        .find_map(|l| l.strip_prefix("CELL_NS "))
        .expect("CELL_NS line in captured output")
        .trim()
        .parse()
        .expect("numeric CELL_NS");
    let tasks = graph.num_tasks();
    // Aggregate PE-time per task: with `width == pes` one task per PE
    // per level, this reduces to elapsed/levels = grain + overhead.
    let per_task_ns = elapsed_ns as f64 * pes as f64 / tasks as f64;
    Row {
        kind,
        layer: layer.label(),
        pattern: pattern.label(),
        pes,
        transport: match transport {
            Transport::InProcess => "inproc",
            Transport::Socket => "socket",
            Transport::ShmRing => "shmring",
        },
        grain_ns,
        payload_bytes,
        tasks,
        elapsed_ns,
        per_task_ns,
        overhead_ns: per_task_ns - grain_ns as f64,
    }
}

fn print_row(quiet: bool, r: &Row) {
    if !quiet {
        println!(
            "{:>8} {:>6} {:>10} {:>3} {:>7} {:>9} {:>8} {:>6} {:>12.0} {:>12.0}",
            r.kind,
            r.layer,
            r.pattern,
            r.pes,
            r.transport,
            r.grain_ns,
            r.payload_bytes,
            r.tasks,
            r.per_task_ns,
            r.overhead_ns
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-patterns") {
        for p in Pattern::ALL {
            println!("{}", p.label());
        }
        return;
    }
    if args.iter().any(|a| a == "--dry-run") {
        // Generate + structurally validate every pattern at every
        // matrix shape, no machine runs — the graph-generation path CI
        // exercises even where benches are skipped.
        let mut graphs = 0usize;
        let mut tasks = 0usize;
        for pattern in Pattern::ALL {
            for seed in [1u64, 7, 1996] {
                for (w, s) in [(WIDTH, STEPS), (4, 6), (16, 3)] {
                    let g = TaskGraph::generate(GraphSpec {
                        pattern,
                        seed,
                        width: w,
                        steps: s,
                    });
                    g.validate_structure()
                        .unwrap_or_else(|e| panic!("{} seed {seed} {w}x{s}: {e}", pattern.label()));
                    graphs += 1;
                    tasks += g.num_tasks();
                }
            }
        }
        println!("dry run: {graphs} graphs generated and validated ({tasks} tasks)");
        return;
    }
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a}; flags: --list-patterns, --dry-run");
        std::process::exit(2);
    }

    // Socket-transport workers re-execute this main() up to the run
    // they were spawned for; replayed measurements are side-effects,
    // not results, so they stay silent.
    let quiet = converse_machine::in_socket_worker();
    let gate_on = std::env::var("TASKBENCH_GATE")
        .map(|v| v != "off")
        .unwrap_or(true);
    let smoke = std::env::var("TASKBENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let baseline = std::fs::read_to_string("BENCH_taskbench.json").ok();
    let reps = if smoke { 3 } else { 5 };

    if !quiet {
        println!(
            "task bench matrix: width {WIDTH}, steps {STEPS}, seed {SEED}{}\n",
            if smoke { " (smoke subset)" } else { "" }
        );
        println!(
            "{:>8} {:>6} {:>10} {:>3} {:>7} {:>9} {:>8} {:>6} {:>12} {:>12}",
            "kind",
            "layer",
            "pattern",
            "pes",
            "transp",
            "grain_ns",
            "payload",
            "tasks",
            "per_task_ns",
            "overhead_ns"
        );
    }
    let mut rows: Vec<Row> = Vec::new();

    // Transport axis first: socket/shmring workers re-exec this binary
    // and replay earlier wire calls in-process, so the cheap wire cells
    // must precede the heavy in-process matrix, not follow it.
    if !smoke {
        for layer in Layer::ALL {
            let r = cell(
                layer,
                Pattern::Stencil1D,
                4,
                Transport::Socket,
                0,
                16,
                1,
                "socket",
            );
            print_row(quiet, &r);
            rows.push(r);
        }
        for layer in Layer::ALL {
            let r = cell(
                layer,
                Pattern::Stencil1D,
                4,
                Transport::ShmRing,
                0,
                16,
                1,
                "shmring",
            );
            print_row(quiet, &r);
            rows.push(r);
        }
    }

    // The gated core: pattern × grain × layer at 8 PEs, in-process.
    let patterns: &[Pattern] = if smoke {
        &[Pattern::Stencil1D, Pattern::Butterfly]
    } else {
        &Pattern::ALL
    };
    let grains: &[u64] = if smoke { &[0, 10_000] } else { &GRAINS };
    for layer in Layer::ALL {
        for &pattern in patterns {
            for &grain_ns in grains {
                let r = cell(
                    layer,
                    pattern,
                    MATRIX_PES,
                    Transport::InProcess,
                    grain_ns,
                    16,
                    reps,
                    "matrix",
                );
                print_row(quiet, &r);
                rows.push(r);
            }
        }
    }

    if !smoke {
        // Message-size axis: the payload is hashed end-to-end by every
        // consumer, so this prices real byte movement, not headers.
        for layer in Layer::ALL {
            for &payload_bytes in &PAYLOADS[1..] {
                let r = cell(
                    layer,
                    Pattern::Stencil1D,
                    MATRIX_PES,
                    Transport::InProcess,
                    0,
                    payload_bytes,
                    reps,
                    "payload",
                );
                print_row(quiet, &r);
                rows.push(r);
            }
        }
        // PE-count axis at a fixed 1 µs grain.
        for layer in Layer::ALL {
            for &pes in &SCALE_PES {
                let r = cell(
                    layer,
                    Pattern::Stencil1D,
                    pes,
                    Transport::InProcess,
                    1_000,
                    16,
                    reps,
                    "scale",
                );
                print_row(quiet, &r);
                rows.push(r);
            }
        }
    }

    // Regression gate on the core matrix rows: per-task overhead vs
    // the checked-in baseline at 2x + 25 µs slack.
    let mut gate_failed = false;
    if let Some(text) = &baseline {
        for (layer, pattern, grain, base) in baseline_rows(text) {
            let Some(fresh) = rows
                .iter()
                .find(|r| {
                    r.kind == "matrix"
                        && r.layer == layer
                        && r.pattern == pattern
                        && r.grain_ns == grain
                })
                .map(|r| r.overhead_ns)
            else {
                continue; // smoke runs measure a subset
            };
            if fresh > base * 3.0 + 50_000.0 {
                eprintln!(
                    "GATE: {layer}/{pattern}@{grain}ns overhead {fresh:.0} ns > baseline \
                     {base:.0} ns by >3x + 50 µs"
                );
                gate_failed = true;
            } else if !quiet {
                println!("gate ok: {layer}/{pattern}@{grain}ns {fresh:.0} ns (baseline {base:.0})");
            }
        }
    } else if !quiet {
        println!("no checked-in BENCH_taskbench.json baseline; gate skipped (first run)");
    }

    if !smoke {
        std::fs::write("BENCH_taskbench.json", render_json(&rows))
            .expect("write BENCH_taskbench.json");
        if !quiet {
            println!("\nwrote BENCH_taskbench.json ({} rows)", rows.len());
        }
    }

    if gate_failed {
        if gate_on {
            eprintln!("taskbench regression gate FAILED (set TASKBENCH_GATE=off to re-baseline)");
            std::process::exit(1);
        } else if !quiet {
            println!("gate failures ignored: TASKBENCH_GATE=off");
        }
    }
}

/// Hand-rolled JSON — the workspace is offline, so no serde.
fn render_json(rows: &[Row]) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"taskbench\",\n  \"shape\": {{\"width\": {WIDTH}, \"steps\": {STEPS}, \"seed\": {SEED}}},\n  \"results\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kind\": \"{}\", \"layer\": \"{}\", \"pattern\": \"{}\", \"pes\": {}, \"transport\": \"{}\", \"grain_ns\": {}, \"payload_bytes\": {}, \"tasks\": {}, \"elapsed_ns\": {}, \"per_task_ns\": {:.0}, \"overhead_ns\": {:.0}}}{}\n",
            r.kind,
            r.layer,
            r.pattern,
            r.pes,
            r.transport,
            r.grain_ns,
            r.payload_bytes,
            r.tasks,
            r.elapsed_ns,
            r.per_task_ns,
            r.overhead_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull (layer, pattern, grain_ns, overhead_ns) out of the baseline's
/// `"kind": "matrix"` rows with a line scan — same idiom as the other
/// gated benches.
fn baseline_rows(text: &str) -> Vec<(String, String, u64, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.contains("\"kind\": \"matrix\"") {
            continue;
        }
        let grab = |key: &str| -> Option<String> {
            let at = line.find(&format!("\"{key}\":"))?;
            let rest = line[at + key.len() + 3..].trim_start();
            let end = rest.find([',', '}'])?;
            Some(rest[..end].trim().trim_matches('"').to_string())
        };
        let (Some(layer), Some(pattern), Some(grain), Some(overhead)) = (
            grab("layer"),
            grab("pattern"),
            grab("grain_ns"),
            grab("overhead_ns"),
        ) else {
            continue;
        };
        if let (Ok(grain), Ok(overhead)) = (grain.parse(), overhead.parse()) {
            out.push((layer, pattern, grain, overhead));
        }
    }
    out
}
