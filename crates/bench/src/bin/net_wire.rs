//! Wire-transport overhead scorecard: the real wire (socket and
//! shared-memory rings) vs the in-process interconnect, same programs,
//! same machine shapes.
//!
//! Two shapes per transport:
//!
//! * `rtt_p50` / `rtt_p99` — 2-PE 16 B ping-pong round-trip latency.
//!   Measured *inside* the entry function (on the socket transport that
//!   is a real worker process) and reported through captured
//!   `cmi_printf` output, so the measurement path is identical on both
//!   transports.
//! * `fanin` — (P−1)→1 16 B delivery throughput at 2/4/8 PEs: every
//!   other PE streams at PE 0, which times draining the full count.
//!
//! Rows land in `BENCH_wire.json` as before/after pairs. For the
//! `rtt_*`/`fanin` kinds `before` = in-process and `after` = socket, so
//! `speedup` < 1 *is the honest price of crossing a process boundary*
//! (syscalls, frame encode/decode, kernel loopback) rather than a
//! regression. The `shm_*` kinds compare `before` = socket against
//! `after` = shared-memory rings (`Transport::ShmRing`) — there the
//! rings must *win*, and two absolute acceptance gates enforce it:
//! ring RTT p50 at most 1/3 of socket, and 8-PE ring fan-in at least
//! 4x socket.
//!
//! The run also regression-gates fresh numbers against the checked-in
//! `BENCH_wire.json`: RTT p50 more than 25% above baseline, or fan-in
//! throughput more than 25% below, fails the process (CI). Set
//! `WIRE_GATE=off` to skip all gates (re-baselining, noisy hosts).
//!
//! ```sh
//! cargo run --release -p converse-bench --bin net_wire
//! ```

use converse_core::{csd_exit_scheduler, csd_scheduler};
use converse_machine::{run_with, MachineConfig, Message, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const PAYLOAD: usize = 16;
const RTT_WARMUP: u64 = 200;
const RTT_SAMPLES: usize = 2_000;
const FANIN_PES: [usize; 3] = [2, 4, 8];
/// Messages per sender in the fan-in runs. Modest on purpose: each
/// socket-transport run re-executes this binary per rank, and each
/// worker replays every *earlier* run in-process to reach its call
/// site, so total work grows with the square of the run count.
const FANIN_MSGS: u64 = 20_000;

struct Row {
    kind: &'static str,
    pes: usize,
    unit: &'static str,
    before: f64,
    after: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.after > 0.0 {
            self.before / self.after
        } else {
            0.0
        }
    }
}

fn pctl(sorted: &[u64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx] as f64
}

/// 2-PE ping-pong; PE 0 reports "RTT_NS <p50> <p99>" through the
/// captured console.
fn rtt_entry(pe: &converse_machine::Pe) {
    let pong = pe.register_handler(|_, _| {});
    let ping = pe.register_handler(|_, _| {});
    pe.barrier();
    let payload = [0x5A_u8; PAYLOAD];
    if pe.my_pe() == 0 {
        for _ in 0..RTT_WARMUP {
            pe.sync_send_and_free(1, Message::new(ping, &payload));
            pe.get_specific_msg(pong);
        }
        let mut samples = Vec::with_capacity(RTT_SAMPLES);
        for _ in 0..RTT_SAMPLES {
            let t0 = Instant::now();
            pe.sync_send_and_free(1, Message::new(ping, &payload));
            pe.get_specific_msg(pong);
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        pe.cmi_printf(format!(
            "RTT_NS {} {}",
            pctl(&samples, 0.50),
            pctl(&samples, 0.99)
        ));
    } else {
        for _ in 0..RTT_WARMUP as usize + RTT_SAMPLES {
            pe.get_specific_msg(ping);
            pe.sync_send_and_free(0, Message::new(pong, &payload));
        }
    }
    pe.barrier();
}

/// (P−1)→1 fan-in; PE 0 reports "FANIN <msgs_per_sec>".
fn fanin_entry(pe: &converse_machine::Pe) {
    let n = pe.num_pes();
    let got = Arc::new(AtomicU64::new(0));
    let g2 = got.clone();
    let total = FANIN_MSGS * (n as u64 - 1);
    let sink = pe.register_handler(move |pe, _msg| {
        if g2.fetch_add(1, Ordering::Relaxed) + 1 == total {
            csd_exit_scheduler(pe);
        }
    });
    pe.barrier();
    if pe.my_pe() == 0 {
        let t0 = Instant::now();
        csd_scheduler(pe, -1);
        let dt = t0.elapsed();
        assert_eq!(got.load(Ordering::Relaxed), total);
        pe.cmi_printf(format!(
            "FANIN {:.1}",
            total as f64 / dt.as_secs_f64().max(1e-9)
        ));
    } else {
        let payload = [0x5A_u8; PAYLOAD];
        for _ in 0..FANIN_MSGS {
            pe.sync_send_and_free(0, Message::new(sink, &payload));
        }
    }
    pe.barrier();
}

/// Run `entry` on `pes` PEs over `transport` and return the first
/// captured line starting with `tag`, split into f64 fields.
fn run_and_parse(
    pes: usize,
    transport: Transport,
    tag: &str,
    entry: fn(&converse_machine::Pe),
) -> Vec<f64> {
    let report = run_with(
        MachineConfig::new(pes)
            .transport(transport)
            .capture_output(),
        entry,
    );
    let line = report
        .output
        .iter()
        .find(|l| l.starts_with(tag))
        .unwrap_or_else(|| panic!("no {tag} line in captured output: {:?}", report.output))
        .clone();
    line.split_whitespace()
        .skip(1)
        .map(|f| f.parse().expect("numeric bench field"))
        .collect()
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"net_wire\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"pes\": {}, \"payload_bytes\": {}, \"unit\": \"{}\", \"before\": {:.1}, \"after\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.kind,
            r.pes,
            PAYLOAD,
            r.unit,
            r.before,
            r.after,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull `(kind, pes, after)` triples out of the checked-in baseline —
/// same line-oriented scrape the sched bench uses, no JSON dependency.
fn baseline_rows(text: &str) -> Vec<(String, usize, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let grab = |key: &str| -> Option<String> {
            let at = line.find(&format!("\"{key}\":"))?;
            let rest = line[at + key.len() + 3..].trim_start();
            let end = rest.find([',', '}'])?;
            Some(rest[..end].trim().trim_matches('"').to_string())
        };
        if let (Some(kind), Some(pes), Some(after)) = (grab("kind"), grab("pes"), grab("after")) {
            if let (Ok(pes), Ok(after)) = (pes.parse(), after.parse()) {
                rows.push((kind, pes, after));
            }
        }
    }
    rows
}

macro_rules! say {
    ($quiet:expr, $($arg:tt)*) => {
        if !$quiet {
            println!($($arg)*);
        }
    };
}

fn main() {
    // Socket-transport workers re-execute this whole main() up to the
    // run they were spawned for; their replayed measurements are
    // side-effects, not results, so they stay silent.
    let quiet = converse_machine::in_socket_worker();
    let gate_on = std::env::var("WIRE_GATE")
        .map(|v| v != "off")
        .unwrap_or(true);
    let baseline = std::fs::read_to_string("BENCH_wire.json").ok();

    let mut rows = Vec::new();

    say!(
        quiet,
        "2-PE 16 B round-trip: in-process vs socket vs shmring"
    );
    let inproc = run_and_parse(2, Transport::InProcess, "RTT_NS", rtt_entry);
    let socket = run_and_parse(2, Transport::Socket, "RTT_NS", rtt_entry);
    let shm_rtt = run_and_parse(2, Transport::ShmRing, "RTT_NS", rtt_entry);
    for (i, kind) in ["rtt_p50", "rtt_p99"].into_iter().enumerate() {
        let r = Row {
            kind,
            pes: 2,
            unit: if i == 0 { "ns_p50" } else { "ns_p99" },
            before: inproc[i],
            after: socket[i],
        };
        say!(
            quiet,
            "  {:>8}: {:>10.0}ns inproc {:>10.0}ns socket  ({:.3}x)",
            kind,
            r.before,
            r.after,
            r.speedup()
        );
        rows.push(r);
    }
    for (i, kind) in ["shm_rtt_p50", "shm_rtt_p99"].into_iter().enumerate() {
        let r = Row {
            kind,
            pes: 2,
            unit: if i == 0 { "ns_p50" } else { "ns_p99" },
            before: socket[i],
            after: shm_rtt[i],
        };
        say!(
            quiet,
            "  {:>11}: {:>10.0}ns socket {:>10.0}ns shmring  ({:.3}x)",
            kind,
            r.before,
            r.after,
            r.speedup()
        );
        rows.push(r);
    }

    say!(
        quiet,
        "\n(P-1)->1 16 B fan-in throughput: in-process vs socket vs shmring"
    );
    for pes in FANIN_PES {
        let before = run_and_parse(pes, Transport::InProcess, "FANIN", fanin_entry)[0];
        let after = run_and_parse(pes, Transport::Socket, "FANIN", fanin_entry)[0];
        let shm = run_and_parse(pes, Transport::ShmRing, "FANIN", fanin_entry)[0];
        let r = Row {
            kind: "fanin",
            pes,
            unit: "msgs_per_sec",
            before,
            after,
        };
        say!(
            quiet,
            "  {:>2} PEs: {:>12.0} msg/s inproc {:>12.0} msg/s socket {:>12.0} msg/s shmring",
            pes,
            before,
            after,
            shm,
        );
        rows.push(r);
        rows.push(Row {
            kind: "shm_fanin",
            pes,
            unit: "msgs_per_sec",
            before: after,
            after: shm,
        });
    }

    // Absolute acceptance gates for the shared-memory data plane: the
    // rings exist to beat the hub socket, so hold them to it — RTT p50
    // at most 1/3 of socket, 8-PE fan-in at least 4x socket.
    let mut accept_failed = false;
    {
        let (sock_p50, shm_p50) = (socket[0], shm_rtt[0]);
        if shm_p50 > sock_p50 / 3.0 {
            eprintln!("ACCEPT: shmring rtt_p50 {shm_p50:.0}ns > 1/3 of socket {sock_p50:.0}ns");
            accept_failed = true;
        } else {
            say!(
                quiet,
                "accept ok: shmring rtt_p50 {shm_p50:.0}ns <= 1/3 socket {sock_p50:.0}ns"
            );
        }
        let sock8 = rows
            .iter()
            .find(|r| r.kind == "fanin" && r.pes == 8)
            .map(|r| r.after)
            .unwrap_or(0.0);
        let shm8 = rows
            .iter()
            .find(|r| r.kind == "shm_fanin" && r.pes == 8)
            .map(|r| r.after)
            .unwrap_or(0.0);
        if shm8 < sock8 * 4.0 {
            eprintln!("ACCEPT: shmring 8-PE fan-in {shm8:.0} msg/s < 4x socket {sock8:.0} msg/s");
            accept_failed = true;
        } else {
            say!(
                quiet,
                "accept ok: shmring 8-PE fan-in {shm8:.0} msg/s >= 4x socket {sock8:.0} msg/s"
            );
        }
    }

    // Regression gate: fresh socket numbers vs the checked-in baseline,
    // 25% tolerance, direction-aware per unit.
    let mut gate_failed = false;
    if let Some(text) = &baseline {
        for (kind, pes, base_after) in baseline_rows(text) {
            let Some(fresh) = rows
                .iter()
                .find(|r| r.kind == kind && r.pes == pes)
                .map(|r| r.after)
            else {
                continue;
            };
            let (bad, cmp) = if kind.contains("rtt") {
                (fresh > base_after * 1.25, ">")
            } else {
                (fresh < base_after / 1.25, "<")
            };
            if bad {
                eprintln!(
                    "GATE: {kind}@{pes}pe socket {fresh:.0} {cmp} baseline {base_after:.0} by >25%"
                );
                gate_failed = true;
            } else {
                say!(
                    quiet,
                    "gate ok: {kind}@{pes}pe socket {fresh:.0} (baseline {base_after:.0})"
                );
            }
        }
    } else {
        say!(
            quiet,
            "no checked-in BENCH_wire.json baseline; gate skipped (first run)"
        );
    }

    std::fs::write("BENCH_wire.json", render_json(&rows)).expect("write BENCH_wire.json");
    say!(quiet, "\nwrote BENCH_wire.json ({} rows)", rows.len());

    if gate_failed || accept_failed {
        if gate_on {
            eprintln!("wire-transport gate FAILED (set WIRE_GATE=off to re-baseline)");
            std::process::exit(1);
        } else {
            say!(quiet, "gate failures ignored: WIRE_GATE=off");
        }
    }
}
