//! Chaos soak: the acceptance run for the fault-injection plane.
//!
//! Boots a 4-PE machine under the canonical adversarial plan — 20% drop,
//! 10% duplication, 30% of copies delayed up to 4 slots — and pushes
//! 10k+ logical messages through it. The reliability sublayer must
//! deliver **every** message exactly once (count and checksum verified),
//! and the wire overhead (transmission attempts per logical message)
//! must stay at or below 3×. One soak per seed in the CI matrix.
//!
//! Results are printed as a table and written to `BENCH_chaos.json`.
//!
//! ```sh
//! cargo run --release -p converse-bench --bin chaos_soak
//! ```

use converse_core::{csd_exit_scheduler, csd_scheduler, MachineConfig, Message};
use converse_machine::{FaultPlan, FaultStats, LinkFaults};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PES: usize = 4;
/// Messages each PE sends to each of the other PEs: 4 × 3 × 834 = 10008
/// logical messages, clearing the 10k acceptance floor.
const PER_LINK: u64 = 834;
const SEEDS: [u64; 3] = [1, 7, 1996];

struct SoakResult {
    seed: u64,
    logical: u64,
    delivered: u64,
    stats: FaultStats,
    overhead: f64,
    elapsed: Duration,
}

fn soak(seed: u64) -> SoakResult {
    let plan = FaultPlan::new(seed)
        .faults(LinkFaults {
            drop: 0.2,
            dup: 0.1,
            delay: 0.3,
            max_delay_slots: 4,
        })
        .retransmit(Duration::from_micros(600), Duration::from_millis(8))
        .tick(Duration::from_micros(250));

    let delivered = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));
    let (d2, c2) = (delivered.clone(), checksum.clone());
    let expect_per_pe = PER_LINK * (PES as u64 - 1);

    let started = Instant::now();
    let report = converse_core::run_with(MachineConfig::new(PES).faults(plan), move |pe| {
        let d3 = d2.clone();
        let c3 = c2.clone();
        let local = Arc::new(AtomicU64::new(0));
        let h = pe.register_handler(move |pe, msg| {
            c3.fetch_add(
                u64::from_le_bytes(msg.payload().try_into().unwrap()),
                Ordering::Relaxed,
            );
            d3.fetch_add(1, Ordering::Relaxed);
            if local.fetch_add(1, Ordering::Relaxed) + 1 == expect_per_pe {
                csd_exit_scheduler(pe);
            }
        });
        pe.barrier();
        let me = pe.my_pe() as u64;
        for k in 0..PER_LINK {
            for other in 0..PES {
                if other == pe.my_pe() {
                    continue;
                }
                // Globally unique tag so the checksum catches loss and
                // duplication alike.
                let tag = me * 1_000_000 + other as u64 * 10_000 + k;
                pe.sync_send_and_free(other, Message::new(h, &tag.to_le_bytes()));
            }
        }
        csd_scheduler(pe, -1);
        pe.barrier();
    });

    let logical = report.total_msgs();
    let stats = report.fault_stats;
    let got = delivered.load(Ordering::Relaxed);
    let want = expect_per_pe * PES as u64;
    assert_eq!(got, want, "seed {seed}: lost or duplicated deliveries");
    let mut sum = 0u64;
    for src in 0..PES as u64 {
        for dst in 0..PES as u64 {
            if src == dst {
                continue;
            }
            for k in 0..PER_LINK {
                sum += src * 1_000_000 + dst * 10_000 + k;
            }
        }
    }
    assert_eq!(
        checksum.load(Ordering::Relaxed),
        sum,
        "seed {seed}: payload checksum mismatch (duplicate or corruption)"
    );
    let overhead = stats.overhead_ratio(logical);
    assert!(
        overhead <= 3.0,
        "seed {seed}: retransmit overhead {overhead:.2}x exceeds the 3x budget"
    );
    SoakResult {
        seed,
        logical,
        delivered: got,
        stats,
        overhead,
        elapsed: started.elapsed(),
    }
}

fn main() {
    println!("chaos soak: {PES} PEs, drop 0.2 / dup 0.1 / delay<=4 slots\n");
    println!(
        "{:>6} {:>9} {:>10} {:>7} {:>7} {:>7} {:>8} {:>9} {:>9}",
        "seed", "logical", "wire", "drop", "dup", "delay", "rexmit", "overhead", "ms"
    );
    let mut results = Vec::new();
    for seed in SEEDS {
        let r = soak(seed);
        println!(
            "{:>6} {:>9} {:>10} {:>7} {:>7} {:>7} {:>8} {:>8.2}x {:>9}",
            r.seed,
            r.logical,
            r.stats.transmissions,
            r.stats.dropped,
            r.stats.duplicated,
            r.stats.delayed,
            r.stats.retransmitted,
            r.overhead,
            r.elapsed.as_millis()
        );
        results.push(r);
    }
    let json = render_json(&results);
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!(
        "\nall seeds delivered exactly-once within budget; wrote BENCH_chaos.json ({} seeds)",
        results.len()
    );
}

/// Hand-rolled JSON — the workspace is offline, so no serde.
fn render_json(results: &[SoakResult]) -> String {
    let mut s = String::from(
        "{\n  \"bench\": \"chaos_soak\",\n  \"plan\": {\"pes\": 4, \"drop\": 0.2, \"dup\": 0.1, \"delay\": 0.3, \"max_delay_slots\": 4},\n  \"results\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"seed\": {}, \"logical_msgs\": {}, \"delivered\": {}, \"exactly_once\": true, \"wire_transmissions\": {}, \"dropped\": {}, \"duplicated\": {}, \"delayed\": {}, \"retransmitted\": {}, \"dedup_dropped\": {}, \"overhead_ratio\": {:.3}, \"elapsed_ms\": {}}}{}\n",
            r.seed,
            r.logical,
            r.delivered,
            r.stats.transmissions,
            r.stats.dropped,
            r.stats.duplicated,
            r.stats.delayed,
            r.stats.retransmitted,
            r.stats.dedup_dropped,
            r.overhead,
            r.elapsed.as_millis(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
