//! End-to-end thread-path scorecard (paper §5's thread-overhead table).
//!
//! The fiber backend's claim is that the paper's ~100 ns-class context
//! switch survives **integration**: not just the raw register switch
//! (see the `threads_switch` bench) but the full paths a threaded
//! runtime actually exercises — Csd-scheduled wakeups, tSM blocking
//! produce/consume round-trips, and N-thread ping rings. Each workload
//! runs on both backends and emits `BENCH_threads.json` rows in the
//! hand-off-vs-fiber (before/after) shape:
//!
//! * `csd_wakeup` — suspend-to-scheduler, resume-by-generalized-message:
//!   the path tSM receives take. Acceptance: fiber p50 ≤ 1 µs.
//! * `tsm_roundtrip` — two tSM threads ping-ponging tagged messages
//!   through blocking `trecv`: the §3.2.2 produce/consume pattern.
//!   Acceptance: fiber ≥ 5× faster than hand-off.
//! * `ring_switch` — N threads yielding in a ring, N ∈ {2, 16, 128}:
//!   suspension must cost a constant independent of thread count.
//!
//! Backends are sampled in **alternating** runs (one fresh machine per
//! sample) so slow machine-state drift biases both the same way; each
//! row reports the median of its samples.
//!
//! The run also regression-gates itself against the checked-in
//! `BENCH_threads.json`: if the fiber `csd_wakeup` p50 exceeds the
//! baseline by >25% the process exits non-zero (CI fails). Set
//! `THREADS_GATE=off` to skip the gate (e.g. when re-baselining on new
//! hardware).
//!
//! ```sh
//! cargo run --release -p converse-bench --bin threads_e2e
//! ```

use converse_bench::run_timed_with;
use converse_core::MachineConfig;
use converse_sm::{Sm, ANY};
use converse_threads::{cth_awaken, cth_create, cth_resume, cth_yield, CthBackend, CthRuntime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Median over this many alternating-backend samples per row.
const SAMPLES: usize = 9;
/// Ring sizes for the N-thread rotation rows.
const RING_THREADS: [u64; 3] = [2, 16, 128];

fn cfg(backend: CthBackend) -> MachineConfig {
    MachineConfig::new(1).thread_backend(backend.to_config())
}

/// Iteration budget per sample: the hand-off backend's constants are
/// 2–3 orders slower, so it gets a proportionately smaller budget.
fn budget(backend: CthBackend, fiber_iters: u64) -> u64 {
    match backend {
        CthBackend::Fiber => fiber_iters,
        CthBackend::Handoff => (fiber_iters / 25).max(64),
    }
}

/// One sample of the Csd-scheduled wakeup path: a thread under the Csd
/// strategy yields `iters` times; every wakeup is a generalized message
/// through the scheduler queue. Returns ns per wakeup.
fn csd_wakeup_sample(backend: CthBackend) -> u64 {
    let iters = budget(backend, 20_000);
    let d = run_timed_with(cfg(backend), move |pe| {
        let rt = CthRuntime::get(pe);
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        rt.spawn_scheduled(pe, move |pe| {
            for _ in 0..iters {
                cth_yield(pe);
            }
            d2.store(1, Ordering::SeqCst);
            converse_core::csd_exit_scheduler(pe);
        });
        let t0 = Instant::now();
        converse_core::csd_scheduler(pe, -1);
        assert_eq!(done.load(Ordering::SeqCst), 1);
        Some(t0.elapsed())
    });
    d.as_nanos() as u64 / iters
}

/// One sample of the tSM produce/consume round-trip: a producer thread
/// sends a tagged message and blocks for the ack; a consumer thread
/// blocks for the request and acks it. Both receives are `trecv` —
/// suspend under the Csd strategy, awaken from the message handler.
/// Returns ns per round-trip.
fn tsm_roundtrip_sample(backend: CthBackend) -> u64 {
    let iters = budget(backend, 4_000);
    let d = run_timed_with(cfg(backend), move |pe| {
        let sm = Sm::install(pe);
        const REQ: i32 = 1;
        const ACK: i32 = 2;
        let sm_c = sm.clone();
        sm.tspawn(pe, move |pe| {
            for _ in 0..iters {
                let m = sm_c.trecv(pe, REQ, ANY);
                sm_c.send(pe, 0, ACK, &m.data);
            }
        });
        let sm_p = sm.clone();
        sm.tspawn(pe, move |pe| {
            for i in 0..iters {
                sm_p.send(pe, 0, REQ, &i.to_le_bytes());
                let m = sm_p.trecv(pe, ACK, ANY);
                assert_eq!(m.data, i.to_le_bytes());
            }
            converse_core::csd_exit_scheduler(pe);
        });
        let t0 = Instant::now();
        converse_core::csd_scheduler(pe, -1);
        Some(t0.elapsed())
    });
    d.as_nanos() as u64 / iters
}

/// One sample of the N-thread ping ring: `threads` threads in the
/// default ready pool, each yielding `laps` times — the pool rotates
/// them in FIFO order, so every switch is a direct handoff to the next
/// ring member. Returns ns per switch.
fn ring_switch_sample(backend: CthBackend, threads: u64) -> u64 {
    let laps = budget(backend, 25_000 / threads.max(1)).max(8);
    let total = threads * laps;
    let d = run_timed_with(cfg(backend), move |pe| {
        let ts: Vec<_> = (0..threads)
            .map(|_| {
                cth_create(pe, move |pe| {
                    for _ in 0..laps {
                        cth_yield(pe);
                    }
                })
            })
            .collect();
        for t in &ts[1..] {
            cth_awaken(pe, t);
        }
        let t0 = Instant::now();
        cth_resume(pe, &ts[0]);
        assert!(ts.iter().all(|t| t.is_exited()));
        Some(t0.elapsed())
    });
    d.as_nanos() as u64 / total
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Collect `SAMPLES` per backend in alternating order and return the
/// per-backend medians as `(handoff_p50, fiber_p50)`.
fn measure_pair(mut sample: impl FnMut(CthBackend) -> u64) -> (u64, u64) {
    let mut fiber = Vec::with_capacity(SAMPLES);
    let mut handoff = Vec::with_capacity(SAMPLES);
    // Warm-up: one throwaway sample per backend (allocator, page cache).
    sample(CthBackend::Fiber);
    sample(CthBackend::Handoff);
    for s in 0..SAMPLES {
        if s % 2 == 0 {
            fiber.push(sample(CthBackend::Fiber));
            handoff.push(sample(CthBackend::Handoff));
        } else {
            handoff.push(sample(CthBackend::Handoff));
            fiber.push(sample(CthBackend::Fiber));
        }
    }
    (median(handoff), median(fiber))
}

struct Row {
    kind: &'static str,
    threads: u64,
    /// Hand-off backend p50 — the "before" column.
    handoff: u64,
    /// Fiber backend p50 — the "after" column.
    fiber: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.handoff as f64 / self.fiber as f64
    }
}

/// One result object per line so the gate (and CI diffing) can parse
/// the checked-in file with line-based matching, no JSON parser needed.
fn render_json(rows: &[Row]) -> String {
    let mut s = String::from("{\n  \"bench\": \"threads_e2e\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kind\": \"{}\", \"threads\": {}, \"unit\": \"ns_p50\", \"handoff\": {}, \"fiber\": {}, \"speedup\": {:.1}}}{}\n",
            r.kind,
            r.threads,
            r.handoff,
            r.fiber,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull the fiber `csd_wakeup` p50 out of the checked-in baseline.
fn baseline_fiber_wakeup(text: &str) -> Option<f64> {
    for line in text.lines() {
        if !line.contains("\"kind\": \"csd_wakeup\"") {
            continue;
        }
        let pat = "\"fiber\": ";
        let at = line.find(pat)? + pat.len();
        let rest = &line[at..];
        let end = rest
            .find(|c: char| c != '.' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        return rest[..end].parse().ok();
    }
    None
}

fn main() {
    if !CthBackend::fiber_supported() {
        // The scorecard is a fiber-vs-handoff comparison; without the
        // fiber backend there is nothing to compare or to gate.
        println!("threads_e2e: fiber backend unsupported on this target; skipping");
        return;
    }
    let gate_on = std::env::var("THREADS_GATE")
        .map(|v| v != "off")
        .unwrap_or(true);
    let baseline = std::fs::read_to_string("BENCH_threads.json").ok();

    let mut rows: Vec<Row> = Vec::new();

    println!("thread path end-to-end: hand-off backend vs fiber backend");
    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>8}",
        "workload", "threads", "handoff p50", "fiber p50", "speedup"
    );

    let (h, f) = measure_pair(csd_wakeup_sample);
    rows.push(Row {
        kind: "csd_wakeup",
        threads: 1,
        handoff: h,
        fiber: f,
    });
    let (h, f) = measure_pair(tsm_roundtrip_sample);
    rows.push(Row {
        kind: "tsm_roundtrip",
        threads: 2,
        handoff: h,
        fiber: f,
    });
    for threads in RING_THREADS {
        let (h, f) = measure_pair(|b| ring_switch_sample(b, threads));
        rows.push(Row {
            kind: "ring_switch",
            threads,
            handoff: h,
            fiber: f,
        });
    }
    for r in &rows {
        println!(
            "{:>14} {:>8} {:>10}ns {:>10}ns {:>7.1}x",
            r.kind,
            r.threads,
            r.handoff,
            r.fiber,
            r.speedup()
        );
    }

    // Acceptance: the integrated fiber wakeup stays in the paper's
    // sub-microsecond class, and the threaded-receive round-trip beats
    // the portable fallback by at least 5x.
    let wakeup = rows.iter().find(|r| r.kind == "csd_wakeup").unwrap();
    assert!(
        wakeup.fiber <= 1_000,
        "fiber csd wakeup p50 {} ns above the 1 us acceptance ceiling",
        wakeup.fiber
    );
    let tsm = rows.iter().find(|r| r.kind == "tsm_roundtrip").unwrap();
    assert!(
        tsm.speedup() >= 5.0,
        "tSM round-trip speedup {:.1}x below the 5x acceptance floor",
        tsm.speedup()
    );

    // Regression gate against the checked-in baseline (fresh fiber
    // wakeup p50 vs baseline, 25% tolerance).
    let mut gate_failed = false;
    if let Some(base) = baseline.as_deref().and_then(baseline_fiber_wakeup) {
        let fresh = wakeup.fiber as f64;
        let limit = base * 1.25;
        if fresh > limit {
            eprintln!(
                "GATE: fiber csd wakeup p50 {fresh:.0} ns exceeds baseline {base:.0} ns by >25%"
            );
            gate_failed = true;
        } else {
            println!(
                "gate ok: fiber csd wakeup p50 {fresh:.0} ns <= {limit:.0} ns (baseline {base:.0} ns + 25%)"
            );
        }
    } else {
        println!("no checked-in BENCH_threads.json baseline; gate skipped (first run)");
    }

    std::fs::write("BENCH_threads.json", render_json(&rows)).expect("write BENCH_threads.json");
    println!("\nwrote BENCH_threads.json ({} rows)", rows.len());

    if gate_failed {
        if gate_on {
            eprintln!("fiber wakeup regression gate FAILED (set THREADS_GATE=off to re-baseline)");
            std::process::exit(1);
        } else {
            println!("gate failures ignored: THREADS_GATE=off");
        }
    }
}
