//! Idle-PE work stealing: makespan on manufactured hotspots.
//!
//! Two workloads, each with stealing off and on, on otherwise identical
//! machines:
//!
//! * **taskbench/random**: a seeded random dependency graph run in
//!   relocatable mode with 87% of READY messages skewed onto PE 0
//!   (`RunOpts::steal_to0_pct`) and a sleepy 250 µs grain, at 2/4/8
//!   PEs. Stealing off = the identical skewed protocol on a machine
//!   that never steals; the delta is pure work relocation. Every cell
//!   validates (exactly-once + dependency-order hashes) before its
//!   time counts.
//! * **bnb/knapsack**: the §2.3 prioritized branch-and-bound, nodes
//!   deposited through the load balancer (which marks them
//!   relocatable), comparing `LdbPolicy::Random` against
//!   `LdbPolicy::Measured` with stealing on — informational rows, no
//!   gate (B&B node counts vary with exploration order).
//!
//! The gate: at 8 PEs the taskbench makespan with stealing on must be
//! **≥ 1.5× better** than with stealing off. `STEAL_GATE=off` to
//! re-baseline, `STEAL_SMOKE=1` for the reduced CI run (the gated 8-PE
//! pair only, 1 rep, no JSON rewrite). Full runs write
//! `BENCH_steal.json`.
//!
//! ```sh
//! cargo run --release -p converse-bench --bin steal_bench
//! ```

use converse_core::{csd_exit_scheduler, csd_scheduler, Quiescence};
use converse_ldb::{Ldb, LdbPolicy};
use converse_machine::{run_with, HandlerId, MachineConfig, Message, StealConfig};
use converse_msg::Priority;
use converse_taskbench::exec::{assert_machine_valid, run_graph_raw, RunOpts};
use converse_taskbench::{GraphSpec, Pattern, TaskGraph};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const WIDTH: usize = 64;
const STEPS: usize = 8;
const SEED: u64 = 1996;
const SKEW_PCT: u8 = 87;
const GRAIN_NS: u64 = 250_000;
const GATE_PES: usize = 8;
const GATE_RATIO: f64 = 1.5;

struct Row {
    kind: &'static str,
    workload: &'static str,
    pes: usize,
    steal: bool,
    ldb: &'static str,
    tasks: usize,
    elapsed_ns: u64,
}

/// One validated taskbench cell: the skewed relocatable random graph,
/// timed on PE 0 between machine-wide barriers, best of `reps`.
fn taskbench_cell(pes: usize, steal: bool, reps: usize) -> Row {
    let graph = Arc::new(TaskGraph::generate(GraphSpec {
        pattern: Pattern::Random,
        seed: SEED,
        width: WIDTH,
        steps: STEPS,
    }));
    let g = graph.clone();
    let mut cfg = MachineConfig::new(pes).capture_output();
    if steal {
        cfg = cfg.steal(StealConfig::default());
    }
    let report = run_with(cfg, move |pe| {
        let opts = RunOpts {
            grain_ns: GRAIN_NS,
            sleep_grain: true,
            steal: true, // relocatable protocol in BOTH cells; the machine knob differs
            steal_to0_pct: SKEW_PCT,
            payload_bytes: 16,
            ..RunOpts::default()
        };
        let mut best = u64::MAX;
        for _ in 0..reps {
            pe.barrier();
            let t0 = Instant::now();
            let summary = run_graph_raw(pe, &g, &opts);
            let dt = t0.elapsed().as_nanos() as u64;
            assert_machine_valid(pe, &g, &summary, opts.payload_bytes);
            best = best.min(dt);
        }
        if pe.my_pe() == 0 {
            pe.cmi_printf(format!("CELL_NS {best}"));
        }
    });
    Row {
        kind: "taskbench",
        workload: "random-skewed",
        pes,
        steal,
        ldb: "-",
        tasks: graph.num_tasks(),
        elapsed_ns: cell_ns(&report.output),
    }
}

/// The bnb_knapsack example's kernel, parameterized by balancer policy
/// and steal knob; returns elapsed plus nodes expanded.
fn bnb_cell(pes: usize, policy: LdbPolicy, ldb: &'static str, steal: bool) -> Row {
    const ITEMS: [(i64, i64); 12] = [
        (30, 10),
        (20, 9),
        (25, 12),
        (40, 20),
        (50, 25),
        (10, 5),
        (12, 6),
        (22, 11),
        (35, 18),
        (15, 8),
        (45, 24),
        (30, 16),
    ];
    const CAPACITY: i64 = 60;
    fn bound(taken_value: i64, weight: i64, next: usize) -> i64 {
        let mut v = taken_value as f64;
        let mut w = weight;
        for (value, wt) in ITEMS.iter().skip(next) {
            if w + wt <= CAPACITY {
                w += wt;
                v += *value as f64;
            } else {
                let slack = (CAPACITY - w) as f64 / *wt as f64;
                v += *value as f64 * slack;
                break;
            }
        }
        v.ceil() as i64
    }

    // Machine-wide incumbent: the bnb cells are inproc-only, so one
    // shared atomic stands in for the example's incumbent chare group —
    // the bench isolates *scheduling*, not incumbent propagation.
    let best = Arc::new(AtomicI64::new(0));
    let b2 = best.clone();
    let mut cfg = MachineConfig::new(pes).capture_output();
    if steal {
        cfg = cfg.steal(StealConfig::default());
    }
    let report = run_with(cfg, move |pe| {
        let qd = Quiescence::install(pe);
        let ldb = Ldb::install(pe, policy);
        let slot = Arc::new(parking_lot::Mutex::new(None::<HandlerId>));
        let (qd2, best2, s2) = (qd.clone(), b2.clone(), slot.clone());
        // A node message: [next_item u8, value i64, weight i64].
        let expand = pe.register_handler(move |pe, msg| {
            let p = msg.payload();
            let next = p[0] as usize;
            let value = i64::from_le_bytes(p[1..9].try_into().unwrap());
            let weight = i64::from_le_bytes(p[9..17].try_into().unwrap());
            // A sleepy per-node grain so PEs overlap even when the host
            // has fewer cores than the machine has PEs.
            std::thread::sleep(std::time::Duration::from_micros(100));
            best2.fetch_max(value, Ordering::SeqCst);
            let incumbent = best2.load(Ordering::SeqCst);
            if next < ITEMS.len() && bound(value, weight, next) > incumbent {
                let h = s2.lock().unwrap();
                let ldb = Ldb::get(pe);
                for take in [true, false] {
                    let (v, w) = if take {
                        (value + ITEMS[next].0, weight + ITEMS[next].1)
                    } else {
                        (value, weight)
                    };
                    if w > CAPACITY {
                        continue;
                    }
                    let mut payload = vec![(next + 1) as u8];
                    payload.extend_from_slice(&v.to_le_bytes());
                    payload.extend_from_slice(&w.to_le_bytes());
                    // Best-first: more promising bound = more urgent.
                    let prio = Priority::Int(-(bound(v, w, next + 1) as i32));
                    qd2.msg_created(1);
                    ldb.deposit(pe, Message::with_priority(h, &prio, &payload));
                }
            }
            qd2.msg_processed(1);
        });
        let done = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        *slot.lock() = Some(expand);
        pe.barrier();
        let t0 = Instant::now();
        if pe.my_pe() == 0 {
            let mut payload = vec![0u8];
            payload.extend_from_slice(&0i64.to_le_bytes());
            payload.extend_from_slice(&0i64.to_le_bytes());
            qd.msg_created(1);
            ldb.deposit(pe, Message::new(expand, &payload));
            qd.start(pe, Message::new(done, b""));
            csd_scheduler(pe, -1);
            pe.sync_broadcast(&Message::new(done, b""));
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
        if pe.my_pe() == 0 {
            let dt = t0.elapsed().as_nanos() as u64;
            pe.cmi_printf(format!("CELL_NS {dt}"));
        }
    });
    assert_eq!(
        best.load(Ordering::SeqCst),
        132,
        "B&B must find the optimum"
    );
    Row {
        kind: "bnb",
        workload: "knapsack",
        pes,
        steal,
        ldb,
        tasks: 0,
        elapsed_ns: cell_ns(&report.output),
    }
}

fn cell_ns(output: &[String]) -> u64 {
    output
        .iter()
        .find_map(|l| l.strip_prefix("CELL_NS "))
        .expect("CELL_NS line in captured output")
        .trim()
        .parse()
        .expect("numeric CELL_NS")
}

fn print_row(quiet: bool, r: &Row) {
    if !quiet {
        println!(
            "{:>10} {:>14} {:>3} {:>5} {:>9} {:>6} {:>12} {:>10.1}",
            r.kind,
            r.workload,
            r.pes,
            if r.steal { "on" } else { "off" },
            r.ldb,
            r.tasks,
            r.elapsed_ns,
            r.elapsed_ns as f64 / 1e6,
        );
    }
}

fn main() {
    let quiet = converse_machine::in_socket_worker();
    let gate_on = std::env::var("STEAL_GATE")
        .map(|v| v != "off")
        .unwrap_or(true);
    let smoke = std::env::var("STEAL_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let reps = if smoke { 1 } else { 3 };

    if !quiet {
        println!(
            "work stealing makespan: random {WIDTH}x{STEPS} seed {SEED}, skew {SKEW_PCT}% → PE 0, \
             grain {GRAIN_NS} ns (sleep){}\n",
            if smoke { " (smoke subset)" } else { "" }
        );
        println!(
            "{:>10} {:>14} {:>3} {:>5} {:>9} {:>6} {:>12} {:>10}",
            "kind", "workload", "pes", "steal", "ldb", "tasks", "elapsed_ns", "ms"
        );
    }

    let mut rows: Vec<Row> = Vec::new();
    let pe_counts: &[usize] = if smoke { &[GATE_PES] } else { &[2, 4, 8] };
    for &pes in pe_counts {
        for steal in [false, true] {
            let r = taskbench_cell(pes, steal, reps);
            print_row(quiet, &r);
            rows.push(r);
        }
    }

    if !smoke {
        for (policy, label, steal) in [
            (LdbPolicy::Random { seed: 17 }, "random", false),
            (LdbPolicy::Random { seed: 17 }, "random", true),
            (LdbPolicy::Measured, "measured", true),
        ] {
            let r = bnb_cell(4, policy, label, steal);
            print_row(quiet, &r);
            rows.push(r);
        }
    }

    // The gate: stealing must be a real makespan win on the hotspot.
    let pick = |pes: usize, steal: bool| {
        rows.iter()
            .find(|r| r.kind == "taskbench" && r.pes == pes && r.steal == steal)
            .map(|r| r.elapsed_ns as f64)
    };
    let mut gate_failed = false;
    if let (Some(off), Some(on)) = (pick(GATE_PES, false), pick(GATE_PES, true)) {
        let ratio = off / on;
        if !quiet {
            println!(
                "\nmakespan at {GATE_PES} PEs: stealing off {:.1} ms, on {:.1} ms → {ratio:.2}x \
                 (gate: ≥ {GATE_RATIO}x)",
                off / 1e6,
                on / 1e6
            );
        }
        if ratio < GATE_RATIO {
            eprintln!(
                "GATE: stealing bought only {ratio:.2}x at {GATE_PES} PEs (need ≥ {GATE_RATIO}x)"
            );
            gate_failed = true;
        }
    }

    if !smoke {
        std::fs::write("BENCH_steal.json", render_json(&rows)).expect("write BENCH_steal.json");
        if !quiet {
            println!("wrote BENCH_steal.json ({} rows)", rows.len());
        }
    }

    if gate_failed {
        if gate_on {
            eprintln!("steal_bench gate FAILED (set STEAL_GATE=off to re-baseline)");
            std::process::exit(1);
        } else if !quiet {
            println!("gate failures ignored: STEAL_GATE=off");
        }
    }
}

/// Hand-rolled JSON — the workspace is offline, so no serde.
fn render_json(rows: &[Row]) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"steal\",\n  \"shape\": {{\"width\": {WIDTH}, \"steps\": {STEPS}, \"seed\": {SEED}, \"skew_pct\": {SKEW_PCT}, \"grain_ns\": {GRAIN_NS}}},\n  \"results\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kind\": \"{}\", \"workload\": \"{}\", \"pes\": {}, \"steal\": {}, \"ldb\": \"{}\", \"tasks\": {}, \"elapsed_ns\": {}}}{}\n",
            r.kind,
            r.workload,
            r.pes,
            r.steal,
            r.ldb,
            r.tasks,
            r.elapsed_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
