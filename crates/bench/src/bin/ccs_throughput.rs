//! CCS load generator: external request throughput and latency against
//! a running machine, swept over payload size and PE count.
//!
//! Two passes per configuration, both over real TCP:
//!
//! * **latency** — one closed-loop client (a single request in flight);
//!   every round trip is timed individually, yielding honest p50/p99.
//! * **throughput** — several clients, each pipelining a window of
//!   requests; total completed requests over wall-clock gives req/s.
//!
//! Results are printed as a table and written to `BENCH_ccs.json`.
//!
//! ```sh
//! cargo run --release -p converse-bench --bin ccs_throughput
//! ```

use converse_bench::ccs_load::{run_config, CcsBenchConfig, CcsBenchResult};

fn main() {
    println!("CCS front-end load generation (real TCP, loopback)\n");

    let pe_counts = [1usize, 2, 4];
    let payloads = [16usize, 256, 4096, 65536];

    let mut results: Vec<CcsBenchResult> = Vec::new();
    println!(
        "{:>4} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "PEs", "bytes", "lat reqs", "req/s", "p50 (µs)", "p99 (µs)"
    );
    for &pes in &pe_counts {
        for &payload in &payloads {
            let cfg = CcsBenchConfig {
                pes,
                payload,
                latency_reqs: 400,
                throughput_clients: 4,
                reqs_per_client: if payload >= 65536 { 250 } else { 1000 },
                window: 32,
            };
            let r = run_config(&cfg);
            println!(
                "{:>4} {:>8} {:>10} {:>12.0} {:>10.1} {:>10.1}",
                r.pes, r.payload, cfg.latency_reqs, r.reqs_per_sec, r.p50_us, r.p99_us
            );
            results.push(r);
        }
    }

    let json = render_json(&results);
    std::fs::write("BENCH_ccs.json", &json).expect("write BENCH_ccs.json");
    println!("\nwrote BENCH_ccs.json ({} configurations)", results.len());
}

/// Hand-rolled JSON — the workspace is offline, so no serde.
fn render_json(results: &[CcsBenchResult]) -> String {
    let mut s = String::from("{\n  \"bench\": \"ccs_throughput\",\n  \"unit\": {\"reqs_per_sec\": \"requests/second\", \"latency\": \"microseconds\"},\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pes\": {}, \"payload_bytes\": {}, \"reqs_per_sec\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"throughput_reqs\": {}}}{}\n",
            r.pes,
            r.payload,
            r.reqs_per_sec,
            r.p50_us,
            r.p99_us,
            r.throughput_reqs,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
