//! CCS request round trip: external client → TCP → gateway → scheduler
//! → handler → reply sink → TCP → client, closed loop. The per-request
//! cost external traffic pays over a native message, swept over payload
//! size and PE count (on multi-PE machines requests rotate across PEs).

use converse_bench::ccs_load::echo_round_trips;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ccs_roundtrip");
    g.sample_size(10);
    for &payload in &[16usize, 1024, 65536] {
        g.throughput(Throughput::Bytes(payload as u64));
        for &pes in &[1usize, 4] {
            g.bench_function(BenchmarkId::new(format!("{pes}pe"), payload), |b| {
                b.iter_custom(|iters| echo_round_trips(pes, payload, iters));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
