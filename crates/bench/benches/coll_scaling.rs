//! EMI global-operation scaling: barrier and allreduce latency against
//! machine size. The spanning tree gives O(log P) depth; on this
//! substrate each tree hop costs an OS-thread hand-off (~µs), so the
//! curve is the substrate's, but its *shape* — logarithmic, not linear —
//! is the property the EMI's tree structure buys (paper §3.1.3:
//! "spanning-tree based operations").

use converse_core::run;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Time `rounds` barriers on an `n`-PE machine (ns per barrier).
fn barrier_ns(n: usize, rounds: u64) -> f64 {
    let total = Arc::new(AtomicU64::new(0));
    let t2 = total.clone();
    run(n, move |pe| {
        pe.barrier(); // warm-up and alignment
        let t0 = Instant::now();
        for _ in 0..rounds {
            pe.barrier();
        }
        if pe.my_pe() == 0 {
            t2.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
        }
    });
    total.load(Ordering::SeqCst) as f64 / rounds as f64
}

/// Time `rounds` i64-sum allreduces on an `n`-PE machine (ns each).
fn allreduce_ns(n: usize, rounds: u64) -> f64 {
    let total = Arc::new(AtomicU64::new(0));
    let t2 = total.clone();
    run(n, move |pe| {
        let sum = pe.register_combiner(|a, b| {
            let x = i64::from_le_bytes(a.try_into().unwrap());
            let y = i64::from_le_bytes(b.try_into().unwrap());
            (x + y).to_le_bytes().to_vec()
        });
        pe.barrier();
        let t0 = Instant::now();
        for r in 0..rounds {
            let out = pe.allreduce_bytes((r as i64).to_le_bytes().to_vec(), sum);
            std::hint::black_box(out);
        }
        if pe.my_pe() == 0 {
            t2.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
        }
    });
    total.load(Ordering::SeqCst) as f64 / rounds as f64
}

fn main() {
    println!("\nCollective latency vs machine size (measured, µs):");
    println!("{:>6} {:>12} {:>14}", "PEs", "barrier", "allreduce");
    for &n in &[2usize, 4, 8, 16] {
        println!(
            "{:>6} {:>12.1} {:>14.1}",
            n,
            barrier_ns(n, 200) / 1000.0,
            allreduce_ns(n, 200) / 1000.0
        );
    }
    println!("(tree depth ⌈log2 P⌉ hops; each hop is an OS-thread hand-off here)");
}
