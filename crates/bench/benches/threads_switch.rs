//! Cost of the thread object's primitives (paper §3.2.2). The 1996
//! implementation context-switched with `setjmp`/`longjmp` (~100 ns
//! class); this reproduction hands off between OS threads (~µs class).
//! EXPERIMENTS.md reports the constant; what matters architecturally is
//! that the *shape* of thread-based programs is unchanged — suspension
//! costs a constant, independent of thread count.

use converse_bench::run_timed;
use converse_threads::{cth_awaken, cth_create, cth_resume, cth_yield};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One full yield cycle between two threads = two context switches.
fn yield_pair_ns(iters: u64) -> f64 {
    let d = run_timed(1, move |pe| {
        let spins = Arc::new(AtomicU64::new(0));
        let mk = |spins: Arc<AtomicU64>| {
            move |pe: &converse_core::Pe| loop {
                if spins.fetch_add(1, Ordering::Relaxed) >= 2 * iters {
                    break;
                }
                cth_yield(pe);
            }
        };
        let ta = cth_create(pe, mk(spins.clone()));
        let tb = cth_create(pe, mk(spins.clone()));
        cth_awaken(pe, &tb);
        let t0 = Instant::now();
        cth_resume(pe, &ta);
        Some(t0.elapsed())
    });
    d.as_nanos() as f64 / (2.0 * iters as f64)
}

/// Create + first resume + exit of a fresh thread (includes OS spawn).
fn create_run_exit_ns(iters: u64) -> f64 {
    let d = run_timed(1, move |pe| {
        let t0 = Instant::now();
        for _ in 0..iters {
            let t = cth_create(pe, |_pe| {});
            cth_resume(pe, &t);
        }
        Some(t0.elapsed())
    });
    d.as_nanos() as f64 / iters as f64
}

/// Suspend-to-scheduler and resume-by-message through the Csd queue:
/// the integrated path that tSM receives take.
fn scheduled_wakeup_ns(iters: u64) -> f64 {
    let d = run_timed(1, move |pe| {
        let rt = converse_threads::CthRuntime::get(pe);
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        rt.spawn_scheduled(pe, move |pe| {
            for _ in 0..iters {
                cth_yield(pe); // awaken-through-queue + suspend
            }
            d2.store(1, Ordering::SeqCst);
            converse_core::csd_exit_scheduler(pe);
        });
        let t0 = Instant::now();
        converse_core::csd_scheduler(pe, -1);
        assert_eq!(done.load(Ordering::SeqCst), 1);
        Some(t0.elapsed())
    });
    d.as_nanos() as f64 / iters as f64
}

/// Csd-scheduled wakeup through the FIBER runtime (the fast path): the
/// same tSM-style pattern as `scheduled_wakeup_ns`, on user-level
/// stacks.
fn fiber_rt_wakeup_ns(iters: u64) -> f64 {
    let d = run_timed(1, move |pe| {
        let rt = converse_threads::fibers::FiberRt::get(pe);
        rt.spawn_scheduled(pe, move |pe| {
            let rt = converse_threads::fibers::FiberRt::get(pe);
            for _ in 0..iters {
                rt.yield_now(pe);
            }
            converse_core::csd_exit_scheduler(pe);
        });
        let t0 = Instant::now();
        converse_core::csd_scheduler(pe, -1);
        Some(t0.elapsed())
    });
    d.as_nanos() as f64 / iters as f64
}

/// The converse-fiber prototype: a true user-level (setjmp/longjmp
/// class) switch, for comparison with the hand-off substitute.
fn fiber_switch_ns(iters: u64) -> f64 {
    let mut f = converse_fiber::Fiber::new(64 * 1024, move |h| {
        for _ in 0..iters {
            h.yield_now();
        }
    });
    let t0 = Instant::now();
    while f.resume() {}
    // Each resume is two switches (in and out).
    t0.elapsed().as_nanos() as f64 / (2.0 * iters as f64)
}

fn main() {
    println!("\nThread-object constants (measured):");
    println!(
        "  context switch (yield pair)    : {:>8.0} ns",
        yield_pair_ns(10_000)
    );
    println!(
        "  create + run + exit            : {:>8.0} ns",
        create_run_exit_ns(1_000)
    );
    println!(
        "  csd-scheduled wakeup (tSM path): {:>8.0} ns",
        scheduled_wakeup_ns(10_000)
    );
    println!(
        "  same wakeup on the fiber runtime: {:>7.0} ns",
        fiber_rt_wakeup_ns(200_000)
    );
    println!(
        "  fiber switch (converse-fiber)  : {:>8.1} ns  ← the 1996 mechanism's class",
        fiber_switch_ns(2_000_000)
    );
    println!("  (paper's setjmp/longjmp switch was ~100 ns-class on 1995 CPUs; the");
    println!("   hand-off substitution trades the constant, not the shape — and the");
    println!("   fiber prototype shows the native constant is reachable in Rust)");
}
