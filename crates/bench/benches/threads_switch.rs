//! Cost of the thread object's primitives (paper §3.2.2), per backend.
//! The 1996 implementation context-switched with `setjmp`/`longjmp`
//! (~100 ns class); the default `fiber` backend reproduces that class
//! (~20 ns register switch), while the portable `handoff` fallback pays
//! an OS hand-off (~µs class). EXPERIMENTS.md reports the constants;
//! what matters architecturally is that the *shape* of thread-based
//! programs is unchanged — suspension costs a constant, independent of
//! thread count.

use converse_bench::run_timed_with;
use converse_core::MachineConfig;
use converse_threads::{cth_awaken, cth_create, cth_resume, cth_yield, CthBackend, CthRuntime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn cfg(backend: CthBackend) -> MachineConfig {
    MachineConfig::new(1).thread_backend(backend.to_config())
}

/// One full yield cycle between two threads = two context switches
/// (direct handoffs: the ready pool is never empty mid-cycle).
fn yield_pair_ns(backend: CthBackend, iters: u64) -> f64 {
    let d = run_timed_with(cfg(backend), move |pe| {
        let spins = Arc::new(AtomicU64::new(0));
        let mk = |spins: Arc<AtomicU64>| {
            move |pe: &converse_core::Pe| loop {
                if spins.fetch_add(1, Ordering::Relaxed) >= 2 * iters {
                    break;
                }
                cth_yield(pe);
            }
        };
        let ta = cth_create(pe, mk(spins.clone()));
        let tb = cth_create(pe, mk(spins.clone()));
        cth_awaken(pe, &tb);
        let t0 = Instant::now();
        cth_resume(pe, &ta);
        Some(t0.elapsed())
    });
    d.as_nanos() as f64 / (2.0 * iters as f64)
}

/// Create + first resume + exit of a fresh thread (fiber backend: a
/// pooled-stack fiber; handoff backend: an OS thread spawn).
fn create_run_exit_ns(backend: CthBackend, iters: u64) -> f64 {
    let d = run_timed_with(cfg(backend), move |pe| {
        let t0 = Instant::now();
        for _ in 0..iters {
            let t = cth_create(pe, |_pe| {});
            cth_resume(pe, &t);
        }
        Some(t0.elapsed())
    });
    d.as_nanos() as f64 / iters as f64
}

/// Suspend-to-scheduler and resume-by-message through the Csd queue:
/// the integrated path that tSM receives take.
fn scheduled_wakeup_ns(backend: CthBackend, iters: u64) -> f64 {
    let d = run_timed_with(cfg(backend), move |pe| {
        let rt = CthRuntime::get(pe);
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        rt.spawn_scheduled(pe, move |pe| {
            for _ in 0..iters {
                cth_yield(pe); // awaken-through-queue + suspend
            }
            d2.store(1, Ordering::SeqCst);
            converse_core::csd_exit_scheduler(pe);
        });
        let t0 = Instant::now();
        converse_core::csd_scheduler(pe, -1);
        assert_eq!(done.load(Ordering::SeqCst), 1);
        Some(t0.elapsed())
    });
    d.as_nanos() as f64 / iters as f64
}

/// The raw converse-fiber switch: a true user-level (setjmp/longjmp
/// class) switch with nothing else on the path — the floor under the
/// fiber backend's numbers.
fn fiber_switch_ns(iters: u64) -> f64 {
    let mut f = converse_fiber::Fiber::new(64 * 1024, move |h| {
        for _ in 0..iters {
            h.yield_now();
        }
    });
    let t0 = Instant::now();
    while f.resume() {}
    // Each resume is two switches (in and out).
    t0.elapsed().as_nanos() as f64 / (2.0 * iters as f64)
}

fn main() {
    println!("\nThread-object constants (measured, per backend):");
    for &backend in CthBackend::available() {
        // The handoff backend's constants are 2–3 orders slower; keep
        // its iteration budget proportionate.
        let scale = match backend {
            CthBackend::Fiber => 1,
            CthBackend::Handoff => 20,
        };
        println!("  [{}]", backend.label());
        println!(
            "    context switch (yield pair)    : {:>8.0} ns",
            yield_pair_ns(backend, 10_000 / scale)
        );
        println!(
            "    create + run + exit            : {:>8.0} ns",
            create_run_exit_ns(backend, 2_000 / scale)
        );
        println!(
            "    csd-scheduled wakeup (tSM path): {:>8.0} ns",
            scheduled_wakeup_ns(backend, 100_000 / scale)
        );
    }
    println!(
        "  fiber switch (converse-fiber)    : {:>8.1} ns  ← the 1996 mechanism's class",
        fiber_switch_ns(2_000_000)
    );
    println!("  (paper's setjmp/longjmp switch was ~100 ns-class on 1995 CPUs; the");
    println!("   fiber backend is the default where supported, the OS hand-off is");
    println!("   the portable fallback — same API, same semantics, different constant)");
}
