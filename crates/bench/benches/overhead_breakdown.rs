//! Claim C1 (paper §3, guideline 1): Converse may add only "a few tens
//! of instructions over and above the cost of such operations in a
//! native implementation". This bench measures the layered costs of one
//! message on this substrate:
//!
//! * `raw`       — bytes through the interconnect mailbox (native floor)
//! * `converse`  — + header, handler table, dispatch (`CmiSyncSend` path)
//! * `sched`     — + scheduler-queue enqueue/dequeue (Figure-6 series)
//! * `handoff`   — true 2-PE round trip with OS-thread wakeups, for
//!   scale (this cost is the substrate's, not Converse's)

use converse_bench::{converse_loopback_ns, raw_loopback_ns, round_trip_2pe_ns};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead_breakdown");
    g.sample_size(20);
    for &size in &[16usize, 256, 4096] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("raw", size), &size, |b, &s| {
            b.iter_custom(|iters| {
                let it = iters.max(100);
                Duration::from_nanos((raw_loopback_ns(s, it) * it as f64) as u64)
            });
        });
        g.bench_with_input(BenchmarkId::new("converse", size), &size, |b, &s| {
            b.iter_custom(|iters| {
                let it = iters.max(100);
                Duration::from_nanos((converse_loopback_ns(s, it, false) * it as f64) as u64)
            });
        });
        g.bench_with_input(BenchmarkId::new("sched", size), &size, |b, &s| {
            b.iter_custom(|iters| {
                let it = iters.max(100);
                Duration::from_nanos((converse_loopback_ns(s, it, true) * it as f64) as u64)
            });
        });
    }
    g.finish();

    // Print the C1/C2 summary table.
    println!("\nClaim C1/C2 breakdown (ns per one-way message, measured):");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>16} {:>14}",
        "bytes", "raw", "converse", "sched", "converse-raw", "sched-converse"
    );
    for &size in &[16usize, 256, 4096, 65536] {
        let it = converse_bench::scaled_iters(20_000, size);
        let raw = raw_loopback_ns(size, it);
        let conv = converse_loopback_ns(size, it, false);
        let sched = converse_loopback_ns(size, it, true);
        println!(
            "{:>8} {:>10.0} {:>12.0} {:>10.0} {:>16.0} {:>14.0}",
            size,
            raw,
            conv,
            sched,
            conv - raw,
            sched - conv
        );
    }
    let handoff = round_trip_2pe_ns(16, 2_000, false);
    println!("2-PE hand-off one-way (16 B): {handoff:.0} ns (substrate thread wakeup, for scale)");
}

criterion_group!(benches, bench);
criterion_main!(benches);
