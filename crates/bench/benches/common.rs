//! Shared driver for the five figure benches (Figs 4–8, paper §5.1).
//!
//! Each figure bench (a) criterion-measures the live Converse software
//! path at representative sizes, and (b) regenerates the figure's
//! series — modeled wire time plus measured software time — printing the
//! same size-vs-time rows the paper plots, then asserts the shape
//! claims (Converse ≥ native by a small additive delta; scheduling
//! costs extra only noticeably for short messages).

use converse_bench::{
    converse_loopback_ns, figure_series, measure_sw, print_figure, shape_check, standard_sizes,
    NetModel,
};
use criterion::{BenchmarkId, Criterion, Throughput};
use std::time::Duration;

/// Criterion-measure the software path and regenerate one figure.
pub fn run_figure_bench(c: &mut Criterion, figure: &str, model: NetModel, with_sched: bool) {
    let mut g = c.benchmark_group(format!("{figure}/software_path"));
    g.sample_size(20);
    for &size in &[16usize, 1024, 65536] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("converse", size), &size, |b, &s| {
            b.iter_custom(|iters| {
                let it = iters.max(100);
                Duration::from_nanos((converse_loopback_ns(s, it, false) * it as f64) as u64)
            });
        });
        if with_sched {
            g.bench_with_input(BenchmarkId::new("converse_sched", size), &size, |b, &s| {
                b.iter_custom(|iters| {
                    let it = iters.max(100);
                    Duration::from_nanos((converse_loopback_ns(s, it, true) * it as f64) as u64)
                });
            });
        }
    }
    g.finish();

    let sw = measure_sw(&standard_sizes(), 20_000);
    let rows = figure_series(&model, &sw);
    print_figure(
        &format!("{figure}: message passing performance on {}", model.name),
        &rows,
        with_sched,
    );
    let bad = shape_check(&model, &rows);
    assert!(bad.is_empty(), "shape violations: {bad:?}");
}
