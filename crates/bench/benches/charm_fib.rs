//! End-to-end message-driven-object throughput: the classic chare
//! Fibonacci tree under each seed load-balancing strategy. Measures
//! chares-per-second through the full stack (seed deposit → balancer →
//! scheduler → constructor → entry methods → quiescence), the workload
//! class the paper's §3.3.1 strategies exist to serve.

use converse_charm::{Chare, ChareId, Charm};
use converse_core::{csd_scheduler, Message, Pe};
use converse_ldb::LdbPolicy;
use converse_msg::pack::{Packer, Unpacker};
use converse_msg::Priority;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Fib {
    pending: u8,
    acc: u64,
    parent: Option<ChareId>,
    root_report: Option<u32>,
}

impl Chare for Fib {
    fn new(pe: &Pe, self_id: ChareId, payload: &[u8]) -> Self {
        let mut u = Unpacker::new(payload);
        let n = u.u64().expect("n");
        let kind = u.u32().expect("kind");
        let has_parent = u.u8().expect("flag") == 1;
        let (parent, root_report) = if has_parent {
            (ChareId::decode(u.raw(16).expect("id")), None)
        } else {
            (None, Some(u.u32().expect("report")))
        };
        let mut me = Fib {
            pending: 0,
            acc: 0,
            parent,
            root_report,
        };
        if n < 2 {
            me.finish(pe, n);
        } else {
            let charm = Charm::get(pe);
            for k in [n - 1, n - 2] {
                let child = Packer::new()
                    .u64(k)
                    .u32(kind)
                    .u8(1)
                    .raw(&self_id.encode())
                    .finish();
                charm.create(pe, converse_charm::ChareKind(kind), &child, Priority::None);
                me.pending += 1;
            }
        }
        me
    }

    fn entry(&mut self, pe: &Pe, _id: ChareId, _ep: u32, payload: &[u8]) {
        self.acc += u64::from_le_bytes(payload.try_into().expect("value"));
        self.pending -= 1;
        if self.pending == 0 {
            let v = self.acc;
            self.finish(pe, v);
        }
    }
}

impl Fib {
    fn finish(&mut self, pe: &Pe, value: u64) {
        let charm = Charm::get(pe);
        match (self.parent, self.root_report) {
            (Some(p), _) => charm.send(pe, p, 0, &value.to_le_bytes(), Priority::None),
            (None, Some(h)) => pe.sync_send_and_free(
                0,
                Message::new(converse_core::HandlerId(h), &value.to_le_bytes()),
            ),
            _ => unreachable!(),
        }
    }
}

/// Run fib(n) on 4 PEs under `policy`; returns (elapsed, chares built).
fn fib_run(n: u64, policy: LdbPolicy) -> (Duration, u64) {
    let elapsed = Arc::new(AtomicU64::new(0));
    let chares = Arc::new(AtomicU64::new(0));
    let (e2, c2) = (elapsed.clone(), chares.clone());
    converse_core::run(4, move |pe| {
        let charm = Charm::install(pe, policy);
        let kind = charm.register::<Fib>();
        let report = pe.register_handler(move |pe, msg| {
            let v = u64::from_le_bytes(msg.payload().try_into().expect("result"));
            std::hint::black_box(v);
            Charm::get(pe).exit_all(pe);
        });
        pe.barrier();
        let t0 = Instant::now();
        if pe.my_pe() == 0 {
            let payload = Packer::new()
                .u64(n)
                .u32(kind.0)
                .u8(0)
                .u32(report.0)
                .finish();
            charm.create(pe, kind, &payload, Priority::None);
        }
        csd_scheduler(pe, -1);
        if pe.my_pe() == 0 {
            e2.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
        }
        c2.fetch_add(
            charm.chares_created.load(Ordering::Relaxed),
            Ordering::SeqCst,
        );
        pe.barrier();
    });
    (
        Duration::from_nanos(elapsed.load(Ordering::SeqCst)),
        chares.load(Ordering::SeqCst),
    )
}

fn main() {
    let policies: [(&str, LdbPolicy); 3] = [
        ("direct", LdbPolicy::Direct),
        ("random", LdbPolicy::Random { seed: 2 }),
        (
            "spray",
            LdbPolicy::Spray {
                threshold: 8,
                max_hops: 3,
            },
        ),
    ];
    println!("\nfib(16) wall time on 4 PEs (mean of 5):");
    for (name, policy) in policies {
        let mut total = Duration::ZERO;
        for _ in 0..5 {
            total += fib_run(16, policy).0;
        }
        println!("{:>8} {:>12.2?}", name, total / 5);
    }

    println!("\nChare throughput, fib(18) on 4 PEs:");
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "policy", "chares", "time", "chares/s"
    );
    for (name, policy) in policies {
        let (t, n) = fib_run(18, policy);
        println!(
            "{:>8} {:>12} {:>12.2?} {:>14.0}",
            name,
            n,
            t,
            n as f64 / t.as_secs_f64()
        );
    }
}
