//! Figure 4 (paper §5.1): one-way message time vs size on the
//! atm_hp wire model, Converse vs native.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::run_figure_bench(c, "fig4_atm_hp", converse_bench::NetModel::atm_hp(), false);
}

criterion_group!(benches, bench);
criterion_main!(benches);
