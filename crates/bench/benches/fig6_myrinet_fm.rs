//! Figure 6 (paper §5.1): one-way message time vs size on the
//! myrinet_fm wire model, Converse vs native, plus the scheduler-queue series.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::run_figure_bench(
        c,
        "fig6_myrinet_fm",
        converse_bench::NetModel::myrinet_fm(),
        true,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
