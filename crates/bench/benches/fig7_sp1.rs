//! Figure 7 (paper §5.1): one-way message time vs size on the
//! sp1 wire model, Converse vs native.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::run_figure_bench(c, "fig7_sp1", converse_bench::NetModel::sp1(), false);
}

criterion_group!(benches, bench);
criterion_main!(benches);
