//! Ablation of the **need-based cost** principle (paper §3, guideline 2)
//! at the queue level: what a message pays to transit each queueing
//! strategy. A language that never prioritizes should pay the `fifo`
//! price, not the `bitvec` price.

use converse_msg::{BitVecPrio, HandlerId, Message, Priority};
use converse_queue::{CsdQueue, FifoQueue, LifoQueue, QueueingMode, SchedulingQueue};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BATCH: usize = 1024;

fn transit(q: &mut dyn SchedulingQueue, msgs: &[Message], mode: QueueingMode) {
    for m in msgs {
        q.enqueue(m.clone(), mode);
    }
    while let Some(m) = q.dequeue() {
        std::hint::black_box(m.len());
    }
}

fn bench(c: &mut Criterion) {
    let plain: Vec<Message> = (0..BATCH)
        .map(|_| Message::new(HandlerId(0), &[0; 16]))
        .collect();
    let int_prio: Vec<Message> = (0..BATCH)
        .map(|i| {
            Message::with_priority(
                HandlerId(0),
                &Priority::Int((i as i32 * 2654435761u32 as i32).wrapping_mul(97)),
                &[0; 16],
            )
        })
        .collect();
    let bv_prio: Vec<Message> = (0..BATCH)
        .map(|i| {
            let mut p = BitVecPrio::root();
            for level in 0..10 {
                p = p.child((i >> level) & 1 == 1);
            }
            Message::with_priority(HandlerId(0), &Priority::BitVec(p), &[0; 16])
        })
        .collect();

    let mut g = c.benchmark_group("queue_strategies");
    g.throughput(Throughput::Elements(BATCH as u64));

    g.bench_function(BenchmarkId::new("fifo_queue", "plain"), |b| {
        b.iter(|| transit(&mut FifoQueue::new(), &plain, QueueingMode::Fifo))
    });
    g.bench_function(BenchmarkId::new("lifo_queue", "plain"), |b| {
        b.iter(|| transit(&mut LifoQueue::new(), &plain, QueueingMode::Fifo))
    });
    g.bench_function(BenchmarkId::new("csd_queue", "zero_lane"), |b| {
        b.iter(|| transit(&mut CsdQueue::new(), &plain, QueueingMode::Fifo))
    });
    g.bench_function(BenchmarkId::new("csd_queue", "int_prio"), |b| {
        b.iter(|| transit(&mut CsdQueue::new(), &int_prio, QueueingMode::PrioFifo))
    });
    g.bench_function(BenchmarkId::new("csd_queue", "bitvec_prio"), |b| {
        b.iter(|| transit(&mut CsdQueue::new(), &bv_prio, QueueingMode::PrioFifo))
    });
    g.bench_function(BenchmarkId::new("csd_queue", "int_prio_lifo"), |b| {
        b.iter(|| transit(&mut CsdQueue::new(), &int_prio, QueueingMode::PrioLifo))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
