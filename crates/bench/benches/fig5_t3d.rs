//! Figure 5 (paper §5.1): one-way message time vs size on the
//! t3d wire model, Converse vs native.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::run_figure_bench(c, "fig5_t3d", converse_bench::NetModel::t3d(), false);
}

criterion_group!(benches, bench);
criterion_main!(benches);
