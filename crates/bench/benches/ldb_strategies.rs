//! Load-balancer ablation (paper §3.3.1: "there are a large number of
//! load balancing modules supported in Converse. Each one is often
//! useful in a different situation"): wall-clock to drain an irregular
//! seed workload (all seeds born on PE 0, uneven grain sizes) under each
//! strategy on a 4-PE machine, plus the resulting placement imbalance.

use converse_core::{csd_exit_scheduler, csd_scheduler, Message, Quiescence};
use converse_ldb::{Ldb, LdbPolicy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEEDS: usize = 256;
const PES: usize = 4;

/// Run the workload; returns (elapsed, per-PE execution counts).
fn drain_seeds(policy: LdbPolicy) -> (Duration, Vec<u64>) {
    let counts: Arc<Vec<AtomicU64>> = Arc::new((0..PES).map(|_| AtomicU64::new(0)).collect());
    let c2 = counts.clone();
    let elapsed = Arc::new(AtomicU64::new(0));
    let e2 = elapsed.clone();
    converse_core::run(PES, move |pe| {
        let qd = Quiescence::install(pe);
        let ldb = Ldb::install(pe, policy);
        let c = c2.clone();
        let qd2 = qd.clone();
        let work = pe.register_handler(move |pe, msg| {
            // Uneven grains: busy-work proportional to the seed's index.
            let grain = msg.payload()[0] as u64;
            let mut acc = 0u64;
            for i in 0..grain * 500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            c[pe.my_pe()].fetch_add(1, Ordering::Relaxed);
            qd2.msg_processed(1);
        });
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            let t0 = Instant::now();
            for i in 0..SEEDS {
                qd.msg_created(1);
                ldb.deposit(pe, Message::new(work, &[(i % 16) as u8]));
            }
            qd.start(pe, Message::new(stop, b""));
            csd_scheduler(pe, -1);
            e2.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
            pe.sync_broadcast(&Message::new(stop, b""));
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
    (
        Duration::from_nanos(elapsed.load(Ordering::SeqCst)),
        counts.iter().map(|c| c.load(Ordering::SeqCst)).collect(),
    )
}

fn main() {
    let policies: [(&str, LdbPolicy); 5] = [
        ("direct", LdbPolicy::Direct),
        ("random", LdbPolicy::Random { seed: 42 }),
        (
            "spray",
            LdbPolicy::Spray {
                threshold: 4,
                max_hops: 4,
            },
        ),
        ("central", LdbPolicy::Central),
        ("2choice", LdbPolicy::TwoChoices { seed: 42 }),
    ];

    // Wall-clock drain times, averaged over a few runs.
    println!("\nDrain time ({SEEDS} uneven seeds from PE 0 on {PES} PEs, mean of 5):");
    for (name, policy) in policies {
        let mut total = Duration::ZERO;
        for _ in 0..5 {
            total += drain_seeds(policy).0;
        }
        println!("{:>10} {:>12.2?}", name, total / 5);
    }

    println!("\nPlacement quality ({SEEDS} uneven seeds from PE 0 on {PES} PEs):");
    println!("{:>10} {:>24} {:>10}", "policy", "per-PE counts", "max/avg");
    for (name, policy) in policies {
        let (_, counts) = drain_seeds(policy);
        let max = *counts.iter().max().expect("pes") as f64;
        let avg = counts.iter().sum::<u64>() as f64 / PES as f64;
        println!(
            "{:>10} {:>24} {:>10.2}",
            name,
            format!("{counts:?}"),
            max / avg
        );
    }
}
