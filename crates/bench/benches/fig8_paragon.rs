//! Figure 8 (paper §5.1): one-way message time vs size on the
//! paragon wire model, Converse vs native.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::run_figure_bench(
        c,
        "fig8_paragon",
        converse_bench::NetModel::paragon(),
        false,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
