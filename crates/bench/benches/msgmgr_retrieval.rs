//! Cmm ablation (paper §3.2.1 + need-based cost): linear-scan versus
//! hash-indexed message manager, across mailbox occupancy and retrieval
//! pattern. The 1996 Cmm was a list; indexing pays off only when many
//! messages are outstanding and retrieval is exact-tag.

use converse_msgmgr::{IndexedMsgManager, MsgManager, TagMailbox, WILDCARD};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn fill(mm: &mut dyn TagMailbox, n: usize) {
    for i in 0..n {
        mm.put(&[(i % 64) as i32, (i % 7) as i32], vec![0u8; 32]);
    }
}

fn drain_exact(mm: &mut dyn TagMailbox, n: usize) {
    for i in 0..n {
        let got = mm.get(&[(i % 64) as i32, (i % 7) as i32]);
        std::hint::black_box(got.expect("stored message present"));
    }
}

fn drain_wildcard(mm: &mut dyn TagMailbox, n: usize) {
    for _ in 0..n {
        std::hint::black_box(mm.get(&[WILDCARD, WILDCARD]).expect("present"));
    }
}

fn bench(c: &mut Criterion) {
    for &occupancy in &[16usize, 256, 4096] {
        let mut g = c.benchmark_group(format!("msgmgr/occupancy_{occupancy}"));
        g.throughput(Throughput::Elements(occupancy as u64));
        g.bench_function(BenchmarkId::new("scan", "exact"), |b| {
            b.iter(|| {
                let mut mm = MsgManager::new();
                fill(&mut mm, occupancy);
                drain_exact(&mut mm, occupancy);
            })
        });
        g.bench_function(BenchmarkId::new("indexed", "exact"), |b| {
            b.iter(|| {
                let mut mm = IndexedMsgManager::new();
                fill(&mut mm, occupancy);
                drain_exact(&mut mm, occupancy);
            })
        });
        g.bench_function(BenchmarkId::new("scan", "wildcard"), |b| {
            b.iter(|| {
                let mut mm = MsgManager::new();
                fill(&mut mm, occupancy);
                drain_wildcard(&mut mm, occupancy);
            })
        });
        g.bench_function(BenchmarkId::new("indexed", "wildcard"), |b| {
            b.iter(|| {
                let mut mm = IndexedMsgManager::new();
                fill(&mut mm, occupancy);
                drain_wildcard(&mut mm, occupancy);
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
