//! **SM**, the simple messaging layer, with its threaded variant **tSM**
//! and PVM/NX-style facades (paper §1, §3.3, §4).
//!
//! SM is the paper's example of a *no-concurrency* (single-process
//! module) language: tagged sends and a blocking receive built directly
//! on `CmiGetSpecificMsg` plus the Cmm message manager — no scheduler
//! involvement whatsoever, so an SM-only program pays nothing for the
//! scheduler it does not use (§3, "need-based cost").
//!
//! tSM is the paper's §3.2.2 example of composing the **message
//! manager + thread object + scheduler** into a threaded messaging
//! layer: "tSMCreate(): Create a new thread, and schedule it for
//! execution via the converse scheduler. tSMReceive(): block the thread
//! waiting for a particular (tagged) message." A tSM receive that finds
//! no matching message registers the calling thread as a waiter and
//! suspends it; the SM data handler awakens it when a match arrives.
//!
//! The [`pvm`] and [`nx`] modules are thin veneers with the flavour of
//! the original libraries' calls (`pvm_send`/`pvm_recv`, `csend`/
//! `crecv`), choosing the SPM or threaded blocking path automatically
//! depending on whether they are called from a thread object — the
//! "both in SPMD as well as multithreaded mode" support the paper
//! promises for its PVM and NXLib ports.

pub mod mpi;

use converse_machine::{HandlerId, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use converse_msgmgr::{IndexedMsgManager, TagMailbox, WILDCARD};
use converse_threads::{cth_awaken, cth_self, cth_suspend, CthRuntime, Thread};
use parking_lot::Mutex;
use std::sync::Arc;

/// Wildcard for tag or source patterns in receives (PVM's `-1`).
pub const ANY: i32 = WILDCARD;

/// A received SM message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmMsg {
    /// The sender's tag.
    pub tag: i32,
    /// Sending PE.
    pub src: usize,
    /// Payload bytes.
    pub data: Vec<u8>,
}

struct Waiter {
    tag: i32,
    src: i32,
    thread: Thread,
}

/// Per-PE SM runtime: one data handler, a two-tag message manager
/// indexed by (tag, source), and the tSM waiter list.
pub struct Sm {
    data_h: HandlerId,
    mailbox: Mutex<IndexedMsgManager>,
    waiters: Mutex<Vec<Waiter>>,
}

struct SmSlot(Arc<Sm>);

impl Sm {
    /// Install SM on this PE (same registration order machine-wide).
    /// Idempotent per PE.
    pub fn install(pe: &Pe) -> Arc<Sm> {
        if let Some(s) = pe.try_local::<SmSlot>() {
            return s.0.clone();
        }
        let data_h = pe.register_handler(|pe, msg| {
            let sm = Sm::get(pe);
            sm.ingest(pe, &msg);
        });
        let sm = Arc::new(Sm {
            data_h,
            mailbox: Mutex::new(IndexedMsgManager::new()),
            waiters: Mutex::new(Vec::new()),
        });
        pe.local(|| SmSlot(sm.clone()));
        sm
    }

    /// The SM runtime previously installed on this PE.
    pub fn get(pe: &Pe) -> Arc<Sm> {
        pe.try_local::<SmSlot>()
            .unwrap_or_else(|| panic!("PE {}: Sm::install was not called", pe.my_pe()))
            .0
            .clone()
    }

    /// Send `data` with `tag` to `dst` (`SMSend`). Asynchronous: never
    /// blocks the sender.
    pub fn send(&self, pe: &Pe, dst: usize, tag: i32, data: &[u8]) {
        assert_ne!(tag, ANY, "cannot send with the wildcard tag");
        let payload = Packer::new()
            .i32(tag)
            .usize(pe.my_pe())
            .bytes(data)
            .finish();
        pe.sync_send_and_free(dst, Message::new(self.data_h, &payload));
    }

    /// Store an arriving data message and wake the first matching tSM
    /// waiter, if any.
    fn ingest(&self, pe: &Pe, msg: &Message) {
        let parsed = decode(msg);
        self.mailbox
            .lock()
            .put(&[parsed.tag, parsed.src as i32], parsed.data);
        let woken = {
            let mut ws = self.waiters.lock();
            ws.iter()
                .position(|w| {
                    (w.tag == ANY || w.tag == parsed.tag)
                        && (w.src == ANY || w.src == parsed.src as i32)
                })
                .map(|i| ws.remove(i).thread)
        };
        if let Some(t) = woken {
            cth_awaken(pe, &t);
        }
    }

    fn take_match(&self, tag: i32, src: i32) -> Option<SmMsg> {
        let stored = self.mailbox.lock().get(&[tag, src])?;
        Some(SmMsg {
            tag: stored.tags[0],
            src: stored.tags[1] as usize,
            data: stored.data,
        })
    }

    /// Blocking SPM receive (`SMRecv`): waits for a message matching
    /// `tag`/`src` (either may be [`ANY`]). **No other user activity
    /// happens on this PE while blocked** — the §2.1 no-concurrency
    /// discipline; messages for other handlers are buffered, and SM
    /// messages that do not match are retained in the message manager.
    pub fn recv(&self, pe: &Pe, tag: i32, src: i32) -> SmMsg {
        loop {
            if let Some(m) = self.take_match(tag, src) {
                return m;
            }
            let msg = pe.get_specific_msg(self.data_h);
            let parsed = decode(&msg);
            if (tag == ANY || tag == parsed.tag) && (src == ANY || src == parsed.src as i32) {
                return parsed;
            }
            self.ingest(pe, &msg);
        }
    }

    /// Threaded receive (`tSMReceive`): must run inside a thread object;
    /// suspends the thread until a matching message arrives, letting the
    /// scheduler run other work meanwhile (§2.2's implicit control
    /// regime: "when a thread in one module blocks, code from another
    /// module can be executed during that otherwise idle time").
    pub fn trecv(&self, pe: &Pe, tag: i32, src: i32) -> SmMsg {
        loop {
            if let Some(m) = self.take_match(tag, src) {
                return m;
            }
            let me = cth_self(pe).unwrap_or_else(|| {
                panic!(
                    "PE {}: tSM receive outside a thread — use Sm::recv in SPM code",
                    pe.my_pe()
                )
            });
            self.waiters.lock().push(Waiter {
                tag,
                src,
                thread: me,
            });
            cth_suspend(pe);
        }
    }

    /// Receive choosing the right blocking style for the calling
    /// context: threaded inside a thread object, SPM otherwise.
    pub fn recv_auto(&self, pe: &Pe, tag: i32, src: i32) -> SmMsg {
        if cth_self(pe).is_some() {
            self.trecv(pe, tag, src)
        } else {
            self.recv(pe, tag, src)
        }
    }

    /// Size of the earliest matching buffered message (`SMProbe`),
    /// without consuming it. Does not wait.
    pub fn probe(&self, tag: i32, src: i32) -> Option<usize> {
        self.mailbox.lock().probe(&[tag, src]).map(|(len, _)| len)
    }

    /// Buffered (received but unconsumed) SM messages.
    pub fn buffered(&self) -> usize {
        self.mailbox.lock().len()
    }

    /// Spawn a tSM thread scheduled through the Converse scheduler
    /// (`tSMCreate`).
    pub fn tspawn<F>(&self, pe: &Pe, f: F) -> Thread
    where
        F: FnOnce(&Pe) + Send + 'static,
    {
        CthRuntime::get(pe).spawn_scheduled(pe, f)
    }
}

fn decode(msg: &Message) -> SmMsg {
    let mut u = Unpacker::new(msg.payload());
    let tag = u.i32().expect("sm: tag");
    let src = u.usize().expect("sm: src");
    let data = u.bytes().expect("sm: data").to_vec();
    SmMsg { tag, src, data }
}

/// PVM-flavoured facade: tag-matched sends and receives with `-1`
/// wildcards, as in `pvm_send`/`pvm_recv`/`pvm_probe`.
pub mod pvm {
    use super::{Sm, SmMsg, ANY};
    use converse_machine::Pe;

    fn tr(sel: i32) -> i32 {
        if sel < 0 {
            ANY
        } else {
            sel
        }
    }

    /// `pvm_send`: send `data` with `tag` to `dst`.
    pub fn send(pe: &Pe, dst: usize, tag: i32, data: &[u8]) {
        Sm::get(pe).send(pe, dst, tag, data);
    }

    /// `pvm_recv`: blocking receive; `tag < 0` or `src < 0` wildcard.
    /// Chooses SPM or threaded blocking by calling context.
    pub fn recv(pe: &Pe, tag: i32, src: i32) -> SmMsg {
        Sm::get(pe).recv_auto(pe, tr(tag), tr(src))
    }

    /// `pvm_probe`: size of a buffered matching message, if any.
    pub fn probe(pe: &Pe, tag: i32, src: i32) -> Option<usize> {
        Sm::get(pe).probe(tr(tag), tr(src))
    }
}

/// The paper's threaded-SM calls under their own names (§3.2.2): "tSM,
/// the threaded simple-messaging package, provides to its users the
/// following calls that make use of the thread object internally" — the
/// low-level thread calls stay hidden, exactly as the paper prescribes.
pub mod tsm {
    use super::{Sm, SmMsg, ANY};
    use converse_machine::Pe;
    use converse_threads::Thread;

    /// `tSMCreate()`: "Create a new thread, and schedule it for
    /// execution via the converse scheduler."
    pub fn create<F>(pe: &Pe, f: F) -> Thread
    where
        F: FnOnce(&Pe) + Send + 'static,
    {
        Sm::get(pe).tspawn(pe, f)
    }

    /// `tSMReceive()`: "block the thread waiting for a particular
    /// (tagged) message."
    pub fn receive(pe: &Pe, tag: i32) -> SmMsg {
        Sm::get(pe).trecv(pe, tag, ANY)
    }

    /// Send a tagged message to `dst` (the send half of the language).
    pub fn send(pe: &Pe, dst: usize, tag: i32, data: &[u8]) {
        Sm::get(pe).send(pe, dst, tag, data);
    }
}

/// NX-flavoured facade (Intel Paragon): `csend`/`crecv` match on the
/// message *type*; `typesel < 0` receives any type.
pub mod nx {
    use super::{Sm, SmMsg, ANY};
    use converse_machine::Pe;

    /// `csend`: send `buf` of message type `msg_type` to `node`.
    pub fn csend(pe: &Pe, msg_type: i32, buf: &[u8], node: usize) {
        Sm::get(pe).send(pe, node, msg_type, buf);
    }

    /// `crecv`: blocking receive by type selector (negative = any).
    pub fn crecv(pe: &Pe, typesel: i32) -> SmMsg {
        let t = if typesel < 0 { ANY } else { typesel };
        Sm::get(pe).recv_auto(pe, t, ANY)
    }

    /// `cprobe`: non-consuming test for a buffered message of the type.
    pub fn cprobe(pe: &Pe, typesel: i32) -> bool {
        let t = if typesel < 0 { ANY } else { typesel };
        Sm::get(pe).probe(t, ANY).is_some()
    }
}
