//! MPI-style retrieval built **on top of** the minimal interface —
//! the paper's §3.1.3 argument made executable:
//!
//! > "MPI provides a 'receive' call based on context, tag and source
//! > processor. It also guarantees that messages are delivered in the
//! > sequence in which they are sent between a pair of processors. The
//! > overhead of maintaining messages indexed for such retrieval or for
//! > maintaining delivery sequence is unnecessary for many applications.
//! > The interface we propose … is minimal, yet it is possible to
//! > provide an efficient MPI-style retrieval on top of this interface."
//!
//! This module is that layer: tagged sends carry a per-(sender,receiver)
//! sequence number; the receive side re-sequences, so **pairwise FIFO
//! order holds even when the underlying machine reorders deliveries** —
//! and only programs that link this module pay for the counters and the
//! resequencing buffer (need-based cost, §3).

use converse_machine::{HandlerId, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use converse_msgmgr::{IndexedMsgManager, TagMailbox, WILDCARD};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Wildcard for `recv`'s tag or source (MPI's `MPI_ANY_TAG` /
/// `MPI_ANY_SOURCE`).
pub const ANY: i32 = WILDCARD;

/// A received MPI-style message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiMsg {
    /// Sender's tag.
    pub tag: i32,
    /// Source rank (PE).
    pub src: usize,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// Parked out-of-order arrivals: (src, seq) → (tag, data).
type HeldMap = HashMap<(usize, u64), (i32, Vec<u8>)>;

/// Per-PE MPI-layer state.
pub struct Mpi {
    data_h: HandlerId,
    /// Next sequence number to assign, per destination.
    send_seq: Mutex<HashMap<usize, u64>>,
    /// Next sequence number to admit, per source.
    recv_seq: Mutex<HashMap<usize, u64>>,
    /// Out-of-order arrivals held until their predecessors admit them.
    held: Mutex<HeldMap>,
    /// Admitted (in-order) messages awaiting a matching `recv`.
    mailbox: Mutex<IndexedMsgManager>,
}

struct MpiSlot(Arc<Mpi>);

impl Mpi {
    /// Install the MPI layer on this PE (same registration order
    /// machine-wide). Idempotent per PE.
    pub fn install(pe: &Pe) -> Arc<Mpi> {
        if let Some(s) = pe.try_local::<MpiSlot>() {
            return s.0.clone();
        }
        let data_h = pe.register_handler(|pe, msg| {
            Mpi::get(pe).ingest(&msg);
        });
        let mpi = Arc::new(Mpi {
            data_h,
            send_seq: Mutex::new(HashMap::new()),
            recv_seq: Mutex::new(HashMap::new()),
            held: Mutex::new(HashMap::new()),
            mailbox: Mutex::new(IndexedMsgManager::new()),
        });
        pe.local(|| MpiSlot(mpi.clone()));
        mpi
    }

    /// The layer previously installed on this PE.
    pub fn get(pe: &Pe) -> Arc<Mpi> {
        pe.try_local::<MpiSlot>()
            .unwrap_or_else(|| panic!("PE {}: Mpi::install was not called", pe.my_pe()))
            .0
            .clone()
    }

    /// Send `data` with `tag` to rank `dst` (`MPI_Send`-flavoured:
    /// buffered, never blocks here).
    pub fn send(&self, pe: &Pe, dst: usize, tag: i32, data: &[u8]) {
        assert_ne!(tag, ANY, "cannot send with the wildcard tag");
        let seq = {
            let mut s = self.send_seq.lock();
            let e = s.entry(dst).or_insert(0);
            let v = *e;
            *e += 1;
            v
        };
        let payload = Packer::new()
            .usize(pe.my_pe())
            .u64(seq)
            .i32(tag)
            .bytes(data)
            .finish();
        pe.sync_send_and_free(dst, Message::new(self.data_h, &payload));
    }

    /// Admit an arrival: in-order messages (and any held successors they
    /// release) go to the mailbox; early ones are parked.
    fn ingest(&self, msg: &Message) {
        let mut u = Unpacker::new(msg.payload());
        let src = u.usize().expect("mpi: src");
        let seq = u.u64().expect("mpi: seq");
        let tag = u.i32().expect("mpi: tag");
        let data = u.bytes().expect("mpi: data").to_vec();

        let mut admitted: Vec<(i32, usize, Vec<u8>)> = Vec::new();
        {
            let mut next = self.recv_seq.lock();
            let want = next.entry(src).or_insert(0);
            if seq == *want {
                admitted.push((tag, src, data));
                *want += 1;
                // Release any consecutive held successors.
                let mut held = self.held.lock();
                while let Some((t, d)) = held.remove(&(src, *want)) {
                    admitted.push((t, src, d));
                    *want += 1;
                }
            } else {
                debug_assert!(
                    seq > *want,
                    "duplicate or replayed sequence {seq} from {src}"
                );
                self.held.lock().insert((src, seq), (tag, data));
            }
        }
        let mut mb = self.mailbox.lock();
        for (tag, src, data) in admitted {
            mb.put(&[tag, src as i32], data);
        }
    }

    fn take(&self, tag: i32, src: i32) -> Option<MpiMsg> {
        let stored = self.mailbox.lock().get(&[tag, src])?;
        Some(MpiMsg {
            tag: stored.tags[0],
            src: stored.tags[1] as usize,
            data: stored.data,
        })
    }

    /// Blocking receive (`MPI_Recv`): waits for a message matching
    /// `tag`/`src` (either may be [`ANY`]). Pairwise FIFO: messages from
    /// one source with one tag are received in the order they were sent,
    /// regardless of network delivery order.
    pub fn recv(&self, pe: &Pe, tag: i32, src: i32) -> MpiMsg {
        loop {
            if let Some(m) = self.take(tag, src) {
                return m;
            }
            let msg = pe.get_specific_msg(self.data_h);
            self.ingest(&msg);
        }
    }

    /// Non-consuming test (`MPI_Probe` with immediate return): size of
    /// the earliest matching admitted message.
    pub fn probe(&self, tag: i32, src: i32) -> Option<usize> {
        self.mailbox.lock().probe(&[tag, src]).map(|(len, _)| len)
    }

    /// Combined send-then-receive (`MPI_Sendrecv`): ships `data` to
    /// `dst`, then blocks for a message matching `recv_tag` from
    /// `recv_src`.
    pub fn sendrecv(
        &self,
        pe: &Pe,
        dst: usize,
        send_tag: i32,
        data: &[u8],
        recv_tag: i32,
        recv_src: i32,
    ) -> MpiMsg {
        self.send(pe, dst, send_tag, data);
        self.recv(pe, recv_tag, recv_src)
    }

    /// Messages admitted but not yet received.
    pub fn pending(&self) -> usize {
        self.mailbox.lock().len()
    }

    /// Out-of-order arrivals currently parked in the resequencer.
    pub fn held(&self) -> usize {
        self.held.lock().len()
    }
}
