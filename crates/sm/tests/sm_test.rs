//! SM/tSM behaviour: SPM blocking receive, tag matching, threaded
//! receive overlap, and the PVM/NX facades.
//!
//! The tSM tests (thread-blocking receives) run on **each available
//! thread backend** via [`run_on_each_backend`]: tSM is written purely
//! against the `cth_*` API and must behave identically on fibers and on
//! hand-off OS threads.

use converse_core::{csd_scheduler, csd_scheduler_until_idle, run};
use converse_sm::{nx, pvm, Sm, ANY};
use converse_threads::run_on_each_backend;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn spm_send_recv_roundtrip() {
    run(2, |pe| {
        let sm = Sm::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            sm.send(pe, 1, 17, b"hello sm");
            let reply = sm.recv(pe, 18, ANY);
            assert_eq!(reply.data, b"HELLO SM");
            assert_eq!(reply.src, 1);
        } else {
            let m = sm.recv(pe, 17, ANY);
            assert_eq!(m.data, b"hello sm");
            assert_eq!(m.src, 0);
            let upper: Vec<u8> = m.data.iter().map(|b| b.to_ascii_uppercase()).collect();
            sm.send(pe, 0, 18, &upper);
        }
        pe.barrier();
    });
}

#[test]
fn recv_by_specific_tag_buffers_others() {
    run(2, |pe| {
        let sm = Sm::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            for tag in [1, 2, 3] {
                sm.send(pe, 1, tag, &[tag as u8]);
            }
        } else {
            // Ask for tag 3 first: 1 and 2 must be buffered, not lost.
            let m3 = sm.recv(pe, 3, ANY);
            assert_eq!(m3.data, vec![3]);
            assert_eq!(sm.buffered(), 2);
            assert_eq!(sm.probe(1, ANY), Some(1));
            let m1 = sm.recv(pe, 1, ANY);
            let m2 = sm.recv(pe, 2, ANY);
            assert_eq!((m1.data[0], m2.data[0]), (1, 2));
            assert_eq!(sm.buffered(), 0);
        }
        pe.barrier();
    });
}

#[test]
fn recv_by_source_wildcarded_tag() {
    run(3, |pe| {
        let sm = Sm::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            // Both peers send tag 5; receive specifically from PE 2 first.
            let m = sm.recv(pe, 5, 2);
            assert_eq!(m.src, 2);
            let m = sm.recv(pe, 5, 1);
            assert_eq!(m.src, 1);
        } else {
            sm.send(pe, 0, 5, &[pe.my_pe() as u8]);
        }
        pe.barrier();
    });
}

#[test]
fn fifo_order_per_tag() {
    run(2, |pe| {
        let sm = Sm::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            for i in 0..20u8 {
                sm.send(pe, 1, 9, &[i]);
            }
        } else {
            for i in 0..20u8 {
                assert_eq!(sm.recv(pe, 9, ANY).data, vec![i]);
            }
        }
        pe.barrier();
    });
}

#[test]
fn threaded_recv_overlaps_with_other_threads() {
    // Two tSM threads on PE0 block on different tags; messages arrive in
    // the opposite order; both complete — the scheduler interleaves them
    // (the paper's "maximal overlap" motivation for implicit control).
    run_on_each_backend(2, |pe| {
        let sm = Sm::install(pe);
        let log = pe.local(|| Mutex::new(Vec::<i32>::new()));
        pe.barrier();
        if pe.my_pe() == 0 {
            for tag in [100, 200] {
                let sm2 = sm.clone();
                let l2 = log.clone();
                sm.tspawn(pe, move |pe| {
                    let m = sm2.trecv(pe, tag, ANY);
                    l2.lock().push(tag);
                    assert_eq!(m.data, tag.to_le_bytes());
                    if l2.lock().len() == 2 {
                        converse_core::csd_exit_scheduler(pe);
                    }
                });
            }
            csd_scheduler(pe, -1);
            // 200 arrived first, so it completed first.
            assert_eq!(*log.lock(), vec![200, 100]);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(30));
            sm.send(pe, 0, 200, &200i32.to_le_bytes());
            std::thread::sleep(std::time::Duration::from_millis(30));
            sm.send(pe, 0, 100, &100i32.to_le_bytes());
        }
        pe.barrier();
    });
}

#[test]
fn trecv_finds_already_buffered_message() {
    run_on_each_backend(1, |pe| {
        let sm = Sm::install(pe);
        sm.send(pe, 0, 7, b"early");
        // Deliver it into the mailbox via the scheduler.
        csd_scheduler_until_idle(pe);
        assert_eq!(sm.buffered(), 1);
        let sm2 = sm.clone();
        let got = Arc::new(AtomicU64::new(0));
        let g2 = got.clone();
        sm.tspawn(pe, move |pe| {
            let m = sm2.trecv(pe, 7, ANY);
            assert_eq!(m.data, b"early");
            g2.store(1, Ordering::SeqCst);
        });
        csd_scheduler_until_idle(pe);
        assert_eq!(got.load(Ordering::SeqCst), 1);
    });
}

#[test]
fn many_threads_tagged_pipeline() {
    // A ring of tSM threads on one PE: thread i waits for tag i, then
    // sends tag i+1. Exercises waiter bookkeeping under load.
    run_on_each_backend(1, |pe| {
        let sm = Sm::install(pe);
        let n = 30i32;
        let done = Arc::new(AtomicU64::new(0));
        for i in 1..n {
            let sm2 = sm.clone();
            let d = done.clone();
            sm.tspawn(pe, move |pe| {
                let m = sm2.trecv(pe, i, ANY);
                assert_eq!(m.data, i.to_le_bytes());
                sm2.send(pe, 0, i + 1, &(i + 1).to_le_bytes());
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        sm.send(pe, 0, 1, &1i32.to_le_bytes());
        csd_scheduler_until_idle(pe);
        assert_eq!(done.load(Ordering::SeqCst), (n - 1) as u64);
        // The final send (tag n) remains buffered, unclaimed.
        assert_eq!(sm.buffered(), 1);
    });
}

#[test]
fn pvm_facade_wildcards() {
    run(2, |pe| {
        Sm::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            pvm::send(pe, 1, 42, b"pvm payload");
        } else {
            assert!(pvm::probe(pe, -1, -1).is_none(), "nothing buffered yet");
            let m = pvm::recv(pe, -1, -1);
            assert_eq!(m.tag, 42);
            assert_eq!(m.src, 0);
            assert_eq!(m.data, b"pvm payload");
        }
        pe.barrier();
    });
}

#[test]
fn nx_facade_type_matching() {
    run(2, |pe| {
        Sm::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            nx::csend(pe, 3, b"typed", 1);
            nx::csend(pe, 4, b"other", 1);
        } else {
            let m = nx::crecv(pe, 4);
            assert_eq!(m.data, b"other");
            assert!(nx::cprobe(pe, 3));
            let m = nx::crecv(pe, -1);
            assert_eq!(m.data, b"typed");
        }
        pe.barrier();
    });
}

#[test]
fn pvm_recv_inside_thread_uses_threaded_path() {
    run_on_each_backend(2, |pe| {
        let sm = Sm::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            let ok = Arc::new(AtomicU64::new(0));
            let ok2 = ok.clone();
            sm.tspawn(pe, move |pe| {
                let m = pvm::recv(pe, 77, -1); // threaded blocking
                assert_eq!(m.data, b"via thread");
                ok2.store(1, Ordering::SeqCst);
                converse_core::csd_exit_scheduler(pe);
            });
            csd_scheduler(pe, -1);
            assert_eq!(ok.load(Ordering::SeqCst), 1);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(40));
            pvm::send(pe, 0, 77, b"via thread");
        }
        pe.barrier();
    });
}
