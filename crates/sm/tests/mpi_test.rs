//! The MPI-style layer (§3.1.3's "possible to provide an efficient
//! MPI-style retrieval on top of this interface"): pairwise FIFO even
//! under adversarial delivery, with the cost paid only by its users.

use converse_core::{run, run_with, MachineConfig};
use converse_machine::DeliveryMode;
use converse_sm::mpi::{Mpi, ANY};

#[test]
fn pairwise_fifo_under_reordered_delivery() {
    // The raw net scrambles order (window 16); MPI resequencing must
    // restore exact per-pair send order.
    let cfg = MachineConfig::new(2).delivery(DeliveryMode::Reorder {
        seed: 31,
        window: 16,
    });
    run_with(cfg, |pe| {
        let mpi = Mpi::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            for i in 0..200u32 {
                mpi.send(pe, 1, 5, &i.to_le_bytes());
            }
        } else {
            for i in 0..200u32 {
                let m = mpi.recv(pe, 5, ANY);
                assert_eq!(
                    u32::from_le_bytes(m.data.try_into().unwrap()),
                    i,
                    "MPI ordering violated"
                );
            }
            assert_eq!(mpi.held(), 0, "resequencer drained");
            assert_eq!(mpi.pending(), 0);
        }
        pe.barrier();
    });
}

#[test]
fn tag_and_source_matching_with_wildcards() {
    run(3, |pe| {
        let mpi = Mpi::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            // Both peers send on two tags.
            let m = mpi.recv(pe, 7, 2);
            assert_eq!((m.tag, m.src), (7, 2));
            let m = mpi.recv(pe, ANY, 1);
            assert_eq!(m.src, 1);
            let m = mpi.recv(pe, 8, ANY);
            assert_eq!(m.tag, 8);
            let m = mpi.recv(pe, ANY, ANY);
            std::hint::black_box(m);
        } else {
            mpi.send(pe, 0, 7, b"seven");
            mpi.send(pe, 0, 8, b"eight");
        }
        pe.barrier();
    });
}

#[test]
fn sendrecv_exchanges_between_neighbours() {
    run(4, |pe| {
        let mpi = Mpi::install(pe);
        pe.barrier();
        let right = (pe.my_pe() + 1) % pe.num_pes();
        let left = (pe.my_pe() + pe.num_pes() - 1) % pe.num_pes();
        let m = mpi.sendrecv(
            pe,
            right,
            1,
            &(pe.my_pe() as u64).to_le_bytes(),
            1,
            left as i32,
        );
        assert_eq!(u64::from_le_bytes(m.data.try_into().unwrap()), left as u64);
        pe.barrier();
    });
}

#[test]
fn interleaved_tags_keep_per_pair_order() {
    let cfg = MachineConfig::new(2).delivery(DeliveryMode::Reorder { seed: 9, window: 8 });
    run_with(cfg, |pe| {
        let mpi = Mpi::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            for i in 0..50u32 {
                mpi.send(pe, 1, (i % 2) as i32 + 10, &i.to_le_bytes());
            }
        } else {
            // Receiving per tag: each tag's stream preserves send order.
            for tag in [10i32, 11] {
                let mut prev = None;
                for _ in 0..25 {
                    let m = mpi.recv(pe, tag, ANY);
                    let v = u32::from_le_bytes(m.data.try_into().unwrap());
                    if let Some(p) = prev {
                        assert!(v > p, "tag {tag}: {v} after {p}");
                    }
                    prev = Some(v);
                }
            }
        }
        pe.barrier();
    });
}

#[test]
fn probe_sees_admitted_only() {
    run(2, |pe| {
        let mpi = Mpi::install(pe);
        pe.barrier();
        if pe.my_pe() == 0 {
            assert!(mpi.probe(3, ANY).is_none());
            let m = mpi.recv(pe, 3, ANY);
            assert_eq!(m.data, b"x");
        } else {
            mpi.send(pe, 0, 3, b"x");
        }
        pe.barrier();
    });
}
