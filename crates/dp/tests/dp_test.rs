//! Data-parallel layer on live machines: collectives, distributed
//! arrays, halo exchange, and a miniature Jacobi iteration.

use converse_core::{run, run_with, MachineConfig};
use converse_dp::{DistArray, Dp, Op};
use converse_machine::DeliveryMode;

#[test]
fn typed_allreduce_and_reduce() {
    run(5, |pe| {
        let dp = Dp::install(pe);
        let me = pe.my_pe() as i64;
        assert_eq!(dp.allreduce(pe, me, Op::Sum), 10);
        assert_eq!(dp.allreduce(pe, me, Op::Max), 4);
        assert_eq!(dp.allreduce(pe, me, Op::Min), 0);
        assert_eq!(dp.allreduce(pe, me + 1, Op::Prod), 120);
        let s = dp.reduce_to_root(pe, (pe.my_pe() as f64) * 0.5, Op::Sum);
        if pe.my_pe() == 0 {
            assert_eq!(s, Some(5.0));
        } else {
            assert_eq!(s, None);
        }
        dp.barrier(pe);
    });
}

#[test]
fn allgather_collects_by_pe_index() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        let got = dp.allgather(pe, (pe.my_pe() as i64) * 11);
        assert_eq!(got, vec![0, 11, 22, 33]);
    });
}

#[test]
fn bcast_typed() {
    run(3, |pe| {
        let dp = Dp::install(pe);
        let v = if pe.my_pe() == 2 { Some(6.25f64) } else { None };
        assert_eq!(dp.bcast(pe, 2, v), 6.25);
    });
}

#[test]
fn dist_array_local_sections_and_gather() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray::<i64>::new(pe, &dp, 10, |i| i as i64 * 10);
        let (lo, hi) = a.local_range();
        let local = a.local(pe);
        assert_eq!(local.len(), hi - lo);
        for (k, v) in local.iter().enumerate() {
            assert_eq!(*v, (lo + k) as i64 * 10);
        }
        let all = a.gather_all(pe, &dp);
        assert_eq!(all, (0..10).map(|i| i as i64 * 10).collect::<Vec<_>>());
    });
}

#[test]
fn dist_array_remote_get_put() {
    run(3, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray::<i64>::new(pe, &dp, 9, |_| 0);
        dp.barrier(pe);
        // Each PE writes to an element owned by the *next* PE's block.
        let target = (a.local_range().1) % 9; // first index of next block
        a.put(pe, target, 100 + pe.my_pe() as i64);
        dp.barrier(pe);
        // Everyone reads everything; the three written cells hold values.
        let written: Vec<i64> = (0..9).map(|i| a.get(pe, i)).filter(|v| *v != 0).collect();
        assert_eq!(written.len(), 3, "three writes landed");
        dp.barrier(pe);
    });
}

#[test]
fn halo_exchange_edges() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray::<f64>::new(pe, &dp, 16, |i| i as f64);
        dp.barrier(pe);
        let (lo, hi) = a.local_range();
        let (left, right) = a.halo(pe);
        if lo == 0 {
            assert_eq!(left, None);
        } else {
            assert_eq!(left, Some((lo - 1) as f64));
        }
        if hi == 16 {
            assert_eq!(right, None);
        } else {
            assert_eq!(right, Some(hi as f64));
        }
        dp.barrier(pe);
    });
}

#[test]
fn reduce_all_over_array() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray::<i64>::new(pe, &dp, 12, |i| i as i64 + 1);
        assert_eq!(a.reduce_all(pe, &dp, Op::Sum), (1..=12).sum::<i64>());
        assert_eq!(a.reduce_all(pe, &dp, Op::Max), 12);
        assert_eq!(a.reduce_all(pe, &dp, Op::Min), 1);
    });
}

#[test]
fn reduce_all_with_empty_sections() {
    // More PEs than elements: some local sections are empty and must
    // not poison the reduction.
    run(6, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray::<i64>::new(pe, &dp, 3, |i| (i as i64 + 1) * 7);
        assert_eq!(a.reduce_all(pe, &dp, Op::Sum), 7 + 14 + 21);
        assert_eq!(a.reduce_all(pe, &dp, Op::Min), 7);
    });
}

/// 1-D Jacobi relaxation with fixed boundary values: u[i] ←
/// (u[i-1]+u[i+1])/2. Converges toward the linear interpolant; checks
/// the data-parallel loop (halo → update → allreduce residual).
#[test]
fn jacobi_1d_converges() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        const N: usize = 32;
        let a = DistArray::<f64>::new(pe, &dp, N, |i| {
            if i == 0 {
                0.0
            } else if i == N - 1 {
                1.0
            } else {
                0.0
            }
        });
        dp.barrier(pe);
        let mut residual = f64::INFINITY;
        let mut iters = 0;
        while residual > 1e-6 && iters < 10_000 {
            let (left, right) = a.halo(pe);
            let old = a.local(pe);
            let (lo, hi) = a.local_range();
            let mut maxdiff = 0.0f64;
            a.update_local(pe, |vals| {
                for g in lo..hi {
                    if g == 0 || g == N - 1 {
                        continue; // boundary
                    }
                    let lv = if g > lo {
                        old[g - 1 - lo]
                    } else {
                        left.expect("halo")
                    };
                    let rv = if g + 1 < hi {
                        old[g + 1 - lo]
                    } else {
                        right.expect("halo")
                    };
                    let new = 0.5 * (lv + rv);
                    maxdiff = maxdiff.max((new - old[g - lo]).abs());
                    vals[g - lo] = new;
                }
            });
            residual = dp.allreduce(pe, maxdiff, Op::Max);
            iters += 1;
        }
        assert!(
            residual <= 1e-6,
            "did not converge: {residual} after {iters}"
        );
        // Solution approximates the linear ramp i/(N-1).
        let all = a.gather_all(pe, &dp);
        for (i, v) in all.iter().enumerate() {
            let expect = i as f64 / (N - 1) as f64;
            assert!((v - expect).abs() < 1e-3, "u[{i}]={v}, expected ~{expect}");
        }
    });
}

#[test]
fn collectives_survive_reordering() {
    let cfg = MachineConfig::new(5).delivery(DeliveryMode::Reorder {
        seed: 99,
        window: 8,
    });
    run_with(cfg, |pe| {
        let dp = Dp::install(pe);
        for round in 0..20i64 {
            assert_eq!(
                dp.allreduce(pe, round + pe.my_pe() as i64, Op::Sum),
                5 * round + 10,
                "round {round}"
            );
        }
    });
}
