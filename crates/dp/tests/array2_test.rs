//! 2-D distributed array tests: layout, remote access, halo rows, and a
//! 2-D heat-diffusion step.

use converse_core::run;
use converse_dp::{DistArray2, Dp, Op};

#[test]
fn layout_and_gather() {
    run(3, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray2::<i64>::new(pe, &dp, 7, 5, |r, c| (r * 10 + c) as i64);
        assert_eq!(a.shape(), (7, 5));
        let (lo, hi) = a.row_range();
        assert_eq!(a.local_rows(), hi - lo);
        let local = a.local(pe);
        assert_eq!(local.len(), (hi - lo) * 5);
        for r in lo..hi {
            for c in 0..5 {
                assert_eq!(local[(r - lo) * 5 + c], (r * 10 + c) as i64);
            }
        }
        let all = a.gather_all(pe, &dp);
        assert_eq!(all.len(), 35);
        for r in 0..7 {
            for c in 0..5 {
                assert_eq!(all[r * 5 + c], (r * 10 + c) as i64);
            }
        }
    });
}

#[test]
fn remote_get_put_and_rows() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray2::<f64>::new(pe, &dp, 8, 4, |_, _| 0.0);
        dp.barrier(pe);
        if pe.my_pe() == 0 {
            // Write a diagonal from PE 0, crossing every block.
            for i in 0..4 {
                a.put(pe, i * 2, i, 1.5 + i as f64);
            }
        }
        dp.barrier(pe);
        // Everyone reads the diagonal back.
        for i in 0..4 {
            assert_eq!(a.get(pe, i * 2, i), 1.5 + i as f64);
        }
        // Whole-row fetch.
        let row0 = a.get_row(pe, 0);
        assert_eq!(row0, vec![1.5, 0.0, 0.0, 0.0]);
        dp.barrier(pe);
    });
}

#[test]
fn halo_rows_are_neighbour_boundaries() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray2::<i64>::new(pe, &dp, 12, 3, |r, _| r as i64);
        dp.barrier(pe);
        let (lo, hi) = a.row_range();
        let (above, below) = a.halo_rows(pe);
        match above {
            Some(row) => assert_eq!(row, vec![(lo - 1) as i64; 3]),
            None => assert_eq!(lo, 0),
        }
        match below {
            Some(row) => assert_eq!(row, vec![hi as i64; 3]),
            None => assert_eq!(hi, 12),
        }
        dp.barrier(pe);
    });
}

#[test]
fn reduce_all_2d() {
    run(3, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray2::<i64>::new(pe, &dp, 6, 6, |r, c| (r * 6 + c) as i64);
        assert_eq!(a.reduce_all(pe, &dp, Op::Sum), (0..36).sum::<i64>());
        assert_eq!(a.reduce_all(pe, &dp, Op::Max), 35);
        assert_eq!(a.reduce_all(pe, &dp, Op::Min), 0);
    });
}

#[test]
fn more_pes_than_rows() {
    run(6, |pe| {
        let dp = Dp::install(pe);
        let a = DistArray2::<i64>::new(pe, &dp, 3, 2, |r, c| (r + c) as i64);
        // PEs beyond the rows own empty blocks; everything still works.
        assert_eq!(a.reduce_all(pe, &dp, Op::Sum), 9);
        let all = a.gather_all(pe, &dp);
        assert_eq!(all, vec![0, 1, 1, 2, 2, 3]);
    });
}

/// One Jacobi sweep of the 2-D Laplace equation with fixed boundary:
/// interior ← mean of 4 neighbours, using halo rows for the vertical
/// neighbours that live on other PEs.
#[test]
fn heat_2d_converges() {
    run(4, |pe| {
        let dp = Dp::install(pe);
        const N: usize = 16;
        // Top edge held at 1, all else 0.
        let a = DistArray2::<f64>::new(pe, &dp, N, N, |r, _| if r == 0 { 1.0 } else { 0.0 });
        dp.barrier(pe);
        let mut residual = f64::INFINITY;
        let mut iters = 0;
        while residual > 1e-4 && iters < 5_000 {
            let (above, below) = a.halo_rows(pe);
            let old = a.local(pe);
            let (lo, hi) = a.row_range();
            let mut maxdiff = 0.0f64;
            a.update_local(pe, |vals| {
                for r in lo..hi {
                    if r == 0 || r == N - 1 {
                        continue;
                    }
                    for c in 1..N - 1 {
                        let up = if r > lo {
                            old[(r - 1 - lo) * N + c]
                        } else {
                            above.as_ref().expect("interior halo")[c]
                        };
                        let down = if r + 1 < hi {
                            old[(r + 1 - lo) * N + c]
                        } else {
                            below.as_ref().expect("interior halo")[c]
                        };
                        let left = old[(r - lo) * N + c - 1];
                        let right = old[(r - lo) * N + c + 1];
                        let nv = 0.25 * (up + down + left + right);
                        maxdiff = maxdiff.max((nv - old[(r - lo) * N + c]).abs());
                        vals[(r - lo) * N + c] = nv;
                    }
                }
            });
            residual = dp.allreduce(pe, maxdiff, Op::Max);
            iters += 1;
        }
        assert!(
            residual <= 1e-4,
            "no convergence: {residual} after {iters} iters"
        );
        // Sanity: temperature decreases monotonically away from the hot
        // edge along the mid-column.
        let all = a.gather_all(pe, &dp);
        let mid = N / 2;
        for r in 1..N - 1 {
            assert!(
                all[(r - 1) * N + mid] >= all[r * N + mid] - 1e-9,
                "row {r} hotter than row {}",
                r - 1
            );
        }
    });
}
