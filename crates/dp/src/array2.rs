//! Two-dimensional block-row distributed arrays.
//!
//! The natural layout for stencil codes: rows are block-distributed over
//! PEs ([`crate::block_range`] on the row index); each PE's block lives
//! in one EMI global-pointer region, so the halo exchange of a 2-D
//! Jacobi/heat solver is two remote sub-range gets (the boundary rows of
//! the neighbouring blocks) per iteration — exactly the communication
//! structure a DP-Charm-style language compiles to.

use crate::{block_owner, block_range, Dp, DpScalar, Op};
use converse_machine::gptr::GlobalPtr;
use converse_machine::Pe;

/// A `rows × cols` array of `T`, block-row distributed.
pub struct DistArray2<T: DpScalar> {
    rows: usize,
    cols: usize,
    row_lo: usize,
    row_hi: usize,
    /// Global pointers of every PE's block, indexed by PE.
    sections: Vec<GlobalPtr>,
    _t: std::marker::PhantomData<T>,
}

impl<T: DpScalar> DistArray2<T> {
    /// Collective: create the array, initializing element `(r, c)` to
    /// `init(r, c)` on its owning PE.
    pub fn new<F: Fn(usize, usize) -> T>(
        pe: &Pe,
        dp: &Dp,
        rows: usize,
        cols: usize,
        init: F,
    ) -> DistArray2<T> {
        assert!(cols > 0 || rows == 0, "a non-empty array needs columns");
        let (row_lo, row_hi) = block_range(rows, pe.num_pes(), pe.my_pe());
        let mut bytes = vec![0u8; (row_hi - row_lo) * cols * T::BYTES];
        for r in row_lo..row_hi {
            for c in 0..cols {
                let off = ((r - row_lo) * cols + c) * T::BYTES;
                init(r, c).store(&mut bytes[off..off + T::BYTES]);
            }
        }
        let g = pe.gptr_create(bytes);
        let encoded = dp.allgather_bytes(pe, g.encode().to_vec());
        let sections = encoded
            .iter()
            .map(|e| GlobalPtr::decode(e).expect("section decodes"))
            .collect();
        DistArray2 {
            rows,
            cols,
            row_lo,
            row_hi,
            sections,
            _t: std::marker::PhantomData,
        }
    }

    /// Array shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// This PE's owned row range `[lo, hi)`.
    pub fn row_range(&self) -> (usize, usize) {
        (self.row_lo, self.row_hi)
    }

    /// Number of locally owned rows.
    pub fn local_rows(&self) -> usize {
        self.row_hi - self.row_lo
    }

    /// Copy of the local block, row-major.
    pub fn local(&self, pe: &Pe) -> Vec<T> {
        let bytes = pe
            .gptr_deref(&self.sections[pe.my_pe()])
            .expect("own block is local");
        bytes.chunks(T::BYTES).map(T::load).collect()
    }

    /// Mutate the local block in place (row-major slice of
    /// `local_rows() * cols` elements).
    pub fn update_local<F: FnOnce(&mut [T])>(&self, pe: &Pe, f: F) {
        let g = &self.sections[pe.my_pe()];
        let mut vals = self.local(pe);
        f(&mut vals);
        let ok = pe.gptr_update_local(g, |bytes| {
            for (i, v) in vals.iter().enumerate() {
                v.store(&mut bytes[i * T::BYTES..(i + 1) * T::BYTES]);
            }
        });
        assert!(ok, "own block is local and alive");
    }

    fn owner_and_offset(&self, r: usize, c: usize) -> (usize, usize) {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {}×{}",
            self.rows,
            self.cols
        );
        let owner = block_owner(self.rows, self.sections.len(), r);
        let (olo, _) = block_range(self.rows, self.sections.len(), owner);
        (owner, ((r - olo) * self.cols + c) * T::BYTES)
    }

    /// Read element `(r, c)`, wherever it lives.
    pub fn get(&self, pe: &Pe, r: usize, c: usize) -> T {
        let (owner, off) = self.owner_and_offset(r, c);
        T::load(&pe.get_bytes(&self.sections[owner], off, T::BYTES))
    }

    /// Write element `(r, c)`, wherever it lives.
    pub fn put(&self, pe: &Pe, r: usize, c: usize, v: T) {
        let (owner, off) = self.owner_and_offset(r, c);
        let mut b = vec![0u8; T::BYTES];
        v.store(&mut b);
        pe.put_bytes(&self.sections[owner], off, &b);
    }

    /// Fetch a whole remote (or local) row.
    pub fn get_row(&self, pe: &Pe, r: usize) -> Vec<T> {
        let (owner, off) = self.owner_and_offset(r, 0);
        pe.get_bytes(&self.sections[owner], off, self.cols * T::BYTES)
            .chunks(T::BYTES)
            .map(T::load)
            .collect()
    }

    /// The halo rows bracketing this PE's block: the row just above
    /// `row_lo` and the row just below `row_hi - 1`, when they exist —
    /// one remote sub-range get each.
    pub fn halo_rows(&self, pe: &Pe) -> (Option<Vec<T>>, Option<Vec<T>>) {
        let above = if self.row_lo > 0 {
            Some(self.get_row(pe, self.row_lo - 1))
        } else {
            None
        };
        let below = if self.row_hi < self.rows {
            Some(self.get_row(pe, self.row_hi))
        } else {
            None
        };
        (above, below)
    }

    /// Collective: reduce over every element with `op`; every PE gets
    /// the result.
    pub fn reduce_all(&self, pe: &Pe, dp: &Dp, op: Op) -> T {
        assert!(self.rows * self.cols > 0, "reduce of empty array");
        let local = self.local(pe);
        let folded = local.iter().copied().reduce(|a, b| combine(op, a, b));
        let flags = dp.allgather(pe, i64::from(folded.is_some()));
        let vals = dp.allgather(pe, folded.unwrap_or_else(|| T::load(&vec![0u8; T::BYTES])));
        let mut acc: Option<T> = None;
        for (p, flag) in flags.iter().enumerate() {
            if *flag == 1 {
                acc = Some(match acc {
                    None => vals[p],
                    Some(a) => combine(op, a, vals[p]),
                });
            }
        }
        acc.expect("non-empty array has an owner")
    }

    /// Collective: gather the whole array (row-major) on every PE.
    pub fn gather_all(&self, pe: &Pe, dp: &Dp) -> Vec<T> {
        let local_bytes: Vec<u8> = {
            let vals = self.local(pe);
            let mut b = vec![0u8; vals.len() * T::BYTES];
            for (i, v) in vals.iter().enumerate() {
                v.store(&mut b[i * T::BYTES..(i + 1) * T::BYTES]);
            }
            b
        };
        let parts = dp.allgather_bytes(pe, local_bytes);
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for part in parts {
            out.extend(part.chunks(T::BYTES).map(T::load));
        }
        out
    }
}

fn combine<T: DpScalar>(op: Op, a: T, b: T) -> T {
    match op {
        Op::Sum => a.add(b),
        Op::Prod => a.mul(b),
        Op::Min => {
            if b < a {
                b
            } else {
                a
            }
        }
        Op::Max => {
            if b > a {
                b
            } else {
                a
            }
        }
    }
}
