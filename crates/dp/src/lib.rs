//! A loosely-synchronous **data-parallel layer** over the Converse EMI —
//! the stand-in for DP-Charm, the data-parallel language the paper lists
//! among its initial clients (§1: "Our initial implementation includes
//! Charm, Charm++, DP-Charm (a data parallel language), PVM, NXLib, and
//! SM").
//!
//! The layer is SPMD: every PE executes the same program and meets at
//! collectives. It provides
//!
//! * typed reductions and broadcasts ([`Dp::allreduce`],
//!   [`Dp::reduce_to_root`], [`Dp::bcast`]) over the machine's
//!   spanning-tree global operations,
//! * [`DistArray`] — a block-distributed one-dimensional array whose
//!   local section lives in an EMI **global-pointer region**, so any PE
//!   can read or write any element with get/put, and halo exchange is a
//!   pair of neighbour sub-range gets (§3.1.3's "asynchronous get and
//!   put calls, and global pointers").
//!
//! All calls marked *collective* must be executed by every PE in the
//! same order, the usual data-parallel contract.

pub mod array2;

pub use array2::DistArray2;

use converse_machine::coll::CombinerId;
use converse_machine::gptr::GlobalPtr;
use converse_machine::Pe;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar that can live in a [`DistArray`] and be reduced.
pub trait DpScalar: Copy + Send + PartialOrd + 'static {
    /// Fixed encoded size in bytes.
    const BYTES: usize;
    /// Write little-endian into `out` (exactly `BYTES` long).
    fn store(self, out: &mut [u8]);
    /// Read back from `b`.
    fn load(b: &[u8]) -> Self;
    /// Addition for sum/product reductions.
    fn add(self, other: Self) -> Self;
    /// Multiplication for product reductions.
    fn mul(self, other: Self) -> Self;
}

impl DpScalar for f64 {
    const BYTES: usize = 8;
    fn store(self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }
    fn load(b: &[u8]) -> Self {
        f64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn mul(self, other: Self) -> Self {
        self * other
    }
}

impl DpScalar for i64 {
    const BYTES: usize = 8;
    fn store(self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }
    fn load(b: &[u8]) -> Self {
        i64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn mul(self, other: Self) -> Self {
        self * other
    }
}

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Elementwise sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Product.
    Prod,
}

/// Per-PE data-parallel runtime: the registered combiner table.
pub struct Dp {
    combiners: Mutex<HashMap<(std::any::TypeId, Op), CombinerId>>,
    concat: CombinerId,
}

struct DpSlot(Arc<Dp>);

fn combine_scalar<T: DpScalar>(op: Op) -> impl Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync {
    move |a, b| {
        let x = T::load(a);
        let y = T::load(b);
        let r = match op {
            Op::Sum => x.add(y),
            Op::Prod => x.mul(y),
            Op::Min => {
                if y < x {
                    y
                } else {
                    x
                }
            }
            Op::Max => {
                if y > x {
                    y
                } else {
                    x
                }
            }
        };
        let mut out = vec![0u8; T::BYTES];
        r.store(&mut out);
        out
    }
}

impl Dp {
    /// Install the runtime on this PE, registering the standard combiner
    /// set in a fixed order (call at the same registration position on
    /// every PE). Idempotent per PE.
    pub fn install(pe: &Pe) -> Arc<Dp> {
        if let Some(s) = pe.try_local::<DpSlot>() {
            return s.0.clone();
        }
        let mut map = HashMap::new();
        macro_rules! reg {
            ($t:ty, $op:expr) => {
                map.insert(
                    (std::any::TypeId::of::<$t>(), $op),
                    pe.register_combiner(combine_scalar::<$t>($op)),
                );
            };
        }
        for op in [Op::Sum, Op::Min, Op::Max, Op::Prod] {
            reg!(f64, op);
            reg!(i64, op);
        }
        // Concatenation combiner for allgather-style exchanges.
        let concat = pe.register_combiner(|a, b| {
            let mut out = Vec::with_capacity(a.len() + b.len());
            out.extend_from_slice(a);
            out.extend_from_slice(b);
            out
        });
        let dp = Arc::new(Dp {
            combiners: Mutex::new(map),
            concat,
        });
        pe.local(|| DpSlot(dp.clone()));
        dp
    }

    /// The runtime previously installed on this PE.
    pub fn get(pe: &Pe) -> Arc<Dp> {
        pe.try_local::<DpSlot>()
            .unwrap_or_else(|| panic!("PE {}: Dp::install was not called", pe.my_pe()))
            .0
            .clone()
    }

    fn combiner<T: DpScalar>(&self, op: Op) -> CombinerId {
        *self
            .combiners
            .lock()
            .get(&(std::any::TypeId::of::<T>(), op))
            .unwrap_or_else(|| panic!("no combiner for {op:?} over this scalar type"))
    }

    /// Collective: reduce `v` with `op`; `Some(result)` on PE 0 only.
    pub fn reduce_to_root<T: DpScalar>(&self, pe: &Pe, v: T, op: Op) -> Option<T> {
        let mut buf = vec![0u8; T::BYTES];
        v.store(&mut buf);
        pe.reduce_bytes(buf, self.combiner::<T>(op))
            .map(|b| T::load(&b))
    }

    /// Collective: reduce `v` with `op`; every PE gets the result.
    pub fn allreduce<T: DpScalar>(&self, pe: &Pe, v: T, op: Op) -> T {
        let mut buf = vec![0u8; T::BYTES];
        v.store(&mut buf);
        T::load(&pe.allreduce_bytes(buf, self.combiner::<T>(op)))
    }

    /// Collective: every PE contributes `v`; every PE receives the
    /// vector of contributions indexed by PE (an allgather).
    pub fn allgather<T: DpScalar>(&self, pe: &Pe, v: T) -> Vec<T> {
        let mut buf = vec![0u8; 8 + T::BYTES];
        buf[..8].copy_from_slice(&(pe.my_pe() as u64).to_le_bytes());
        v.store(&mut buf[8..]);
        let all = pe.allreduce_bytes(buf, self.concat);
        let stride = 8 + T::BYTES;
        assert_eq!(all.len(), stride * pe.num_pes());
        let mut out = vec![v; pe.num_pes()];
        for chunk in all.chunks(stride) {
            let idx = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")) as usize;
            out[idx] = T::load(&chunk[8..]);
        }
        out
    }

    /// Collective allgather of raw byte blobs (used internally to
    /// exchange global pointers; public for irregular exchanges).
    pub fn allgather_bytes(&self, pe: &Pe, v: Vec<u8>) -> Vec<Vec<u8>> {
        let mut buf = Vec::with_capacity(16 + v.len());
        buf.extend_from_slice(&(pe.my_pe() as u64).to_le_bytes());
        buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        buf.extend_from_slice(&v);
        let all = pe.allreduce_bytes(buf, self.concat);
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); pe.num_pes()];
        let mut off = 0;
        while off < all.len() {
            let idx = u64::from_le_bytes(all[off..off + 8].try_into().expect("idx")) as usize;
            let len = u64::from_le_bytes(all[off + 8..off + 16].try_into().expect("len")) as usize;
            out[idx] = all[off + 16..off + 16 + len].to_vec();
            off += 16 + len;
        }
        out
    }

    /// Collective: broadcast `v` (significant on `root`) to all PEs.
    pub fn bcast<T: DpScalar>(&self, pe: &Pe, root: usize, v: Option<T>) -> T {
        let data = v.map(|x| {
            let mut b = vec![0u8; T::BYTES];
            x.store(&mut b);
            b
        });
        T::load(&pe.bcast_bytes(root, data))
    }

    /// Collective: global barrier.
    pub fn barrier(&self, pe: &Pe) {
        pe.barrier();
    }
}

/// Block layout of `global_len` elements over `num_pes` PEs: PE `p` owns
/// `[lo, hi)`. The first `global_len % num_pes` PEs hold one extra.
pub fn block_range(global_len: usize, num_pes: usize, pe: usize) -> (usize, usize) {
    let base = global_len / num_pes;
    let extra = global_len % num_pes;
    let lo = pe * base + pe.min(extra);
    let hi = lo + base + usize::from(pe < extra);
    (lo, hi)
}

/// Owning PE of global index `i` under [`block_range`].
pub fn block_owner(global_len: usize, num_pes: usize, i: usize) -> usize {
    assert!(i < global_len);
    // Invert the block map by search (num_pes is small).
    for p in 0..num_pes {
        let (lo, hi) = block_range(global_len, num_pes, p);
        if i >= lo && i < hi {
            return p;
        }
    }
    unreachable!("index {i} not covered by any block");
}

/// A block-distributed 1-D array of `T`. Collective to create; element
/// access crosses PEs through global pointers.
pub struct DistArray<T: DpScalar> {
    global_len: usize,
    lo: usize,
    hi: usize,
    /// Global pointers of every PE's local section, indexed by PE.
    sections: Vec<GlobalPtr>,
    _t: std::marker::PhantomData<T>,
}

impl<T: DpScalar> DistArray<T> {
    /// Collective: create the array, initializing element `i` to
    /// `init(i)` on its owning PE.
    pub fn new<F: Fn(usize) -> T>(pe: &Pe, dp: &Dp, global_len: usize, init: F) -> DistArray<T> {
        let (lo, hi) = block_range(global_len, pe.num_pes(), pe.my_pe());
        let mut bytes = vec![0u8; (hi - lo) * T::BYTES];
        for i in lo..hi {
            init(i).store(&mut bytes[(i - lo) * T::BYTES..(i - lo + 1) * T::BYTES]);
        }
        let g = pe.gptr_create(bytes);
        let encoded = dp.allgather_bytes(pe, g.encode().to_vec());
        let sections = encoded
            .iter()
            .map(|e| GlobalPtr::decode(e).expect("section gptr decodes"))
            .collect();
        DistArray {
            global_len,
            lo,
            hi,
            sections,
            _t: std::marker::PhantomData,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.global_len
    }

    /// True for a zero-length array.
    pub fn is_empty(&self) -> bool {
        self.global_len == 0
    }

    /// This PE's owned global index range `[lo, hi)`.
    pub fn local_range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Copy of this PE's local section.
    pub fn local(&self, pe: &Pe) -> Vec<T> {
        let bytes = pe
            .gptr_deref(&self.sections[pe.my_pe()])
            .expect("own section is local");
        bytes.chunks(T::BYTES).map(T::load).collect()
    }

    /// Mutate this PE's local section in place. `f` receives the decoded
    /// elements; they are written back when it returns.
    pub fn update_local<F: FnOnce(&mut [T])>(&self, pe: &Pe, f: F) {
        let g = &self.sections[pe.my_pe()];
        let mut vals = self.local(pe);
        f(&mut vals);
        let ok = pe.gptr_update_local(g, |bytes| {
            for (i, v) in vals.iter().enumerate() {
                v.store(&mut bytes[i * T::BYTES..(i + 1) * T::BYTES]);
            }
        });
        assert!(ok, "own section is local and alive");
    }

    /// Read element `i`, wherever it lives (remote get when not local).
    pub fn get(&self, pe: &Pe, i: usize) -> T {
        assert!(
            i < self.global_len,
            "index {i} out of bounds {}",
            self.global_len
        );
        let owner = block_owner(self.global_len, pe.num_pes(), i);
        let (olo, _) = block_range(self.global_len, pe.num_pes(), owner);
        let bytes = pe.get_bytes(&self.sections[owner], (i - olo) * T::BYTES, T::BYTES);
        T::load(&bytes)
    }

    /// Write element `i`, wherever it lives (remote put when not local).
    pub fn put(&self, pe: &Pe, i: usize, v: T) {
        assert!(
            i < self.global_len,
            "index {i} out of bounds {}",
            self.global_len
        );
        let owner = block_owner(self.global_len, pe.num_pes(), i);
        let (olo, _) = block_range(self.global_len, pe.num_pes(), owner);
        let mut b = vec![0u8; T::BYTES];
        v.store(&mut b);
        pe.put_bytes(&self.sections[owner], (i - olo) * T::BYTES, &b);
    }

    /// The halo values bracketing this PE's block: the element just
    /// before `lo` and just after `hi-1`, when they exist. One remote
    /// sub-range get each — the data-parallel halo exchange.
    pub fn halo(&self, pe: &Pe) -> (Option<T>, Option<T>) {
        let left = if self.lo > 0 {
            Some(self.get(pe, self.lo - 1))
        } else {
            None
        };
        let right = if self.hi < self.global_len {
            Some(self.get(pe, self.hi))
        } else {
            None
        };
        (left, right)
    }

    /// Collective: reduce over all elements with `op`; every PE gets the
    /// result. Empty local sections contribute the first local element
    /// of some PE (global length must be ≥ 1).
    pub fn reduce_all(&self, pe: &Pe, dp: &Dp, op: Op) -> T {
        assert!(self.global_len > 0, "reduce of empty array");
        let local = self.local(pe);
        // Fold locally; PEs with empty sections contribute the identity
        // by sending... there is no generic identity, so encode presence:
        // gather (count, value) pairs via two allreduces.
        let folded = local.iter().copied().reduce(|a, b| match op {
            Op::Sum => a.add(b),
            Op::Prod => a.mul(b),
            Op::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            Op::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
        });
        // Exchange all folded values; each PE combines the present ones.
        let have = folded.is_some();
        let flags = dp.allgather(pe, if have { 1i64 } else { 0i64 });
        let vals = dp.allgather(pe, folded.unwrap_or_else(|| T::load(&vec![0u8; T::BYTES])));
        let mut acc: Option<T> = None;
        for (p, flag) in flags.iter().enumerate() {
            if *flag == 1 {
                let v = vals[p];
                acc = Some(match acc {
                    None => v,
                    Some(a) => match op {
                        Op::Sum => a.add(v),
                        Op::Prod => a.mul(v),
                        Op::Min => {
                            if v < a {
                                v
                            } else {
                                a
                            }
                        }
                        Op::Max => {
                            if v > a {
                                v
                            } else {
                                a
                            }
                        }
                    },
                });
            }
        }
        acc.expect("global length ≥ 1 means someone holds data")
    }

    /// Collective: gather the whole array on every PE (small arrays /
    /// debugging).
    pub fn gather_all(&self, pe: &Pe, dp: &Dp) -> Vec<T> {
        let local_bytes: Vec<u8> = {
            let vals = self.local(pe);
            let mut b = vec![0u8; vals.len() * T::BYTES];
            for (i, v) in vals.iter().enumerate() {
                v.store(&mut b[i * T::BYTES..(i + 1) * T::BYTES]);
            }
            b
        };
        let parts = dp.allgather_bytes(pe, local_bytes);
        let mut out = Vec::with_capacity(self.global_len);
        for part in parts {
            out.extend(part.chunks(T::BYTES).map(T::load));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [1usize, 2, 3, 7, 16] {
            for len in [0usize, 1, 5, 16, 17, 100] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for p in 0..n {
                    let (lo, hi) = block_range(len, n, p);
                    assert_eq!(lo, prev_hi, "blocks contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, len, "n={n} len={len}");
            }
        }
    }

    #[test]
    fn block_sizes_balanced() {
        let n = 4;
        let len = 10;
        let sizes: Vec<usize> = (0..n)
            .map(|p| {
                let (l, h) = block_range(len, n, p);
                h - l
            })
            .collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn owner_matches_range() {
        let (n, len) = (5, 23);
        for i in 0..len {
            let p = block_owner(len, n, i);
            let (lo, hi) = block_range(len, n, p);
            assert!(i >= lo && i < hi);
        }
    }

    #[test]
    fn scalar_roundtrip() {
        let mut b = [0u8; 8];
        (-3.5f64).store(&mut b);
        assert_eq!(f64::load(&b), -3.5);
        (i64::MIN).store(&mut b);
        assert_eq!(i64::load(&b), i64::MIN);
    }
}
