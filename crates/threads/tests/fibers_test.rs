//! Fiber-backed thread runtime: Cth semantics at user-level-switch cost.

#![cfg(all(target_arch = "x86_64", unix))]

use converse_core::{
    csd_enqueue, csd_exit_scheduler, csd_scheduler, csd_scheduler_until_idle, run, Message,
};
use converse_threads::fibers::FiberRt;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn create_resume_runs_to_completion() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = hits.clone();
        let t = rt.create(pe, 32 * 1024, move |_pe| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!rt.is_done(t));
        rt.resume(pe, t);
        assert!(rt.is_done(t));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn suspend_and_pool_resume_interleave() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let log: Arc<parking_lot::Mutex<Vec<String>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l2 = log.clone();
        let t = rt.create(pe, 32 * 1024, move |pe| {
            let rt = FiberRt::get(pe);
            l2.lock().push("first".into());
            rt.suspend(pe);
            l2.lock().push("second".into());
        });
        rt.resume(pe, t);
        log.lock().push("main".into());
        rt.resume(pe, t);
        assert_eq!(*log.lock(), vec!["first", "main", "second"]);
        assert!(rt.is_done(t));
    });
}

#[test]
fn pool_yield_round_robin() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let log: Arc<parking_lot::Mutex<Vec<(u8, u32)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mk = |tag: u8, log: Arc<parking_lot::Mutex<Vec<(u8, u32)>>>| {
            move |pe: &converse_core::Pe| {
                let rt = FiberRt::get(pe);
                for i in 0..3u32 {
                    log.lock().push((tag, i));
                    rt.yield_pool(pe);
                }
            }
        };
        let ta = rt.create(pe, 32 * 1024, mk(b'a', log.clone()));
        let tb = rt.create(pe, 32 * 1024, mk(b'b', log.clone()));
        rt.awaken_pool(pe, tb);
        rt.resume(pe, ta);
        let expect = vec![
            (b'a', 0),
            (b'b', 0),
            (b'a', 1),
            (b'b', 1),
            (b'a', 2),
            (b'b', 2),
        ];
        assert_eq!(*log.lock(), expect);
        assert!(rt.is_done(ta) && rt.is_done(tb));
    });
}

#[test]
fn scheduled_fibers_run_via_csd() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let log: Arc<parking_lot::Mutex<Vec<u32>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let l = log.clone();
            rt.spawn_scheduled(pe, move |_pe| {
                l.lock().push(i);
            });
        }
        assert!(log.lock().is_empty());
        csd_scheduler_until_idle(pe);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    });
}

#[test]
fn fiber_blocks_on_message_wakeup() {
    // The tSM pattern on fibers: a fiber suspends; a handler awakens it.
    run(2, |pe| {
        let data = pe.local(|| {
            parking_lot::Mutex::new((None::<converse_threads::fibers::FThread>, None::<Vec<u8>>))
        });
        let d2 = data.clone();
        let h = pe.register_handler(move |pe, msg| {
            let mut d = d2.lock();
            d.1 = Some(msg.payload().to_vec());
            if let Some(t) = d.0.take() {
                drop(d);
                FiberRt::get(pe).awaken(pe, t);
            }
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let rt = FiberRt::get(pe);
            let d3 = data.clone();
            let done = Arc::new(AtomicU64::new(0));
            let done2 = done.clone();
            rt.spawn_scheduled(pe, move |pe| {
                let rt = FiberRt::get(pe);
                loop {
                    {
                        let d = d3.lock();
                        if let Some(payload) = &d.1 {
                            assert_eq!(payload, b"wake fiber");
                            break;
                        }
                    }
                    d3.lock().0 = Some(rt.current().unwrap());
                    rt.suspend(pe);
                }
                done2.store(1, Ordering::SeqCst);
                csd_exit_scheduler(pe);
            });
            csd_scheduler(pe, -1);
            assert_eq!(done.load(Ordering::SeqCst), 1);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(40));
            pe.sync_send_and_free(0, Message::new(h, b"wake fiber"));
        }
        pe.barrier();
    });
}

#[test]
fn many_fiber_threads_cheaply() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let count = Rc::new(RefCell::new(0u64));
        let n = 1000;
        for _ in 0..n {
            let c = count.clone();
            // Rc is fine: fibers stay on this OS thread.
            let t = rt.create(pe, 16 * 1024, move |pe| {
                *c.borrow_mut() += 1;
                FiberRt::get(pe).yield_pool(pe);
                *c.borrow_mut() += 1;
            });
            rt.awaken_pool(pe, t);
        }
        // Drive the pool: resume the first; exits chain through the pool.
        // awaken_pool put all in the ready pool; kick it off with a
        // trivial fiber whose exit chains into the pool.
        let first = rt.create(pe, 16 * 1024, |_pe| {});
        rt.resume(pe, first);
        // first finished without directive → drive() continues with pool.
        assert_eq!(*count.borrow(), 2 * n);
    });
}

#[test]
fn fiber_to_fiber_transfer() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let log: Arc<parking_lot::Mutex<Vec<&'static str>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        let tb = rt.create(pe, 32 * 1024, move |_pe| {
            l2.lock().push("b ran");
        });
        let ta = rt.create(pe, 32 * 1024, move |pe| {
            let rt = FiberRt::get(pe);
            l1.lock().push("a before transfer");
            rt.resume(pe, tb); // parks a un-awakened, runs b
            unreachable!("a was never awakened again");
        });
        rt.resume(pe, ta);
        assert_eq!(*log.lock(), vec!["a before transfer", "b ran"]);
        assert!(rt.is_done(tb));
        assert!(!rt.is_done(ta), "a is parked, not done");
    });
}

#[test]
fn mixed_with_handlers_and_queue() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let order: Arc<parking_lot::Mutex<Vec<String>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o1 = order.clone();
        let h = pe.register_handler(move |_pe, msg| {
            o1.lock().push(format!("handler {}", msg.payload()[0]));
        });
        let o2 = order.clone();
        rt.spawn_scheduled(pe, move |pe| {
            let rt = FiberRt::get(pe);
            o2.lock().push("fiber part 1".into());
            rt.yield_now(pe); // goes through the Csd queue
            o2.lock().push("fiber part 2".into());
        });
        csd_enqueue(pe, Message::new(h, &[1]));
        csd_scheduler_until_idle(pe);
        // FIFO: fiber start, handler, fiber continuation.
        assert_eq!(
            *order.lock(),
            vec![
                "fiber part 1".to_string(),
                "handler 1".to_string(),
                "fiber part 2".to_string()
            ]
        );
    });
}

#[test]
fn unfinished_fibers_reaped_at_exit() {
    run(1, |pe| {
        let rt = FiberRt::get(pe);
        let t = rt.create(pe, 32 * 1024, |pe| {
            FiberRt::get(pe).suspend(pe); // parked forever
            unreachable!();
        });
        rt.resume(pe, t);
        // Entry returns with the fiber parked; the exit hook reclaims it.
    });
}
