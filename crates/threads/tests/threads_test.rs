//! Thread-object semantics: suspend/resume, yield, strategies, scheduler
//! integration, and teardown of never-finished threads.

use converse_core::{csd_enqueue, csd_exit_scheduler, csd_scheduler, run, Message};
use converse_msg::Priority;
use converse_threads::{
    cth_awaken, cth_create, cth_create_of_size, cth_resume, cth_self, cth_set_strategy,
    cth_suspend, cth_yield, CthRuntime, Strategy,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn resume_runs_thread_to_completion() {
    run(1, |pe| {
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = hits.clone();
        let t = cth_create(pe, move |_pe| {
            h2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!t.is_exited());
        cth_resume(pe, &t);
        // Thread ran and exited; control returned to the main context.
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(t.is_exited());
    });
}

#[test]
fn suspend_returns_to_main_then_resume_continues() {
    run(1, |pe| {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let l2 = log.clone();
        let t = cth_create(pe, move |pe| {
            l2.lock().push("first half");
            cth_suspend(pe);
            l2.lock().push("second half");
        });
        cth_resume(pe, &t);
        log.lock().push("main between");
        cth_resume(pe, &t);
        assert_eq!(
            *log.lock(),
            vec!["first half", "main between", "second half"]
        );
        assert!(t.is_exited());
    });
}

#[test]
fn self_identifies_contexts() {
    run(1, |pe| {
        assert!(cth_self(pe).is_none(), "main context has no thread self");
        let observed = Arc::new(Mutex::new(None));
        let o2 = observed.clone();
        let t = cth_create(pe, move |pe| {
            *o2.lock() = cth_self(pe).map(|t| t.id());
        });
        let tid = t.id();
        cth_resume(pe, &t);
        assert_eq!(*observed.lock(), Some(tid));
        assert!(cth_self(pe).is_none());
    });
}

#[test]
fn yield_rotates_between_two_threads() {
    // Two threads alternately yield; the default FIFO ready pool must
    // interleave them strictly.
    run(1, |pe| {
        let log: Arc<Mutex<Vec<(u8, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let mk = |tag: u8, log: Arc<Mutex<Vec<(u8, u32)>>>| {
            move |pe: &converse_core::Pe| {
                for i in 0..3u32 {
                    log.lock().push((tag, i));
                    cth_yield(pe);
                }
            }
        };
        let ta = cth_create(pe, mk(b'a', log.clone()));
        let tb = cth_create(pe, mk(b'b', log.clone()));
        // Seed: awaken both, then hand control to A; when A first yields,
        // the pool holds [B, A], so they alternate.
        cth_awaken(pe, &tb);
        cth_resume(pe, &ta);
        // After A's first yield B runs, etc. When both exit, control
        // returns here (exit pops the pool; the last exit falls to main).
        assert!(ta.is_exited() && tb.is_exited());
        let expect = vec![
            (b'a', 0),
            (b'b', 0),
            (b'a', 1),
            (b'b', 1),
            (b'a', 2),
            (b'b', 2),
        ];
        assert_eq!(*log.lock(), expect);
    });
}

#[test]
fn exit_transfers_to_next_ready_thread() {
    run(1, |pe| {
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        let t1 = cth_create(pe, move |_pe| l1.lock().push(1));
        let t2 = cth_create(pe, move |_pe| l2.lock().push(2));
        cth_awaken(pe, &t2); // pool: [t2]
        cth_resume(pe, &t1); // t1 runs, exits → pool pops t2 → t2 runs, exits → main
        assert_eq!(*log.lock(), vec![1, 2]);
        assert!(t1.is_exited() && t2.is_exited());
    });
}

#[test]
fn custom_strategy_lifo_scheduling() {
    // Override awaken/suspend to use a LIFO stack per the paper: "you may
    // alter the way CthAwaken and CthSuspend work together … only the
    // order of selection should be altered."
    run(1, |pe| {
        let stack: Arc<Mutex<Vec<converse_threads::Thread>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let mk = |tag: u8, log: Arc<Mutex<Vec<u8>>>| {
            move |_pe: &converse_core::Pe| {
                log.lock().push(tag);
            }
        };
        let driver_log = log.clone();
        let ts: Vec<_> = (0..3u8)
            .map(|i| cth_create(pe, mk(i, log.clone())))
            .collect();
        for t in &ts {
            let st = stack.clone();
            let st2 = stack.clone();
            cth_set_strategy(
                pe,
                t,
                Strategy {
                    awaken: Box::new(move |_pe, t| st.lock().push(t)),
                    suspend: Box::new(move |_pe| st2.lock().pop()),
                },
            );
        }
        // A driver thread with the same LIFO strategy: its exit pops the
        // stack, so awakening order 0,1,2 must run 2,1,0.
        let st3 = stack.clone();
        let driver = cth_create(pe, move |_pe| {
            driver_log.lock().push(99);
        });
        cth_set_strategy(
            pe,
            &driver,
            Strategy {
                awaken: Box::new(|_pe, _t| unreachable!("driver is resumed directly")),
                suspend: Box::new(move |_pe| st3.lock().pop()),
            },
        );
        for t in &ts {
            cth_awaken(pe, t);
        }
        cth_resume(pe, &driver);
        assert_eq!(*log.lock(), vec![99, 2, 1, 0]);
    });
}

#[test]
fn csd_strategy_threads_run_via_scheduler() {
    run(1, |pe| {
        let rt = CthRuntime::get(pe);
        let log = Arc::new(Mutex::new(Vec::<u32>::new()));
        for i in 0..4u32 {
            let l = log.clone();
            rt.spawn_scheduled(pe, move |_pe| {
                l.lock().push(i);
            });
        }
        assert!(log.lock().is_empty(), "threads wait for the scheduler");
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        csd_enqueue(pe, Message::new(stop, b""));
        // Ready-thread messages were enqueued before the stop message.
        csd_scheduler(pe, -1);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    });
}

#[test]
fn csd_strategy_respects_priorities() {
    run(1, |pe| {
        let rt = CthRuntime::get(pe);
        let log = Arc::new(Mutex::new(Vec::<i32>::new()));
        for prio in [5, -2, 0, 9, -7] {
            let l = log.clone();
            rt.spawn_scheduled_prio(pe, Priority::Int(prio), move |_pe| {
                l.lock().push(prio);
            });
        }
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        // The stop goes in FIFO (priority 0 class) — negative-priority
        // threads run before it, positive after... so give it the worst
        // priority to flush everything first.
        let m = Message::with_priority(stop, &Priority::Int(i32::MAX), b"");
        converse_core::csd_enqueue_general(pe, m, converse_core::QueueingMode::PrioFifo);
        csd_scheduler(pe, -1);
        assert_eq!(*log.lock(), vec![-7, -2, 0, 5, 9]);
    });
}

#[test]
fn thread_blocks_on_message_and_is_awakened_by_handler() {
    // The tSM pattern from §3.2.2, hand-rolled: a thread blocks; a
    // message handler awakens it with the payload.
    run(2, |pe| {
        type WaitSlot = (Option<converse_threads::Thread>, Option<Vec<u8>>);
        let slot: Arc<Mutex<WaitSlot>> = Arc::new(Mutex::new((None, None)));
        let s2 = slot.clone();
        let data_h = pe.register_handler(move |pe, msg| {
            let mut s = s2.lock();
            s.1 = Some(msg.payload().to_vec());
            if let Some(t) = s.0.take() {
                drop(s);
                cth_awaken(pe, &t);
            }
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let rt = CthRuntime::get(pe);
            let slot3 = slot.clone();
            let done = Arc::new(AtomicU64::new(0));
            let d2 = done.clone();
            rt.spawn_scheduled(pe, move |pe| {
                // Block until the payload arrives.
                loop {
                    {
                        let s = slot3.lock();
                        if let Some(data) = &s.1 {
                            assert_eq!(data, b"wake up");
                            break;
                        }
                    }
                    let me = cth_self(pe).expect("inside a thread");
                    slot3.lock().0 = Some(me);
                    cth_suspend(pe);
                }
                d2.store(1, Ordering::SeqCst);
                csd_exit_scheduler(pe);
            });
            csd_scheduler(pe, -1);
            assert_eq!(done.load(Ordering::SeqCst), 1);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(50));
            pe.sync_send_and_free(0, Message::new(data_h, b"wake up"));
        }
        pe.barrier();
    });
}

#[test]
fn many_threads_with_small_stacks() {
    run(1, |pe| {
        let count = Arc::new(AtomicU64::new(0));
        let n = 200;
        let ts: Vec<_> = (0..n)
            .map(|_| {
                let c = count.clone();
                cth_create_of_size(
                    pe,
                    move |pe| {
                        c.fetch_add(1, Ordering::Relaxed);
                        cth_yield(pe);
                        c.fetch_add(1, Ordering::Relaxed);
                    },
                    64 * 1024,
                )
            })
            .collect();
        for t in &ts[1..] {
            cth_awaken(pe, t);
        }
        cth_resume(pe, &ts[0]);
        assert_eq!(count.load(Ordering::Relaxed), 2 * n);
        assert!(ts.iter().all(|t| t.is_exited()));
    });
}

#[test]
fn unfinished_threads_are_reaped_at_machine_exit() {
    // A thread that suspends forever must not hang machine teardown.
    run(1, |pe| {
        let t = cth_create(pe, |pe| {
            cth_suspend(pe); // never awakened
            unreachable!("poisoned thread unwinds instead of resuming");
        });
        cth_resume(pe, &t);
        let rt = CthRuntime::get(pe);
        assert_eq!(rt.live_len(), 1, "thread still suspended at exit");
        // Entry returns now; the exit hook poisons and joins the thread.
    });
}

#[test]
fn never_started_threads_are_reaped() {
    run(1, |pe| {
        for _ in 0..10 {
            let _t = cth_create(pe, |_pe| unreachable!("never started"));
        }
    });
}

#[test]
fn panic_inside_thread_propagates_to_run() {
    let result = std::panic::catch_unwind(|| {
        run(1, |pe| {
            let t = cth_create(pe, |_pe| panic!("thread boom"));
            cth_resume(pe, &t);
            unreachable!("main context must re-raise the thread's panic");
        });
    });
    let err = result.expect_err("panic must propagate");
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "thread boom");
}

#[test]
fn thread_ids_are_unique_and_nonzero() {
    run(1, |pe| {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let t = cth_create(pe, |_pe| {});
            assert!(t.id() != 0, "0 names the main context");
            assert!(seen.insert(t.id()), "duplicate id {}", t.id());
            cth_resume(pe, &t);
        }
    });
}
