//! Thread-object semantics: suspend/resume, yield, strategies, scheduler
//! integration, and teardown of never-finished threads.
//!
//! Every semantic test runs on **each available backend** (fiber and
//! hand-off) via [`run_on_each_backend`] — the API contract is
//! backend-independent; only the constants differ.

use converse_core::{
    csd_enqueue, csd_exit_scheduler, csd_scheduler, run, run_with, MachineConfig, Message,
};
use converse_msg::Priority;
use converse_threads::{
    cth_awaken, cth_create, cth_create_of_size, cth_resume, cth_self, cth_set_strategy,
    cth_suspend, cth_yield, run_on_each_backend, CthBackend, CthRuntime, Strategy, Thread,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn resume_runs_thread_to_completion() {
    run_on_each_backend(1, |pe| {
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = hits.clone();
        let t = cth_create(pe, move |_pe| {
            h2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!t.is_exited());
        cth_resume(pe, &t);
        // Thread ran and exited; control returned to the main context.
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(t.is_exited());
    });
}

#[test]
fn suspend_returns_to_main_then_resume_continues() {
    run_on_each_backend(1, |pe| {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let l2 = log.clone();
        let t = cth_create(pe, move |pe| {
            l2.lock().push("first half");
            cth_suspend(pe);
            l2.lock().push("second half");
        });
        cth_resume(pe, &t);
        log.lock().push("main between");
        cth_resume(pe, &t);
        assert_eq!(
            *log.lock(),
            vec!["first half", "main between", "second half"]
        );
        assert!(t.is_exited());
    });
}

#[test]
fn self_identifies_contexts() {
    run_on_each_backend(1, |pe| {
        assert!(cth_self(pe).is_none(), "main context has no thread self");
        let observed = Arc::new(Mutex::new(None));
        let o2 = observed.clone();
        let t = cth_create(pe, move |pe| {
            *o2.lock() = cth_self(pe).map(|t| t.id());
        });
        let tid = t.id();
        cth_resume(pe, &t);
        assert_eq!(*observed.lock(), Some(tid));
        assert!(cth_self(pe).is_none());
    });
}

#[test]
fn yield_rotates_between_two_threads() {
    // Two threads alternately yield; the default FIFO ready pool must
    // interleave them strictly.
    run_on_each_backend(1, |pe| {
        let log: Arc<Mutex<Vec<(u8, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let mk = |tag: u8, log: Arc<Mutex<Vec<(u8, u32)>>>| {
            move |pe: &converse_core::Pe| {
                for i in 0..3u32 {
                    log.lock().push((tag, i));
                    cth_yield(pe);
                }
            }
        };
        let ta = cth_create(pe, mk(b'a', log.clone()));
        let tb = cth_create(pe, mk(b'b', log.clone()));
        // Seed: awaken both, then hand control to A; when A first yields,
        // the pool holds [B, A], so they alternate.
        cth_awaken(pe, &tb);
        cth_resume(pe, &ta);
        // After A's first yield B runs, etc. When both exit, control
        // returns here (exit pops the pool; the last exit falls to main).
        assert!(ta.is_exited() && tb.is_exited());
        let expect = vec![
            (b'a', 0),
            (b'b', 0),
            (b'a', 1),
            (b'b', 1),
            (b'a', 2),
            (b'b', 2),
        ];
        assert_eq!(*log.lock(), expect);
    });
}

#[test]
fn exit_transfers_to_next_ready_thread() {
    run_on_each_backend(1, |pe| {
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        let t1 = cth_create(pe, move |_pe| l1.lock().push(1));
        let t2 = cth_create(pe, move |_pe| l2.lock().push(2));
        cth_awaken(pe, &t2); // pool: [t2]
        cth_resume(pe, &t1); // t1 runs, exits → pool pops t2 → t2 runs, exits → main
        assert_eq!(*log.lock(), vec![1, 2]);
        assert!(t1.is_exited() && t2.is_exited());
    });
}

#[test]
fn custom_strategy_lifo_scheduling() {
    // Override awaken/suspend to use a LIFO stack per the paper: "you may
    // alter the way CthAwaken and CthSuspend work together … only the
    // order of selection should be altered."
    run_on_each_backend(1, |pe| {
        let stack: Arc<Mutex<Vec<converse_threads::Thread>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let mk = |tag: u8, log: Arc<Mutex<Vec<u8>>>| {
            move |_pe: &converse_core::Pe| {
                log.lock().push(tag);
            }
        };
        let driver_log = log.clone();
        let ts: Vec<_> = (0..3u8)
            .map(|i| cth_create(pe, mk(i, log.clone())))
            .collect();
        for t in &ts {
            let st = stack.clone();
            let st2 = stack.clone();
            cth_set_strategy(
                pe,
                t,
                Strategy {
                    awaken: Box::new(move |_pe, t| st.lock().push(t)),
                    suspend: Box::new(move |_pe| st2.lock().pop()),
                },
            );
        }
        // A driver thread with the same LIFO strategy: its exit pops the
        // stack, so awakening order 0,1,2 must run 2,1,0.
        let st3 = stack.clone();
        let driver = cth_create(pe, move |_pe| {
            driver_log.lock().push(99);
        });
        cth_set_strategy(
            pe,
            &driver,
            Strategy {
                awaken: Box::new(|_pe, _t| unreachable!("driver is resumed directly")),
                suspend: Box::new(move |_pe| st3.lock().pop()),
            },
        );
        for t in &ts {
            cth_awaken(pe, t);
        }
        cth_resume(pe, &driver);
        assert_eq!(*log.lock(), vec![99, 2, 1, 0]);
    });
}

#[test]
fn csd_strategy_threads_run_via_scheduler() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let log = Arc::new(Mutex::new(Vec::<u32>::new()));
        for i in 0..4u32 {
            let l = log.clone();
            rt.spawn_scheduled(pe, move |_pe| {
                l.lock().push(i);
            });
        }
        assert!(log.lock().is_empty(), "threads wait for the scheduler");
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        csd_enqueue(pe, Message::new(stop, b""));
        // Ready-thread messages were enqueued before the stop message.
        csd_scheduler(pe, -1);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    });
}

#[test]
fn csd_strategy_respects_priorities() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let log = Arc::new(Mutex::new(Vec::<i32>::new()));
        for prio in [5, -2, 0, 9, -7] {
            let l = log.clone();
            rt.spawn_scheduled_prio(pe, Priority::Int(prio), move |_pe| {
                l.lock().push(prio);
            });
        }
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        // The stop goes in FIFO (priority 0 class) — negative-priority
        // threads run before it, positive after... so give it the worst
        // priority to flush everything first.
        let m = Message::with_priority(stop, &Priority::Int(i32::MAX), b"");
        converse_core::csd_enqueue_general(pe, m, converse_core::QueueingMode::PrioFifo);
        csd_scheduler(pe, -1);
        assert_eq!(*log.lock(), vec![-7, -2, 0, 5, 9]);
    });
}

#[test]
fn thread_blocks_on_message_and_is_awakened_by_handler() {
    // The tSM pattern from §3.2.2, hand-rolled: a thread blocks; a
    // message handler awakens it with the payload.
    run_on_each_backend(2, |pe| {
        type WaitSlot = (Option<converse_threads::Thread>, Option<Vec<u8>>);
        let slot: Arc<Mutex<WaitSlot>> = Arc::new(Mutex::new((None, None)));
        let s2 = slot.clone();
        let data_h = pe.register_handler(move |pe, msg| {
            let mut s = s2.lock();
            s.1 = Some(msg.payload().to_vec());
            if let Some(t) = s.0.take() {
                drop(s);
                cth_awaken(pe, &t);
            }
        });
        pe.barrier();
        if pe.my_pe() == 0 {
            let rt = CthRuntime::get(pe);
            let slot3 = slot.clone();
            let done = Arc::new(AtomicU64::new(0));
            let d2 = done.clone();
            rt.spawn_scheduled(pe, move |pe| {
                // Block until the payload arrives.
                loop {
                    {
                        let s = slot3.lock();
                        if let Some(data) = &s.1 {
                            assert_eq!(data, b"wake up");
                            break;
                        }
                    }
                    let me = cth_self(pe).expect("inside a thread");
                    slot3.lock().0 = Some(me);
                    cth_suspend(pe);
                }
                d2.store(1, Ordering::SeqCst);
                csd_exit_scheduler(pe);
            });
            csd_scheduler(pe, -1);
            assert_eq!(done.load(Ordering::SeqCst), 1);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(50));
            pe.sync_send_and_free(0, Message::new(data_h, b"wake up"));
        }
        pe.barrier();
    });
}

#[test]
fn many_threads_with_small_stacks() {
    run_on_each_backend(1, |pe| {
        let count = Arc::new(AtomicU64::new(0));
        let n = 200;
        let ts: Vec<_> = (0..n)
            .map(|_| {
                let c = count.clone();
                cth_create_of_size(
                    pe,
                    move |pe| {
                        c.fetch_add(1, Ordering::Relaxed);
                        cth_yield(pe);
                        c.fetch_add(1, Ordering::Relaxed);
                    },
                    64 * 1024,
                )
            })
            .collect();
        for t in &ts[1..] {
            cth_awaken(pe, t);
        }
        cth_resume(pe, &ts[0]);
        assert_eq!(count.load(Ordering::Relaxed), 2 * n);
        assert!(ts.iter().all(|t| t.is_exited()));
    });
}

#[test]
fn unfinished_threads_are_reaped_at_machine_exit() {
    // A thread that suspends forever must not hang machine teardown.
    run_on_each_backend(1, |pe| {
        let t = cth_create(pe, |pe| {
            cth_suspend(pe); // never awakened
            unreachable!("poisoned thread unwinds instead of resuming");
        });
        cth_resume(pe, &t);
        let rt = CthRuntime::get(pe);
        assert_eq!(rt.live_len(), 1, "thread still suspended at exit");
        // Entry returns now; the exit hook poisons and joins the thread.
    });
}

#[test]
fn never_started_threads_are_reaped() {
    run_on_each_backend(1, |pe| {
        for _ in 0..10 {
            let _t = cth_create(pe, |_pe| unreachable!("never started"));
        }
    });
}

#[test]
fn panic_inside_thread_propagates_to_run() {
    for &backend in CthBackend::available() {
        let result = std::panic::catch_unwind(|| {
            let cfg = MachineConfig::new(1).thread_backend(backend.to_config());
            run_with(cfg, |pe| {
                let t = cth_create(pe, |_pe| panic!("thread boom"));
                cth_resume(pe, &t);
                unreachable!("main context must re-raise the thread's panic");
            });
        });
        let err = result.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "thread boom", "[{}]", backend.label());
    }
}

#[test]
fn thread_ids_are_unique_and_nonzero() {
    run_on_each_backend(1, |pe| {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let t = cth_create(pe, |_pe| {});
            assert!(t.id() != 0, "0 names the main context");
            assert!(seen.insert(t.id()), "duplicate id {}", t.id());
            cth_resume(pe, &t);
        }
    });
}

#[test]
fn fiber_backend_is_default_where_supported() {
    if std::env::var_os("CTH_BACKEND").is_some() {
        // CI pins a backend explicitly; the default is not in play.
        return;
    }
    run(1, |pe| {
        let rt = CthRuntime::get(pe);
        let expect = if CthBackend::fiber_supported() {
            CthBackend::Fiber
        } else {
            CthBackend::Handoff
        };
        assert_eq!(rt.backend(), expect);
    });
}

#[test]
fn resume_from_inside_thread_chains_directly() {
    // A thread resuming another thread is a context-to-context transfer
    // (on the fiber backend: one direct switch, no main-context bounce).
    run_on_each_backend(1, |pe| {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let slot: Arc<Mutex<Option<Thread>>> = Arc::new(Mutex::new(None));
        let (lb, sb) = (log.clone(), slot.clone());
        let tb = cth_create(pe, move |pe| {
            lb.lock().push("b: run");
            // Let A finish after us: its exit will return to main.
            let ta = sb.lock().take().expect("A registered itself");
            cth_awaken(pe, &ta);
        });
        let (la, sa, tb2) = (log.clone(), slot.clone(), tb.clone());
        let ta = cth_create(pe, move |pe| {
            la.lock().push("a: start");
            *sa.lock() = Some(cth_self(pe).expect("inside a thread"));
            cth_resume(pe, &tb2); // thread-to-thread transfer
            la.lock().push("a: back");
        });
        cth_resume(pe, &ta);
        assert_eq!(*log.lock(), vec!["a: start", "b: run", "a: back"]);
        assert!(ta.is_exited() && tb.is_exited());
    });
}

#[test]
fn yield_cycles_count_direct_handoffs() {
    // Two rotating threads: every intermediate switch takes the
    // suspend-with-ready-successor fast path on both backends.
    run_on_each_backend(1, |pe| {
        let spins = Arc::new(AtomicU64::new(0));
        let mk = |spins: Arc<AtomicU64>| {
            move |pe: &converse_core::Pe| {
                while spins.fetch_add(1, Ordering::Relaxed) < 40 {
                    cth_yield(pe);
                }
            }
        };
        let ta = cth_create(pe, mk(spins.clone()));
        let tb = cth_create(pe, mk(spins.clone()));
        cth_awaken(pe, &tb);
        cth_resume(pe, &ta);
        let rt = CthRuntime::get(pe);
        assert!(
            rt.direct_handoffs() >= 20,
            "[{}] rotating yields must take the fast path (got {})",
            rt.backend().label(),
            rt.direct_handoffs()
        );
        assert!(rt.switches() > rt.direct_handoffs());
    });
}

#[test]
fn stack_pool_reuses_stacks_across_many_threads() {
    // The stack-leak regression test: 10 000 create-run-exit cycles must
    // recycle one hot stack, not allocate 10 000 (fiber backend; the
    // hand-off backend uses OS stacks and reports zeros).
    if !CthBackend::fiber_supported() {
        return;
    }
    let cfg = MachineConfig::new(1).thread_backend(CthBackend::Fiber.to_config());
    run_with(cfg, |pe| {
        const N: u64 = 10_000;
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..N {
            let c = count.clone();
            let t = cth_create(pe, move |_pe| {
                c.fetch_add(1, Ordering::Relaxed);
            });
            cth_resume(pe, &t);
        }
        assert_eq!(count.load(Ordering::Relaxed), N);
        let stats = CthRuntime::get(pe).stack_pool_stats();
        assert_eq!(stats.hits + stats.misses, N, "{stats:?}");
        assert!(
            stats.misses <= 1,
            "first thread allocates, the rest reuse: {stats:?}"
        );
        assert_eq!(stats.recycled, N, "every exited stack returns: {stats:?}");
        assert_eq!(stats.discarded, 0, "{stats:?}");
    });
}

#[test]
fn distinct_stack_sizes_pool_in_separate_classes() {
    if !CthBackend::fiber_supported() {
        return;
    }
    let cfg = MachineConfig::new(1).thread_backend(CthBackend::Fiber.to_config());
    run_with(cfg, |pe| {
        for _ in 0..5 {
            for size in [16 * 1024, 64 * 1024, 256 * 1024] {
                let t = cth_create_of_size(pe, |_pe| {}, size);
                cth_resume(pe, &t);
            }
        }
        let stats = CthRuntime::get(pe).stack_pool_stats();
        // One miss per class on the first round, hits thereafter.
        assert_eq!(stats.misses, 3, "{stats:?}");
        assert_eq!(stats.hits, 12, "{stats:?}");
    });
}
