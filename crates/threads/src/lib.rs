//! The Converse **thread object** (paper §3.2.2, appendix §5).
//!
//! "Converse separates the capabilities of thread packages modularly. In
//! particular, it provides a thread object that encapsulates the
//! essential capability of a thread — the ability to suspend and resume a
//! thread of control … The thread object is not meant to be used by the
//! end user directly … runtime systems of individual languages or
//! packages may use the thread object to implement their thread
//! functionalities easily."
//!
//! The primitives are exactly the paper's: create ([`cth_create`] /
//! [`cth_create_of_size`]), resume ([`cth_resume`]), suspend
//! ([`cth_suspend`]), awaken ([`cth_awaken`]), yield ([`cth_yield`]),
//! exit ([`cth_exit`] — implicit when the thread function returns), self
//! ([`cth_self`]), and the per-thread strategy override
//! ([`cth_set_strategy`]) through which "each module can control the
//! order in which its own threads are scheduled".
//!
//! # Substitution note (user-level → hand-off OS threads)
//!
//! The 1996 implementation multiplexes user-level stacks with
//! `setjmp`/`longjmp`. Safe Rust cannot re-point the stack pointer, so a
//! thread object here owns a real OS thread gated by a hand-off token:
//! **exactly one context per PE runs at any instant**, transfers of
//! control are explicit, and every semantic property of the thread
//! object (own stack, cooperative scheduling, pluggable awaken/suspend
//! strategy, integration with the Csd scheduler as a generalized
//! message) is preserved. Only the context-switch constant differs
//! (~µs instead of ~100 ns); EXPERIMENTS.md reports it honestly.
//!
//! # Scheduler integration
//!
//! [`CthRuntime::spawn_scheduled`] gives a thread the **Csd strategy**:
//! awakening it enqueues a generalized message whose handler resumes the
//! thread — the unification of threads and messages the paper's design
//! rests on (§3.1.1: a generalized message can be "a scheduler entry for
//! a ready thread").

#[cfg(all(target_arch = "x86_64", unix))]
pub mod fibers;

use converse_core::csd;
use converse_machine::{HandlerId, Message, Pe};
use converse_msg::{pack::Packer, pack::Unpacker, Priority};
use converse_queue::QueueingMode;
use converse_trace::Event;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload used to unwind a poisoned (machine-teardown) thread without
/// tripping the global panic hook.
struct ThreadPoison;

/// Payload used by [`cth_exit`] to unwind to the thread's landing pad.
struct ExitRequested;

/// A thread's entry function, boxed for storage until first resume.
type Entry = Box<dyn FnOnce(&Pe) + Send>;

/// How a thread is awakened (`CthSetStrategy` awakefn).
pub type AwakenFn = Box<dyn FnMut(&Pe, Thread) + Send>;

/// How a suspending thread picks its successor (`CthSetStrategy`
/// suspfn); `None` = the PE's scheduler/main context.
pub type SuspendFn = Box<dyn FnMut(&Pe) -> Option<Thread> + Send>;

enum State {
    /// Created, no OS thread yet; holds the entry function.
    NotStarted(Option<Entry>),
    /// Suspended: the OS thread is blocked on the hand-off condvar.
    Parked,
    /// This context currently holds the PE's run token.
    Running,
    /// The thread function returned (or the thread was poisoned).
    Exited,
    /// Machine teardown: next wakeup unwinds the stack.
    Poisoned,
}

struct Inner {
    id: u64,
    state: Mutex<State>,
    cv: Condvar,
    strategy: Mutex<Option<Strategy>>,
    stack_size: usize,
}

/// How a thread is awakened and what runs when it suspends
/// (`CthSetStrategy`).
pub struct Strategy {
    /// Called by [`cth_awaken`]: store the thread where the suspend side
    /// will find it.
    pub awaken: AwakenFn,
    /// Called by [`cth_suspend`] on this thread: pick the next context
    /// (`None` = the PE's scheduler/main context).
    pub suspend: SuspendFn,
}

/// A handle to a Converse thread object (`THREAD *`). Clone freely; all
/// clones denote the same thread. Thread objects are PE-local: create,
/// awaken and resume them only on their home PE.
#[derive(Clone)]
pub struct Thread(Arc<Inner>);

impl Thread {
    /// Runtime-unique thread id (0 names the PE's main context).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// True once the thread function has returned.
    pub fn is_exited(&self) -> bool {
        matches!(*self.0.state.lock(), State::Exited)
    }

    fn same(&self, other: &Thread) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Thread({})", self.0.id)
    }
}

impl PartialEq for Thread {
    fn eq(&self, other: &Self) -> bool {
        self.same(other)
    }
}

impl Eq for Thread {}

/// Default stack size for thread objects (`STACKSIZE`).
pub const DEFAULT_STACK_SIZE: usize = 256 * 1024;

/// Per-PE thread runtime (`CthInit` creates it implicitly on first use).
pub struct CthRuntime {
    /// The context currently holding the run token.
    current: Mutex<Thread>,
    /// The PE's original context: the scheduler/entry stack.
    main: Thread,
    /// Default ready pool used by the default suspend/awaken strategy.
    ready: Mutex<VecDeque<Thread>>,
    /// Every thread created on this PE, with its OS join handle once
    /// started; consumed at teardown.
    live: Mutex<Vec<(Thread, Option<std::thread::JoinHandle<()>>)>>,
    next_id: AtomicU64,
    /// Handler resuming a thread from a generalized message (the Csd
    /// integration).
    resume_handler: HandlerId,
    /// Threads awaiting their Csd resume message, by id.
    scheduled: Mutex<HashMap<u64, Thread>>,
    /// A panic raised inside a thread, carried to the main context.
    pending_panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct RtSlot(Arc<CthRuntime>);

impl CthRuntime {
    /// The thread runtime of this PE, initialized on first call
    /// (`CthInit`). Registers one handler — call it at the same
    /// registration position on every PE if threads are used anywhere —
    /// and installs the teardown hook that poisons still-suspended
    /// threads when the PE's entry returns.
    pub fn get(pe: &Pe) -> Arc<CthRuntime> {
        if let Some(s) = pe.try_local::<RtSlot>() {
            return s.0.clone();
        }
        let resume_handler = pe.register_handler(|pe, msg| {
            let rt = CthRuntime::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let tid = u.u64().expect("cth resume: tid");
            let t = rt.scheduled.lock().remove(&tid).unwrap_or_else(|| {
                panic!("PE {}: resume message for unknown thread {tid}", pe.my_pe())
            });
            cth_resume(pe, &t);
        });
        let main = Thread(Arc::new(Inner {
            id: 0,
            state: Mutex::new(State::Running),
            cv: Condvar::new(),
            strategy: Mutex::new(None),
            stack_size: 0,
        }));
        let rt = Arc::new(CthRuntime {
            current: Mutex::new(main.clone()),
            main,
            ready: Mutex::new(VecDeque::new()),
            live: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            resume_handler,
            scheduled: Mutex::new(HashMap::new()),
            pending_panic: Mutex::new(None),
        });
        pe.local(|| RtSlot(rt.clone()));
        let rt2 = rt.clone();
        pe.on_exit(move |pe| rt2.teardown(pe));
        rt
    }

    /// Spawn a thread under the **Csd strategy** and awaken it, so it
    /// starts running when the scheduler reaches its ready-entry
    /// (`tSMCreate`-style). Returns its handle.
    pub fn spawn_scheduled<F>(&self, pe: &Pe, f: F) -> Thread
    where
        F: FnOnce(&Pe) + Send + 'static,
    {
        self.spawn_scheduled_prio(pe, Priority::None, f)
    }

    /// Like [`CthRuntime::spawn_scheduled`] with an explicit scheduling
    /// priority for the thread's ready messages.
    pub fn spawn_scheduled_prio<F>(&self, pe: &Pe, prio: Priority, f: F) -> Thread
    where
        F: FnOnce(&Pe) + Send + 'static,
    {
        let t = cth_create(pe, f);
        set_csd_strategy(pe, &t, prio);
        cth_awaken(pe, &t);
        t
    }

    /// Number of threads in the default ready pool.
    pub fn ready_len(&self) -> usize {
        self.ready.lock().len()
    }

    /// Number of live (created, not yet exited) threads.
    pub fn live_len(&self) -> usize {
        self.live
            .lock()
            .iter()
            .filter(|(t, _)| !t.is_exited())
            .count()
    }

    /// Poison every still-suspended thread and join their OS threads.
    fn teardown(&self, pe: &Pe) {
        let entries: Vec<(Thread, Option<std::thread::JoinHandle<()>>)> =
            std::mem::take(&mut *self.live.lock());
        for (t, _) in &entries {
            let mut s = t.0.state.lock();
            match &mut *s {
                State::NotStarted(entry) => {
                    entry.take();
                    *s = State::Exited;
                }
                State::Parked => {
                    *s = State::Poisoned;
                    t.0.cv.notify_all();
                }
                State::Running => unreachable!(
                    "PE {}: teardown while thread {} runs — the main context holds the token",
                    pe.my_pe(),
                    t.id()
                ),
                State::Exited | State::Poisoned => {}
            }
        }
        for (_, handle) in entries {
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

fn rt(pe: &Pe) -> Arc<CthRuntime> {
    CthRuntime::get(pe)
}

/// Create a thread object with the default stack size (`CthCreate`).
/// The thread does not run until resumed or awakened.
pub fn cth_create<F>(pe: &Pe, f: F) -> Thread
where
    F: FnOnce(&Pe) + Send + 'static,
{
    cth_create_of_size(pe, f, DEFAULT_STACK_SIZE)
}

/// Create a thread object with an explicit stack size
/// (`CthCreateOfSize`).
pub fn cth_create_of_size<F>(pe: &Pe, f: F, stack_size: usize) -> Thread
where
    F: FnOnce(&Pe) + Send + 'static,
{
    let rt = rt(pe);
    let id = rt.next_id.fetch_add(1, Ordering::Relaxed);
    let t = Thread(Arc::new(Inner {
        id,
        state: Mutex::new(State::NotStarted(Some(Box::new(f)))),
        cv: Condvar::new(),
        strategy: Mutex::new(Some(default_strategy())),
        stack_size,
    }));
    rt.live.lock().push((t.clone(), None));
    pe.trace_event(Event::ThreadCreate { tid: id });
    t
}

fn default_strategy() -> Strategy {
    Strategy {
        awaken: Box::new(|pe, t| {
            rt(pe).ready.lock().push_back(t);
        }),
        suspend: Box::new(|pe| rt(pe).ready.lock().pop_front()),
    }
}

/// Install a per-thread scheduling strategy (`CthSetStrategy`): how
/// [`cth_awaken`] stores the thread, and which thread [`cth_suspend`]
/// picks when *this* thread gives up control.
pub fn cth_set_strategy(_pe: &Pe, t: &Thread, s: Strategy) {
    *t.0.strategy.lock() = Some(s);
}

/// Give `t` the Csd strategy: awakening enqueues a generalized message
/// (optionally prioritized) whose handler resumes the thread; suspension
/// returns control to the scheduler context.
pub fn set_csd_strategy(pe: &Pe, t: &Thread, prio: Priority) {
    let tid = t.id();
    cth_set_strategy(
        pe,
        t,
        Strategy {
            awaken: Box::new(move |pe, t| {
                let rt = rt(pe);
                rt.scheduled.lock().insert(tid, t);
                let payload = Packer::new().u64(tid).finish();
                let msg = Message::with_priority(rt.resume_handler, &prio, &payload);
                let mode = if prio == Priority::None {
                    QueueingMode::Fifo
                } else {
                    QueueingMode::PrioFifo
                };
                csd::csd_enqueue_general(pe, msg, mode);
            }),
            suspend: Box::new(|_pe| None),
        },
    );
}

/// The currently executing thread (`CthSelf`); `None` in the PE's main
/// (scheduler) context.
pub fn cth_self(pe: &Pe) -> Option<Thread> {
    let rt = rt(pe);
    let cur = rt.current.lock().clone();
    if cur.same(&rt.main) {
        None
    } else {
        Some(cur)
    }
}

/// Transfer control to `t` immediately (`CthResume`). The calling
/// context is parked un-awakened: someone must `cth_resume` or
/// `cth_awaken` it later, exactly as in the C API.
pub fn cth_resume(pe: &Pe, t: &Thread) {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    if me.same(t) {
        return;
    }
    transfer(pe, &rt, &me, t);
}

/// Suspend the current thread and transfer control according to its
/// strategy (`CthSuspend`): by default the oldest thread in the ready
/// pool, else the PE's main context.
pub fn cth_suspend(pe: &Pe) {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    assert!(
        !me.same(&rt.main),
        "PE {}: cth_suspend called from the main context — only thread objects suspend",
        pe.my_pe()
    );
    let next = {
        let mut strat = me.0.strategy.lock();
        match strat.as_mut() {
            Some(s) => (s.suspend)(pe),
            None => rt.ready.lock().pop_front(),
        }
    };
    let target = next.unwrap_or_else(|| rt.main.clone());
    pe.trace_event(Event::ThreadSuspend { tid: me.id() });
    transfer(pe, &rt, &me, &target);
}

/// Add `t` to its scheduler's ready pool (`CthAwaken`): permission for a
/// future suspend to transfer control to it. Must only be called when
/// the thread is genuinely ready to continue.
pub fn cth_awaken(pe: &Pe, t: &Thread) {
    let rt = rt(pe);
    {
        let s = t.0.state.lock();
        assert!(
            !matches!(*s, State::Exited | State::Poisoned),
            "PE {}: awaken of exited thread {}",
            pe.my_pe(),
            t.id()
        );
    }
    let mut strat = t.0.strategy.lock();
    match strat.as_mut() {
        Some(s) => (s.awaken)(pe, t.clone()),
        None => rt.ready.lock().push_back(t.clone()),
    }
}

/// Awaken the current thread then suspend (`CthYield`): control will
/// eventually return here.
pub fn cth_yield(pe: &Pe) {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    assert!(
        !me.same(&rt.main),
        "PE {}: cth_yield from the main context",
        pe.my_pe()
    );
    cth_awaken(pe, &me);
    cth_suspend(pe);
}

/// Terminate the current thread (`CthExit`): control transfers per the
/// thread's suspend strategy; the thread object becomes `Exited`.
/// Returning from the thread function calls this implicitly. Unwinds, so
/// destructors on the thread's stack run.
pub fn cth_exit(pe: &Pe) -> ! {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    assert!(
        !me.same(&rt.main),
        "PE {}: cth_exit from the main context",
        pe.my_pe()
    );
    std::panic::resume_unwind(Box::new(ExitRequested));
}

/// The core hand-off: mark `from` parked, start/wake `to`, wait until
/// someone hands the token back to `from`.
fn transfer(pe: &Pe, rt: &Arc<CthRuntime>, from: &Thread, to: &Thread) {
    debug_assert!(!from.same(to));
    *rt.current.lock() = to.clone();
    pe.trace_event(Event::ThreadResume { tid: to.id() });
    // Park self BEFORE waking the target so the target can immediately
    // re-resume us without a lost wakeup.
    {
        let mut s = from.0.state.lock();
        debug_assert!(matches!(*s, State::Running));
        *s = State::Parked;
    }
    wake(pe, rt, to);
    wait_for_token(rt, from);
}

fn wake(pe: &Pe, rt: &Arc<CthRuntime>, to: &Thread) {
    let mut s = to.0.state.lock();
    match &mut *s {
        State::NotStarted(entry) => {
            let entry = entry.take().expect("entry present before first start");
            *s = State::Running;
            drop(s);
            spawn_os_thread(pe, rt, to, entry);
        }
        State::Parked => {
            *s = State::Running;
            to.0.cv.notify_all();
        }
        State::Running => panic!("PE {}: resume of running thread {}", pe.my_pe(), to.id()),
        State::Exited | State::Poisoned => {
            panic!("PE {}: resume of exited thread {}", pe.my_pe(), to.id())
        }
    }
}

fn wait_for_token(rt: &Arc<CthRuntime>, me: &Thread) {
    {
        let mut s = me.0.state.lock();
        loop {
            match *s {
                State::Parked => me.0.cv.wait(&mut s),
                State::Running => break,
                State::Poisoned => {
                    drop(s);
                    std::panic::resume_unwind(Box::new(ThreadPoison));
                }
                _ => unreachable!("parked context can only become Running or Poisoned"),
            }
        }
    }
    // Back in control. If a thread carried a panic to the main context,
    // re-raise it here so it propagates out of the PE entry.
    if me.same(&rt.main) {
        if let Some(p) = rt.pending_panic.lock().take() {
            std::panic::resume_unwind(p);
        }
    }
}

fn spawn_os_thread(pe: &Pe, rt: &Arc<CthRuntime>, t: &Thread, entry: Entry) {
    let pe_arc = pe.arc();
    let rt2 = rt.clone();
    let t2 = t.clone();
    let handle = std::thread::Builder::new()
        .name(format!("pe{}-cth{}", pe.my_pe(), t.id()))
        .stack_size(t.0.stack_size.max(16 * 1024))
        .spawn(move || {
            let pe = pe_arc;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                entry(&pe);
            }));
            let user_panic = match result {
                Ok(()) => None,
                Err(p) if p.is::<ExitRequested>() || p.is::<ThreadPoison>() => None,
                Err(p) => Some(p),
            };
            finish_thread(&pe, &rt2, &t2, user_panic);
        })
        .expect("spawn thread-object OS thread");
    // Record the join handle for teardown.
    let mut live = rt.live.lock();
    if let Some(slot) = live.iter_mut().find(|(lt, _)| lt.same(t)) {
        slot.1 = Some(handle);
    } else {
        live.push((t.clone(), Some(handle)));
    }
}

/// Common tail of a thread's life: mark exited and hand the token to the
/// next context (per strategy, else ready pool, else main).
fn finish_thread(
    pe: &Pe,
    rt: &Arc<CthRuntime>,
    me: &Thread,
    user_panic: Option<Box<dyn std::any::Any + Send>>,
) {
    if matches!(*me.0.state.lock(), State::Poisoned) {
        // Teardown owns the machine; just mark exited and leave.
        *me.0.state.lock() = State::Exited;
        return;
    }
    if let Some(p) = user_panic {
        // Carry the panic to the main context and abort the machine so
        // other PEs unblock instead of deadlocking.
        *rt.pending_panic.lock() = Some(p);
        pe.abort_machine();
        *me.0.state.lock() = State::Exited;
        let main = rt.main.clone();
        *rt.current.lock() = main.clone();
        let mut s = main.0.state.lock();
        if matches!(*s, State::Parked) {
            *s = State::Running;
            main.0.cv.notify_all();
        }
        return;
    }
    let next = {
        let mut strat = me.0.strategy.lock();
        match strat.as_mut() {
            Some(s) => (s.suspend)(pe),
            None => rt.ready.lock().pop_front(),
        }
    };
    let target = next.unwrap_or_else(|| rt.main.clone());
    *me.0.state.lock() = State::Exited;
    *rt.current.lock() = target.clone();
    pe.trace_event(Event::ThreadResume { tid: target.id() });
    wake(pe, rt, &target);
}
