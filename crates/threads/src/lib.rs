//! The Converse **thread object** (paper §3.2.2, appendix §5).
//!
//! "Converse separates the capabilities of thread packages modularly. In
//! particular, it provides a thread object that encapsulates the
//! essential capability of a thread — the ability to suspend and resume a
//! thread of control … The thread object is not meant to be used by the
//! end user directly … runtime systems of individual languages or
//! packages may use the thread object to implement their thread
//! functionalities easily."
//!
//! The primitives are exactly the paper's: create ([`cth_create`] /
//! [`cth_create_of_size`]), resume ([`cth_resume`]), suspend
//! ([`cth_suspend`]), awaken ([`cth_awaken`]), yield ([`cth_yield`]),
//! exit ([`cth_exit`] — implicit when the thread function returns), self
//! ([`cth_self`]), and the per-thread strategy override
//! ([`cth_set_strategy`]) through which "each module can control the
//! order in which its own threads are scheduled".
//!
//! # Backends
//!
//! The 1996 implementation multiplexes user-level stacks with
//! `setjmp`/`longjmp` (~100 ns per switch). Two interchangeable backends
//! implement the same API here ([`CthBackend`]):
//!
//! * **`fiber`** (the default where supported: x86-64 System-V) — each
//!   thread object is a stackful [`converse_fiber::Fiber`]: a context
//!   switch saves/restores the callee-saved register set in ~20 ns, the
//!   same constant class the paper paid. Thread stacks come from a
//!   per-PE size-classed **stack pool** (create-run-exit reuses a hot
//!   stack instead of allocating; see [`CthRuntime::stack_pool_stats`]),
//!   and [`cth_suspend`] with a ready successor switches **directly** to
//!   it without bouncing through the Csd queue (the direct-handoff fast
//!   path; per-thread strategies are consulted as always).
//! * **`handoff`** (portable fallback) — a thread object owns a real OS
//!   thread gated by a hand-off token: exactly one context per PE runs
//!   at any instant. Every semantic property is identical; only the
//!   constant differs (~10 µs per switch).
//!
//! Selection: [`converse_machine::MachineConfig::thread_backend`] pins a
//! backend per machine; under the default `Auto`, the `CTH_BACKEND`
//! environment variable (`"fiber"` / `"handoff"`) overrides, else the
//! fiber backend is chosen where supported. Requesting `fiber` on an
//! unsupported target silently falls back to `handoff`, so portable code
//! never breaks.
//!
//! One caveat is inherited from the mechanism itself (and pinned by a
//! test in `converse-fiber`): a fiber-backed thread that is **dropped
//! while suspended leaks whatever is live on its stack** — destructors
//! do not run, exactly like discarding a `setjmp` context in 1996. The
//! runtime never does this on its own: machine teardown *poisons*
//! still-suspended threads, which unwinds their stacks and reclaims
//! them into the pool.
//!
//! # Scheduler integration
//!
//! [`CthRuntime::spawn_scheduled`] gives a thread the **Csd strategy**:
//! awakening it enqueues a generalized message whose handler resumes the
//! thread — the unification of threads and messages the paper's design
//! rests on (§3.1.1: a generalized message can be "a scheduler entry for
//! a ready thread"). This holds on both backends: the generalized
//! message format and the Csd queue are backend-independent.

use converse_core::csd;
use converse_machine::{HandlerId, Message, Pe, ThreadBackend};
use converse_msg::{pack::Unpacker, Priority};
use converse_queue::QueueingMode;
use converse_trace::Event;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload used to unwind a poisoned (machine-teardown) thread without
/// tripping the global panic hook.
struct ThreadPoison;

/// Payload used by [`cth_exit`] to unwind to the thread's landing pad.
struct ExitRequested;

/// A thread's entry function, boxed for storage until first resume.
type Entry = Box<dyn FnOnce(&Pe) + Send>;

/// How a thread is awakened (`CthSetStrategy` awakefn).
pub type AwakenFn = Box<dyn FnMut(&Pe, Thread) + Send>;

/// How a suspending thread picks its successor (`CthSetStrategy`
/// suspfn); `None` = the PE's scheduler/main context.
pub type SuspendFn = Box<dyn FnMut(&Pe) -> Option<Thread> + Send>;

enum State {
    /// Created, no execution context yet; holds the entry function.
    NotStarted(Option<Entry>),
    /// Suspended: fiber parked in the runtime map, or OS thread blocked
    /// on the hand-off condvar.
    Parked,
    /// This context currently holds the PE's run token.
    Running,
    /// The thread function returned (or the thread was poisoned).
    Exited,
    /// Machine teardown: next wakeup unwinds the stack.
    Poisoned,
}

struct Inner {
    id: u64,
    state: Mutex<State>,
    /// Hand-off backend only: the condvar the owning OS thread parks on.
    cv: Condvar,
    /// `None` = the default ready-pool strategy (the common case pays no
    /// boxed-closure indirection on the switch path).
    strategy: Mutex<Option<Strategy>>,
    stack_size: usize,
    /// Fiber backend only: the running fiber's yield handle
    /// (`*const FiberHandle` as usize; 0 while not on a fiber stack).
    /// Only dereferenced from the fiber itself, where it is valid by
    /// construction.
    handle: AtomicU64,
}

/// How a thread is awakened and what runs when it suspends
/// (`CthSetStrategy`).
pub struct Strategy {
    /// Called by [`cth_awaken`]: store the thread where the suspend side
    /// will find it.
    pub awaken: AwakenFn,
    /// Called by [`cth_suspend`] on this thread: pick the next context
    /// (`None` = the PE's scheduler/main context).
    pub suspend: SuspendFn,
}

/// A handle to a Converse thread object (`THREAD *`). Clone freely; all
/// clones denote the same thread. Thread objects are PE-local: create,
/// awaken and resume them only on their home PE.
#[derive(Clone)]
pub struct Thread(Arc<Inner>);

impl Thread {
    /// Runtime-unique thread id (0 names the PE's main context).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// True once the thread function has returned.
    pub fn is_exited(&self) -> bool {
        matches!(*self.0.state.lock(), State::Exited)
    }

    fn same(&self, other: &Thread) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Thread({})", self.0.id)
    }
}

impl PartialEq for Thread {
    fn eq(&self, other: &Self) -> bool {
        self.same(other)
    }
}

impl Eq for Thread {}

/// Default stack size for thread objects (`STACKSIZE`).
pub const DEFAULT_STACK_SIZE: usize = 256 * 1024;

/// Identity hasher for runtime-assigned thread ids: they are already
/// unique sequential u64s, so SipHash buys nothing on the switch path.
#[derive(Default)]
struct TidHasher(u64);

impl std::hash::Hasher for TidHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("thread ids hash via write_u64")
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type TidBuild = std::hash::BuildHasherDefault<TidHasher>;

/// How often a [`Event::ThreadSwitch`] record is emitted: one per this
/// many context switches. A fiber switch is ~20 ns; recording each one
/// would dwarf the thing being measured.
const SWITCH_SAMPLE: u64 = 32;

/// The mechanism backing the thread objects of one PE's runtime — the
/// *resolved* form of [`converse_machine::ThreadBackend`] (no `Auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CthBackend {
    /// Stackful user-level fibers (x86-64 SysV): ~20 ns switch, pooled
    /// stacks, direct-handoff suspend fast path.
    Fiber,
    /// Hand-off OS threads: portable, ~10 µs switch.
    Handoff,
}

impl CthBackend {
    /// Short lowercase label (`"fiber"` / `"handoff"`), as used in
    /// [`Event::ThreadSwitch`] and the `CTH_BACKEND` variable.
    pub fn label(self) -> &'static str {
        match self {
            CthBackend::Fiber => "fiber",
            CthBackend::Handoff => "handoff",
        }
    }

    /// True when this build target supports the fiber backend.
    pub fn fiber_supported() -> bool {
        cfg!(all(target_arch = "x86_64", unix))
    }

    /// The backends usable on this target, fastest first. Test suites
    /// iterate this to prove API equivalence on every backend.
    pub fn available() -> &'static [CthBackend] {
        if Self::fiber_supported() {
            &[CthBackend::Fiber, CthBackend::Handoff]
        } else {
            &[CthBackend::Handoff]
        }
    }

    /// The machine-config request pinning this backend.
    pub fn to_config(self) -> ThreadBackend {
        match self {
            CthBackend::Fiber => ThreadBackend::Fiber,
            CthBackend::Handoff => ThreadBackend::Handoff,
        }
    }

    /// Resolve the machine's requested backend for `pe`: an explicit
    /// config wins; `Auto` honours `CTH_BACKEND` and otherwise picks
    /// fiber where supported; an unsupported fiber request falls back to
    /// hand-off.
    fn resolve(pe: &Pe) -> CthBackend {
        let choice = match pe.thread_backend() {
            ThreadBackend::Fiber => CthBackend::Fiber,
            ThreadBackend::Handoff => CthBackend::Handoff,
            ThreadBackend::Auto => match std::env::var("CTH_BACKEND").ok().as_deref() {
                Some("fiber") => CthBackend::Fiber,
                Some("handoff") => CthBackend::Handoff,
                Some(other) => {
                    panic!("CTH_BACKEND must be \"fiber\" or \"handoff\", got {other:?}")
                }
                None => CthBackend::Fiber,
            },
        };
        if choice == CthBackend::Fiber && !Self::fiber_supported() {
            CthBackend::Handoff
        } else {
            choice
        }
    }
}

/// Stack-pool counters (fiber backend): the thread-stack analogue of the
/// message-buffer pool's `PoolStats`. All zero on the hand-off backend.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StackPoolStats {
    /// Stack requests served from the free list (no allocation).
    pub hits: u64,
    /// Stack requests that went to the system allocator.
    pub misses: u64,
    /// Finished-thread stacks retained for reuse.
    pub recycled: u64,
    /// Finished-thread stacks dropped (class full or unpoolable size).
    pub discarded: u64,
}

/// Per-PE thread runtime (`CthInit` creates it implicitly on first use).
pub struct CthRuntime {
    /// Which mechanism backs this PE's thread objects.
    backend: CthBackend,
    /// The context currently holding the run token.
    current: Mutex<Thread>,
    /// The PE's original context: the scheduler/entry stack.
    main: Thread,
    /// Default ready pool used by the default suspend/awaken strategy.
    ready: Mutex<VecDeque<Thread>>,
    /// Every thread created on this PE, with its OS join handle once
    /// started (hand-off backend); consumed at teardown.
    live: Mutex<Vec<(Thread, Option<std::thread::JoinHandle<()>>)>>,
    next_id: AtomicU64,
    /// Handler resuming a thread from a generalized message (the Csd
    /// integration).
    resume_handler: HandlerId,
    /// Threads awaiting their Csd resume message, by id.
    scheduled: Mutex<HashMap<u64, Thread, TidBuild>>,
    /// A panic raised inside a hand-off thread, carried to the main
    /// context (fiber panics propagate synchronously instead).
    pending_panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Context switches performed (both backends) — the sampling key for
    /// [`Event::ThreadSwitch`].
    switches: AtomicU64,
    /// Switches that took the direct-handoff fast path: suspend went
    /// straight to the next ready thread, no Csd queue bounce.
    direct: AtomicU64,
    /// Fiber-backend state (parked fibers, pending directive, stack
    /// pool); inert in hand-off mode.
    fiber: fb::FiberCell,
}

struct RtSlot(Arc<CthRuntime>);

impl CthRuntime {
    /// The thread runtime of this PE, initialized on first call
    /// (`CthInit`). Registers one handler — call it at the same
    /// registration position on every PE if threads are used anywhere —
    /// and installs the teardown hook that poisons still-suspended
    /// threads when the PE's entry returns.
    pub fn get(pe: &Pe) -> Arc<CthRuntime> {
        if let Some(s) = pe.try_local::<RtSlot>() {
            return s.0.clone();
        }
        let resume_handler = pe.register_handler(|pe, msg| {
            let rt = CthRuntime::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let tid = u.u64().expect("cth resume: tid");
            let t = rt.scheduled.lock().remove(&tid).unwrap_or_else(|| {
                panic!("PE {}: resume message for unknown thread {tid}", pe.my_pe())
            });
            cth_resume(pe, &t);
        });
        let main = Thread(Arc::new(Inner {
            id: 0,
            state: Mutex::new(State::Running),
            cv: Condvar::new(),
            strategy: Mutex::new(None),
            stack_size: 0,
            handle: AtomicU64::new(0),
        }));
        let rt = Arc::new(CthRuntime {
            backend: CthBackend::resolve(pe),
            current: Mutex::new(main.clone()),
            main,
            ready: Mutex::new(VecDeque::new()),
            live: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            resume_handler,
            scheduled: Mutex::new(HashMap::default()),
            pending_panic: Mutex::new(None),
            switches: AtomicU64::new(0),
            direct: AtomicU64::new(0),
            fiber: fb::FiberCell::new(),
        });
        pe.local(|| RtSlot(rt.clone()));
        let rt2 = rt.clone();
        pe.on_exit(move |pe| rt2.teardown(pe));
        rt
    }

    /// The backend this PE's thread objects run on.
    pub fn backend(&self) -> CthBackend {
        self.backend
    }

    /// Spawn a thread under the **Csd strategy** and awaken it, so it
    /// starts running when the scheduler reaches its ready-entry
    /// (`tSMCreate`-style). Returns its handle.
    pub fn spawn_scheduled<F>(&self, pe: &Pe, f: F) -> Thread
    where
        F: FnOnce(&Pe) + Send + 'static,
    {
        self.spawn_scheduled_prio(pe, Priority::None, f)
    }

    /// Like [`CthRuntime::spawn_scheduled`] with an explicit scheduling
    /// priority for the thread's ready messages.
    pub fn spawn_scheduled_prio<F>(&self, pe: &Pe, prio: Priority, f: F) -> Thread
    where
        F: FnOnce(&Pe) + Send + 'static,
    {
        let t = cth_create(pe, f);
        set_csd_strategy(pe, &t, prio);
        cth_awaken(pe, &t);
        t
    }

    /// Number of threads in the default ready pool.
    pub fn ready_len(&self) -> usize {
        self.ready.lock().len()
    }

    /// Number of live (created, not yet exited) threads.
    pub fn live_len(&self) -> usize {
        self.live
            .lock()
            .iter()
            .filter(|(t, _)| !t.is_exited())
            .count()
    }

    /// Context switches performed so far on this PE (both backends).
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Switches that took the direct-handoff fast path (suspend handed
    /// control straight to the next ready thread).
    pub fn direct_handoffs(&self) -> u64 {
        self.direct.load(Ordering::Relaxed)
    }

    /// Snapshot of the fiber backend's stack-pool counters (all zero on
    /// the hand-off backend, which uses OS thread stacks).
    pub fn stack_pool_stats(&self) -> StackPoolStats {
        if self.backend == CthBackend::Fiber {
            fb::pool_stats(self)
        } else {
            StackPoolStats::default()
        }
    }

    /// Count a control transfer and emit the sampled
    /// [`Event::ThreadSwitch`] record.
    fn note_switch(&self, pe: &Pe, direct: bool) {
        if direct {
            self.direct.fetch_add(1, Ordering::Relaxed);
        }
        let n = self.switches.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(SWITCH_SAMPLE) && pe.trace_enabled() {
            pe.trace_event(Event::ThreadSwitch {
                backend: self.backend.label(),
                direct_handoff: direct,
            });
        }
    }

    /// Poison every still-suspended thread: fibers are driven through a
    /// poison unwind on the spot (stacks reclaimed into the pool);
    /// hand-off OS threads are woken poisoned and joined.
    fn teardown(&self, pe: &Pe) {
        match self.backend {
            CthBackend::Fiber => fb::teardown(pe, self),
            CthBackend::Handoff => {
                let entries: Vec<(Thread, Option<std::thread::JoinHandle<()>>)> =
                    std::mem::take(&mut *self.live.lock());
                for (t, _) in &entries {
                    let mut s = t.0.state.lock();
                    match &mut *s {
                        State::NotStarted(entry) => {
                            entry.take();
                            *s = State::Exited;
                        }
                        State::Parked => {
                            *s = State::Poisoned;
                            t.0.cv.notify_all();
                        }
                        State::Running => unreachable!(
                            "PE {}: teardown while thread {} runs — the main context holds the token",
                            pe.my_pe(),
                            t.id()
                        ),
                        State::Exited | State::Poisoned => {}
                    }
                }
                for (_, handle) in entries {
                    if let Some(h) = handle {
                        let _ = h.join();
                    }
                }
            }
        }
    }
}

thread_local! {
    /// Per-OS-thread cache of the last `(Pe, CthRuntime)` pair resolved,
    /// keyed by PE identity. `CthRuntime::get` goes through the PE-local
    /// type map (a mutex + hash lookup); the switch hot path calls `rt`
    /// several times per yield, so this turns those into a pointer
    /// compare. Holding the `Arc<Pe>` pins the allocation, so the
    /// pointer-equality key can never be reused while cached.
    static RT_CACHE: std::cell::RefCell<Option<(Arc<Pe>, Arc<CthRuntime>)>> =
        const { std::cell::RefCell::new(None) };
}

fn rt(pe: &Pe) -> Arc<CthRuntime> {
    RT_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some((cpe, crt)) = c.as_ref() {
            if std::ptr::eq(Arc::as_ptr(cpe), pe) {
                return crt.clone();
            }
        }
        let rt = CthRuntime::get(pe);
        *c = Some((pe.arc(), rt.clone()));
        rt
    })
}

/// Run `entry` once per backend available on this target (see
/// [`CthBackend::available`]), each time on a fresh machine of
/// `num_pes` PEs with that backend pinned. The workhorse of the
/// backend-parity test suites: code that passes here is proven
/// API-equivalent on every backend.
pub fn run_on_each_backend<F>(num_pes: usize, entry: F)
where
    F: Fn(&Pe) + Send + Sync + 'static,
{
    let entry = Arc::new(entry);
    for &b in CthBackend::available() {
        let e = entry.clone();
        let cfg = converse_machine::MachineConfig::new(num_pes).thread_backend(b.to_config());
        converse_machine::run_with(cfg, move |pe| e(pe));
    }
}

/// Create a thread object with the default stack size (`CthCreate`).
/// The thread does not run until resumed or awakened.
pub fn cth_create<F>(pe: &Pe, f: F) -> Thread
where
    F: FnOnce(&Pe) + Send + 'static,
{
    cth_create_of_size(pe, f, DEFAULT_STACK_SIZE)
}

/// Create a thread object with an explicit stack size
/// (`CthCreateOfSize`).
pub fn cth_create_of_size<F>(pe: &Pe, f: F, stack_size: usize) -> Thread
where
    F: FnOnce(&Pe) + Send + 'static,
{
    let rt = rt(pe);
    let id = rt.next_id.fetch_add(1, Ordering::Relaxed);
    let t = Thread(Arc::new(Inner {
        id,
        state: Mutex::new(State::NotStarted(Some(Box::new(f)))),
        cv: Condvar::new(),
        // None = the default ready-pool strategy: awaken appends to the
        // PE's ready pool, suspend pops its oldest entry.
        strategy: Mutex::new(None),
        stack_size,
        handle: AtomicU64::new(0),
    }));
    rt.live.lock().push((t.clone(), None));
    pe.trace_event(Event::ThreadCreate { tid: id });
    t
}

/// Install a per-thread scheduling strategy (`CthSetStrategy`): how
/// [`cth_awaken`] stores the thread, and which thread [`cth_suspend`]
/// picks when *this* thread gives up control.
pub fn cth_set_strategy(_pe: &Pe, t: &Thread, s: Strategy) {
    *t.0.strategy.lock() = Some(s);
}

/// Give `t` the Csd strategy: awakening enqueues a generalized message
/// (optionally prioritized) whose handler resumes the thread; suspension
/// returns control to the scheduler context.
pub fn set_csd_strategy(pe: &Pe, t: &Thread, prio: Priority) {
    let tid = t.id();
    cth_set_strategy(
        pe,
        t,
        Strategy {
            awaken: Box::new(move |pe, t| {
                let rt = rt(pe);
                rt.scheduled.lock().insert(tid, t);
                // Same wire format as `Packer::u64`, no Vec allocation.
                let payload = tid.to_le_bytes();
                let msg = Message::with_priority(rt.resume_handler, &prio, &payload);
                let mode = if prio == Priority::None {
                    QueueingMode::Fifo
                } else {
                    QueueingMode::PrioFifo
                };
                csd::csd_enqueue_general(pe, msg, mode);
            }),
            suspend: Box::new(|_pe| None),
        },
    );
}

/// The currently executing thread (`CthSelf`); `None` in the PE's main
/// (scheduler) context.
pub fn cth_self(pe: &Pe) -> Option<Thread> {
    let rt = rt(pe);
    let cur = rt.current.lock().clone();
    if cur.same(&rt.main) {
        None
    } else {
        Some(cur)
    }
}

/// Transfer control to `t` immediately (`CthResume`). The calling
/// context is parked un-awakened: someone must `cth_resume` or
/// `cth_awaken` it later, exactly as in the C API.
pub fn cth_resume(pe: &Pe, t: &Thread) {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    if me.same(t) {
        return;
    }
    match rt.backend {
        CthBackend::Handoff => transfer(pe, &rt, &me, t, false),
        CthBackend::Fiber => fb::resume(pe, &rt, &me, t),
    }
}

/// Suspend the current thread and transfer control according to its
/// strategy (`CthSuspend`): by default the oldest thread in the ready
/// pool, else the PE's main context. On the fiber backend a `Some`
/// successor is switched to **directly** — one ~20 ns context switch, no
/// Csd queue bounce (the direct-handoff fast path).
pub fn cth_suspend(pe: &Pe) {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    assert!(
        !me.same(&rt.main),
        "PE {}: cth_suspend called from the main context — only thread objects suspend",
        pe.my_pe()
    );
    suspend_inner(pe, &rt, me);
}

fn suspend_inner(pe: &Pe, rt: &Arc<CthRuntime>, me: Thread) {
    let next = {
        let mut strat = me.0.strategy.lock();
        match strat.as_mut() {
            Some(s) => (s.suspend)(pe),
            None => rt.ready.lock().pop_front(),
        }
    };
    // A strategy may hand back the suspending thread itself (a solo
    // thread yielding); control simply stays put.
    if let Some(n) = &next {
        if n.same(&me) {
            return;
        }
    }
    pe.trace_event(Event::ThreadSuspend { tid: me.id() });
    match rt.backend {
        CthBackend::Handoff => {
            let direct = next.is_some();
            let target = next.unwrap_or_else(|| rt.main.clone());
            transfer(pe, rt, &me, &target, direct);
        }
        CthBackend::Fiber => fb::suspend(pe, rt, &me, next),
    }
}

/// Add `t` to its scheduler's ready pool (`CthAwaken`): permission for a
/// future suspend to transfer control to it. Must only be called when
/// the thread is genuinely ready to continue.
pub fn cth_awaken(pe: &Pe, t: &Thread) {
    let rt = rt(pe);
    {
        let s = t.0.state.lock();
        assert!(
            !matches!(*s, State::Exited | State::Poisoned),
            "PE {}: awaken of exited thread {}",
            pe.my_pe(),
            t.id()
        );
    }
    let mut strat = t.0.strategy.lock();
    match strat.as_mut() {
        Some(s) => (s.awaken)(pe, t.clone()),
        None => rt.ready.lock().push_back(t.clone()),
    }
}

/// Awaken the current thread then suspend (`CthYield`): control will
/// eventually return here.
pub fn cth_yield(pe: &Pe) {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    assert!(
        !me.same(&rt.main),
        "PE {}: cth_yield from the main context",
        pe.my_pe()
    );
    cth_awaken(pe, &me);
    suspend_inner(pe, &rt, me);
}

/// Terminate the current thread (`CthExit`): control transfers per the
/// thread's suspend strategy; the thread object becomes `Exited`.
/// Returning from the thread function calls this implicitly. Unwinds, so
/// destructors on the thread's stack run.
pub fn cth_exit(pe: &Pe) -> ! {
    let rt = rt(pe);
    let me = rt.current.lock().clone();
    assert!(
        !me.same(&rt.main),
        "PE {}: cth_exit from the main context",
        pe.my_pe()
    );
    std::panic::resume_unwind(Box::new(ExitRequested));
}

// ---------------------------------------------------------------------
// Hand-off backend: one OS thread per thread object, gated by a token.
// ---------------------------------------------------------------------

/// The core hand-off: mark `from` parked, start/wake `to`, wait until
/// someone hands the token back to `from`.
fn transfer(pe: &Pe, rt: &Arc<CthRuntime>, from: &Thread, to: &Thread, direct: bool) {
    debug_assert!(!from.same(to));
    *rt.current.lock() = to.clone();
    rt.note_switch(pe, direct && !to.same(&rt.main));
    pe.trace_event(Event::ThreadResume { tid: to.id() });
    // Park self BEFORE waking the target so the target can immediately
    // re-resume us without a lost wakeup.
    {
        let mut s = from.0.state.lock();
        debug_assert!(matches!(*s, State::Running));
        *s = State::Parked;
    }
    wake(pe, rt, to);
    wait_for_token(rt, from);
}

fn wake(pe: &Pe, rt: &Arc<CthRuntime>, to: &Thread) {
    let mut s = to.0.state.lock();
    match &mut *s {
        State::NotStarted(entry) => {
            let entry = entry.take().expect("entry present before first start");
            *s = State::Running;
            drop(s);
            spawn_os_thread(pe, rt, to, entry);
        }
        State::Parked => {
            *s = State::Running;
            to.0.cv.notify_all();
        }
        State::Running => panic!("PE {}: resume of running thread {}", pe.my_pe(), to.id()),
        State::Exited | State::Poisoned => {
            panic!("PE {}: resume of exited thread {}", pe.my_pe(), to.id())
        }
    }
}

fn wait_for_token(rt: &Arc<CthRuntime>, me: &Thread) {
    {
        let mut s = me.0.state.lock();
        loop {
            match *s {
                State::Parked => me.0.cv.wait(&mut s),
                State::Running => break,
                State::Poisoned => {
                    drop(s);
                    std::panic::resume_unwind(Box::new(ThreadPoison));
                }
                _ => unreachable!("parked context can only become Running or Poisoned"),
            }
        }
    }
    // Back in control. If a thread carried a panic to the main context,
    // re-raise it here so it propagates out of the PE entry.
    if me.same(&rt.main) {
        if let Some(p) = rt.pending_panic.lock().take() {
            std::panic::resume_unwind(p);
        }
    }
}

fn spawn_os_thread(pe: &Pe, rt: &Arc<CthRuntime>, t: &Thread, entry: Entry) {
    let pe_arc = pe.arc();
    let rt2 = rt.clone();
    let t2 = t.clone();
    let handle = std::thread::Builder::new()
        .name(format!("pe{}-cth{}", pe.my_pe(), t.id()))
        .stack_size(t.0.stack_size.max(16 * 1024))
        .spawn(move || {
            let pe = pe_arc;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                entry(&pe);
            }));
            let user_panic = match result {
                Ok(()) => None,
                Err(p) if p.is::<ExitRequested>() || p.is::<ThreadPoison>() => None,
                Err(p) => Some(p),
            };
            finish_thread(&pe, &rt2, &t2, user_panic);
        })
        .expect("spawn thread-object OS thread");
    // Record the join handle for teardown.
    let mut live = rt.live.lock();
    if let Some(slot) = live.iter_mut().find(|(lt, _)| lt.same(t)) {
        slot.1 = Some(handle);
    } else {
        live.push((t.clone(), Some(handle)));
    }
}

/// Common tail of a hand-off thread's life: mark exited and hand the
/// token to the next context (per strategy, else ready pool, else main).
fn finish_thread(
    pe: &Pe,
    rt: &Arc<CthRuntime>,
    me: &Thread,
    user_panic: Option<Box<dyn std::any::Any + Send>>,
) {
    if matches!(*me.0.state.lock(), State::Poisoned) {
        // Teardown owns the machine; just mark exited and leave.
        *me.0.state.lock() = State::Exited;
        return;
    }
    if let Some(p) = user_panic {
        // Carry the panic to the main context and abort the machine so
        // other PEs unblock instead of deadlocking.
        *rt.pending_panic.lock() = Some(p);
        pe.abort_machine();
        *me.0.state.lock() = State::Exited;
        let main = rt.main.clone();
        *rt.current.lock() = main.clone();
        let mut s = main.0.state.lock();
        if matches!(*s, State::Parked) {
            *s = State::Running;
            main.0.cv.notify_all();
        }
        return;
    }
    let next = {
        let mut strat = me.0.strategy.lock();
        match strat.as_mut() {
            Some(s) => (s.suspend)(pe),
            None => rt.ready.lock().pop_front(),
        }
    };
    let target = next.unwrap_or_else(|| rt.main.clone());
    *me.0.state.lock() = State::Exited;
    *rt.current.lock() = target.clone();
    rt.note_switch(pe, false);
    pe.trace_event(Event::ThreadResume { tid: target.id() });
    wake(pe, rt, &target);
}

// ---------------------------------------------------------------------
// Fiber backend: stackful user-level fibers driven from the main
// context, with pooled stacks and the direct-handoff fast path.
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", unix))]
mod fb {
    use super::*;
    use converse_fiber::{Fiber, FiberHandle};
    use std::cell::RefCell;

    /// What the fiber that just yielded wants the drive loop to do.
    pub(super) enum Directive {
        /// Return control to the main/scheduler context.
        Suspend,
        /// Switch straight to this thread; `direct` marks the suspend
        /// fast path (no Csd queue bounce) for the switch statistics.
        Transfer { to: Thread, direct: bool },
    }

    /// Smallest pooled stack class.
    const MIN_CLASS: usize = 16 * 1024;
    /// Largest pooled stack class; bigger stacks are allocated exactly
    /// and never retained.
    const MAX_CLASS: usize = 1024 * 1024;
    /// Free stacks retained per class.
    const PER_CLASS_CAP: usize = 32;
    /// Number of power-of-two classes in `MIN_CLASS..=MAX_CLASS`.
    const NUM_CLASSES: usize = (MAX_CLASS / MIN_CLASS).trailing_zeros() as usize + 1;

    /// Per-PE size-classed free list of fiber stacks — the thread-stack
    /// analogue of the message-buffer pool: create-run-exit cycles reuse
    /// a hot stack instead of paying an allocation (and zeroing) per
    /// thread.
    pub(super) struct StackPool {
        free: [Vec<Box<[u8]>>; NUM_CLASSES],
        pub stats: StackPoolStats,
    }

    impl StackPool {
        fn new() -> StackPool {
            StackPool {
                free: Default::default(),
                stats: StackPoolStats::default(),
            }
        }

        /// Class index for a pooled stack of exactly `len` bytes.
        fn class_of(len: usize) -> Option<usize> {
            if len.is_power_of_two() && (MIN_CLASS..=MAX_CLASS).contains(&len) {
                Some((len / MIN_CLASS).trailing_zeros() as usize)
            } else {
                None
            }
        }

        /// A stack of at least `want` bytes: pooled (rounded up to its
        /// size class) when `want` fits a class, else an exact one-off
        /// allocation that will not be retained.
        fn take(&mut self, want: usize) -> Box<[u8]> {
            let rounded = want.max(MIN_CLASS).next_power_of_two();
            if rounded <= MAX_CLASS {
                let class = (rounded / MIN_CLASS).trailing_zeros() as usize;
                if let Some(stack) = self.free[class].pop() {
                    self.stats.hits += 1;
                    return stack;
                }
                self.stats.misses += 1;
                vec![0u8; rounded].into_boxed_slice()
            } else {
                self.stats.misses += 1;
                vec![0u8; want].into_boxed_slice()
            }
        }

        /// Return a finished fiber's stack for reuse.
        fn give(&mut self, stack: Box<[u8]>) {
            match Self::class_of(stack.len()) {
                Some(class) if self.free[class].len() < PER_CLASS_CAP => {
                    self.stats.recycled += 1;
                    self.free[class].push(stack);
                }
                _ => self.stats.discarded += 1,
            }
        }
    }

    pub(super) struct FiberState {
        /// Parked fibers by thread id; the running fiber (at most one)
        /// is owned by the drive loop's stack frame.
        fibers: HashMap<u64, Fiber, TidBuild>,
        /// Set by the fiber that is about to yield; consumed by the
        /// drive loop to pick the next context.
        directive: Option<Directive>,
        /// Machine teardown in progress: finished fibers stop selecting
        /// successors.
        poisoning: bool,
        pool: StackPool,
    }

    /// Thread-affinity wrapper: all fiber state lives on the PE's own OS
    /// thread (fibers share that thread's stack-switching); the runtime
    /// is `Sync` only because every access asserts it happens there.
    pub(super) struct FiberCell {
        home: std::thread::ThreadId,
        state: RefCell<FiberState>,
    }

    // SAFETY: every path reaching `with` runs on the PE's own OS thread
    // (the drive loop and the directives set by fibers it hosts), so the
    // `RefCell` (and the `!Send` fibers inside) are never touched
    // concurrently. Debug builds verify the affinity on each access;
    // release builds rely on the PE-local discipline (thread objects are
    // documented PE-local) to keep the check off the ~20 ns switch path.
    unsafe impl Send for FiberCell {}
    unsafe impl Sync for FiberCell {}

    impl FiberCell {
        pub fn new() -> FiberCell {
            FiberCell {
                home: std::thread::current().id(),
                state: RefCell::new(FiberState {
                    fibers: HashMap::default(),
                    directive: None,
                    poisoning: false,
                    pool: StackPool::new(),
                }),
            }
        }

        fn with<R>(&self, f: impl FnOnce(&mut FiberState) -> R) -> R {
            debug_assert_eq!(
                std::thread::current().id(),
                self.home,
                "fiber-backend state touched off its home PE thread"
            );
            f(&mut self.state.borrow_mut())
        }
    }

    /// Drop guard clearing the thread's yield-handle pointer
    /// (`Inner::handle`) even when the fiber finishes by unwind (poison,
    /// exit, user panic).
    struct HandleGuard<'a>(&'a Thread);

    impl Drop for HandleGuard<'_> {
        fn drop(&mut self) {
            self.0 .0.handle.store(0, Ordering::Relaxed);
        }
    }

    pub(super) fn pool_stats(rt: &CthRuntime) -> StackPoolStats {
        rt.fiber.with(|fs| fs.pool.stats)
    }

    /// `cth_resume` on the fiber backend: from the main context, enter
    /// the drive loop; from inside a fiber, hand the drive loop a
    /// transfer directive and park.
    pub(super) fn resume(pe: &Pe, rt: &Arc<CthRuntime>, me: &Thread, t: &Thread) {
        if me.same(&rt.main) {
            drive(pe, rt, t.clone(), false);
        } else {
            rt.fiber.with(|fs| {
                fs.directive = Some(Directive::Transfer {
                    to: t.clone(),
                    direct: false,
                })
            });
            yield_to_main(me);
        }
    }

    /// `cth_suspend` on the fiber backend: `Some` successor = direct
    /// handoff (the fast path), `None` = back to the scheduler.
    pub(super) fn suspend(pe: &Pe, rt: &Arc<CthRuntime>, me: &Thread, next: Option<Thread>) {
        let _ = pe;
        rt.fiber.with(|fs| {
            fs.directive = Some(match next {
                Some(to) => Directive::Transfer { to, direct: true },
                None => Directive::Suspend,
            })
        });
        yield_to_main(me);
    }

    /// Suspend the current fiber, returning control to the drive loop.
    /// On wakeup, re-raise teardown poison so the stack unwinds.
    fn yield_to_main(me: &Thread) {
        let h = me.0.handle.load(Ordering::Relaxed) as *const FiberHandle;
        debug_assert!(
            !h.is_null(),
            "suspending fiber has a registered yield handle"
        );
        // SAFETY: `h` points at the FiberHandle on this very fiber's
        // stack (we are the fiber suspending; `fiber_entry` stored it),
        // live until completion.
        unsafe { (*h).yield_now() };
        if matches!(*me.0.state.lock(), State::Poisoned) {
            std::panic::resume_unwind(Box::new(ThreadPoison));
        }
    }

    /// Materialize or retrieve the execution context for `t`, marking it
    /// running. A `NotStarted` thread gets a fiber on a pooled stack
    /// here — creation is lazy, so a never-resumed thread costs no
    /// stack at all.
    fn take_fiber(pe: &Pe, rt: &CthRuntime, t: &Thread) -> Fiber {
        let mut s = t.0.state.lock();
        match &mut *s {
            State::NotStarted(entry) => {
                let entry = entry.take().expect("entry present before first start");
                *s = State::Running;
                drop(s);
                let stack = rt.fiber.with(|fs| fs.pool.take(t.0.stack_size));
                let pe_arc = pe.arc();
                let t2 = t.clone();
                Fiber::with_stack(stack, move |h| fiber_entry(&pe_arc, &t2, entry, h))
            }
            State::Parked | State::Poisoned => {
                // Poison is left set: the wakeup check in
                // `yield_to_main` turns it into an unwind.
                if matches!(*s, State::Parked) {
                    *s = State::Running;
                }
                drop(s);
                rt.fiber
                    .with(|fs| fs.fibers.remove(&t.0.id))
                    .unwrap_or_else(|| {
                        panic!("PE {}: parked thread {} has no fiber", pe.my_pe(), t.id())
                    })
            }
            State::Running => panic!("PE {}: resume of running thread {}", pe.my_pe(), t.id()),
            State::Exited => {
                panic!("PE {}: resume of exited thread {}", pe.my_pe(), t.id())
            }
        }
    }

    /// First code on a fresh fiber: register the yield handle, run the
    /// entry, swallow the control-flow unwinds (exit, poison) so the
    /// fiber finishes cleanly; genuine user panics are re-raised and
    /// surface from `Fiber::resume` in the drive loop.
    fn fiber_entry(pe: &Pe, t: &Thread, entry: Entry, h: &FiberHandle) {
        t.0.handle
            .store(h as *const FiberHandle as u64, Ordering::Relaxed);
        let _guard = HandleGuard(t);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entry(pe)));
        if let Err(p) = result {
            if !(p.is::<ExitRequested>() || p.is::<ThreadPoison>()) {
                std::panic::resume_unwind(p);
            }
        }
    }

    /// The fiber scheduler: runs on the main context, switching into
    /// `first` and then following the directives fibers leave behind —
    /// `Transfer` chains stay inside this loop (one ~20 ns switch per
    /// hop, never touching the Csd queue), `Suspend` returns to the
    /// caller (the Csd scheduler or the PE entry).
    fn drive(pe: &Pe, rt: &Arc<CthRuntime>, first: Thread, mut direct: bool) {
        debug_assert!(
            rt.current.lock().same(&rt.main),
            "PE {}: fiber drive entered outside the main context",
            pe.my_pe()
        );
        let mut t = first;
        loop {
            let mut fiber = take_fiber(pe, rt, &t);
            *rt.current.lock() = t.clone();
            rt.note_switch(pe, direct);
            pe.trace_event(Event::ThreadResume { tid: t.id() });
            let resumed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fiber.resume()));
            *rt.current.lock() = rt.main.clone();
            let alive = match resumed {
                Ok(alive) => alive,
                Err(p) => {
                    // A user panic inside the fiber: the fiber is done
                    // (its stack already unwound inside the fiber
                    // boundary); restore bookkeeping, then let the
                    // panic propagate out of the PE entry.
                    *t.0.state.lock() = State::Exited;
                    rt.fiber.with(|fs| {
                        fs.directive = None;
                        if let Some(stack) = fiber.take_stack() {
                            fs.pool.give(stack);
                        }
                    });
                    pe.abort_machine();
                    std::panic::resume_unwind(p);
                }
            };
            if alive {
                let mut s = t.0.state.lock();
                if matches!(*s, State::Running) {
                    *s = State::Parked;
                }
                drop(s);
                rt.fiber.with(|fs| fs.fibers.insert(t.id(), fiber));
            } else {
                *t.0.state.lock() = State::Exited;
                rt.fiber.with(|fs| {
                    if let Some(stack) = fiber.take_stack() {
                        fs.pool.give(stack);
                    }
                });
            }
            match rt.fiber.with(|fs| fs.directive.take()) {
                Some(Directive::Transfer { to, direct: d }) => {
                    t = to;
                    direct = d;
                }
                Some(Directive::Suspend) => return,
                None => {
                    // The fiber finished (exit or return) without
                    // choosing: consult its suspend strategy, exactly
                    // like the hand-off backend's finish path.
                    debug_assert!(!alive);
                    if rt.fiber.with(|fs| fs.poisoning) {
                        return;
                    }
                    let next = {
                        let mut strat = t.0.strategy.lock();
                        match strat.as_mut() {
                            Some(s) => (s.suspend)(pe),
                            None => rt.ready.lock().pop_front(),
                        }
                    };
                    match next {
                        Some(n) if !n.same(&t) => {
                            t = n;
                            direct = false;
                        }
                        _ => return,
                    }
                }
            }
        }
    }

    /// Machine teardown on the fiber backend: every still-parked fiber
    /// is poisoned and driven through its unwind on the spot, so
    /// destructors run and its stack returns to the pool — no fiber is
    /// ever dropped suspended (which would leak; see `converse-fiber`).
    pub(super) fn teardown(pe: &Pe, rt: &CthRuntime) {
        rt.fiber.with(|fs| fs.poisoning = true);
        let entries: Vec<(Thread, Option<std::thread::JoinHandle<()>>)> =
            std::mem::take(&mut *rt.live.lock());
        // `drive` needs an Arc; re-borrow the runtime from PE-local
        // storage (teardown runs before locals drop).
        let rt_arc = super::rt(pe);
        for (t, _) in &entries {
            let poisoned = {
                let mut s = t.0.state.lock();
                match &mut *s {
                    State::NotStarted(entry) => {
                        // Never ran: no stack exists; drop the entry.
                        entry.take();
                        *s = State::Exited;
                        false
                    }
                    State::Parked => {
                        *s = State::Poisoned;
                        true
                    }
                    State::Running => unreachable!(
                        "PE {}: teardown while thread {} runs — the main context holds the token",
                        pe.my_pe(),
                        t.id()
                    ),
                    State::Exited | State::Poisoned => false,
                }
            };
            if poisoned {
                drive(pe, &rt_arc, t.clone(), false);
            }
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", unix)))]
mod fb {
    //! Stub for targets without fiber support: `CthBackend::resolve`
    //! never selects the fiber backend there, so none of these run.
    use super::*;

    pub(super) struct FiberCell;

    impl FiberCell {
        pub fn new() -> FiberCell {
            FiberCell
        }
    }

    pub(super) fn pool_stats(_rt: &CthRuntime) -> StackPoolStats {
        unreachable!("fiber backend on unsupported target")
    }

    pub(super) fn resume(_pe: &Pe, _rt: &Arc<CthRuntime>, _me: &Thread, _t: &Thread) {
        unreachable!("fiber backend on unsupported target")
    }

    pub(super) fn suspend(_pe: &Pe, _rt: &Arc<CthRuntime>, _me: &Thread, _next: Option<Thread>) {
        unreachable!("fiber backend on unsupported target")
    }

    pub(super) fn teardown(_pe: &Pe, _rt: &CthRuntime) {
        unreachable!("fiber backend on unsupported target")
    }
}
