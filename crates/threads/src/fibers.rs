//! The **fiber-backed** thread runtime: the paper's mechanism at the
//! paper's cost.
//!
//! [`crate`]'s default thread objects trade the ~100 ns user-level
//! context switch of the 1996 implementation for hand-off OS threads
//! (safe, but µs-class). This module provides the fast path on top of
//! `converse-fiber`: cooperative user-level threads whose suspend/resume
//! is a ~20 ns stack switch — with one discipline the 1996 code also
//! had: **all fiber-thread operations must happen on the PE's main
//! execution context's OS thread** (handlers, the scheduler loop, and
//! the fibers themselves all run there, so this is the natural state of
//! a Converse program that does not mix the two thread runtimes).
//!
//! Semantics mirror the Cth calls: create / resume / suspend / awaken /
//! yield / exit-by-return, a FIFO ready pool, and the Csd integration
//! (a ready fiber is a generalized message). Control transfers that the
//! raw fiber primitive cannot express directly (fiber → fiber resume)
//! thread through the main context transparently.

#![cfg(all(target_arch = "x86_64", unix))]

use converse_core::csd;
use converse_fiber::{Fiber, FiberHandle};
use converse_machine::{HandlerId, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use converse_msg::Priority;
use converse_queue::QueueingMode;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Identity of a fiber thread on its PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FThread(pub u64);

enum FiberState {
    /// Suspended (or not yet started); resumable.
    Parked(Fiber),
    /// Currently running (its `Fiber` is on the main context's stack
    /// frame inside `drive`).
    Running,
    /// Finished.
    Done,
}

/// What a fiber asked for when it yielded back to the main context.
#[derive(Clone, Copy)]
enum Directive {
    /// Plain suspend (strategy already ran, e.g. awaken-self for yield).
    Suspend,
    /// Transfer control to another fiber (CthResume semantics: the
    /// yielder parks un-awakened).
    Transfer(FThread),
}

struct RtInner {
    fibers: RefCell<HashMap<u64, FiberState>>,
    ready: RefCell<VecDeque<FThread>>,
    current: Cell<Option<FThread>>,
    directive: Cell<Option<Directive>>,
    next_id: Cell<u64>,
    /// Fibers awaiting their Csd resume message.
    scheduled: RefCell<HashMap<u64, ()>>,
    resume_handler: HandlerId,
    /// OS thread that owns this runtime (discipline check).
    home_thread: std::thread::ThreadId,
}

/// Per-PE fiber-thread runtime. NOT `Send`-shared: lives in PE-local
/// storage behind a wrapper that asserts the single-OS-thread
/// discipline.
pub struct FiberRt {
    inner: Rc<RtInner>,
}

/// PE-local slot. The runtime itself is thread-affine; the slot checks
/// every access comes from the owning OS thread.
struct FiberSlot {
    rt: parking_lot::Mutex<Option<Rc<RtInner>>>,
}

// SAFETY: the Rc never actually crosses OS threads — `FiberRt::get`
// asserts the accessing thread is the creating thread; the mutex only
// satisfies the `Send + Sync` bound of PE-local storage.
unsafe impl Send for FiberSlot {}
unsafe impl Sync for FiberSlot {}

impl FiberRt {
    /// The fiber runtime of this PE, created on first call. Must always
    /// be called from the PE's main execution context (asserted).
    pub fn get(pe: &Pe) -> FiberRt {
        let slot = pe.local(|| FiberSlot {
            rt: parking_lot::Mutex::new(None),
        });
        let mut guard = slot.rt.lock();
        if let Some(rt) = &*guard {
            assert_eq!(
                rt.home_thread,
                std::thread::current().id(),
                "PE {}: fiber threads must stay on the PE's main OS thread",
                pe.my_pe()
            );
            return FiberRt { inner: rt.clone() };
        }
        let resume_handler = pe.register_handler(|pe, msg| {
            let rt = FiberRt::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let tid = FThread(u.u64().expect("fiber resume: tid"));
            rt.inner.scheduled.borrow_mut().remove(&tid.0);
            rt.drive(pe, tid);
        });
        let rt = Rc::new(RtInner {
            fibers: RefCell::new(HashMap::new()),
            ready: RefCell::new(VecDeque::new()),
            current: Cell::new(None),
            directive: Cell::new(None),
            next_id: Cell::new(1),
            scheduled: RefCell::new(HashMap::new()),
            resume_handler,
            home_thread: std::thread::current().id(),
        });
        *guard = Some(rt.clone());
        // Break the Pe ↔ fiber-closure reference cycle at PE exit:
        // dropping parked fibers frees their stacks and captured Arcs.
        pe.on_exit(move |pe| {
            if let Some(slot) = pe.try_local::<FiberSlot>() {
                if let Some(rt) = slot.rt.lock().take() {
                    rt.fibers.borrow_mut().clear();
                    rt.ready.borrow_mut().clear();
                }
            }
        });
        FiberRt { inner: rt }
    }

    /// Create a fiber thread (`CthCreate`); it runs when resumed or
    /// awakened. `stack_size` bytes of dedicated stack.
    pub fn create<F>(&self, pe: &Pe, stack_size: usize, f: F) -> FThread
    where
        F: FnOnce(&Pe) + 'static,
    {
        let id = self.inner.next_id.get();
        self.inner.next_id.set(id + 1);
        let tid = FThread(id);
        let pe_arc = pe.arc();
        let fiber = Fiber::new(stack_size, move |h| {
            // Expose the yield handle for suspend() during this fiber's
            // lifetime via the runtime's current-handle cell.
            HANDLE.with(|slot| slot.borrow_mut().insert(id, h as *const FiberHandle));
            f(&pe_arc);
            HANDLE.with(|slot| slot.borrow_mut().remove(&id));
        });
        self.inner
            .fibers
            .borrow_mut()
            .insert(id, FiberState::Parked(fiber));
        pe.trace_event(converse_trace::Event::ThreadCreate {
            tid: id | (1 << 63),
        });
        tid
    }

    /// Spawn under the Csd strategy and awaken: starts when the
    /// scheduler reaches its ready message.
    pub fn spawn_scheduled<F>(&self, pe: &Pe, f: F) -> FThread
    where
        F: FnOnce(&Pe) + 'static,
    {
        let t = self.create(pe, 64 * 1024, f);
        self.awaken(pe, t);
        t
    }

    /// The currently executing fiber thread, `None` in the main context.
    pub fn current(&self) -> Option<FThread> {
        self.inner.current.get()
    }

    /// Number of fibers in the ready pool.
    pub fn ready_len(&self) -> usize {
        self.inner.ready.borrow().len()
    }

    /// True once `t`'s closure has returned.
    pub fn is_done(&self, t: FThread) -> bool {
        matches!(
            self.inner.fibers.borrow().get(&t.0),
            Some(FiberState::Done) | None
        )
    }

    /// Transfer control to `t` immediately (`CthResume`). From the main
    /// context this runs `t` until it suspends; from inside a fiber the
    /// caller parks un-awakened and control threads through the main
    /// context to `t`.
    pub fn resume(&self, pe: &Pe, t: FThread) {
        match self.current() {
            None => self.drive(pe, t),
            Some(me) => {
                if me == t {
                    return;
                }
                self.inner.directive.set(Some(Directive::Transfer(t)));
                self.yield_to_main(pe, me);
            }
        }
    }

    /// Suspend the current fiber (`CthSuspend`): control goes to the
    /// next ready fiber, else back to the main context.
    pub fn suspend(&self, pe: &Pe) {
        let me = self
            .current()
            .unwrap_or_else(|| panic!("PE {}: suspend outside a fiber thread", pe.my_pe()));
        let next = self.inner.ready.borrow_mut().pop_front();
        match next {
            Some(n) if n != me => self.inner.directive.set(Some(Directive::Transfer(n))),
            _ => self.inner.directive.set(Some(Directive::Suspend)),
        }
        self.yield_to_main(pe, me);
    }

    /// Add `t` to the ready pool via the Csd scheduler (`CthAwaken` with
    /// the integrated strategy): a generalized message will resume it.
    pub fn awaken(&self, pe: &Pe, t: FThread) {
        assert!(
            !self.is_done(t),
            "PE {}: awaken of finished fiber {t:?}",
            pe.my_pe()
        );
        self.inner.scheduled.borrow_mut().insert(t.0, ());
        let payload = Packer::new().u64(t.0).finish();
        let msg = Message::with_priority(self.inner.resume_handler, &Priority::None, &payload);
        csd::csd_enqueue_general(pe, msg, QueueingMode::Fifo);
    }

    /// Add `t` to the plain FIFO ready pool (picked up by the next
    /// suspend), bypassing the scheduler.
    pub fn awaken_pool(&self, pe: &Pe, t: FThread) {
        assert!(
            !self.is_done(t),
            "PE {}: awaken of finished fiber {t:?}",
            pe.my_pe()
        );
        self.inner.ready.borrow_mut().push_back(t);
    }

    /// Awaken-self then suspend (`CthYield`).
    pub fn yield_now(&self, pe: &Pe) {
        let me = self
            .current()
            .unwrap_or_else(|| panic!("PE {}: yield outside a fiber thread", pe.my_pe()));
        self.awaken(pe, me);
        self.suspend(pe);
    }

    /// Like [`FiberRt::yield_now`] but through the pool (no scheduler).
    pub fn yield_pool(&self, pe: &Pe) {
        let me = self
            .current()
            .unwrap_or_else(|| panic!("PE {}: yield outside a fiber thread", pe.my_pe()));
        self.awaken_pool(pe, me);
        self.suspend(pe);
    }

    /// Run `t` (and any fibers it transfers to) until everything parks.
    /// Main-context only.
    fn drive(&self, pe: &Pe, mut t: FThread) {
        assert!(
            self.current().is_none(),
            "PE {}: drive() from inside a fiber",
            pe.my_pe()
        );
        loop {
            let mut fiber = {
                let mut fs = self.inner.fibers.borrow_mut();
                match fs.remove(&t.0) {
                    Some(FiberState::Parked(f)) => {
                        fs.insert(t.0, FiberState::Running);
                        f
                    }
                    Some(other) => {
                        let what = match other {
                            FiberState::Done => "finished",
                            FiberState::Running => "running",
                            FiberState::Parked(_) => unreachable!(),
                        };
                        fs.insert(t.0, other);
                        panic!("PE {}: resume of {what} fiber {t:?}", pe.my_pe());
                    }
                    None => panic!("PE {}: resume of unknown fiber {t:?}", pe.my_pe()),
                }
            };
            self.inner.current.set(Some(t));
            pe.trace_event(converse_trace::Event::ThreadResume {
                tid: t.0 | (1 << 63),
            });
            let alive = fiber.resume();
            self.inner.current.set(None);
            {
                let mut fs = self.inner.fibers.borrow_mut();
                if alive {
                    fs.insert(t.0, FiberState::Parked(fiber));
                } else {
                    fs.insert(t.0, FiberState::Done);
                }
            }
            let directive = self.inner.directive.take();
            match directive {
                Some(Directive::Transfer(next)) => {
                    t = next;
                }
                Some(Directive::Suspend) => return,
                None => {
                    // The fiber finished (returned) without directive:
                    // continue with the next ready fiber, if any —
                    // CthExit's "transfer via the suspend strategy".
                    debug_assert!(!alive);
                    match self.inner.ready.borrow_mut().pop_front() {
                        Some(next) => t = next,
                        None => return,
                    }
                }
            }
        }
    }

    /// Yield from fiber `me` back to the main context (directive set by
    /// the caller).
    fn yield_to_main(&self, pe: &Pe, me: FThread) {
        pe.trace_event(converse_trace::Event::ThreadSuspend {
            tid: me.0 | (1 << 63),
        });
        let h = HANDLE.with(|slot| {
            *slot
                .borrow()
                .get(&me.0)
                .unwrap_or_else(|| panic!("PE {}: fiber {me:?} has no live handle", pe.my_pe()))
        });
        // SAFETY: the pointer was stored by this fiber's own closure
        // frame, which is alive for exactly as long as the fiber can
        // yield; we are inside that fiber right now.
        unsafe { (*h).yield_now() };
    }
}

thread_local! {
    /// Live yield-handles, keyed by fiber id. Populated by each fiber's
    /// entry wrapper on its own stack; valid while the fiber is alive.
    static HANDLE: RefCell<HashMap<u64, *const FiberHandle>> = RefCell::new(HashMap::new());
}
