//! Seed-based **dynamic load balancing** (paper §3.3.1).
//!
//! "A language runtime may hand over a seed, in the form of a
//! generalized message, on any processor. Monitoring the load on
//! processors, the load balancing module moves such seeds from processor
//! to processor until it eventually hands over the seed to its handler
//! on some destination processor. … Depending on the application, the
//! user is able to link in a different load balancing strategy."
//!
//! A *seed* is any [`Message`]: when it finally "takes root" the module
//! enqueues it on that PE's scheduler queue (honouring its priority), so
//! its handler runs there. Six strategies are provided behind one
//! interface ([`LdbPolicy`]):
//!
//! * [`LdbPolicy::Direct`] — root where deposited; the zero-overhead
//!   baseline.
//! * [`LdbPolicy::Random`] — one hop to a uniformly random PE (the
//!   classic Charm "random placement" strategy).
//! * [`LdbPolicy::Spray`] — adaptive: root locally while the local
//!   scheduler queue is short, otherwise forward toward the less-loaded
//!   ring neighbour, with a hop limit; neighbours exchange load reports
//!   piggybacked on the seed traffic.
//! * [`LdbPolicy::Central`] — a manager on PE 0 assigns every seed to
//!   the least-loaded PE it knows of (load reports flow to the manager).
//! * [`LdbPolicy::TwoChoices`] — power-of-two-choices over gossiped
//!   loads.
//! * [`LdbPolicy::Measured`] — measurement-based: every seed goes to
//!   the PE with the smallest live backlog (mailbox + run queue).
//!
//! The load metric is the scheduler-queue length ([`Pe::queue_len`]) —
//! exactly the "interact with a local scheduler" coupling the paper
//! describes — except for `Measured`, which reads the transport's full
//! backlog view.

use converse_core::csd;
use converse_machine::{HandlerId, Message, Pe};
use converse_msg::pack::{Packer, Unpacker};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which strategy an [`Ldb`] instance uses. Every PE of a machine must
/// install the same policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LdbPolicy {
    /// Root every seed where it was deposited.
    Direct,
    /// Send every seed to a uniformly random PE (including possibly the
    /// depositor) and root it there.
    Random {
        /// Per-machine RNG seed; each PE derives its own stream.
        seed: u64,
    },
    /// Root locally when the local queue is at most `threshold` long;
    /// otherwise forward to the apparently least-loaded ring neighbour,
    /// up to `max_hops` hops (after which the seed roots wherever it is).
    Spray {
        /// Queue length at or below which a seed roots locally.
        threshold: usize,
        /// Maximum forwarding hops before a seed must root.
        max_hops: u32,
    },
    /// All seeds go to the PE-0 manager, which assigns each to the
    /// least-loaded PE it knows of.
    Central,
    /// Power-of-two-choices: probe two random PEs' last-known loads and
    /// send the seed to the apparently lighter one. Loads are learned
    /// from piggybacked reports, so the view is stale but cheap — the
    /// classic randomized balancing trade-off.
    TwoChoices {
        /// Per-machine RNG seed.
        seed: u64,
    },
    /// Measurement-based placement: every seed goes to the PE with the
    /// smallest live *backlog* (mailbox depth + published run-queue
    /// depth, [`converse_machine::PeLoad::backlog`]). On shared-memory
    /// transports the snapshot is read directly; on distributed
    /// transports, where remote loads are not observable, the balancer
    /// falls back to gossiped load reports (broadcast every
    /// [`LOAD_REPORT_PERIOD`] balancer events, like
    /// [`LdbPolicy::TwoChoices`]). Seeds are marked stealable, so
    /// placement mistakes remain correctable by idle-PE work stealing
    /// mid-run.
    Measured,
}

/// Counters describing what the balancer did on this PE.
#[derive(Debug, Default)]
pub struct LdbStats {
    /// Seeds handed to [`Ldb::deposit`] on this PE.
    pub deposited: AtomicU64,
    /// Seeds that took root (were enqueued) on this PE.
    pub rooted: AtomicU64,
    /// Seeds this PE forwarded onward.
    pub forwarded: AtomicU64,
}

impl LdbStats {
    /// Snapshot as plain numbers (deposited, rooted, forwarded).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.deposited.load(Ordering::Relaxed),
            self.rooted.load(Ordering::Relaxed),
            self.forwarded.load(Ordering::Relaxed),
        )
    }
}

/// Per-PE load balancer runtime. Install once per PE (same registration
/// order machine-wide), then [`Ldb::deposit`] seeds from anywhere on
/// that PE.
pub struct Ldb {
    policy: LdbPolicy,
    seed_h: HandlerId,
    load_h: HandlerId,
    assign_h: HandlerId,
    /// Latest load reports from ring neighbours (Spray).
    neighbor_loads: Mutex<HashMap<usize, usize>>,
    /// Manager's view of per-PE load (Central; meaningful on PE 0).
    central_loads: Mutex<Vec<usize>>,
    rng: Mutex<SmallRng>,
    events: AtomicU64,
    /// Public counters.
    pub stats: LdbStats,
}

struct LdbSlot(Arc<Ldb>);

/// How often (in balancer events) a PE publishes its load.
const LOAD_REPORT_PERIOD: u64 = 4;

impl Ldb {
    /// Register the balancer's handlers on this PE and return the
    /// runtime. Must be called on every PE in the same registration
    /// position, with the same policy. Idempotent per PE.
    pub fn install(pe: &Pe, policy: LdbPolicy) -> Arc<Ldb> {
        if let Some(s) = pe.try_local::<LdbSlot>() {
            assert_eq!(
                s.0.policy,
                policy,
                "PE {}: conflicting Ldb policies",
                pe.my_pe()
            );
            return s.0.clone();
        }
        let seed_h = pe.register_handler(|pe, msg| {
            let ldb = Ldb::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let hops = u.u32().expect("ldb seed: hops");
            let inner = u.bytes().expect("ldb seed: inner").to_vec();
            let inner = Message::from_bytes(inner).expect("ldb seed: inner decodes");
            ldb.arrive(pe, inner, hops);
        });
        let load_h = pe.register_handler(|pe, msg| {
            let ldb = Ldb::get(pe);
            let mut u = Unpacker::new(msg.payload());
            let from = u.usize().expect("ldb load: from");
            let load = u.usize().expect("ldb load: load");
            match ldb.policy {
                LdbPolicy::Central => {
                    let mut cl = ldb.central_loads.lock();
                    if from < cl.len() {
                        cl[from] = load;
                    }
                }
                _ => {
                    ldb.neighbor_loads.lock().insert(from, load);
                }
            }
        });
        let assign_h = pe.register_handler(|pe, msg| {
            // Manager (PE 0): choose the least-loaded PE and forward.
            let ldb = Ldb::get(pe);
            debug_assert_eq!(pe.my_pe(), 0, "assign handler runs on the manager");
            let mut u = Unpacker::new(msg.payload());
            let inner = u.bytes().expect("ldb assign: inner").to_vec();
            let dst = {
                let mut cl = ldb.central_loads.lock();
                let (dst, _) = cl
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| **l)
                    .expect("machine has PEs");
                cl[dst] += 1; // account for the assignment immediately
                dst
            };
            let inner = Message::from_bytes(inner).expect("ldb assign: inner decodes");
            if dst == pe.my_pe() {
                ldb.root(pe, inner);
            } else {
                ldb.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                ldb.send_seed(pe, dst, &inner, 1);
            }
        });
        let ldb = Arc::new(Ldb {
            policy,
            seed_h,
            load_h,
            assign_h,
            neighbor_loads: Mutex::new(HashMap::new()),
            central_loads: Mutex::new(vec![0; pe.num_pes()]),
            rng: Mutex::new(SmallRng::seed_from_u64(
                0x51ED_BA5E
                    ^ ((pe.my_pe() as u64) << 17)
                    ^ match policy {
                        LdbPolicy::Random { seed } | LdbPolicy::TwoChoices { seed } => seed,
                        _ => 0,
                    },
            )),
            events: AtomicU64::new(0),
            stats: LdbStats::default(),
        });
        pe.local(|| LdbSlot(ldb.clone()));
        ldb
    }

    /// The balancer previously installed on this PE.
    pub fn get(pe: &Pe) -> Arc<Ldb> {
        pe.try_local::<LdbSlot>()
            .unwrap_or_else(|| panic!("PE {}: Ldb::install was not called", pe.my_pe()))
            .0
            .clone()
    }

    /// Hand a seed to the balancer (the language runtime's entry point).
    /// The seed's handler will eventually run on *some* PE, chosen by
    /// the policy; its priority is honoured by the destination queue.
    pub fn deposit(&self, pe: &Pe, seed: Message) {
        self.stats.deposited.fetch_add(1, Ordering::Relaxed);
        self.tick(pe);
        match self.policy {
            LdbPolicy::Direct => self.root(pe, seed),
            LdbPolicy::Random { .. } => {
                let dst = self.rng.lock().random_range(0..pe.num_pes());
                if dst == pe.my_pe() {
                    self.root(pe, seed);
                } else {
                    self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.send_seed(pe, dst, &seed, 1);
                }
            }
            LdbPolicy::Spray { .. } => self.arrive(pe, seed, 0),
            LdbPolicy::TwoChoices { .. } => {
                let n = pe.num_pes();
                let (a, b) = {
                    let mut rng = self.rng.lock();
                    (rng.random_range(0..n), rng.random_range(0..n))
                };
                let loads = self.neighbor_loads.lock();
                let la = loads.get(&a).copied().unwrap_or(0);
                let lb = loads.get(&b).copied().unwrap_or(0);
                drop(loads);
                let dst = if la <= lb { a } else { b };
                if dst == pe.my_pe() {
                    self.root(pe, seed);
                } else {
                    self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.send_seed(pe, dst, &seed, 1);
                }
            }
            LdbPolicy::Central => {
                if pe.num_pes() == 1 {
                    self.root(pe, seed);
                    return;
                }
                let payload = Packer::new().bytes(seed.as_bytes()).finish();
                self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                pe.sync_send_and_free(0, Message::new(self.assign_h, &payload));
            }
            LdbPolicy::Measured => {
                let dst = self.pick_measured(pe);
                if dst == pe.my_pe() {
                    self.root(pe, seed);
                } else {
                    self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.send_seed(pe, dst, &seed, 1);
                }
            }
        }
    }

    /// Measured placement: the PE with the smallest observed backlog.
    /// Live snapshot where remote loads are visible (shared memory),
    /// gossiped reports otherwise; the depositor's own entry is always
    /// its live queue length. Ties rotate by deposit count so a burst
    /// deposited into an all-idle machine spreads instead of piling
    /// onto the lowest-numbered PE.
    fn pick_measured(&self, pe: &Pe) -> usize {
        let n = pe.num_pes();
        let me = pe.my_pe();
        let rot = self.events.load(Ordering::Relaxed) as usize;
        let key = |p: usize, backlog: usize| (backlog, (p + n - rot % n) % n);
        if pe.remote_load_visible() {
            pe.load_snapshot()
                .into_iter()
                .map(|l| {
                    let b = if l.pe == me {
                        pe.queue_len() + l.queued
                    } else {
                        l.backlog()
                    };
                    (key(l.pe, b), l.pe)
                })
                .min()
                .map(|(_, p)| p)
                .unwrap_or(me)
        } else {
            let reports = self.neighbor_loads.lock();
            (0..n)
                .map(|p| {
                    let b = if p == me {
                        pe.queue_len()
                    } else {
                        reports.get(&p).copied().unwrap_or(0)
                    };
                    (key(p, b), p)
                })
                .min()
                .map(|(_, p)| p)
                .expect("machine has PEs")
        }
    }

    /// A seed arrived here after `hops` forwards: root or keep moving.
    fn arrive(&self, pe: &Pe, seed: Message, hops: u32) {
        self.tick(pe);
        match self.policy {
            LdbPolicy::Spray {
                threshold,
                max_hops,
            } => {
                let local = pe.queue_len();
                if local <= threshold || hops >= max_hops {
                    self.root(pe, seed);
                    return;
                }
                // Prefer the apparently less-loaded ring neighbour; if
                // both look worse than here, root anyway.
                let n = pe.num_pes();
                let left = (pe.my_pe() + n - 1) % n;
                let right = (pe.my_pe() + 1) % n;
                let nl = self.neighbor_loads.lock();
                let ll = nl.get(&left).copied().unwrap_or(0);
                let rl = nl.get(&right).copied().unwrap_or(0);
                drop(nl);
                let (dst, dload) = if ll <= rl { (left, ll) } else { (right, rl) };
                if dst == pe.my_pe() || dload >= local {
                    self.root(pe, seed);
                } else {
                    self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.send_seed(pe, dst, &seed, hops + 1);
                }
            }
            // Random and Central seeds root on arrival.
            _ => self.root(pe, seed),
        }
    }

    fn send_seed(&self, pe: &Pe, dst: usize, seed: &Message, hops: u32) {
        let payload = Packer::new().u32(hops).bytes(seed.as_bytes()).finish();
        let mut m = Message::new(self.seed_h, &payload);
        // A seed is location-independent by definition (the module's
        // whole job is moving them), so its wrapper is fair game for
        // idle-PE work stealing on machines that enable it.
        m.mark_stealable();
        pe.sync_send_and_free(dst, m);
    }

    fn root(&self, pe: &Pe, seed: Message) {
        self.stats.rooted.fetch_add(1, Ordering::Relaxed);
        csd::csd_enqueue_prio(pe, seed);
    }

    /// Periodic load publication, driven by balancer activity.
    fn tick(&self, pe: &Pe) {
        let ev = self.events.fetch_add(1, Ordering::Relaxed);
        if !ev.is_multiple_of(LOAD_REPORT_PERIOD) {
            return;
        }
        let load = pe.queue_len();
        let payload = Packer::new().usize(pe.my_pe()).usize(load).finish();
        match self.policy {
            LdbPolicy::Spray { .. } => {
                let n = pe.num_pes();
                if n > 1 {
                    let left = (pe.my_pe() + n - 1) % n;
                    let right = (pe.my_pe() + 1) % n;
                    pe.sync_send_and_free(left, Message::new(self.load_h, &payload));
                    if right != left {
                        pe.sync_send_and_free(right, Message::new(self.load_h, &payload));
                    }
                }
            }
            LdbPolicy::Central if pe.my_pe() != 0 => {
                pe.sync_send_and_free(0, Message::new(self.load_h, &payload));
            }
            LdbPolicy::TwoChoices { .. } => {
                // Cheap gossip: everyone learns everyone's load now and
                // then; staleness is part of the strategy's bargain.
                pe.sync_broadcast(&Message::new(self.load_h, &payload));
            }
            // Measured needs gossip only where live snapshots of remote
            // PEs are unavailable (distributed transports).
            LdbPolicy::Measured if !pe.remote_load_visible() => {
                pe.sync_broadcast(&Message::new(self.load_h, &payload));
            }
            _ => {}
        }
    }
}
