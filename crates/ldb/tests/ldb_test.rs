//! Load-balancer behaviour on live machines: placement, conservation,
//! and balance quality per policy.

use converse_core::{csd_exit_scheduler, csd_scheduler, Message, Quiescence};
use converse_ldb::{Ldb, LdbPolicy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Run `num_seeds` trivial seeds from PE 0 under `policy`; return how
/// many executed on each PE.
fn placement(num_pes: usize, policy: LdbPolicy, num_seeds: usize) -> Vec<u64> {
    let counts: Arc<Vec<AtomicU64>> = Arc::new((0..num_pes).map(|_| AtomicU64::new(0)).collect());
    let c2 = counts.clone();
    converse_core::run(num_pes, move |pe| {
        let qd = Quiescence::install(pe);
        let ldb = Ldb::install(pe, policy);
        let c = c2.clone();
        let qd2 = qd.clone();
        let work = pe.register_handler(move |pe, _msg| {
            c[pe.my_pe()].fetch_add(1, Ordering::SeqCst);
            qd2.msg_processed(1);
        });
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            for _ in 0..num_seeds {
                qd.msg_created(1);
                ldb.deposit(pe, Message::new(work, b"seed"));
            }
            qd.start(pe, Message::new(stop, b""));
            csd_scheduler(pe, -1);
            pe.sync_broadcast(&Message::new(stop, b""));
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
    counts.iter().map(|c| c.load(Ordering::SeqCst)).collect()
}

#[test]
fn direct_roots_where_deposited() {
    let got = placement(4, LdbPolicy::Direct, 20);
    assert_eq!(got, vec![20, 0, 0, 0]);
}

#[test]
fn random_spreads_and_conserves() {
    let got = placement(4, LdbPolicy::Random { seed: 7 }, 64);
    assert_eq!(got.iter().sum::<u64>(), 64, "no seed lost or duplicated");
    let nonzero = got.iter().filter(|c| **c > 0).count();
    assert!(nonzero >= 3, "random placement should spread: {got:?}");
}

#[test]
fn central_balances_evenly() {
    let got = placement(4, LdbPolicy::Central, 40);
    assert_eq!(got.iter().sum::<u64>(), 40);
    // The manager assigns by least-known-load with immediate accounting,
    // so the split is near-perfect.
    for (pe, c) in got.iter().enumerate() {
        assert!((8..=12).contains(c), "PE {pe} got {c} of 40: {got:?}");
    }
}

#[test]
fn spray_offloads_an_overloaded_pe() {
    let got = placement(
        4,
        LdbPolicy::Spray {
            threshold: 3,
            max_hops: 4,
        },
        60,
    );
    assert_eq!(got.iter().sum::<u64>(), 60);
    // PE0 deposits everything; beyond the threshold, seeds must spill to
    // neighbours.
    assert!(got[0] < 60, "spray never offloaded: {got:?}");
    assert!(
        got[1] + got[3] > 0,
        "ring neighbours of PE0 received nothing: {got:?}"
    );
}

#[test]
fn spray_single_pe_machine_roots_locally() {
    let got = placement(
        1,
        LdbPolicy::Spray {
            threshold: 0,
            max_hops: 3,
        },
        10,
    );
    assert_eq!(got, vec![10]);
}

#[test]
fn central_single_pe_machine() {
    let got = placement(1, LdbPolicy::Central, 10);
    assert_eq!(got, vec![10]);
}

#[test]
fn two_choices_spreads_and_conserves() {
    let got = placement(4, LdbPolicy::TwoChoices { seed: 3 }, 64);
    assert_eq!(got.iter().sum::<u64>(), 64);
    let nonzero = got.iter().filter(|c| **c > 0).count();
    assert!(nonzero >= 2, "two-choices should spread: {got:?}");
}

#[test]
fn random_is_deterministic_per_seed() {
    let a = placement(4, LdbPolicy::Random { seed: 123 }, 32);
    let b = placement(4, LdbPolicy::Random { seed: 123 }, 32);
    assert_eq!(a, b);
}

#[test]
fn seeds_preserve_priority_at_destination() {
    // A prioritized seed must still be scheduled by priority after
    // rooting: deposit three seeds with priorities on a Direct balancer
    // and observe execution order.
    converse_core::run(1, |pe| {
        let ldb = Ldb::install(pe, LdbPolicy::Direct);
        let order = pe.local(|| parking_lot::Mutex::new(Vec::<i32>::new()));
        let o2 = order.clone();
        let work = pe.register_handler(move |_pe, msg| {
            o2.lock()
                .push(i32::from_le_bytes(msg.payload().try_into().unwrap()));
        });
        for p in [5, -3, 1] {
            let m = Message::with_priority(work, &converse_msg::Priority::Int(p), &p.to_le_bytes());
            ldb.deposit(pe, m);
        }
        csd_scheduler(pe, 3);
        assert_eq!(*order.lock(), vec![-3, 1, 5]);
    });
}

#[test]
fn stats_account_for_every_seed() {
    converse_core::run(2, |pe| {
        let qd = Quiescence::install(pe);
        let ldb = Ldb::install(pe, LdbPolicy::Random { seed: 9 });
        let qd2 = qd.clone();
        let work = pe.register_handler(move |_pe, _| qd2.msg_processed(1));
        let stop = pe.register_handler(|pe, _| csd_exit_scheduler(pe));
        pe.barrier();
        if pe.my_pe() == 0 {
            for _ in 0..20 {
                qd.msg_created(1);
                ldb.deposit(pe, Message::new(work, b""));
            }
            qd.start(pe, Message::new(stop, b""));
            csd_scheduler(pe, -1);
            pe.sync_broadcast(&Message::new(stop, b""));
            let (dep, rooted, fwd) = ldb.stats.snapshot();
            assert_eq!(dep, 20);
            assert_eq!(rooted + fwd, 20, "every deposited seed rooted here or left");
        } else {
            csd_scheduler(pe, -1);
        }
        pe.barrier();
    });
}

#[test]
fn measured_spreads_and_conserves() {
    let got = placement(4, LdbPolicy::Measured, 64);
    assert_eq!(got.iter().sum::<u64>(), 64, "no seed lost or duplicated");
    let max = *got.iter().max().unwrap();
    assert!(max < 64, "measured never offloaded the hot PE: {got:?}");
    let nonzero = got.iter().filter(|c| **c > 0).count();
    assert!(nonzero >= 2, "measured placement should spread: {got:?}");
}

#[test]
fn measured_single_pe_machine() {
    let got = placement(1, LdbPolicy::Measured, 10);
    assert_eq!(got, vec![10]);
}

/// The skewed-stream shoot-out: every seed deposited on PE 0, three
/// balancing policies side by side. All must conserve the stream, and
/// Measured — placing by live backlog rather than by hop-local
/// threshold (Spray) or manager bookkeeping (Central) — must keep the
/// hottest PE strictly below the whole stream, i.e. behave like a
/// balancer, not like Direct.
#[test]
fn measured_compares_with_spray_and_central_on_a_skewed_stream() {
    let spray = placement(
        4,
        LdbPolicy::Spray {
            threshold: 3,
            max_hops: 4,
        },
        60,
    );
    let central = placement(4, LdbPolicy::Central, 60);
    let measured = placement(4, LdbPolicy::Measured, 60);
    for (name, got) in [
        ("spray", &spray),
        ("central", &central),
        ("measured", &measured),
    ] {
        assert_eq!(
            got.iter().sum::<u64>(),
            60,
            "{name} lost or duplicated seeds: {got:?}"
        );
    }
    let hottest = |g: &Vec<u64>| *g.iter().max().unwrap();
    assert!(
        hottest(&measured) < 60,
        "measured behaved like Direct: {measured:?} (spray {spray:?}, central {central:?})"
    );
}
