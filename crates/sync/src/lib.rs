//! Cts synchronization mechanisms for Converse threads (paper §3.2.3,
//! appendix §6): locks, condition variables, and barriers.
//!
//! "Locks are implemented by having queues attached to each lock. …
//! A thread which releases the lock causes the shifting of ownership of
//! the lock to the first thread in this queue and awakens this thread."
//! That queue-of-suspended-threads structure is implemented literally
//! here on top of the thread object's suspend/awaken primitives, so a
//! lock's hand-off respects each waiting thread's scheduling strategy
//! (ready pool or Csd scheduler).
//!
//! These primitives synchronize the cooperative threads of **one PE** —
//! Converse threads never migrate — so there is never true contention;
//! the internal `parking_lot` mutexes only guard against the PE's
//! multiple (but strictly alternating) OS-thread contexts.

use converse_machine::Pe;
use converse_threads::{cth_awaken, cth_self, cth_suspend, Thread};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Identity of a lock-owning context: a thread id, or 0 for the PE's
/// main context (which may hold uncontended locks but cannot block).
fn current_ctx(pe: &Pe) -> u64 {
    cth_self(pe).map(|t| t.id()).unwrap_or(0)
}

fn main_context_cannot_block(pe: &Pe) -> ! {
    panic!(
        "PE {}: the main context would block on a Cts primitive — only \
         thread objects may wait (create one with cth_create)",
        pe.my_pe()
    )
}

/// Error returned by [`CtsLock::unlock`] when the caller is not the
/// owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotOwner {
    /// Context that attempted the unlock.
    pub caller: u64,
    /// Actual owner, if any.
    pub owner: Option<u64>,
}

struct LockInner {
    owner: Option<u64>,
    waiters: VecDeque<Thread>,
}

/// A queued mutual-exclusion lock (`LOCK`, `CtsNewLock`).
pub struct CtsLock {
    inner: Mutex<LockInner>,
}

impl CtsLock {
    /// Allocate a new lock (`CtsNewLock`).
    pub fn new() -> Arc<CtsLock> {
        Arc::new(CtsLock {
            inner: Mutex::new(LockInner {
                owner: None,
                waiters: VecDeque::new(),
            }),
        })
    }

    /// Non-blocking acquisition attempt (`CtsTryLock`): true on success.
    pub fn try_lock(&self, pe: &Pe) -> bool {
        let mut l = self.inner.lock();
        if l.owner.is_none() {
            l.owner = Some(current_ctx(pe));
            true
        } else {
            false
        }
    }

    /// Acquire the lock (`CtsLock`), suspending the calling thread if it
    /// is taken. Waiters receive the lock strictly in arrival order.
    pub fn lock(&self, pe: &Pe) {
        let me = current_ctx(pe);
        loop {
            {
                let mut l = self.inner.lock();
                if l.owner.is_none() {
                    l.owner = Some(me);
                    return;
                }
                assert_ne!(l.owner, Some(me), "PE {}: recursive Cts lock", pe.my_pe());
                match cth_self(pe) {
                    Some(t) => l.waiters.push_back(t),
                    None => main_context_cannot_block(pe),
                }
            }
            cth_suspend(pe);
            // Awakened as the designated next owner (ownership was
            // transferred by unlock); confirm and return. A custom
            // strategy could resume us early — then we queue up again.
            if self.inner.lock().owner == Some(me) {
                return;
            }
        }
    }

    /// Release the lock (`CtsUnLock`): ownership shifts to the first
    /// queued waiter, which is awakened.
    pub fn unlock(&self, pe: &Pe) -> Result<(), NotOwner> {
        let me = current_ctx(pe);
        let next = {
            let mut l = self.inner.lock();
            if l.owner != Some(me) {
                return Err(NotOwner {
                    caller: me,
                    owner: l.owner,
                });
            }
            match l.waiters.pop_front() {
                Some(t) => {
                    l.owner = Some(t.id());
                    Some(t)
                }
                None => {
                    l.owner = None;
                    None
                }
            }
        };
        if let Some(t) = next {
            cth_awaken(pe, &t);
        }
        Ok(())
    }

    /// The owning context id, if locked.
    pub fn owner(&self) -> Option<u64> {
        self.inner.lock().owner
    }

    /// Number of threads queued on the lock.
    pub fn waiters(&self) -> usize {
        self.inner.lock().waiters.len()
    }
}

/// A condition variable (`CONDN`): threads [`CtsCondn::wait`];
/// [`CtsCondn::signal`] releases one, [`CtsCondn::broadcast`] all.
pub struct CtsCondn {
    waiters: Mutex<VecDeque<Thread>>,
}

impl CtsCondn {
    /// Allocate a new condition variable (`CtsNewCondn`).
    pub fn new() -> Arc<CtsCondn> {
        Arc::new(CtsCondn {
            waiters: Mutex::new(VecDeque::new()),
        })
    }

    /// Re-initialize, awakening all current waiters (`CtsCondnInit`).
    pub fn reinit(&self, pe: &Pe) {
        self.broadcast(pe);
    }

    /// Suspend the calling thread until signalled (`CtsCondnWait`).
    pub fn wait(&self, pe: &Pe) {
        match cth_self(pe) {
            Some(t) => self.waiters.lock().push_back(t),
            None => main_context_cannot_block(pe),
        }
        cth_suspend(pe);
    }

    /// Awaken one waiting thread, in arrival order (`CtsCondnSignal`).
    /// Returns true if a thread was released.
    pub fn signal(&self, pe: &Pe) -> bool {
        let t = self.waiters.lock().pop_front();
        match t {
            Some(t) => {
                cth_awaken(pe, &t);
                true
            }
            None => false,
        }
    }

    /// Awaken every waiting thread (`CtsCondnBroadcast`). Returns the
    /// number released.
    pub fn broadcast(&self, pe: &Pe) -> usize {
        let ts: Vec<Thread> = self.waiters.lock().drain(..).collect();
        let n = ts.len();
        for t in ts {
            cth_awaken(pe, &t);
        }
        n
    }

    /// Number of threads currently waiting.
    pub fn waiters(&self) -> usize {
        self.waiters.lock().len()
    }
}

struct BarrierInner {
    needed: usize,
    arrived: usize,
    waiters: VecDeque<Thread>,
}

/// A thread barrier (`BARRIER`): "a condition variable whose k-th wait
/// is a broadcast" — the k-th arrival releases everyone.
pub struct CtsBarrier {
    inner: Mutex<BarrierInner>,
}

impl CtsBarrier {
    /// Allocate a barrier awaiting `num` threads (`CtsNewBarrier` +
    /// `CtsBarrierReinit`).
    pub fn new(num: usize) -> Arc<CtsBarrier> {
        assert!(num > 0, "a barrier needs at least one participant");
        Arc::new(CtsBarrier {
            inner: Mutex::new(BarrierInner {
                needed: num,
                arrived: 0,
                waiters: VecDeque::new(),
            }),
        })
    }

    /// Re-initialize (`CtsBarrierReinit`): free any threads currently
    /// waiting, then await the arrival of `num` threads.
    pub fn reinit(&self, pe: &Pe, num: usize) {
        assert!(num > 0, "a barrier needs at least one participant");
        let ts: Vec<Thread> = {
            let mut b = self.inner.lock();
            b.needed = num;
            b.arrived = 0;
            b.waiters.drain(..).collect()
        };
        for t in ts {
            cth_awaken(pe, &t);
        }
    }

    /// Arrive at the barrier (`CtsAtBarrier`): blocks all but the last of
    /// the `num` participating threads, whose arrival awakens them all.
    pub fn at_barrier(&self, pe: &Pe) {
        let release = {
            let mut b = self.inner.lock();
            b.arrived += 1;
            if b.arrived >= b.needed {
                b.arrived = 0;
                Some(b.waiters.drain(..).collect::<Vec<_>>())
            } else {
                match cth_self(pe) {
                    Some(t) => b.waiters.push_back(t),
                    None => main_context_cannot_block(pe),
                }
                None
            }
        };
        match release {
            Some(ts) => {
                for t in ts {
                    cth_awaken(pe, &t);
                }
            }
            None => cth_suspend(pe),
        }
    }

    /// Threads currently blocked at the barrier.
    pub fn waiting(&self) -> usize {
        self.inner.lock().waiters.len()
    }
}
