//! Lock/condition-variable/barrier semantics among cooperative threads.
//!
//! Every semantic test runs on **each available thread backend** (fiber
//! and hand-off) via [`run_on_each_backend`]: the synchronization layer
//! sits purely on the `cth_*` API and must not notice the mechanism.

use converse_core::{csd_scheduler_until_idle, run};
use converse_sync::{CtsBarrier, CtsCondn, CtsLock};
use converse_threads::{cth_awaken, cth_create, cth_resume, run_on_each_backend, CthRuntime};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn trylock_and_unlock_from_main_context() {
    run_on_each_backend(1, |pe| {
        let lock = CtsLock::new();
        assert!(lock.try_lock(pe));
        assert_eq!(lock.owner(), Some(0), "main context is owner 0");
        assert!(!lock.try_lock(pe), "already held");
        lock.unlock(pe).unwrap();
        assert_eq!(lock.owner(), None);
    });
}

#[test]
fn unlock_by_non_owner_is_error() {
    run_on_each_backend(1, |pe| {
        let lock = CtsLock::new();
        let err = lock.unlock(pe).unwrap_err();
        assert_eq!(err.owner, None);
        lock.try_lock(pe);
        let l2 = lock.clone();
        let t = cth_create(pe, move |pe| {
            let err = l2.unlock(pe).unwrap_err();
            assert_eq!(err.owner, Some(0));
            assert_ne!(err.caller, 0);
        });
        cth_resume(pe, &t);
        lock.unlock(pe).unwrap();
    });
}

#[test]
fn contended_lock_hands_off_in_arrival_order() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let lock = CtsLock::new();
        let log = Arc::new(Mutex::new(Vec::<u32>::new()));
        // A holder thread takes the lock, then three threads queue up.
        let l0 = lock.clone();
        let g0 = log.clone();
        rt.spawn_scheduled(pe, move |pe| {
            l0.lock(pe);
            g0.lock().push(100);
            // Yield so the waiters enqueue while we hold the lock.
            converse_threads::cth_yield(pe);
            g0.lock().push(101);
            l0.unlock(pe).unwrap();
        });
        for i in 0..3u32 {
            let li = lock.clone();
            let gi = log.clone();
            rt.spawn_scheduled(pe, move |pe| {
                li.lock(pe);
                gi.lock().push(i);
                li.unlock(pe).unwrap();
            });
        }
        csd_scheduler_until_idle(pe);
        assert_eq!(*log.lock(), vec![100, 101, 0, 1, 2]);
        assert_eq!(lock.owner(), None);
        assert_eq!(lock.waiters(), 0);
    });
}

#[test]
fn lock_critical_section_is_exclusive() {
    // Threads increment a naive counter with deliberate yields inside
    // the critical section; the lock must serialize them.
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let lock = CtsLock::new();
        let counter = Arc::new(Mutex::new(0u64));
        for _ in 0..8 {
            let l = lock.clone();
            let c = counter.clone();
            rt.spawn_scheduled(pe, move |pe| {
                for _ in 0..5 {
                    l.lock(pe);
                    let v = *c.lock();
                    converse_threads::cth_yield(pe); // interleave!
                    *c.lock() = v + 1;
                    l.unlock(pe).unwrap();
                }
            });
        }
        csd_scheduler_until_idle(pe);
        assert_eq!(*counter.lock(), 40, "lost updates without mutual exclusion");
    });
}

#[test]
fn condn_signal_releases_in_order() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let cv = CtsCondn::new();
        let log = Arc::new(Mutex::new(Vec::<u32>::new()));
        for i in 0..3u32 {
            let cv2 = cv.clone();
            let g = log.clone();
            rt.spawn_scheduled(pe, move |pe| {
                cv2.wait(pe);
                g.lock().push(i);
            });
        }
        // Run the threads up to their wait.
        csd_scheduler_until_idle(pe);
        assert_eq!(cv.waiters(), 3);
        assert!(log.lock().is_empty());
        assert!(cv.signal(pe));
        csd_scheduler_until_idle(pe);
        assert_eq!(*log.lock(), vec![0]);
        assert_eq!(cv.broadcast(pe), 2);
        csd_scheduler_until_idle(pe);
        assert_eq!(*log.lock(), vec![0, 1, 2]);
        assert!(!cv.signal(pe), "no waiters left");
    });
}

#[test]
fn condn_reinit_awakens_everyone() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let cv = CtsCondn::new();
        let released = Arc::new(Mutex::new(0u32));
        for _ in 0..4 {
            let cv2 = cv.clone();
            let r = released.clone();
            rt.spawn_scheduled(pe, move |pe| {
                cv2.wait(pe);
                *r.lock() += 1;
            });
        }
        csd_scheduler_until_idle(pe);
        cv.reinit(pe);
        csd_scheduler_until_idle(pe);
        assert_eq!(*released.lock(), 4);
    });
}

#[test]
fn barrier_kth_wait_broadcasts() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let bar = CtsBarrier::new(4);
        let log = Arc::new(Mutex::new(Vec::<(u32, &'static str)>::new()));
        for i in 0..4u32 {
            let b = bar.clone();
            let g = log.clone();
            rt.spawn_scheduled(pe, move |pe| {
                g.lock().push((i, "before"));
                b.at_barrier(pe);
                g.lock().push((i, "after"));
            });
        }
        csd_scheduler_until_idle(pe);
        let log = log.lock();
        let first_after = log.iter().position(|(_, s)| *s == "after").unwrap();
        let befores = log
            .iter()
            .take(first_after)
            .filter(|(_, s)| *s == "before")
            .count();
        assert_eq!(befores, 4, "every before precedes every after");
        assert_eq!(log.len(), 8);
        assert_eq!(bar.waiting(), 0);
    });
}

#[test]
fn barrier_is_reusable_across_phases() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let bar = CtsBarrier::new(3);
        let phase_log = Arc::new(Mutex::new(Vec::<(u32, u32)>::new()));
        for i in 0..3u32 {
            let b = bar.clone();
            let g = phase_log.clone();
            rt.spawn_scheduled(pe, move |pe| {
                for phase in 0..3u32 {
                    g.lock().push((phase, i));
                    b.at_barrier(pe);
                }
            });
        }
        csd_scheduler_until_idle(pe);
        let log = phase_log.lock();
        assert_eq!(log.len(), 9);
        // Phases never interleave: all of phase p precede all of p+1.
        for w in 0..log.len() - 1 {
            assert!(
                log[w].0 <= log[w + 1].0,
                "phase regression at {w}: {:?}",
                *log
            );
        }
    });
}

#[test]
fn barrier_reinit_frees_waiters() {
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let bar = CtsBarrier::new(10); // more than will ever arrive
        let freed = Arc::new(Mutex::new(0u32));
        for _ in 0..2 {
            let b = bar.clone();
            let f = freed.clone();
            rt.spawn_scheduled(pe, move |pe| {
                b.at_barrier(pe);
                *f.lock() += 1;
            });
        }
        csd_scheduler_until_idle(pe);
        assert_eq!(bar.waiting(), 2);
        bar.reinit(pe, 3);
        csd_scheduler_until_idle(pe);
        assert_eq!(*freed.lock(), 2);
        assert_eq!(bar.waiting(), 0);
    });
}

#[test]
fn main_context_blocking_panics_with_guidance() {
    let result = std::panic::catch_unwind(|| {
        run(1, |pe| {
            let cv = CtsCondn::new();
            cv.wait(pe); // main context cannot block
        });
    });
    let err = result.expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("main context"), "got: {msg}");
}

#[test]
fn producer_consumer_with_lock_and_condn() {
    // The classic pattern: bounded buffer with a lock + two condvars.
    run_on_each_backend(1, |pe| {
        let rt = CthRuntime::get(pe);
        let lock = CtsLock::new();
        let not_empty = CtsCondn::new();
        let not_full = CtsCondn::new();
        let buf: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let consumed: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        const CAP: usize = 4;
        const N: u32 = 20;

        let (l1, ne1, nf1, b1) = (
            lock.clone(),
            not_empty.clone(),
            not_full.clone(),
            buf.clone(),
        );
        rt.spawn_scheduled(pe, move |pe| {
            for i in 0..N {
                l1.lock(pe);
                while b1.lock().len() >= CAP {
                    l1.unlock(pe).unwrap();
                    nf1.wait(pe);
                    l1.lock(pe);
                }
                b1.lock().push(i);
                ne1.signal(pe);
                l1.unlock(pe).unwrap();
                converse_threads::cth_yield(pe);
            }
        });
        let (l2, ne2, nf2, b2, c2) = (
            lock.clone(),
            not_empty.clone(),
            not_full.clone(),
            buf.clone(),
            consumed.clone(),
        );
        rt.spawn_scheduled(pe, move |pe| {
            for _ in 0..N {
                l2.lock(pe);
                while b2.lock().is_empty() {
                    l2.unlock(pe).unwrap();
                    ne2.wait(pe);
                    l2.lock(pe);
                }
                let v = b2.lock().remove(0);
                c2.lock().push(v);
                nf2.signal(pe);
                l2.unlock(pe).unwrap();
            }
        });
        csd_scheduler_until_idle(pe);
        assert_eq!(*consumed.lock(), (0..N).collect::<Vec<_>>());
        assert!(buf.lock().is_empty());
    });
}

#[test]
fn lock_waiter_awakened_through_ready_pool_strategy() {
    // Default-strategy threads (manual resume, ready pool) also work
    // with the lock's hand-off.
    run_on_each_backend(1, |pe| {
        let lock = CtsLock::new();
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let (la, ga) = (lock.clone(), log.clone());
        let ta = cth_create(pe, move |pe| {
            la.lock(pe);
            ga.lock().push(b'a');
            converse_threads::cth_yield(pe);
            la.unlock(pe).unwrap();
            ga.lock().push(b'A');
        });
        let (lb, gb) = (lock.clone(), log.clone());
        let tb = cth_create(pe, move |pe| {
            lb.lock(pe);
            gb.lock().push(b'b');
            lb.unlock(pe).unwrap();
        });
        cth_awaken(pe, &tb);
        cth_resume(pe, &ta);
        // a takes the lock and yields; b queues on the lock; a unlocks
        // (handing ownership to b), logs 'A' and exits; b then runs.
        assert_eq!(*log.lock(), vec![b'a', b'A', b'b']);
    });
}
