//! Property test: the indexed message manager is observationally
//! equivalent to the linear-scan one under arbitrary operation
//! sequences, and both match FIFO-channel semantics.

use converse_msgmgr::{IndexedMsgManager, MsgManager, TagMailbox, WILDCARD};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<i32>, Vec<u8>),
    Get(Vec<i32>),
    Probe(Vec<i32>),
}

fn arb_tag() -> impl Strategy<Value = i32> {
    // Small tag space to force collisions and wildcard hits.
    prop_oneof![4 => 0i32..4, 1 => Just(WILDCARD)]
}

fn arb_store_tags() -> impl Strategy<Value = Vec<i32>> {
    prop_oneof![
        proptest::collection::vec(0i32..4, 1..=1),
        proptest::collection::vec(0i32..4, 2..=2),
    ]
}

fn arb_pattern() -> impl Strategy<Value = Vec<i32>> {
    prop_oneof![
        proptest::collection::vec(arb_tag(), 1..=1),
        proptest::collection::vec(arb_tag(), 2..=2),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            arb_store_tags(),
            proptest::collection::vec(any::<u8>(), 0..8)
        )
            .prop_map(|(t, d)| Op::Put(t, d)),
        arb_pattern().prop_map(Op::Get),
        arb_pattern().prop_map(Op::Probe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_equals_scan(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let mut scan = MsgManager::new();
        let mut indexed = IndexedMsgManager::new();
        for op in ops {
            match op {
                Op::Put(tags, data) => {
                    scan.put(&tags, data.clone());
                    indexed.put(&tags, data);
                }
                Op::Get(p) => {
                    prop_assert_eq!(scan.get(&p), indexed.get(&p), "pattern {:?}", p);
                }
                Op::Probe(p) => {
                    prop_assert_eq!(scan.probe(&p), indexed.probe(&p), "pattern {:?}", p);
                }
            }
            prop_assert_eq!(scan.len(), indexed.len());
        }
    }

    /// Per-tag FIFO: getting a fixed tag always yields the payloads in
    /// insertion order, regardless of interleaved other-tag traffic.
    #[test]
    fn per_tag_fifo(seq in proptest::collection::vec((0i32..3, any::<u8>()), 0..60)) {
        let mut mm = IndexedMsgManager::new();
        for (tag, v) in &seq {
            mm.put(&[*tag], vec![*v]);
        }
        for tag in 0..3 {
            let expect: Vec<u8> =
                seq.iter().filter(|(t, _)| *t == tag).map(|(_, v)| *v).collect();
            let mut got = Vec::new();
            while let Some(s) = mm.get(&[tag]) {
                got.push(s.data[0]);
            }
            prop_assert_eq!(got, expect, "tag {}", tag);
        }
        prop_assert!(mm.is_empty());
    }
}
