//! The Cmm **message manager** (paper §3.2.1, appendix §4).
//!
//! "A message manager is simply a container for storing messages. It
//! stores a subset of messages that are yet to be processed, serving as
//! an indexed mailbox. … Messages may be retrieved based on one or more
//! 'identification marks' on the message. A tag and a source processor
//! number are examples … Instances of message managers provided in
//! Converse can be customized to either one or two tags … Retrieval or
//! probes are allowed to 'wildcard' the tag field."
//!
//! Two implementations share one behaviour:
//! * [`MsgManager`] — the straightforward list with linear matching,
//!   matching the 1996 code's simplicity; fine for the handful of
//!   outstanding messages an SPM module typically has.
//! * [`IndexedMsgManager`] — hash-indexed by exact tag tuple for O(1)
//!   exact retrieval, falling back to an in-order scan for wildcard
//!   patterns. The `msgmgr_retrieval` bench quantifies the difference
//!   (an ablation of the "need-based cost" principle: pay for indexing
//!   only if your retrieval pattern needs it).
//!
//! Matching always returns the **earliest inserted** matching message,
//! so a tag used by several senders behaves like a FIFO channel.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// The wildcard tag value (`CmmWildcard`): matches any stored tag in
/// that position.
pub const WILDCARD: i32 = i32::MIN;

/// One stored message: its tags (1 or 2 of them) and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stored {
    /// The identification marks (length 1 or 2).
    pub tags: Vec<i32>,
    /// The message bytes.
    pub data: Vec<u8>,
}

fn check_tags(tags: &[i32]) {
    assert!(
        tags.len() == 1 || tags.len() == 2,
        "Cmm supports one or two tags, got {}",
        tags.len()
    );
    assert!(
        !tags.contains(&WILDCARD),
        "stored tags cannot be the wildcard value"
    );
}

fn matches(stored: &[i32], pattern: &[i32]) -> bool {
    stored.len() == pattern.len()
        && stored
            .iter()
            .zip(pattern)
            .all(|(s, p)| *p == WILDCARD || s == p)
}

/// Common interface of the two message-manager implementations.
pub trait TagMailbox {
    /// Store a message under its tags (`CmmPut` / `CmmPut2`).
    fn put(&mut self, tags: &[i32], data: Vec<u8>);

    /// Size and actual tags of the earliest matching message, without
    /// removing it (`CmmProbe`). `None` if nothing matches.
    fn probe(&self, pattern: &[i32]) -> Option<(usize, Vec<i32>)>;

    /// Remove and return the earliest matching message (`CmmGetPtr`).
    fn get(&mut self, pattern: &[i32]) -> Option<Stored>;

    /// Number of stored messages.
    fn len(&self) -> usize;

    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy at most `buf.len()` bytes of the earliest matching message
    /// into `buf` (`CmmGet`), removing it. Returns the message's full
    /// length and its tags.
    fn get_into(&mut self, pattern: &[i32], buf: &mut [u8]) -> Option<(usize, Vec<i32>)>
    where
        Self: Sized,
    {
        let s = self.get(pattern)?;
        let n = s.data.len().min(buf.len());
        buf[..n].copy_from_slice(&s.data[..n]);
        Some((s.data.len(), s.tags))
    }
}

/// Linear-scan message manager (`CmmNew`).
///
/// ```
/// use converse_msgmgr::{MsgManager, TagMailbox, WILDCARD};
///
/// let mut mm = MsgManager::new();
/// mm.put(&[17, 3], b"from pe 3".to_vec());
/// assert_eq!(mm.probe(&[17, WILDCARD]).unwrap().0, 9);
/// let got = mm.get(&[WILDCARD, 3]).unwrap();
/// assert_eq!(got.tags, vec![17, 3]);
/// assert_eq!(got.data, b"from pe 3");
/// assert!(mm.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct MsgManager {
    entries: VecDeque<Stored>,
}

impl MsgManager {
    /// New empty manager.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TagMailbox for MsgManager {
    fn put(&mut self, tags: &[i32], data: Vec<u8>) {
        check_tags(tags);
        self.entries.push_back(Stored {
            tags: tags.to_vec(),
            data,
        });
    }

    fn probe(&self, pattern: &[i32]) -> Option<(usize, Vec<i32>)> {
        self.entries
            .iter()
            .find(|e| matches(&e.tags, pattern))
            .map(|e| (e.data.len(), e.tags.clone()))
    }

    fn get(&mut self, pattern: &[i32]) -> Option<Stored> {
        let idx = self
            .entries
            .iter()
            .position(|e| matches(&e.tags, pattern))?;
        self.entries.remove(idx)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Hash-indexed message manager: O(1) exact-tag retrieval, ordered scan
/// for wildcards.
#[derive(Debug, Default)]
pub struct IndexedMsgManager {
    /// seq → entry, ordered by insertion.
    store: BTreeMap<u64, Stored>,
    /// exact tag tuple → queue of seqs (may contain stale entries).
    index: HashMap<Vec<i32>, VecDeque<u64>>,
    next_seq: u64,
}

impl IndexedMsgManager {
    /// New empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    fn find_seq(&self, pattern: &[i32]) -> Option<u64> {
        if pattern.contains(&WILDCARD) {
            self.store
                .iter()
                .find(|(_, e)| matches(&e.tags, pattern))
                .map(|(seq, _)| *seq)
        } else {
            let q = self.index.get(pattern)?;
            q.iter().find(|seq| self.store.contains_key(seq)).copied()
        }
    }
}

impl TagMailbox for IndexedMsgManager {
    fn put(&mut self, tags: &[i32], data: Vec<u8>) {
        check_tags(tags);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.index.entry(tags.to_vec()).or_default().push_back(seq);
        self.store.insert(
            seq,
            Stored {
                tags: tags.to_vec(),
                data,
            },
        );
    }

    fn probe(&self, pattern: &[i32]) -> Option<(usize, Vec<i32>)> {
        let seq = self.find_seq(pattern)?;
        let e = &self.store[&seq];
        Some((e.data.len(), e.tags.clone()))
    }

    fn get(&mut self, pattern: &[i32]) -> Option<Stored> {
        let seq = self.find_seq(pattern)?;
        let e = self.store.remove(&seq).expect("found seq is present");
        if let Some(q) = self.index.get_mut(&e.tags) {
            if let Some(pos) = q.iter().position(|s| *s == seq) {
                q.remove(pos);
            }
            if q.is_empty() {
                self.index.remove(&e.tags);
            }
        }
        Some(e)
    }

    fn len(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> Vec<Box<dyn TagMailbox>> {
        vec![
            Box::new(MsgManager::new()),
            Box::new(IndexedMsgManager::new()),
        ]
    }

    #[test]
    fn put_get_single_tag() {
        for mut mm in both() {
            mm.put(&[7], b"seven".to_vec());
            assert_eq!(mm.len(), 1);
            let s = mm.get(&[7]).unwrap();
            assert_eq!(s.tags, vec![7]);
            assert_eq!(s.data, b"seven");
            assert!(mm.is_empty());
            assert!(mm.get(&[7]).is_none());
        }
    }

    #[test]
    fn two_tags_must_match_both() {
        for mut mm in both() {
            mm.put(&[1, 2], b"a".to_vec());
            assert!(mm.get(&[1, 3]).is_none());
            assert!(mm.get(&[2, 2]).is_none());
            assert!(mm.get(&[1, 2]).is_some());
        }
    }

    #[test]
    fn wildcard_matches_any_tag() {
        for mut mm in both() {
            mm.put(&[5, 10], b"x".to_vec());
            let (len, tags) = mm.probe(&[WILDCARD, 10]).unwrap();
            assert_eq!((len, tags), (1, vec![5, 10]));
            let s = mm.get(&[5, WILDCARD]).unwrap();
            assert_eq!(s.tags, vec![5, 10]);
        }
    }

    #[test]
    fn full_wildcard_returns_earliest() {
        for mut mm in both() {
            mm.put(&[1], b"first".to_vec());
            mm.put(&[2], b"second".to_vec());
            let s = mm.get(&[WILDCARD]).unwrap();
            assert_eq!(s.data, b"first");
            let s = mm.get(&[WILDCARD]).unwrap();
            assert_eq!(s.data, b"second");
        }
    }

    #[test]
    fn fifo_within_same_tag() {
        for mut mm in both() {
            for i in 0..5u8 {
                mm.put(&[9], vec![i]);
            }
            for i in 0..5u8 {
                assert_eq!(mm.get(&[9]).unwrap().data, vec![i]);
            }
        }
    }

    #[test]
    fn probe_does_not_remove() {
        for mut mm in both() {
            mm.put(&[3], b"abc".to_vec());
            assert_eq!(mm.probe(&[3]).unwrap().0, 3);
            assert_eq!(mm.probe(&[3]).unwrap().0, 3);
            assert_eq!(mm.len(), 1);
        }
    }

    #[test]
    fn probe_returns_none_on_miss() {
        for mm in both() {
            assert!(mm.probe(&[1]).is_none());
        }
    }

    #[test]
    fn get_into_truncates_and_reports_full_len() {
        for mut mm in both() {
            mm.put(&[4], b"0123456789".to_vec());
            let mut buf = [0u8; 4];
            // Call through the concrete types to exercise the default impl.
            let (full, tags) = match mm.get(&[4]) {
                Some(s) => {
                    let n = s.data.len().min(buf.len());
                    buf[..n].copy_from_slice(&s.data[..n]);
                    (s.data.len(), s.tags)
                }
                None => unreachable!(),
            };
            assert_eq!(full, 10);
            assert_eq!(tags, vec![4]);
            assert_eq!(&buf, b"0123");
        }
    }

    #[test]
    fn get_into_on_concrete_type() {
        let mut mm = MsgManager::new();
        mm.put(&[1], b"hello".to_vec());
        let mut buf = [0u8; 16];
        let (full, tags) = mm.get_into(&[WILDCARD], &mut buf).unwrap();
        assert_eq!(full, 5);
        assert_eq!(tags, vec![1]);
        assert_eq!(&buf[..5], b"hello");
        assert!(mm.is_empty());
    }

    #[test]
    fn tag_arity_must_match_pattern() {
        for mut mm in both() {
            mm.put(&[1], b"one-tag".to_vec());
            mm.put(&[1, 2], b"two-tag".to_vec());
            assert_eq!(mm.get(&[1, 2]).unwrap().data, b"two-tag");
            assert_eq!(mm.get(&[1]).unwrap().data, b"one-tag");
        }
    }

    #[test]
    #[should_panic(expected = "one or two tags")]
    fn put_rejects_zero_tags() {
        MsgManager::new().put(&[], b"".to_vec());
    }

    #[test]
    #[should_panic(expected = "wildcard")]
    fn put_rejects_wildcard_tag() {
        IndexedMsgManager::new().put(&[WILDCARD], b"".to_vec());
    }

    #[test]
    fn interleaved_wildcard_and_exact_gets() {
        for mut mm in both() {
            mm.put(&[1], vec![1]);
            mm.put(&[2], vec![2]);
            mm.put(&[1], vec![11]);
            assert_eq!(mm.get(&[2]).unwrap().data, vec![2]);
            assert_eq!(mm.get(&[WILDCARD]).unwrap().data, vec![1]);
            assert_eq!(mm.get(&[1]).unwrap().data, vec![11]);
            assert!(mm.is_empty());
        }
    }
}
