//! Tiny payload packing helpers.
//!
//! Language runtimes built on Converse (Charm, SM, DP, …) assemble small
//! binary payloads — ids, tags, scalars, byte slices — without wanting a
//! general serialization framework on the message fast path. [`Packer`]
//! writes fields little-endian; [`Unpacker`] reads them back in order.
//! All reads are checked: malformed payloads yield [`PackError`] rather
//! than panics, so a handler can reject a corrupt message gracefully.

use std::fmt;

/// Error produced when an [`Unpacker`] runs out of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackError {
    /// Bytes requested by the failing read.
    pub needed: usize,
    /// Bytes that remained.
    pub remaining: usize,
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "payload underrun: needed {} bytes, {} remaining",
            self.needed, self.remaining
        )
    }
}

impl std::error::Error for PackError {}

/// Sequential little-endian payload writer.
#[derive(Default, Debug, Clone)]
pub struct Packer {
    buf: Vec<u8>,
}

impl Packer {
    /// New empty packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New packer with capacity for `n` bytes.
    pub fn with_capacity(n: usize) -> Self {
        Packer {
            buf: Vec::with_capacity(n),
        }
    }

    /// Finish and take the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current payload length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `i32`.
    pub fn i32(mut self, v: i32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `i64`.
    pub fn i64(mut self, v: i64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64`.
    pub fn f64(mut self, v: f64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `usize` as `u64` (portable across word sizes).
    pub fn usize(self, v: usize) -> Self {
        self.u64(v as u64)
    }

    /// Append a length-prefixed byte slice.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(self, v: &str) -> Self {
        self.bytes(v.as_bytes())
    }

    /// Append raw bytes with no length prefix (reader must know the size).
    pub fn raw(mut self, v: &[u8]) -> Self {
        self.buf.extend_from_slice(v);
        self
    }
}

/// Sequential little-endian payload reader.
pub struct Unpacker<'a> {
    buf: &'a [u8],
}

impl<'a> Unpacker<'a> {
    /// Read from `payload` (typically `msg.payload()`).
    pub fn new(payload: &'a [u8]) -> Self {
        Unpacker { buf: payload }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn need(&self, n: usize) -> Result<(), PackError> {
        if self.buf.len() < n {
            Err(PackError {
                needed: n,
                remaining: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Consume the next `N` bytes as a fixed-size array.
    fn take<const N: usize>(&mut self) -> Result<[u8; N], PackError> {
        self.need(N)?;
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        Ok(head.try_into().expect("split_at yields exactly N bytes"))
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, PackError> {
        Ok(u8::from_le_bytes(self.take::<1>()?))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, PackError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    /// Read an `i32`.
    pub fn i32(&mut self) -> Result<i32, PackError> {
        Ok(i32::from_le_bytes(self.take::<4>()?))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, PackError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, PackError> {
        Ok(i64::from_le_bytes(self.take::<8>()?))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, PackError> {
        Ok(f64::from_le_bytes(self.take::<8>()?))
    }

    /// Read a `usize` written with [`Packer::usize`].
    pub fn usize(&mut self) -> Result<usize, PackError> {
        Ok(self.u64()? as usize)
    }

    /// Read a length-prefixed byte slice (borrowed, zero-copy).
    pub fn bytes(&mut self) -> Result<&'a [u8], PackError> {
        let n = self.u32()? as usize;
        self.need(n)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a length-prefixed UTF-8 string (lossy on invalid UTF-8).
    pub fn str(&mut self) -> Result<String, PackError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Read `n` raw bytes written with [`Packer::raw`].
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], PackError> {
        self.need(n)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consume everything that remains.
    pub fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let p = Packer::new()
            .u8(7)
            .u32(0xDEAD_BEEF)
            .i32(-42)
            .u64(u64::MAX)
            .i64(i64::MIN)
            .f64(3.25)
            .usize(123456)
            .finish();
        let mut u = Unpacker::new(&p);
        assert_eq!(u.u8().unwrap(), 7);
        assert_eq!(u.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(u.i32().unwrap(), -42);
        assert_eq!(u.u64().unwrap(), u64::MAX);
        assert_eq!(u.i64().unwrap(), i64::MIN);
        assert_eq!(u.f64().unwrap(), 3.25);
        assert_eq!(u.usize().unwrap(), 123456);
        assert_eq!(u.remaining(), 0);
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let p = Packer::new()
            .bytes(b"ab")
            .str("héllo")
            .raw(&[9, 9])
            .finish();
        let mut u = Unpacker::new(&p);
        assert_eq!(u.bytes().unwrap(), b"ab");
        assert_eq!(u.str().unwrap(), "héllo");
        assert_eq!(u.raw(2).unwrap(), &[9, 9]);
    }

    #[test]
    fn underrun_is_error_not_panic() {
        let p = Packer::new().u32(1).finish();
        let mut u = Unpacker::new(&p);
        assert_eq!(
            u.u64(),
            Err(PackError {
                needed: 8,
                remaining: 4
            })
        );
        // A failed read consumes nothing.
        assert_eq!(u.u32().unwrap(), 1);
    }

    #[test]
    fn rest_takes_remainder() {
        let p = Packer::new().u8(1).raw(b"tail").finish();
        let mut u = Unpacker::new(&p);
        u.u8().unwrap();
        assert_eq!(u.rest(), b"tail");
        assert_eq!(u.remaining(), 0);
    }

    #[test]
    fn truncated_length_prefix() {
        let mut bad = Packer::new().bytes(b"abcdef").finish();
        bad.truncate(6); // prefix says 6 bytes but only 2 follow
        let mut u = Unpacker::new(&bad);
        assert!(u.bytes().is_err());
    }
}
