//! Generalized messages for the Converse runtime.
//!
//! The paper (§3.1.1) generalizes a *message* to "an arbitrary block of
//! memory, with the first word specifying a function that will handle the
//! message". The function is named by an **index into a table of
//! functions** rather than a raw pointer, so the same bytes mean the same
//! thing on every processor. A generalized message can represent:
//!
//! 1. a message sent from a remote processor,
//! 2. a scheduler entry for a ready thread,
//! 3. a delayed function with its argument.
//!
//! This crate defines the on-the-wire layout ([`Message`]), the handler
//! index type ([`HandlerId`]), the refcounted pool-backed storage every
//! message lives in ([`MsgBlock`], [`pool`]), scheduling priorities
//! ([`Priority`], [`BitVecPrio`]) and small packing helpers
//! ([`pack::Packer`], [`pack::Unpacker`]) used by the language runtimes
//! to build payloads without a serialization framework in the hot path.
//!
//! # Layout
//!
//! A message is **one contiguous block**; header, priority area and
//! payload are offsets into it, never separate allocations:
//!
//! ```text
//! offset 0..4   handler index   (u32, little endian)   — CmiSetHandler
//! offset 4      priority kind   (0 = none, 1 = int, 2 = bitvector)
//! offset 5      priority words  (count of u32 words that follow header)
//! offset 6..8   flags           (u16, reserved for runtimes)
//! offset 8..    priority data   (priority-words * 4 bytes)
//! then          payload
//! ```
//!
//! `CmiMsgHeaderSizeBytes` in the paper's appendix corresponds to
//! [`HEADER_BYTES`] (the fixed part; the priority area is variable, as in
//! real Converse where bit-vector priorities have arbitrary length).
//!
//! # Ownership & zero-copy
//!
//! The block behind a [`Message`] is an `Arc`-backed [`MsgBlock`] whose
//! storage comes from the per-PE free-list [`pool`] (the
//! `CmiAlloc`/`CmiFree` analogue). [`Message::share`] (and `clone`,
//! which is the same operation) is a refcount bump; the interconnect
//! moves and shares blocks, so a send transfers ownership without
//! copying and a broadcast to P destinations is one buffer plus P
//! bumps. Mutators ([`Message::set_handler`], [`Message::set_flags`],
//! [`Message::payload_mut`]) are copy-on-write: in place on a uniquely
//! held message — the common case for a freshly received one, which is
//! what keeps the §3.3 retarget idiom free — and a single pooled copy
//! when the block is shared. `docs/API.md` ("Message ownership &
//! zero-copy rules") spells out the rules handlers rely on.

pub mod block;
pub mod frame;
pub mod pack;
pub mod pool;
pub mod prio;

pub use block::MsgBlock;
pub use frame::{
    encode_frame, read_frame, write_frame, FrameHeader, FRAME_HEADER_BYTES, MAX_FRAME_BODY,
};
pub use pool::PoolStats;
pub use prio::{BitVecPrio, Priority};

use std::fmt;

/// Size of the fixed message header in bytes (`CmiMsgHeaderSizeBytes`).
pub const HEADER_BYTES: usize = 8;

/// Flag bit (in the runtime-private flag word at offset 6..8) marking a
/// message as **relocatable**: its handler's semantics do not depend on
/// which PE executes it, so an idle PE may steal it out of a loaded
/// PE's staged mailbox. Only the runtime layer that builds a message
/// can know this, which is why the bit lives in the message header and
/// travels byte-identically across every transport.
pub const FLAG_STEALABLE: u16 = 0x0001;

const KIND_NONE: u8 = 0;
const KIND_INT: u8 = 1;
const KIND_BITVEC: u8 = 2;

/// Index into a per-processor handler table (`CmiRegisterHandler` result).
///
/// Handler ids are small dense integers; registration must occur in the
/// same order on every processor so that an id names the same function
/// everywhere — exactly the discipline real Converse imposes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(pub u32);

impl HandlerId {
    /// Handler id stored in a freshly allocated message before
    /// `set_handler` is called. Dispatching it is an error.
    pub const INVALID: HandlerId = HandlerId(u32::MAX);

    /// Raw table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HandlerId({})", self.0)
    }
}

impl fmt::Display for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors from decoding raw bytes into a [`Message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the fixed header.
    TooShort { len: usize },
    /// Priority kind byte not one of the known kinds.
    BadPriorityKind(u8),
    /// Header claims more priority words than the buffer holds.
    TruncatedPriority { words: usize, len: usize },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooShort { len } => {
                write!(
                    f,
                    "message of {len} bytes is shorter than the {HEADER_BYTES}-byte header"
                )
            }
            DecodeError::BadPriorityKind(k) => write!(f, "unknown priority kind {k}"),
            DecodeError::TruncatedPriority { words, len } => {
                write!(
                    f,
                    "header claims {words} priority words but message is {len} bytes"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A generalized Converse message: one contiguous block of bytes.
///
/// The first word names the handler; an optional priority area follows;
/// the rest is an opaque payload interpreted by the handler. Messages
/// are `Send` and contain no pointers, so they can cross processor
/// (thread) boundaries and — as in the paper — also represent local
/// scheduler entries such as "resume this thread".
///
/// The bytes live in a refcounted, pool-backed [`MsgBlock`];
/// [`Message::share`] / `clone` alias the block (a refcount bump, not a
/// copy) and the mutators are copy-on-write. See the module docs.
///
/// ```
/// use converse_msg::{Message, HandlerId, Priority};
///
/// let mut m = Message::with_priority(HandlerId(4), &Priority::Int(-2), b"payload");
/// assert_eq!(m.handler(), HandlerId(4));
/// assert_eq!(m.priority(), Priority::Int(-2));
/// assert_eq!(m.payload(), b"payload");
///
/// // Retarget at a second handler (the paper's §3.3 idiom) and ship it.
/// m.set_handler(HandlerId(9));
/// let wire = m.clone().into_bytes();
/// assert_eq!(Message::from_bytes(wire).unwrap(), m);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Message {
    block: MsgBlock,
}

impl Message {
    /// Build a message for `handler` carrying `payload`, no priority.
    pub fn new(handler: HandlerId, payload: &[u8]) -> Self {
        Self::with_priority(handler, &Priority::None, payload)
    }

    /// Build a message with an explicit scheduling priority.
    pub fn with_priority(handler: HandlerId, prio: &Priority, payload: &[u8]) -> Self {
        let (kind, words): (u8, &[u32]) = match prio {
            Priority::None => (KIND_NONE, &[]),
            Priority::Int(v) => (KIND_INT, std::slice::from_ref(bytemuck_i32(v))),
            Priority::BitVec(bv) => (KIND_BITVEC, bv.words()),
        };
        assert!(
            words.len() <= u8::MAX as usize,
            "priority too long: {} words",
            words.len()
        );
        let mut bytes = pool::take(HEADER_BYTES + words.len() * 4 + payload.len());
        bytes.extend_from_slice(&handler.0.to_le_bytes());
        bytes.push(kind);
        bytes.push(words.len() as u8);
        bytes.extend_from_slice(&0u16.to_le_bytes());
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        // Bit-vector priorities additionally record their exact bit length
        // in the first priority word; see `prio::BitVecPrio::words`.
        bytes.extend_from_slice(payload);
        Message {
            block: MsgBlock::adopt(bytes),
        }
    }

    /// Allocate a message with an uninitialized (`INVALID`) handler and a
    /// zero-filled payload of `payload_len` bytes. Mirrors the C pattern
    /// of `CmiAlloc` followed by `CmiSetHandler`.
    pub fn alloc(payload_len: usize) -> Self {
        let mut block = MsgBlock::alloc(HEADER_BYTES + payload_len);
        block.make_mut()[0..4].copy_from_slice(&HandlerId::INVALID.0.to_le_bytes());
        Message { block }
    }

    /// Decode raw bytes received from the interconnect, validating the
    /// header. The inverse of [`Message::into_bytes`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, DecodeError> {
        Self::from_block(MsgBlock::adopt(bytes))
    }

    /// Validate a received block as a message without copying it. The
    /// inverse of [`Message::into_block`]; this is how the machine layer
    /// turns a delivered [`MsgBlock`] back into a `Message`.
    pub fn from_block(block: MsgBlock) -> Result<Self, DecodeError> {
        let bytes = block.as_slice();
        if bytes.len() < HEADER_BYTES {
            return Err(DecodeError::TooShort { len: bytes.len() });
        }
        let kind = bytes[4];
        if kind > KIND_BITVEC {
            return Err(DecodeError::BadPriorityKind(kind));
        }
        let words = bytes[5] as usize;
        if bytes.len() < HEADER_BYTES + words * 4 {
            return Err(DecodeError::TruncatedPriority {
                words,
                len: bytes.len(),
            });
        }
        Ok(Message { block })
    }

    /// The wire representation as a plain `Vec`. Free when the message
    /// is uniquely held; prefer [`Message::into_block`] on hot paths.
    pub fn into_bytes(self) -> Vec<u8> {
        self.block.into_vec()
    }

    /// Surrender the underlying block (no copy) — what the send paths
    /// hand to the interconnect.
    #[inline]
    pub fn into_block(self) -> MsgBlock {
        self.block
    }

    /// The underlying block.
    #[inline]
    pub fn block(&self) -> &MsgBlock {
        &self.block
    }

    /// Another handle to the same message: a refcount bump, no copy.
    /// `clone` is the same operation; `share` states the intent.
    #[inline]
    pub fn share(&self) -> Message {
        Message {
            block: self.block.share(),
        }
    }

    /// Borrow the full wire representation.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        self.block.as_slice()
    }

    /// Handler index stored in the first word (`CmiGetHandler`).
    #[inline]
    pub fn handler(&self) -> HandlerId {
        let b = self.as_bytes();
        HandlerId(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Overwrite the handler index (`CmiSetHandler`). Language runtimes
    /// use this to retarget a queued message at a second handler so it is
    /// not re-enqueued (paper §3.3). Copy-on-write: in place on a
    /// uniquely held message, one pooled copy on a shared one.
    #[inline]
    pub fn set_handler(&mut self, h: HandlerId) {
        self.block.make_mut()[0..4].copy_from_slice(&h.0.to_le_bytes());
    }

    /// Runtime-private flag word.
    #[inline]
    pub fn flags(&self) -> u16 {
        let b = self.as_bytes();
        u16::from_le_bytes([b[6], b[7]])
    }

    /// Set the runtime-private flag word (copy-on-write when shared).
    #[inline]
    pub fn set_flags(&mut self, f: u16) {
        self.block.make_mut()[6..8].copy_from_slice(&f.to_le_bytes());
    }

    /// Tag this message as relocatable (see [`FLAG_STEALABLE`]): an
    /// idle PE may execute it in place of the addressed PE. Only mark
    /// messages whose handler is location-independent.
    #[inline]
    pub fn mark_stealable(&mut self) {
        let f = self.flags() | FLAG_STEALABLE;
        self.set_flags(f);
    }

    /// True when the message carries the [`FLAG_STEALABLE`] tag.
    #[inline]
    pub fn is_stealable(&self) -> bool {
        self.flags() & FLAG_STEALABLE != 0
    }

    #[inline]
    fn prio_words(&self) -> usize {
        self.as_bytes()[5] as usize
    }

    #[inline]
    fn payload_offset(&self) -> usize {
        HEADER_BYTES + self.prio_words() * 4
    }

    /// Decode the scheduling priority.
    pub fn priority(&self) -> Priority {
        match self.as_bytes()[4] {
            KIND_NONE => Priority::None,
            KIND_INT => {
                let w = self.prio_word(0);
                Priority::Int(w as i32)
            }
            KIND_BITVEC => {
                let words = self.prio_words();
                debug_assert!(words >= 1);
                let nbits = self.prio_word(0);
                let data: Vec<u32> = (1..words).map(|i| self.prio_word(i)).collect();
                Priority::BitVec(BitVecPrio::from_raw(nbits, data))
            }
            k => unreachable!("validated at construction: kind {k}"),
        }
    }

    #[inline]
    fn prio_word(&self, i: usize) -> u32 {
        let o = HEADER_BYTES + i * 4;
        let b = self.as_bytes();
        u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
    }

    /// The opaque payload following header and priority area.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.as_bytes()[self.payload_offset()..]
    }

    /// Mutable access to the payload, e.g. to fill a message allocated
    /// with [`Message::alloc`] (copy-on-write when shared).
    #[inline]
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let o = self.payload_offset();
        &mut self.block.make_mut()[o..]
    }

    /// Total size in bytes, header included — what `CmiSyncSend` sends.
    #[inline]
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// True when there is no payload (headers are always present).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload().is_empty()
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Message")
            .field("handler", &self.handler())
            .field("priority", &self.priority())
            .field("payload_len", &self.payload().len())
            .finish()
    }
}

impl From<Message> for MsgBlock {
    fn from(m: Message) -> MsgBlock {
        m.into_block()
    }
}

/// Read the [`FLAG_STEALABLE`] bit straight out of raw message bytes
/// without constructing a [`Message`]. The transport's steal path
/// filters whole mailboxes with this — a header peek, no decode, no
/// refcount traffic. Malformed (short) buffers read as not stealable.
#[inline]
pub fn peek_stealable(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_BYTES && u16::from_le_bytes([bytes[6], bytes[7]]) & FLAG_STEALABLE != 0
}

#[inline]
fn bytemuck_i32(v: &i32) -> &u32 {
    // Safety-free reinterpretation: i32 and u32 have identical layout.
    // Encoded/decoded with `as` casts which are two's-complement exact.
    unsafe { &*(v as *const i32 as *const u32) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_no_priority() {
        let m = Message::new(HandlerId(7), b"hello");
        assert_eq!(m.handler(), HandlerId(7));
        assert_eq!(m.priority(), Priority::None);
        assert_eq!(m.payload(), b"hello");
        assert_eq!(m.len(), HEADER_BYTES + 5);
    }

    #[test]
    fn roundtrip_int_priority() {
        for v in [i32::MIN, -1, 0, 1, 42, i32::MAX] {
            let m = Message::with_priority(HandlerId(1), &Priority::Int(v), b"x");
            assert_eq!(m.priority(), Priority::Int(v));
            assert_eq!(m.payload(), b"x");
        }
    }

    #[test]
    fn roundtrip_bitvec_priority() {
        let bv = BitVecPrio::from_bits(&[true, false, true, true, false]);
        let m = Message::with_priority(HandlerId(2), &Priority::BitVec(bv.clone()), b"payload");
        assert_eq!(m.priority(), Priority::BitVec(bv));
        assert_eq!(m.payload(), b"payload");
    }

    #[test]
    fn set_handler_preserves_rest() {
        let mut m = Message::with_priority(HandlerId(1), &Priority::Int(-3), b"abc");
        m.set_handler(HandlerId(99));
        assert_eq!(m.handler(), HandlerId(99));
        assert_eq!(m.priority(), Priority::Int(-3));
        assert_eq!(m.payload(), b"abc");
    }

    #[test]
    fn wire_roundtrip() {
        let m = Message::with_priority(HandlerId(3), &Priority::Int(5), b"wire");
        let bytes = m.clone().into_bytes();
        let back = Message::from_bytes(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn decode_rejects_short() {
        assert!(matches!(
            Message::from_bytes(vec![0; 3]),
            Err(DecodeError::TooShort { len: 3 })
        ));
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut bytes = Message::new(HandlerId(0), b"").into_bytes();
        bytes[4] = 17;
        assert_eq!(
            Message::from_bytes(bytes),
            Err(DecodeError::BadPriorityKind(17))
        );
    }

    #[test]
    fn decode_rejects_truncated_priority() {
        let mut bytes = Message::new(HandlerId(0), b"").into_bytes();
        bytes[5] = 4; // claims 4 words, none present
        assert!(matches!(
            Message::from_bytes(bytes),
            Err(DecodeError::TruncatedPriority { words: 4, .. })
        ));
    }

    #[test]
    fn alloc_then_fill() {
        let mut m = Message::alloc(4);
        assert_eq!(m.handler(), HandlerId::INVALID);
        m.set_handler(HandlerId(5));
        m.payload_mut().copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(m.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn flags_roundtrip() {
        let mut m = Message::new(HandlerId(0), b"p");
        assert_eq!(m.flags(), 0);
        m.set_flags(0xBEEF);
        assert_eq!(m.flags(), 0xBEEF);
        assert_eq!(m.payload(), b"p");
    }

    #[test]
    fn stealable_flag_and_peek() {
        let mut m = Message::new(HandlerId(3), b"seed");
        assert!(!m.is_stealable());
        assert!(!peek_stealable(m.as_bytes()));
        m.mark_stealable();
        assert!(m.is_stealable());
        assert!(peek_stealable(m.as_bytes()));
        // Other flag bits survive the mark, and the tag rides the wire
        // bytes (the transport peeks without decoding).
        m.set_flags(m.flags() | 0x0100);
        assert!(m.is_stealable());
        let wire = m.clone().into_bytes();
        assert!(peek_stealable(&wire));
        assert_eq!(Message::from_bytes(wire).unwrap().flags(), m.flags());
        // Short buffers are never stealable.
        assert!(!peek_stealable(&[0xFF; 4]));
    }

    #[test]
    fn empty_payload() {
        let m = Message::new(HandlerId(1), b"");
        assert!(m.is_empty());
        assert_eq!(m.len(), HEADER_BYTES);
    }

    #[test]
    fn share_aliases_clone_is_share() {
        let m = Message::new(HandlerId(3), b"alias");
        let s = m.share();
        let c = m.clone();
        assert_eq!(m.block().as_ptr(), s.block().as_ptr());
        assert_eq!(m.block().as_ptr(), c.block().as_ptr());
        assert_eq!(m.block().ref_count(), 3);
    }

    #[test]
    fn retarget_on_shared_message_is_copy_on_write() {
        let m = Message::with_priority(HandlerId(1), &Priority::Int(5), b"body");
        let mut other = m.share();
        other.set_handler(HandlerId(2));
        // The retargeted copy diverged; the original is untouched.
        assert_eq!(m.handler(), HandlerId(1));
        assert_eq!(other.handler(), HandlerId(2));
        assert_eq!(other.priority(), Priority::Int(5));
        assert_eq!(other.payload(), b"body");
        assert_ne!(m.block().as_ptr(), other.block().as_ptr());
    }

    #[test]
    fn retarget_on_unique_message_is_in_place() {
        let mut m = Message::new(HandlerId(1), b"x");
        let ptr = m.block().as_ptr();
        m.set_handler(HandlerId(9));
        assert_eq!(m.block().as_ptr(), ptr, "unique retarget must not copy");
    }

    #[test]
    fn message_storage_cycles_through_pool() {
        // alloc → free → alloc of the same size class reuses the block.
        let m = Message::new(HandlerId(1), &[7u8; 100]);
        let ptr = m.block().as_ptr();
        drop(m);
        let m2 = Message::new(HandlerId(2), &[8u8; 90]);
        assert_eq!(
            m2.block().as_ptr(),
            ptr,
            "same backing allocation must be observed across alloc/free/alloc"
        );
    }

    #[test]
    fn construction_is_one_pool_take() {
        let before = pool::stats().takes();
        let m = Message::new(HandlerId(1), &[0u8; 64]);
        assert_eq!(pool::stats().takes() - before, 1);
        let _shared: Vec<Message> = (0..8).map(|_| m.share()).collect();
        assert_eq!(pool::stats().takes() - before, 1, "shares are free");
    }
}
