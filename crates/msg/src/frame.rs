//! Wire framing for the socket transport.
//!
//! When PEs live in separate OS processes the generalized message has to
//! cross a byte stream. A frame is the smallest self-delimiting unit on
//! that stream:
//!
//! ```text
//! [ u32 le: body length ][ u8 kind ][ u32 le src ][ u32 le dst ][ u64 le seq ][ u32 le channel ][ u8 guarantee ][ payload ... ]
//!                        `--------------------------- body (length bytes) ---------------------------'
//! ```
//!
//! The payload is the [`MsgBlock`] bytes verbatim — the same encoding
//! the in-process machine delivers (handler id at offset 0), so nothing
//! above the transport can tell which wire carried it. `src`/`dst` are
//! PE ranks; `seq` is the QoS-sublayer sequence number, per
//! `(link, channel)` and numbering from 1 — `seq == 0` is the reserved
//! unsequenced fast path used when no fault plan is installed,
//! mirroring the in-process link convention. `channel` and `guarantee`
//! carry the delivery channel id and its policy tag (`converse-net`'s
//! `Delivery::as_u8`: 0 exactly-once, 1 at-most-once, 2
//! latest-value-wins) so the receiving endpoint can apply per-channel
//! semantics without any out-of-band registry. `kind` distinguishes
//! data from the small control vocabulary the hub and endpoints speak
//! (hello/go bootstrap, acks, stall routing, teardown).
//!
//! Reads hand back a pool-backed [`MsgBlock`] so a frame's payload joins
//! the normal message circulation with no extra copy.

use crate::MsgBlock;
use std::io::{self, Read, Write};

/// Fixed bytes after the length prefix:
/// kind(1) + src(4) + dst(4) + seq(8) + channel(4) + guarantee(1).
pub const FRAME_HEADER_BYTES: usize = 22;

/// Upper bound on one frame's body. A length prefix above this is
/// treated as stream corruption rather than honored with a giant
/// allocation.
pub const MAX_FRAME_BODY: usize = 64 << 20;

/// The fixed part of a frame (everything but the payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame discriminator; the transport defines the vocabulary.
    pub kind: u8,
    /// Source PE rank (or sender-defined for control frames).
    pub src: u32,
    /// Destination PE rank (or receiver-defined for control frames).
    pub dst: u32,
    /// QoS-sublayer sequence number, per `(link, channel)`, numbering
    /// from 1; 0 marks the unsequenced fast path (no fault plan).
    pub seq: u64,
    /// Delivery channel id (0 = the default exactly-once channel).
    pub channel: u32,
    /// Delivery-guarantee tag (`Delivery::as_u8` in `converse-net`):
    /// 0 exactly-once, 1 at-most-once, 2 latest-value-wins.
    pub guarantee: u8,
}

impl FrameHeader {
    /// New header for a frame on the default channel (0, exactly-once).
    pub fn new(kind: u8, src: u32, dst: u32, seq: u64) -> FrameHeader {
        FrameHeader {
            kind,
            src,
            dst,
            seq,
            channel: 0,
            guarantee: 0,
        }
    }

    /// Tag this header with an explicit delivery channel + guarantee.
    pub fn on_channel(mut self, channel: u32, guarantee: u8) -> FrameHeader {
        self.channel = channel;
        self.guarantee = guarantee;
        self
    }

    fn write_into(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.channel.to_le_bytes());
        out.push(self.guarantee);
    }

    fn parse(bytes: &[u8; FRAME_HEADER_BYTES]) -> FrameHeader {
        FrameHeader {
            kind: bytes[0],
            src: u32::from_le_bytes(bytes[1..5].try_into().unwrap()),
            dst: u32::from_le_bytes(bytes[5..9].try_into().unwrap()),
            seq: u64::from_le_bytes(bytes[9..17].try_into().unwrap()),
            channel: u32::from_le_bytes(bytes[17..21].try_into().unwrap()),
            guarantee: bytes[21],
        }
    }
}

/// Encode one frame (length prefix included) into a fresh buffer.
pub fn encode_frame(header: FrameHeader, payload: &[u8]) -> Vec<u8> {
    let body = FRAME_HEADER_BYTES + payload.len();
    assert!(
        body <= MAX_FRAME_BODY,
        "frame body {body} exceeds MAX_FRAME_BODY"
    );
    let mut out = Vec::with_capacity(4 + body);
    out.extend_from_slice(&(body as u32).to_le_bytes());
    header.write_into(&mut out);
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w` as a single `write_all` (one syscall in the
/// common case, so concurrent writers interleave at frame granularity
/// when the caller serializes on a lock).
pub fn write_frame(w: &mut impl Write, header: FrameHeader, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(header, payload))
}

/// Read one frame from `r`. Returns `Ok(None)` on clean EOF at a frame
/// boundary; mid-frame EOF and oversized length prefixes are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(FrameHeader, MsgBlock)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let body = u32::from_le_bytes(len_buf) as usize;
    if !(FRAME_HEADER_BYTES..=MAX_FRAME_BODY).contains(&body) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body length {body} out of range"),
        ));
    }
    let mut header_buf = [0u8; FRAME_HEADER_BYTES];
    r.read_exact(&mut header_buf)?;
    let header = FrameHeader::parse(&header_buf);
    let payload_len = body - FRAME_HEADER_BYTES;
    let mut block = MsgBlock::alloc(payload_len);
    if payload_len > 0 {
        r.read_exact(block.make_mut())?;
    }
    Ok(Some((header, block)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_header_and_payload() {
        let h = FrameHeader::new(3, 1, 2, 0x0102_0304_0506_0708);
        let buf = encode_frame(h, b"payload bytes");
        let mut r = &buf[..];
        let (got, block) = read_frame(&mut r).unwrap().expect("one frame");
        assert_eq!(got, h);
        assert_eq!((got.channel, got.guarantee), (0, 0), "default channel");
        assert_eq!(block.as_slice(), b"payload bytes");
        assert!(
            read_frame(&mut r).unwrap().is_none(),
            "clean EOF after frame"
        );
    }

    #[test]
    fn round_trips_channel_and_guarantee_tags() {
        let h = FrameHeader::new(3, 1, 2, 42).on_channel(0x8000_0007, 2);
        let buf = encode_frame(h, b"topic value");
        let (got, block) = read_frame(&mut &buf[..]).unwrap().expect("one frame");
        assert_eq!(got, h);
        assert_eq!(got.channel, 0x8000_0007);
        assert_eq!(got.guarantee, 2);
        assert_eq!(block.as_slice(), b"topic value");
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let buf = encode_frame(FrameHeader::new(9, 0, 0, 0), b"");
        let (h, block) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(h.kind, 9);
        assert!(block.is_empty());
    }

    #[test]
    fn frames_stream_back_to_back() {
        let mut buf = encode_frame(FrameHeader::new(1, 0, 1, 1), b"a");
        buf.extend(encode_frame(FrameHeader::new(1, 0, 1, 2), b"bb"));
        let mut r = &buf[..];
        let (h1, p1) = read_frame(&mut r).unwrap().unwrap();
        let (h2, p2) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((h1.seq, p1.as_slice()), (1, &b"a"[..]));
        assert_eq!((h2.seq, p2.as_slice()), (2, &b"bb"[..]));
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let buf = encode_frame(FrameHeader::new(1, 0, 1, 1), b"full payload");
        let cut = &buf[..buf.len() - 3];
        let err = read_frame(&mut &cut[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn undersized_body_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
