//! The per-PE message-buffer pool — the `CmiAlloc`/`CmiFree` analogue.
//!
//! Real Converse routes message memory through `CmiAlloc` so the machine
//! layer, the scheduler, and the language runtimes can hand the *same*
//! block across layers and eventually `CmiFree` it back cheaply. This
//! module reproduces that with **size-classed thread-local free lists**:
//! each PE is one OS thread, so the thread-local pool *is* the per-PE
//! pool, uncontended by construction.
//!
//! Capacity classes are powers of two from [`MIN_CLASS`] to
//! [`MAX_CLASS`]; larger buffers bypass the pool and go straight to the
//! global allocator. A buffer freed on a PE other than its allocator
//! joins the *freeing* PE's free list — the same receiver-side recycling
//! real Converse gets when the receiving processor calls `CmiFree` on a
//! delivered message.
//!
//! Every [`take`] is counted as a **hit** (served from a free list) or a
//! **miss** (touched the global allocator); `hits + misses` is therefore
//! the number of message buffers this thread materialized, which is what
//! the zero-copy tests assert on (a broadcast to P PEs must cost exactly
//! one). Counters are monotonic and per-thread; the machine layer
//! surfaces them through `converse-trace` at PE teardown.

use std::cell::{Cell, RefCell};

/// Smallest pooled capacity class in bytes.
pub const MIN_CLASS: usize = 64;
/// Largest pooled capacity class in bytes; bigger buffers bypass the
/// pool entirely.
pub const MAX_CLASS: usize = 64 * 1024;
/// Free buffers retained per class before further frees are dropped.
const PER_CLASS_CAP: usize = 64;
/// Number of power-of-two classes between `MIN_CLASS` and `MAX_CLASS`.
const NUM_CLASSES: usize = (MAX_CLASS / MIN_CLASS).ilog2() as usize + 1;

/// Monotonic counters of this thread's (this PE's) pool activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// [`take`] calls served from a free list (no allocator touch).
    pub hits: u64,
    /// [`take`] calls that had to allocate.
    pub misses: u64,
    /// Buffers recycled into a free list by [`give`].
    pub recycled: u64,
    /// Freed buffers dropped instead (class full, or not poolable).
    pub discarded: u64,
}

impl PoolStats {
    /// Buffers materialized by this thread (`hits + misses`) — the
    /// "payload allocation" count the zero-copy assertions use.
    pub fn takes(&self) -> u64 {
        self.hits + self.misses
    }
}

thread_local! {
    static FREE: RefCell<[Vec<Vec<u8>>; NUM_CLASSES]> =
        RefCell::new(std::array::from_fn(|_| Vec::new()));
    static STATS: Cell<PoolStats> = const { Cell::new(PoolStats {
        hits: 0,
        misses: 0,
        recycled: 0,
        discarded: 0,
    }) };
}

/// Capacity of class `i`.
#[inline]
fn class_size(i: usize) -> usize {
    MIN_CLASS << i
}

/// Smallest class that can hold `len` bytes, if one exists.
#[inline]
fn class_for_len(len: usize) -> Option<usize> {
    if len > MAX_CLASS {
        return None;
    }
    let c = len.max(MIN_CLASS).next_power_of_two();
    Some((c / MIN_CLASS).ilog2() as usize)
}

/// Largest class a buffer of capacity `cap` can serve, if any.
#[inline]
fn class_for_cap(cap: usize) -> Option<usize> {
    if cap < MIN_CLASS {
        return None;
    }
    let i = (cap / MIN_CLASS).ilog2() as usize;
    Some(i.min(NUM_CLASSES - 1))
}

/// Obtain an empty buffer with capacity for at least `len` bytes,
/// preferring this thread's free lists (`CmiAlloc`).
pub fn take(len: usize) -> Vec<u8> {
    let mut s = STATS.get();
    let v = match class_for_len(len) {
        Some(ci) => match FREE.with(|f| f.borrow_mut()[ci].pop()) {
            Some(mut v) => {
                v.clear();
                s.hits += 1;
                v
            }
            None => {
                s.misses += 1;
                Vec::with_capacity(class_size(ci))
            }
        },
        None => {
            s.misses += 1;
            Vec::with_capacity(len)
        }
    };
    STATS.set(s);
    v
}

/// Return a no-longer-needed buffer to this thread's free lists
/// (`CmiFree`). Buffers with unpoolable capacities — or arriving when
/// their class is full — are simply dropped.
pub fn give(v: Vec<u8>) {
    let mut s = STATS.get();
    match class_for_cap(v.capacity()) {
        Some(ci) => {
            let kept = FREE.with(|f| {
                let mut f = f.borrow_mut();
                if f[ci].len() < PER_CLASS_CAP {
                    f[ci].push(v);
                    true
                } else {
                    false
                }
            });
            if kept {
                s.recycled += 1;
            } else {
                s.discarded += 1;
            }
        }
        None => s.discarded += 1,
    }
    STATS.set(s);
}

/// This thread's pool counters. Each PE is one OS thread, so calling
/// this from a PE's own execution context yields that PE's counters.
pub fn stats() -> PoolStats {
    STATS.get()
}

/// Free buffers currently retained by this thread's pool.
pub fn retained() -> usize {
    FREE.with(|f| f.borrow().iter().map(|c| c.len()).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_range() {
        assert_eq!(class_for_len(0), Some(0));
        assert_eq!(class_for_len(64), Some(0));
        assert_eq!(class_for_len(65), Some(1));
        assert_eq!(class_for_len(MAX_CLASS), Some(NUM_CLASSES - 1));
        assert_eq!(class_for_len(MAX_CLASS + 1), None);
        assert_eq!(class_for_cap(63), None);
        assert_eq!(class_for_cap(200), Some(1)); // serves the 128 class
        assert_eq!(class_for_cap(usize::MAX), Some(NUM_CLASSES - 1));
    }

    #[test]
    fn take_give_take_reuses_backing_storage() {
        let before = stats();
        let v = take(100);
        assert!(v.capacity() >= 100);
        let ptr = v.as_ptr();
        give(v);
        let v2 = take(80); // same 128-byte class
        assert_eq!(v2.as_ptr(), ptr, "pool must hand back the same buffer");
        let after = stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.recycled - before.recycled, 1);
        give(v2);
    }

    #[test]
    fn oversized_buffers_bypass_pool() {
        let before = stats();
        let v = take(MAX_CLASS + 1);
        assert!(v.capacity() > MAX_CLASS);
        give(v); // still recyclable: lands in the top class
        let after = stats();
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.recycled - before.recycled, 1);
    }

    #[test]
    fn zero_capacity_is_discarded() {
        let before = stats();
        give(Vec::new());
        let after = stats();
        assert_eq!(after.discarded - before.discarded, 1);
        assert_eq!(after.recycled, before.recycled);
    }
}
