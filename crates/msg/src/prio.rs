//! Scheduling priorities (paper §2.3).
//!
//! Converse supports prioritized queueing "for languages and computations
//! that require them, while not penalizing performance for those that do
//! not". Two priority domains exist:
//!
//! * **Integer priorities** — e.g. branch-and-bound lower bounds, or
//!   virtual time in optimistic discrete-event simulation. Smaller values
//!   are more urgent (run first), matching Converse/Charm convention.
//! * **Bit-vector priorities** — arbitrary-length bit strings used by
//!   state-space search to obtain "consistent and monotonic speedups"
//!   (paper ref [22]). Ordering is lexicographic with `0 < 1`, and when
//!   one vector is a prefix of the other the *shorter* one is more
//!   urgent. This makes the priority of a search node's child strictly
//!   less urgent than its parent while preserving sibling order.

use std::cmp::Ordering;
use std::fmt;

/// A message's scheduling priority.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Priority {
    /// Unprioritized; scheduled FIFO (or LIFO) among themselves and
    /// treated as integer priority `0` relative to prioritized work.
    #[default]
    None,
    /// Integer priority; **smaller is more urgent**.
    Int(i32),
    /// Bit-vector priority; lexicographic, `0` bit more urgent than `1`.
    BitVec(BitVecPrio),
}

impl Priority {
    /// True for `Priority::None`.
    pub fn is_none(&self) -> bool {
        matches!(self, Priority::None)
    }
}

/// An arbitrary-length bit-string priority.
///
/// Stored as a length-prefixed little sequence of `u32` words so it can
/// be embedded verbatim in a message's priority area: word 0 is the bit
/// count, the following words carry the bits MSB-first (bit `i` of the
/// vector lives in word `i / 32` at bit position `31 - (i % 32)`), which
/// makes word-wise unsigned comparison equal to lexicographic bit
/// comparison.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVecPrio {
    /// raw[0] = number of valid bits; raw[1..] = bit words, MSB-first.
    raw: Vec<u32>,
}

impl BitVecPrio {
    /// The empty bit vector — the most urgent priority of all.
    pub fn root() -> Self {
        BitVecPrio { raw: vec![0] }
    }

    /// Build from explicit bits, most significant (leftmost) first.
    pub fn from_bits(bits: &[bool]) -> Self {
        let nwords = bits.len().div_ceil(32);
        let mut raw = vec![0u32; 1 + nwords];
        raw[0] = bits.len() as u32;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                raw[1 + i / 32] |= 1 << (31 - (i % 32));
            }
        }
        BitVecPrio { raw }
    }

    /// Rebuild from the wire representation: `nbits` plus bit words.
    pub fn from_raw(nbits: u32, words: Vec<u32>) -> Self {
        let needed = (nbits as usize).div_ceil(32);
        let mut raw = Vec::with_capacity(1 + needed);
        raw.push(nbits);
        raw.extend(words.into_iter().take(needed));
        raw.resize(1 + needed, 0);
        let mut bv = BitVecPrio { raw };
        bv.mask_tail();
        bv
    }

    /// The wire words: `[nbits, bits...]`, embedded in the message header
    /// priority area.
    pub fn words(&self) -> &[u32] {
        &self.raw
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.raw[0] as usize
    }

    /// True for the empty (root, most-urgent) vector.
    pub fn is_empty(&self) -> bool {
        self.raw[0] == 0
    }

    /// Bit `i` (0 = leftmost / most significant).
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len(),
            "bit {i} out of range for {}-bit priority",
            self.len()
        );
        self.raw[1 + i / 32] & (1 << (31 - (i % 32))) != 0
    }

    /// The child priority obtained by appending one bit — the idiom used
    /// by tree-structured searches: `child(false)` stays more urgent than
    /// `child(true)`, and both are less urgent than `self`.
    ///
    /// ```
    /// use converse_msg::BitVecPrio;
    /// let root = BitVecPrio::root();
    /// let left = root.child(false);
    /// let right = root.child(true);
    /// assert!(root < left && left < right);
    /// assert!(left.child(true) < right, "whole left subtree precedes right");
    /// ```
    pub fn child(&self, bit: bool) -> Self {
        let mut out = self.clone();
        let n = out.len();
        if n.is_multiple_of(32) {
            out.raw.push(0);
        }
        out.raw[0] = (n + 1) as u32;
        if bit {
            out.raw[1 + n / 32] |= 1 << (31 - (n % 32));
        }
        out
    }

    /// Append `width` bits encoding `value` (MSB-first), the generalized
    /// form of [`BitVecPrio::child`] for k-ary trees.
    pub fn child_n(&self, value: u32, width: u32) -> Self {
        assert!(width <= 32, "width {width} exceeds 32");
        let mut out = self.clone();
        for i in (0..width).rev() {
            out = out.child(value & (1 << i) != 0);
        }
        out
    }

    fn mask_tail(&mut self) {
        let n = self.len();
        let tail = n % 32;
        if tail != 0 {
            if let Some(last) = self.raw.last_mut() {
                *last &= !0u32 << (32 - tail);
            }
        }
    }
}

impl Ord for BitVecPrio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Word-wise lexicographic compare over the shared prefix; the
        // MSB-first packing makes u32 comparison equal bit-lexicographic
        // comparison. Tail words are zero-masked at construction so a
        // partial final word compares correctly.
        let a = &self.raw[1..];
        let b = &other.raw[1..];
        for i in 0..a.len().min(b.len()) {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        // One is a word-prefix of the other; compare remaining words of
        // the longer against zero, then fall back to bit length: shorter
        // (prefix) is more urgent.
        if a.len() > b.len() && a[b.len()..].iter().any(|&w| w != 0) {
            return Ordering::Greater;
        }
        if b.len() > a.len() && b[a.len()..].iter().any(|&w| w != 0) {
            return Ordering::Less;
        }
        self.len().cmp(&other.len())
    }
}

impl PartialOrd for BitVecPrio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BitVecPrio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVecPrio(")?;
        for i in 0..self.len() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVecPrio {
        BitVecPrio::from_bits(&s.chars().map(|c| c == '1').collect::<Vec<_>>())
    }

    #[test]
    fn zero_before_one() {
        assert!(bv("0") < bv("1"));
        assert!(bv("00") < bv("01"));
        assert!(bv("011") < bv("100"));
    }

    #[test]
    fn prefix_is_more_urgent() {
        assert!(bv("0") < bv("00"));
        assert!(bv("1") < bv("10"));
        assert!(BitVecPrio::root() < bv("0"));
    }

    #[test]
    fn prefix_vs_one_extension() {
        // "0" extended with a 1 bit is still after "0" but before "1".
        assert!(bv("0") < bv("01"));
        assert!(bv("01") < bv("1"));
    }

    #[test]
    fn child_ordering() {
        let p = bv("10");
        let c0 = p.child(false);
        let c1 = p.child(true);
        assert!(p < c0, "parent more urgent than child");
        assert!(c0 < c1, "0-child more urgent than 1-child");
        assert_eq!(c0, bv("100"));
        assert_eq!(c1, bv("101"));
    }

    #[test]
    fn child_n_matches_repeated_child() {
        let p = bv("1");
        assert_eq!(p.child_n(0b101, 3), p.child(true).child(false).child(true));
        assert_eq!(p.child_n(2, 2), bv("110"));
    }

    #[test]
    fn cross_word_compare() {
        // 40-bit vectors exercise the multi-word path.
        let a = bv(&("0".repeat(39) + "0"));
        let b = bv(&("0".repeat(39) + "1"));
        assert!(a < b);
        let c = bv(&"0".repeat(33));
        assert!(bv(&"0".repeat(32)) < c);
    }

    #[test]
    fn bit_accessor() {
        let p = bv("1010011");
        let expect = [true, false, true, false, false, true, true];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(p.bit(i), *e, "bit {i}");
        }
    }

    #[test]
    fn from_raw_masks_garbage_tail() {
        // 3 valid bits but a word with junk in the low positions.
        let a = BitVecPrio::from_raw(3, vec![0b1010_0000_0000_0000_0000_0000_0000_1111u32]);
        let b = bv("101");
        assert_eq!(a, b);
    }

    #[test]
    fn root_is_most_urgent() {
        let r = BitVecPrio::root();
        for s in ["0", "1", "0000", "1111", "01"] {
            assert!(r < bv(s), "root vs {s}");
        }
    }

    #[test]
    fn equal_compare() {
        assert_eq!(bv("0110").cmp(&bv("0110")), Ordering::Equal);
    }
}
